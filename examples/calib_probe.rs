//! Calibration probe: runs one benchmark under several memory-system variants to
//! locate the dominant stall source. Not part of the documented API surface.

use libra_repro::prelude::*;

fn run(label: &str, cfg: &GpuConfig, profile: &tbr_workloads::BenchmarkProfile) {
    use tbr_mem::hierarchy::{L1Cache, MemoryHierarchy};
    use tbr_raster::raster_unit::RasterUnit;
    use tbr_sim::geometry_phase::run_geometry_phase;
    use tbr_sim::raster_phase::run_raster_phase;
    use tbr_workloads::SceneGenerator;

    let scene = SceneGenerator::new(profile, &cfg.screen).scene(1);
    let mut hier = MemoryHierarchy::new(cfg.l2_cache, cfg.dram, cfg.dram_interval_cycles);
    hier.ideal = cfg.ideal_memory;
    let mut vertex_l1 = L1Cache::new(cfg.vertex_cache);
    let geo = run_geometry_phase(cfg, &mut vertex_l1, &mut hier, &scene);
    hier.end_frame();
    let mut rus: Vec<RasterUnit> =
        (0..cfg.num_raster_units).map(|_| RasterUnit::new(cfg)).collect();
    let mut sched = SchedulerKind::SingleZOrder.build();
    let mut plan = sched.plan_frame(&cfg.screen, None);
    let r = run_raster_phase(
        cfg,
        &mut rus,
        &mut hier,
        &mut plan,
        &geo.tris,
        &geo.bins,
        MechanismSpec::default(),
    );
    let tex: tbr_common::stats::CacheStats =
        rus.iter().fold(Default::default(), |mut a, ru| {
            a.merge(&ru.texture_stats());
            a
        });
    println!(
        "{:<20} raster={:>9} fe={:>9} drain={:>9} flush={:>8} warps={:>6} texreq={:>8} l1hit={:>5.1}% l2={:>7} dram={:>7} avglat={:>6.1}",
        label,
        r.raster_cycles,
        r.fe_cycles,
        r.drain_cycles,
        r.flush_cycles,
        r.warps,
        r.tex_requests,
        tex.hit_ratio() * 100.0,
        hier.l2_stats().accesses,
        hier.dram_stats().total_accesses(),
        hier.dram_stats().avg_latency(),
    );
}

fn main() {
    let abbrev = std::env::args().nth(1).unwrap_or_else(|| "CCS".into());
    let p = suite().into_iter().find(|x| x.abbrev == abbrev).unwrap();
    let screen = ScreenConfig::quarter_fhd();

    let base = GpuConfig::baseline(screen);
    run("baseline", &base, &p);

    let mut fast_lat = base.clone();
    fast_lat.dram.row_hit_latency = 10;
    fast_lat.dram.row_miss_latency = 20;
    run("dram lat/5", &fast_lat, &p);

    let mut fat_bus = base.clone();
    fat_bus.dram.burst_cycles = 1;
    fat_bus.dram.bank_occupancy = 2;
    run("dram 4x bandwidth", &fat_bus, &p);

    let mut both = fast_lat.clone();
    both.dram.burst_cycles = 1;
    both.dram.bank_occupancy = 2;
    run("lat/5 + 4x bw", &both, &p);

    let mut big_l2 = base.clone();
    big_l2.l2_cache.size_bytes = 32 << 20;
    run("32MB L2", &big_l2, &p);

    let mut more_warps = base.clone();
    more_warps.max_warps_per_core = 64;
    run("64 warp slots", &more_warps, &p);

    run("ideal memory", &base.clone().with_ideal_memory(), &p);
}
