//! Fig 2 as images: renders one frame of a benchmark to `<ABBREV>_frame.ppm` and its
//! per-tile DRAM-access heatmap to `<ABBREV>_heatmap.ppm`.
//!
//! ```sh
//! cargo run --release --example heatmap_ppm [ABBREV]   # default SuS
//! ```

use std::error::Error;
use std::fs;

use libra_repro::prelude::*;
use tbr_geom::process_scene;
use tbr_raster::reference::{render_frame, to_ppm};
use tbr_workloads::SceneGenerator;

/// Maps a normalised heat value to a blue→red colour ramp (packed 0xAABBGGRR).
fn heat_color(v: f64) -> u32 {
    let v = v.clamp(0.0, 1.0);
    let r = (255.0 * v) as u32;
    let b = (255.0 * (1.0 - v)) as u32;
    let g = (96.0 * (1.0 - (2.0 * v - 1.0).abs())) as u32;
    0xFF00_0000 | (b << 16) | (g << 8) | r
}

fn main() -> Result<(), Box<dyn Error>> {
    let abbrev = std::env::args().nth(1).unwrap_or_else(|| "SuS".into());
    let profile = suite()
        .into_iter()
        .find(|p| p.abbrev == abbrev)
        .ok_or_else(|| format!("unknown benchmark `{abbrev}`"))?;
    let screen = ScreenConfig::quarter_fhd();
    let cfg = GpuConfig::baseline(screen);

    // The rendered frame (reference renderer).
    let scene = SceneGenerator::new(&profile, &screen).scene(1);
    let (tris, _) = process_scene(&scene, &screen);
    let image = render_frame(&tris, &screen);
    let frame_path = format!("{abbrev}_frame.ppm");
    fs::write(&frame_path, to_ppm(&image, screen.width, screen.height))?;

    // The per-tile DRAM heatmap (timed simulation).
    let stats = simulate_sequence(&cfg, SchedulerKind::SingleZOrder, &profile, 2);
    let frame = stats.frames.last().expect("frames rendered");
    let max = frame.heatmap.tiles.iter().map(|t| t.dram_accesses).max().unwrap_or(1).max(1);
    let mut heat = vec![0u32; (screen.width * screen.height) as usize];
    for (i, t) in frame.heatmap.tiles.iter().enumerate() {
        let v = (t.dram_accesses as f64 + 1.0).ln() / (max as f64 + 1.0).ln();
        let c = heat_color(v);
        let (x0, y0, x1, y1) = screen.tile_rect(tbr_common::ids::TileId(i as u32));
        for y in y0..y1 {
            for x in x0..x1 {
                heat[(y * screen.width + x) as usize] = c;
            }
        }
    }
    let heat_path = format!("{abbrev}_heatmap.ppm");
    fs::write(&heat_path, to_ppm(&heat, screen.width, screen.height))?;

    println!("wrote {frame_path} (rendered frame) and {heat_path} (DRAM heatmap)");
    println!(
        "max per-tile DRAM accesses: {max}; total frame DRAM accesses: {}",
        frame.dram.total_accesses()
    );
    Ok(())
}
