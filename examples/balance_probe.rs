//! Load-balance and heterogeneity probe: per-RU finish times for PTR vs LIBRA, and
//! the per-tile DRAM-access distribution (the Fig 2 contrast).

use libra_repro::prelude::*;
use tbr_mem::hierarchy::{L1Cache, MemoryHierarchy};
use tbr_raster::raster_unit::RasterUnit;
use tbr_sim::geometry_phase::run_geometry_phase;
use tbr_sim::raster_phase::run_raster_phase;
use tbr_workloads::SceneGenerator;

fn run(label: &str, kind: SchedulerKind, cfg: &GpuConfig, p: &BenchmarkProfile) {
    // Warm up one frame so LIBRA has feedback, then measure frame 1.
    let mut sched = kind.build();
    let mut hier = MemoryHierarchy::new(cfg.l2_cache, cfg.dram, cfg.dram_interval_cycles);
    let mut vertex_l1 = L1Cache::new(cfg.vertex_cache);
    let mut rus: Vec<RasterUnit> =
        (0..cfg.num_raster_units).map(|_| RasterUnit::new(cfg)).collect();
    let gen = SceneGenerator::new(p, &cfg.screen);
    let mut feedback = None;
    let mut last = None;
    for f in 0..2u32 {
        let scene = gen.scene(f);
        let geo = run_geometry_phase(cfg, &mut vertex_l1, &mut hier, &scene);
        hier.end_frame();
        let mut plan = sched.plan_frame(&cfg.screen, feedback.as_ref());
        let r = run_raster_phase(
            cfg,
            &mut rus,
            &mut hier,
            &mut plan,
            &geo.tris,
            &geo.bins,
            MechanismSpec::default(),
        );
        let tex: tbr_common::stats::CacheStats =
            rus.iter().fold(Default::default(), |mut a, ru| {
                a.merge(&ru.texture_stats());
                a
            });
        feedback = Some(libra::feedback::FrameFeedback::new(
            r.heatmap.clone(),
            r.raster_cycles,
            tex.hit_ratio(),
        ));
        for ru in &mut rus {
            ru.end_frame();
        }
        hier.end_frame();
        last = Some(r);
    }
    let r = last.unwrap();
    println!(
        "{:<18} wall={:>8} ru_finish={:?} imbalance={:>5.1}%",
        label,
        r.raster_cycles,
        r.ru_finish,
        (1.0 - *r.ru_finish.iter().min().unwrap() as f64
            / *r.ru_finish.iter().max().unwrap() as f64)
            * 100.0
    );
    if label.starts_with("PTR") {
        let mut dram: Vec<u64> = r.heatmap.tiles.iter().map(|t| t.dram_accesses).collect();
        dram.sort_unstable();
        let pct = |q: f64| dram[((dram.len() - 1) as f64 * q) as usize];
        println!(
            "  tile DRAM deciles: p10={} p50={} p90={} p99={} max={}",
            pct(0.1),
            pct(0.5),
            pct(0.9),
            pct(0.99),
            dram[dram.len() - 1]
        );
    }
}

fn main() {
    let abbrev = std::env::args().nth(1).unwrap_or_else(|| "CCS".into());
    let p = suite().into_iter().find(|x| x.abbrev == abbrev).unwrap();
    let ptr = GpuConfig::libra(ScreenConfig::quarter_fhd(), 2);
    run("PTR", SchedulerKind::InterleavedZOrder, &ptr, &p);
    run("LIBRA", SchedulerKind::Libra, &ptr, &p);
}
