//! Quickstart: compare the baseline GPU, plain parallel tile rendering (PTR), and
//! LIBRA on one memory-intensive benchmark.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart [ABBREV] [FRAMES]
//! ```
//! e.g. `cargo run --release --example quickstart CCS 8`.

use libra_repro::prelude::*;
use tbr_energy::EnergyModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let abbrev = args.get(1).map(String::as_str).unwrap_or("CCS").to_string();
    let frames: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);

    let profile = suite()
        .into_iter()
        .find(|p| p.abbrev == abbrev)
        .unwrap_or_else(|| panic!("unknown benchmark abbreviation `{abbrev}`"));
    let screen = ScreenConfig::quarter_fhd();
    println!(
        "benchmark {} ({}) — {} frames at {}x{} ({} tiles)\n",
        profile.name,
        profile.abbrev,
        frames,
        screen.width,
        screen.height,
        screen.num_tiles()
    );

    let energy = EnergyModel::default();
    let baseline_cfg = GpuConfig::baseline(screen);
    let ptr_cfg = GpuConfig::libra(screen, 2);

    let baseline = simulate_sequence(&baseline_cfg, SchedulerKind::SingleZOrder, &profile, frames);
    let ptr = simulate_sequence(&ptr_cfg, SchedulerKind::InterleavedZOrder, &profile, frames);
    let libra = simulate_sequence(&ptr_cfg, SchedulerKind::Libra, &profile, frames);

    let base_energy = energy.sequence_energy(&baseline).total();
    println!(
        "{:<22} {:>14} {:>9} {:>10} {:>10} {:>11} {:>9}",
        "config", "cycles/frame", "speedup", "tex-lat", "tex-hit%", "DRAM/frame", "energy"
    );
    for (name, seq) in
        [("baseline 1RUx8", &baseline), ("PTR 2RUx4", &ptr), ("LIBRA 2RUx4", &libra)]
    {
        println!(
            "{:<22} {:>14.0} {:>8.3}x {:>10.1} {:>9.1}% {:>11.0} {:>8.1}%",
            name,
            seq.avg_frame_cycles(),
            seq.speedup_over(&baseline),
            seq.avg_texture_latency(),
            seq.texture_hit_ratio() * 100.0,
            seq.total_dram_accesses() as f64 / frames as f64,
            energy.sequence_energy(seq).total() / base_energy * 100.0,
        );
    }
    println!(
        "\nFPS: baseline {:.1} → LIBRA {:.1}",
        baseline_cfg.fps(baseline.avg_frame_cycles()),
        ptr_cfg.fps(libra.avg_frame_cycles())
    );
}
