//! Suite-wide frames-per-second table: baseline vs LIBRA (the paper's "+11.4 %
//! increase in frame rate" claim, across both workload classes).
//!
//! ```sh
//! cargo run --release --example fps_table [FRAMES]
//! ```

use libra_repro::prelude::*;

fn main() {
    let frames: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let screen = ScreenConfig::quarter_fhd();
    let base_cfg = GpuConfig::baseline(screen);
    let libra_cfg = GpuConfig::libra(screen, 2);

    println!(
        "{:<6} {:<8} {:>10} {:>10} {:>8}",
        "bench", "class", "base FPS", "LIBRA FPS", "Δ"
    );
    let mut deltas = Vec::new();
    for p in suite() {
        let base = simulate_sequence(&base_cfg, SchedulerKind::SingleZOrder, &p, frames);
        let libra = simulate_sequence(&libra_cfg, SchedulerKind::Libra, &p, frames);
        let fb = base_cfg.fps(base.avg_frame_cycles());
        let fl = libra_cfg.fps(libra.avg_frame_cycles());
        let d = (fl / fb - 1.0) * 100.0;
        deltas.push(d);
        println!(
            "{:<6} {:<8} {:>10.1} {:>10.1} {:>+7.1}%",
            p.abbrev,
            if p.memory_intensive { "memory" } else { "compute" },
            fb,
            fl,
            d
        );
    }
    let avg = deltas.iter().sum::<f64>() / deltas.len() as f64;
    println!("\nAVG FPS increase: {avg:+.1}%   (paper: +11.4% across the suite)");
}
