//! Traces LIBRA's per-frame adaptive decisions (Fig 10 in action): the tile ordering
//! scheme and the supertile size chosen for every frame of a sequence, alongside the
//! metrics that drove them.
//!
//! ```sh
//! cargo run --release --example adaptive_trace [ABBREV] [FRAMES]
//! ```

use libra::adaptive::{AdaptiveController, AdaptiveParams, TileOrderKind};
use libra::feedback::FrameFeedback;
use libra_repro::prelude::*;

fn main() {
    let abbrev = std::env::args().nth(1).unwrap_or_else(|| "SuS".into());
    let frames: u32 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(12);
    let profile = suite()
        .into_iter()
        .find(|p| p.abbrev == abbrev)
        .unwrap_or_else(|| panic!("unknown benchmark `{abbrev}`"));
    let screen = ScreenConfig::quarter_fhd();
    let cfg = GpuConfig::libra(screen, 2);

    // Run the full LIBRA simulation once for the real cycle numbers...
    let seq = simulate_sequence(&cfg, SchedulerKind::Libra, &profile, frames);
    // ...and replay its feedback through a controller to display the decisions the
    // scheduler took at each frame boundary.
    let mut controller = AdaptiveController::new(AdaptiveParams::default());

    println!(
        "LIBRA adaptive trace — {} ({}), {} frames\n",
        profile.name, profile.abbrev, frames
    );
    println!(
        "{:>5} {:>12} {:>9} {:>13} {:>10} {:>10}",
        "frame", "raster cyc", "tex hit%", "order", "supertile", "dram/frame"
    );
    for f in &seq.frames {
        let fb = FrameFeedback::new(
            f.heatmap.clone(),
            f.raster_cycles,
            f.texture_cache.hit_ratio(),
        );
        let d = controller.decide(&fb);
        println!(
            "{:>5} {:>12} {:>8.1}% {:>13} {:>9}x{:<1} {:>9}",
            f.frame.0,
            f.raster_cycles,
            f.texture_cache.hit_ratio() * 100.0,
            match d.order {
                TileOrderKind::ZOrder => "z-order",
                TileOrderKind::Temperature => "temperature",
            },
            d.supertile_size,
            d.supertile_size,
            f.dram.total_accesses(),
        );
    }
    println!(
        "\nsequence: {:.0} cycles/frame avg, {:.1} FPS at {} MHz",
        seq.avg_frame_cycles(),
        cfg.fps(seq.avg_frame_cycles()),
        cfg.freq_mhz
    );
}
