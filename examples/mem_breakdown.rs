//! Diagnostic: compute/memory time split (Fig 6a methodology) plus DRAM behaviour
//! for a few benchmarks. Used to calibrate the workload suite.
//!
//! ```sh
//! cargo run --release --example mem_breakdown [FRAMES] [ABBREV...]
//! ```

use libra_repro::prelude::*;
use tbr_common::stats::memory_time_fraction;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let frames: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(3);
    let wanted: Vec<String> = args.iter().skip(1).cloned().collect();
    let screen = ScreenConfig::quarter_fhd();

    println!(
        "{:<6} {:>12} {:>12} {:>7} {:>9} {:>9} {:>9} {:>8} {:>9}",
        "bench", "real-cyc", "ideal-cyc", "mem%", "dram/f", "avg-lat", "max-lat", "cv", "frag/f"
    );
    for p in suite() {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == p.abbrev) {
            continue;
        }
        let real = simulate_sequence(
            &GpuConfig::baseline(screen),
            SchedulerKind::SingleZOrder,
            &p,
            frames,
        );
        let ideal = simulate_sequence(
            &GpuConfig::baseline(screen).with_ideal_memory(),
            SchedulerKind::SingleZOrder,
            &p,
            frames,
        );
        let f = real.frames.last().unwrap();
        println!(
            "{:<6} {:>12} {:>12} {:>6.1}% {:>9} {:>9.1} {:>9} {:>8.2} {:>9}",
            p.abbrev,
            real.total_cycles() / frames as u64,
            ideal.total_cycles() / frames as u64,
            memory_time_fraction(real.total_cycles(), ideal.total_cycles()) * 100.0,
            f.dram.total_accesses(),
            f.dram.avg_latency(),
            f.dram.max_latency,
            f.dram.interval_cv(),
            f.fragments,
        );
    }
}
