//! Scheduler calibration probe: compares dispatch policies on one benchmark and
//! reports the DRAM-balance metrics LIBRA targets (interval CV, peak).

use libra::adaptive::AdaptiveParams;
use libra_repro::prelude::*;

fn run(label: &str, kind: SchedulerKind, cfg: &GpuConfig, p: &BenchmarkProfile, frames: u32) {
    let s = simulate_sequence(cfg, kind, p, frames);
    let f = s.frames.last().unwrap();
    println!(
        "{:<26} cyc/f={:>8.0} texlat={:>6.1} hit={:>5.1}% dram/f={:>7.0} cv={:>5.2} peak={:>5}",
        label,
        s.avg_frame_cycles(),
        s.avg_texture_latency(),
        s.texture_hit_ratio() * 100.0,
        s.total_dram_accesses() as f64 / frames as f64,
        f.dram.interval_cv(),
        f.dram.peak_interval(),
    );
}

fn main() {
    let abbrev = std::env::args().nth(1).unwrap_or_else(|| "CCS".into());
    let frames: u32 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(10);
    let p = suite().into_iter().find(|x| x.abbrev == abbrev).unwrap();
    let screen = ScreenConfig::quarter_fhd();
    let base = GpuConfig::baseline(screen);
    let ptr = GpuConfig::libra(screen, 2);

    run("baseline 1RUx8", SchedulerKind::SingleZOrder, &base, &p, frames);
    run("PTR interleaved", SchedulerKind::InterleavedZOrder, &ptr, &p, frames);
    for size in [2u32, 4, 8, 16] {
        run(
            &format!("static supertile {size}x{size}"),
            SchedulerKind::StaticSupertile(size),
            &ptr,
            &p,
            frames,
        );
    }
    // Pure temperature order with a pinned supertile size (no adaptivity).
    for size in [2u32, 4, 8] {
        let params = AdaptiveParams {
            hit_ratio_threshold: 1.1,       // always below threshold -> temperature
            order_switch_threshold: 1.0e9,  // never switch
            resize_threshold: 1.0e9,        // never resize
            initial_supertile_size: size,
            ..AdaptiveParams::default()
        };
        run(
            &format!("temperature fixed {size}x{size}"),
            SchedulerKind::LibraWithParams(params),
            &ptr,
            &p,
            frames,
        );
    }
    run("LIBRA adaptive", SchedulerKind::Libra, &ptr, &p, frames);

    if std::env::args().nth(3).as_deref() == Some("mshr") {
        for m in [4u64, 8, 12, 16, 24, 32] {
            let mut b = base.clone();
            b.texture_cache.mshrs = m;
            let mut d = ptr.clone();
            d.texture_cache.mshrs = m;
            run(&format!("mshr{m} base"), SchedulerKind::SingleZOrder, &b, &p, frames);
            run(&format!("mshr{m} PTR"), SchedulerKind::InterleavedZOrder, &d, &p, frames);
            run(&format!("mshr{m} LIBRA"), SchedulerKind::Libra, &d, &p, frames);
        }
    }
}
// (appended) MSHR sweep when invoked with a third arg "mshr".
