//! Golden-snapshot tests: two `ScreenConfig::tiny()` workloads with every counter
//! that matters pinned per `SchedulerKind`, so perf-model drift fails loudly.
//!
//! The simulator is a deterministic integer machine: total cycles, DRAM accesses
//! and texture-L1 hit/access counts are exact, not statistical. Any intentional
//! change to the timing model, cache hierarchy, scheduler or scene synthesis WILL
//! move these numbers — that is the point. When that happens, re-derive the table
//! (the `print_current_goldens` helper below emits it in source form) and update
//! it in the same commit as the model change, with the delta called out in the
//! commit message.
//!
//! Workloads: `AAt` (2D, suite index 0) and `GrT` (3D, memory-intensive, suite
//! index 7) — one light and one heavy point, both on the dual-RU LIBRA config.

use libra_repro::prelude::*;

/// One pinned measurement: (workload, scheduler label, total cycles over 2 frames,
/// total DRAM accesses, texture-L1 hits, texture-L1 accesses).
const GOLDENS: &[(&str, &str, u64, u64, u64, u64)] = &[
    ("AAt", "SingleZOrder", 208141, 29864, 211716, 303585),
    ("AAt", "Scanline", 210682, 30159, 210968, 303585),
    ("AAt", "Hilbert", 208838, 29732, 211657, 303585),
    ("AAt", "StaticSupertile4", 209899, 29988, 213025, 303585),
    ("AAt", "Libra", 207800, 29265, 211828, 303585),
    ("GrT", "SingleZOrder", 546284, 100435, 485673, 721166),
    ("GrT", "Scanline", 556243, 101795, 485490, 721166),
    ("GrT", "Hilbert", 554120, 100374, 485012, 721166),
    ("GrT", "StaticSupertile4", 557281, 102296, 485877, 721166),
    ("GrT", "Libra", 545379, 98247, 485397, 721166),
];

const FRAMES: u32 = 2;

fn kinds() -> [(&'static str, SchedulerKind); 5] {
    [
        ("SingleZOrder", SchedulerKind::SingleZOrder),
        ("Scanline", SchedulerKind::Scanline),
        ("Hilbert", SchedulerKind::Hilbert),
        ("StaticSupertile4", SchedulerKind::StaticSupertile(4)),
        ("Libra", SchedulerKind::Libra),
    ]
}

fn workloads() -> Vec<BenchmarkProfile> {
    suite().into_iter().filter(|p| p.abbrev == "AAt" || p.abbrev == "GrT").collect()
}

fn measure(p: &BenchmarkProfile, kind: SchedulerKind) -> (u64, u64, u64, u64) {
    let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
    let s = simulate_sequence(&cfg, kind, p, FRAMES);
    (
        s.total_cycles(),
        s.total_dram_accesses(),
        s.frames.iter().map(|f| f.texture_cache.hits).sum(),
        s.frames.iter().map(|f| f.texture_cache.accesses).sum(),
    )
}

#[test]
fn golden_snapshots_hold_per_scheduler() {
    let profiles = workloads();
    assert_eq!(profiles.len(), 2, "golden workloads must exist in the suite");
    let mut drifted = Vec::new();
    for p in &profiles {
        for (label, kind) in kinds() {
            let (cycles, dram, hits, accesses) = measure(p, kind);
            let golden = GOLDENS
                .iter()
                .find(|g| g.0 == p.abbrev && g.1 == label)
                .unwrap_or_else(|| panic!("no golden row for {}/{label}", p.abbrev));
            if (cycles, dram, hits, accesses) != (golden.2, golden.3, golden.4, golden.5) {
                drifted.push(format!(
                    "{}/{label}: cycles {} (golden {}), dram {} (golden {}), \
                     tex-L1 {}/{} (golden {}/{})",
                    p.abbrev, cycles, golden.2, dram, golden.3, hits, accesses, golden.4, golden.5
                ));
            }
        }
    }
    assert!(
        drifted.is_empty(),
        "perf model drifted from the pinned goldens — if intentional, regenerate the \
         table with `cargo test print_current_goldens -- --ignored --nocapture`:\n{}",
        drifted.join("\n")
    );
}

#[test]
fn golden_hit_ratios_are_derived_consistently() {
    // The pinned hit/access integers imply the reported float hit ratio; guard the
    // derivation too so the ratio-reporting path can't silently change meaning.
    for g in GOLDENS {
        let expect = g.4 as f64 / g.5 as f64;
        assert!((0.5..1.0).contains(&expect), "{}/{} ratio {expect} implausible", g.0, g.1);
    }
    let p = &workloads()[0];
    let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
    let s = simulate_sequence(&cfg, SchedulerKind::Libra, p, FRAMES);
    let golden = GOLDENS.iter().find(|g| g.0 == p.abbrev && g.1 == "Libra").unwrap();
    assert!(
        (s.texture_hit_ratio() - golden.4 as f64 / golden.5 as f64).abs() < 1e-9,
        "texture_hit_ratio() no longer equals hits/accesses"
    );
}

/// Regenerates the `GOLDENS` table in source form after an intentional model
/// change: `cargo test print_current_goldens -- --ignored --nocapture`.
#[test]
#[ignore = "generator, not a check"]
fn print_current_goldens() {
    for p in &workloads() {
        for (label, kind) in kinds() {
            let (cycles, dram, hits, accesses) = measure(p, kind);
            println!("    ({:?}, {:?}, {cycles}, {dram}, {hits}, {accesses}),", p.abbrev, label);
        }
    }
}
