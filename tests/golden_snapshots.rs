//! Golden-snapshot tests: six `ScreenConfig::tiny()` workloads with every counter
//! that matters pinned per `SchedulerKind`, so perf-model drift fails loudly.
//!
//! The simulator is a deterministic integer machine: total cycles, DRAM accesses,
//! texture-L1 hit/access counts and the LIBRA scheduler's per-frame decisions
//! (traversal-order switches, supertile resizes) are exact, not statistical. Any
//! intentional change to the timing model, cache hierarchy, scheduler or scene
//! synthesis WILL move these numbers — that is the point. When that happens,
//! re-derive the table (the `print_current_goldens` helper below emits it in
//! source form, sorted by workload then scheduler) and update it in the same
//! commit as the model change, with the delta called out in the commit message.
//!
//! Workloads span both halves of the suite: `AAt`/`CCS`/`GrT` from the
//! memory-intensive half and `SuS`/`AnB`/`GDL` from the compute half, all on the
//! dual-RU LIBRA config.

use libra_repro::prelude::*;

/// The pinned workloads, alphabetical — the order the table is emitted in.
const WORKLOAD_ABBREVS: [&str; 6] = ["AAt", "AnB", "CCS", "GDL", "GrT", "SuS"];

/// One pinned measurement: (workload, scheduler label, total cycles over 2
/// frames, total DRAM accesses, texture-L1 hits, texture-L1 accesses,
/// traversal-order switches, supertile resizes).
///
/// The last two pin the LIBRA feedback loop's *decisions*, not just their timing
/// consequences: a frame-over-frame change of the planned traversal order counts
/// one order switch, a change of the planned supertile edge counts one resize.
/// Static schedulers must always show 0/0.
type GoldenRow = (&'static str, &'static str, u64, u64, u64, u64, u64, u64);

const GOLDENS: &[GoldenRow] = &[
    ("AAt", "Hilbert", 208838, 29732, 211657, 303585, 0, 0),
    ("AAt", "Libra", 207800, 29265, 211828, 303585, 1, 1),
    ("AAt", "Scanline", 210682, 30159, 210968, 303585, 0, 0),
    ("AAt", "SingleZOrder", 208141, 29864, 211716, 303585, 0, 0),
    (
        "AAt",
        "StaticSupertile4",
        209899,
        29988,
        213025,
        303585,
        0,
        0,
    ),
    ("AnB", "Hilbert", 51064, 5824, 46861, 53770, 0, 0),
    ("AnB", "Libra", 51650, 5840, 46618, 53770, 0, 0),
    ("AnB", "Scanline", 51697, 5871, 46758, 53770, 0, 0),
    ("AnB", "SingleZOrder", 51650, 5840, 46618, 53770, 0, 0),
    ("AnB", "StaticSupertile4", 53088, 5846, 48190, 53770, 0, 0),
    ("CCS", "Hilbert", 420563, 78651, 332176, 512077, 0, 0),
    ("CCS", "Libra", 420898, 78190, 332199, 512077, 1, 1),
    ("CCS", "Scanline", 427548, 80489, 332169, 512077, 0, 0),
    ("CCS", "SingleZOrder", 417348, 79147, 331999, 512077, 0, 0),
    (
        "CCS",
        "StaticSupertile4",
        434262,
        80313,
        332624,
        512077,
        0,
        0,
    ),
    ("GDL", "Hilbert", 80075, 6656, 57220, 68378, 0, 0),
    ("GDL", "Libra", 78747, 6722, 57673, 68378, 0, 0),
    ("GDL", "Scanline", 81029, 6773, 57493, 68378, 0, 0),
    ("GDL", "SingleZOrder", 78747, 6722, 57673, 68378, 0, 0),
    ("GDL", "StaticSupertile4", 78105, 6716, 59063, 68378, 0, 0),
    ("GrT", "Hilbert", 554120, 100374, 485012, 721166, 0, 0),
    ("GrT", "Libra", 545379, 98247, 485397, 721166, 1, 1),
    ("GrT", "Scanline", 556243, 101795, 485490, 721166, 0, 0),
    ("GrT", "SingleZOrder", 546284, 100435, 485673, 721166, 0, 0),
    (
        "GrT",
        "StaticSupertile4",
        557281,
        102296,
        485877,
        721166,
        0,
        0,
    ),
    ("SuS", "Hilbert", 274930, 41373, 292202, 417395, 0, 0),
    ("SuS", "Libra", 273679, 40877, 293320, 417395, 1, 1),
    ("SuS", "Scanline", 285090, 42328, 292220, 417395, 0, 0),
    ("SuS", "SingleZOrder", 275170, 41662, 292984, 417395, 0, 0),
    (
        "SuS",
        "StaticSupertile4",
        277310,
        41932,
        293278,
        417395,
        0,
        0,
    ),
];

const FRAMES: u32 = 2;

/// Scheduler variants under test, alphabetical by label (the table sort order).
fn kinds() -> [(&'static str, SchedulerKind); 5] {
    [
        ("Hilbert", SchedulerKind::Hilbert),
        ("Libra", SchedulerKind::Libra),
        ("Scanline", SchedulerKind::Scanline),
        ("SingleZOrder", SchedulerKind::SingleZOrder),
        ("StaticSupertile4", SchedulerKind::StaticSupertile(4)),
    ]
}

fn workloads() -> Vec<BenchmarkProfile> {
    let mut v: Vec<BenchmarkProfile> = suite()
        .into_iter()
        .filter(|p| WORKLOAD_ABBREVS.contains(&p.abbrev))
        .collect();
    v.sort_by(|a, b| a.abbrev.cmp(b.abbrev));
    v
}

/// Runs one (workload, scheduler) cell and returns the full golden tuple tail:
/// (cycles, dram, tex hits, tex accesses, order switches, supertile resizes).
///
/// `mode` pins the raster event-loop driver for the run (`None` uses the
/// default). Every driver must hit the *same* goldens — the table pins the
/// perf model, not the event-core implementation.
fn measure_with(
    p: &BenchmarkProfile,
    kind: SchedulerKind,
    mode: Option<(EventLoopMode, usize)>,
) -> (u64, u64, u64, u64, u64, u64) {
    if let Some((m, threads)) = mode {
        event_loop::set_mode(Some(m));
        event_loop::set_sim_threads(Some(threads));
    }
    let out = measure(p, kind);
    if mode.is_some() {
        event_loop::set_sim_threads(None);
        event_loop::set_mode(None);
    }
    out
}

fn measure(p: &BenchmarkProfile, kind: SchedulerKind) -> (u64, u64, u64, u64, u64, u64) {
    let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
    let mut sim = GpuSimulator::new(cfg, kind);
    let s = sim.render_sequence(p, FRAMES);
    let gauge = |name: &str, frame: u32| -> u64 {
        let label = frame.to_string();
        sim.metrics()
            .gauge_value(name, &[("frame", &label)])
            .unwrap_or_else(|| panic!("missing {name} gauge for frame {frame}")) as u64
    };
    let mut order_switches = 0;
    let mut supertile_resizes = 0;
    for f in 1..FRAMES {
        if gauge("plan_order_temperature", f) != gauge("plan_order_temperature", f - 1) {
            order_switches += 1;
        }
        if gauge("plan_supertile_size", f) != gauge("plan_supertile_size", f - 1) {
            supertile_resizes += 1;
        }
    }
    (
        s.total_cycles(),
        s.total_dram_accesses(),
        s.frames.iter().map(|f| f.texture_cache.hits).sum(),
        s.frames.iter().map(|f| f.texture_cache.accesses).sum(),
        order_switches,
        supertile_resizes,
    )
}

#[test]
fn golden_snapshots_hold_per_scheduler() {
    let profiles = workloads();
    assert_eq!(
        profiles.len(),
        6,
        "golden workloads must exist in the suite"
    );
    assert_eq!(
        GOLDENS.len(),
        profiles.len() * kinds().len(),
        "one golden row per cell"
    );
    let mut drifted = Vec::new();
    for p in &profiles {
        for (label, kind) in kinds() {
            let measured = measure(p, kind);
            let golden = GOLDENS
                .iter()
                .find(|g| g.0 == p.abbrev && g.1 == label)
                .unwrap_or_else(|| panic!("no golden row for {}/{label}", p.abbrev));
            if measured != (golden.2, golden.3, golden.4, golden.5, golden.6, golden.7) {
                let (cycles, dram, hits, accesses, switches, resizes) = measured;
                drifted.push(format!(
                    "{}/{label}: cycles {} (golden {}), dram {} (golden {}), \
                     tex-L1 {}/{} (golden {}/{}), order switches {} (golden {}), \
                     supertile resizes {} (golden {})",
                    p.abbrev,
                    cycles,
                    golden.2,
                    dram,
                    golden.3,
                    hits,
                    accesses,
                    golden.4,
                    golden.5,
                    switches,
                    golden.6,
                    resizes,
                    golden.7
                ));
            }
        }
    }
    assert!(
        drifted.is_empty(),
        "perf model drifted from the pinned goldens — if intentional, regenerate the \
         table with `cargo test print_current_goldens -- --ignored --nocapture`:\n{}",
        drifted.join("\n")
    );
}

/// The six pinned workloads again, under the intra-frame parallel event core
/// (`--event-loop par --sim-threads 4`): the parallel driver must reproduce
/// the exact serial goldens — cycles, DRAM traffic, cache counters, and the
/// LIBRA feedback loop's decisions — at a worker count that actually spawns
/// threads. A drift *here* with `golden_snapshots_hold_per_scheduler` green
/// means the parallel driver broke bit-identity; fix the driver, never the
/// table.
#[test]
fn golden_snapshots_hold_under_the_parallel_core() {
    let profiles = workloads();
    let mut drifted = Vec::new();
    for p in &profiles {
        for (label, kind) in kinds() {
            let measured = measure_with(p, kind, Some((EventLoopMode::Par, 4)));
            let golden = GOLDENS
                .iter()
                .find(|g| g.0 == p.abbrev && g.1 == label)
                .unwrap_or_else(|| panic!("no golden row for {}/{label}", p.abbrev));
            if measured != (golden.2, golden.3, golden.4, golden.5, golden.6, golden.7) {
                drifted.push(format!(
                    "{}/{label}: par@4 measured {:?}",
                    p.abbrev, measured
                ));
            }
        }
    }
    assert!(
        drifted.is_empty(),
        "the parallel event core drifted from the pinned serial goldens:\n{}",
        drifted.join("\n")
    );
}

#[test]
fn static_schedulers_never_replan() {
    // Only the LIBRA feedback loop may switch traversal order or resize
    // supertiles between frames; every other scheduler's plan is fixed.
    for g in GOLDENS {
        if g.1 != "Libra" {
            assert_eq!(
                (g.6, g.7),
                (0, 0),
                "{}/{} is a static scheduler but its goldens record plan changes",
                g.0,
                g.1
            );
        }
    }
}

#[test]
fn golden_hit_ratios_are_derived_consistently() {
    // The pinned hit/access integers imply the reported float hit ratio; guard the
    // derivation too so the ratio-reporting path can't silently change meaning.
    for g in GOLDENS {
        let expect = g.4 as f64 / g.5 as f64;
        assert!(
            (0.0..1.0).contains(&expect),
            "{}/{} ratio {expect} implausible",
            g.0,
            g.1
        );
    }
    let p = &workloads()[0];
    let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
    let s = simulate_sequence(&cfg, SchedulerKind::Libra, p, FRAMES);
    let golden = GOLDENS
        .iter()
        .find(|g| g.0 == p.abbrev && g.1 == "Libra")
        .unwrap();
    assert!(
        (s.texture_hit_ratio() - golden.4 as f64 / golden.5 as f64).abs() < 1e-9,
        "texture_hit_ratio() no longer equals hits/accesses"
    );
}

/// Regenerates the `GOLDENS` table in source form after an intentional model
/// change: `cargo test print_current_goldens -- --ignored --nocapture`.
/// Rows come out sorted by (workload, scheduler), matching the table above.
#[test]
#[ignore = "generator, not a check"]
fn print_current_goldens() {
    for p in &workloads() {
        for (label, kind) in kinds() {
            let (cycles, dram, hits, accesses, switches, resizes) = measure(p, kind);
            println!(
                "    ({:?}, {:?}, {cycles}, {dram}, {hits}, {accesses}, {switches}, {resizes}),",
                p.abbrev, label
            );
        }
    }
}
