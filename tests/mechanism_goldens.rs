//! Golden-snapshot tests for the mechanism axes: three tiny workloads under
//! Rendering Elimination, WaSP, and their composition, with every mechanism
//! decision counter pinned exactly.
//!
//! The mechanisms are deterministic integer machinery like the rest of the
//! simulator: how many tiles RE checks and discards, how many signature bytes
//! it hashes, and how many tiles WaSP engages/reorders (and how many spearhead
//! warps it issues) are exact per (workload, mechanism) cell. Any intentional
//! change to the signature stream, the RE cache, or the WaSP policy WILL move
//! these numbers; regenerate the table with the ignored
//! `print_current_mechanism_goldens` test and update it in the same commit.

use libra_repro::prelude::*;

const FRAMES: u32 = 3;
// CCS scrolls its full-screen background every frame (no tile can repeat
// bit-exactly); CuT and LuL are static-camera titles where only the jittering
// hot clusters change — the two regimes RE must tell apart.
const WORKLOAD_ABBREVS: [&str; 3] = ["CCS", "CuT", "LuL"];
const MECHANISMS: [&str; 3] = ["re", "wasp", "re+wasp"];

/// One pinned cell: (workload, mechanism, total cycles, total DRAM accesses,
/// re tiles checked, re tiles discarded, re signature bytes, wasp engaged
/// tiles, wasp spearhead warps, wasp reordered tiles). Counters are summed
/// over the 3 frames; the mechanism that is off in a cell pins 0s.
type GoldenRow = (&'static str, &'static str, u64, u64, u64, u64, u64, u64, u64, u64);

const GOLDENS: &[GoldenRow] = &[
    ("CCS", "re", 621782, 113644, 64, 0, 1376232, 0, 0, 0),
    ("CCS", "wasp", 729728, 114128, 0, 0, 0, 96, 7290, 96),
    ("CCS", "re+wasp", 729728, 114128, 64, 0, 1376232, 96, 7290, 96),
    ("CuT", "re", 63669, 6712, 64, 18, 137280, 0, 0, 0),
    ("CuT", "wasp", 69331, 7887, 0, 0, 0, 96, 969, 96),
    ("CuT", "re+wasp", 65609, 6710, 64, 18, 137280, 78, 854, 78),
    ("LuL", "re", 34438, 4891, 64, 34, 81752, 0, 0, 0),
    ("LuL", "wasp", 45578, 7065, 0, 0, 0, 56, 365, 56),
    ("LuL", "re+wasp", 35180, 4890, 64, 34, 81752, 46, 371, 46),
];

fn workloads() -> Vec<BenchmarkProfile> {
    let mut v: Vec<BenchmarkProfile> =
        suite().into_iter().filter(|p| WORKLOAD_ABBREVS.contains(&p.abbrev)).collect();
    v.sort_by(|a, b| a.abbrev.cmp(b.abbrev));
    v
}

fn measure(p: &BenchmarkProfile, mech: MechanismSpec) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
    let mut sim = GpuSimulator::with_mechanism(cfg, SchedulerKind::Libra, mech);
    let s = sim.render_sequence(p, FRAMES);
    let counter_sum = |name: &str| -> u64 {
        (0..FRAMES)
            .map(|f| {
                let label = f.to_string();
                sim.metrics().counter_value(name, &[("frame", &label)]).unwrap_or(0)
            })
            .sum()
    };
    (
        s.total_cycles(),
        s.total_dram_accesses(),
        counter_sum("re_tiles_checked"),
        counter_sum("re_tiles_discarded"),
        counter_sum("re_signature_bytes"),
        counter_sum("wasp_engaged_tiles"),
        counter_sum("wasp_spearhead_warps"),
        counter_sum("wasp_reordered_tiles"),
    )
}

#[test]
fn mechanism_goldens_hold() {
    let profiles = workloads();
    assert_eq!(profiles.len(), 3, "golden workloads must exist in the suite");
    assert_eq!(GOLDENS.len(), profiles.len() * MECHANISMS.len(), "one golden row per cell");
    let mut drifted = Vec::new();
    for p in &profiles {
        for name in MECHANISMS {
            let mech = MechanismSpec::parse(name).unwrap();
            let m = measure(p, mech);
            let g = GOLDENS
                .iter()
                .find(|g| g.0 == p.abbrev && g.1 == name)
                .unwrap_or_else(|| panic!("no golden row for {}/{name}", p.abbrev));
            if m != (g.2, g.3, g.4, g.5, g.6, g.7, g.8, g.9) {
                drifted.push(format!(
                    "{}/{name}: cycles {} (golden {}), dram {} (golden {}), \
                     re checked/discarded/bytes {}/{}/{} (golden {}/{}/{}), \
                     wasp engaged/spearhead/reordered {}/{}/{} (golden {}/{}/{})",
                    p.abbrev, m.0, g.2, m.1, g.3, m.2, m.3, m.4, g.4, g.5, g.6, m.5, m.6, m.7,
                    g.7, g.8, g.9
                ));
            }
        }
    }
    assert!(
        drifted.is_empty(),
        "mechanism counters drifted from the pinned goldens — if intentional, regenerate \
         with `cargo test print_current_mechanism_goldens -- --ignored --nocapture`:\n{}",
        drifted.join("\n")
    );
}

/// Structural invariants the pinned numbers must respect, so a regenerated
/// table can't silently encode a broken mechanism.
#[test]
fn mechanism_goldens_are_internally_consistent() {
    let tiles_per_frame = ScreenConfig::tiny().num_tiles() as u64;
    for g in GOLDENS {
        let has_re = g.1.contains("re");
        let has_wasp = g.1.contains("wasp");
        if has_re {
            // Frame 0 has no predecessor: only FRAMES-1 frames can match.
            assert_eq!(g.4, (FRAMES as u64 - 1) * tiles_per_frame, "{}/{}: re checks", g.0, g.1);
            if matches!(g.0, "CuT" | "LuL") {
                // Static-camera titles: most of the screen repeats bit-exactly.
                assert!(g.5 > 0, "{}/{}: RE found nothing on a static scene", g.0, g.1);
            } else {
                // Full-screen scrolling touches every tile; an honest RE
                // discards nothing rather than inventing coherence.
                assert_eq!(g.5, 0, "{}/{}: RE discarded under full-screen scroll", g.0, g.1);
            }
            assert!(g.5 <= g.4, "{}/{}: discards exceed checks", g.0, g.1);
            assert!(g.6 > 0, "{}/{}: signature bytes must be accounted", g.0, g.1);
        } else {
            assert_eq!((g.4, g.5, g.6), (0, 0, 0), "{}/{}: RE counters leak", g.0, g.1);
        }
        if has_wasp {
            assert!(g.7 > 0, "{}/{}: WaSP never engaged", g.0, g.1);
            assert!(g.8 >= g.7, "{}/{}: engaged tiles outnumber spearhead warps", g.0, g.1);
            assert!(g.9 <= g.7, "{}/{}: reordered tiles exceed engaged tiles", g.0, g.1);
        } else {
            assert_eq!((g.7, g.8, g.9), (0, 0, 0), "{}/{}: WaSP counters leak", g.0, g.1);
        }
    }
}

/// RE + WaSP compose: the pinned composed row must discard exactly as many
/// tiles as RE alone (WaSP never changes *what* renders, only warp order).
#[test]
fn composition_discards_match_re_alone() {
    for p in WORKLOAD_ABBREVS {
        let re = GOLDENS.iter().find(|g| g.0 == p && g.1 == "re").unwrap();
        let both = GOLDENS.iter().find(|g| g.0 == p && g.1 == "re+wasp").unwrap();
        assert_eq!(re.5, both.5, "{p}: composition changed RE's discard decisions");
        assert_eq!(re.6, both.6, "{p}: composition changed RE's signature bytes");
    }
}

/// Regenerates the `GOLDENS` table in source form after an intentional model
/// change: `cargo test print_current_mechanism_goldens -- --ignored --nocapture`.
#[test]
#[ignore = "generator, not a check"]
fn print_current_mechanism_goldens() {
    for p in &workloads() {
        for name in MECHANISMS {
            let mech = MechanismSpec::parse(name).unwrap();
            let (cycles, dram, rc, rd, rb, we, ws, wr) = measure(p, mech);
            println!(
                "    ({:?}, {:?}, {cycles}, {dram}, {rc}, {rd}, {rb}, {we}, {ws}, {wr}),",
                p.abbrev, name
            );
        }
    }
}
