//! Conformance suite for the `libra-wire-v1` campaign-service protocol.
//!
//! Property tests (seeded in-repo runner, see `tests/support/mod.rs`): every
//! message type survives an encode → decode round trip bit-exactly, for
//! randomized payloads including hostile strings (quotes, backslashes,
//! newlines, unicode). Rejection tests: truncated frames, unknown type tags,
//! version-stamp mismatches, and oversized frames all fail loudly instead of
//! mis-parsing.

#[allow(dead_code)]
mod support;

use std::io::Cursor;

use support::{check, Gen};
use tbr_common::hostprof::HostMeta;
use tbr_common::wire::{write_frame, FrameReader};
use tbr_sim::wire::{JobSpec, Message, WIRE_VERSION};
use tbr_sim::{Record, RecordOutcome};

/// A string with protocol-hostile characters: quotes, backslashes, control
/// characters, unicode — everything `escape_into` must keep frame-safe.
fn gen_string(g: &mut Gen) -> String {
    const PALETTE: &[char] =
        &['a', 'Z', '0', ' ', '"', '\\', '\n', '\t', '{', '}', ',', ':', 'δ', '⚙', '\u{1}'];
    (0..g.usize(0, 12)).map(|_| PALETTE[g.usize(0, PALETTE.len())]).collect()
}

fn gen_u64(g: &mut Gen) -> u64 {
    ((g.any_u32() as u64) << 32) | g.any_u32() as u64
}

/// Cycle counts ride checkpoint records as JSON *numbers*, whose exactness
/// domain is ≤ 2^53 (documented in the checkpoint schema); stay inside it.
fn gen_cycles(g: &mut Gen) -> u64 {
    gen_u64(g) >> 11
}

fn gen_host(g: &mut Gen) -> HostMeta {
    HostMeta { cores: g.usize(1, 512), git_rev: gen_string(g), utc: gen_string(g) }
}

fn gen_spec(g: &mut Gen) -> JobSpec {
    let schedulers = ["z", "scanline", "hilbert", "static4", "libra"];
    let screens = ["tiny", "quarter", "fhd"];
    let mechanisms = ["none", "re", "wasp", "re+wasp", "re-oracle", "re-oracle+wasp"];
    JobSpec {
        seed: gen_u64(g),
        scheduler: schedulers[g.usize(0, schedulers.len())].to_string(),
        mechanism: mechanisms[g.usize(0, mechanisms.len())].to_string(),
        frames: g.u32(1, 16),
        rus: g.usize(1, 5),
        cores: g.usize(1, 9),
        screen: screens[g.usize(0, screens.len())].to_string(),
        ideal_memory: g.u32(0, 2) == 1,
        take: if g.u32(0, 2) == 1 { Some(g.usize(1, 33)) } else { None },
    }
}

/// A random checkpoint record. `Done` outcomes reuse `stats` (one real
/// simulated sequence, captured once) because stats round-tripping already has
/// its own exactness suite — here it only needs to ride the wire.
fn gen_record(g: &mut Gen, stats: &tbr_common::stats::SequenceStats) -> Record {
    let outcome = match g.u32(0, 3) {
        0 => RecordOutcome::Done { effective_seed: gen_u64(g), stats: stats.clone() },
        1 => RecordOutcome::Failed { attempts: g.u32(1, 5), panic_msg: gen_string(g) },
        _ => RecordOutcome::TimedOut {
            attempts: g.u32(1, 5),
            budget_cycles: gen_cycles(g),
            spent_cycles: gen_cycles(g),
        },
    };
    Record {
        job: g.usize(0, 1024),
        abbrev: gen_string(g),
        scheduler: gen_string(g),
        outcome,
    }
}

fn gen_message(g: &mut Gen, stats: &tbr_common::stats::SequenceStats) -> Message {
    match g.u32(0, 9) {
        0 => Message::Hello { role: gen_string(g), host: gen_host(g) },
        1 => Message::Submit { spec: gen_spec(g) },
        2 => Message::Accepted { jobs: g.usize(0, 4096), fingerprint: gen_u64(g) },
        3 => Message::Progress {
            job: g.usize(0, 4096),
            done: g.usize(0, 4096),
            total: g.usize(0, 4096),
            abbrev: gen_string(g),
            scheduler: gen_string(g),
            ok: g.u32(0, 2) == 1,
        },
        4 => Message::Report {
            fingerprint: gen_u64(g),
            summary: gen_string(g),
            crashes: g.usize(0, 16),
            hosts: (0..g.usize(0, 4)).map(|_| gen_host(g)).collect(),
            report_json: gen_string(g),
        },
        5 => Message::Error { message: gen_string(g) },
        6 => Message::Assign { job: g.usize(0, 4096), spec: gen_spec(g) },
        7 => Message::JobResult { record: gen_record(g, stats), host: gen_host(g) },
        _ => Message::Shutdown,
    }
}

/// One real (tiny) simulated sequence for `Done` payloads.
fn real_stats() -> tbr_common::stats::SequenceStats {
    use tbr_common::config::{GpuConfig, ScreenConfig};
    use tbr_sim::{simulate_sequence, SchedulerKind};
    let profile = tbr_workloads::suite().remove(0);
    simulate_sequence(&GpuConfig::libra(ScreenConfig::tiny(), 2), SchedulerKind::Libra, &profile, 1)
}

#[test]
fn every_message_type_round_trips() {
    let stats = real_stats();
    check("every_message_type_round_trips", 192, |g| {
        let msg = gen_message(g, &stats);
        let line = msg.encode();
        ensure!(
            !line.contains('\n'),
            "encoded frame contains a literal newline: {line:?}"
        );
        let back = Message::decode(&line)
            .map_err(|e| format!("decode failed for {line:?}: {e}"))?;
        ensure_eq!(back, msg);
        // A second encode is byte-stable (decode → encode → decode fixpoint).
        ensure_eq!(back.encode(), line);
        Ok(())
    });
}

#[test]
fn round_trip_through_the_framing_layer() {
    let stats = real_stats();
    check("round_trip_through_the_framing_layer", 48, |g| {
        let msgs: Vec<Message> = (0..g.usize(1, 6)).map(|_| gen_message(g, &stats)).collect();
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, &m.encode(), "test").map_err(|e| e.to_string())?;
        }
        let mut reader = FrameReader::new(Cursor::new(buf));
        for m in &msgs {
            let line = reader
                .read_frame("test")
                .map_err(|e| e.to_string())?
                .ok_or("premature EOF")?;
            ensure_eq!(Message::decode(&line).map_err(|e| e.to_string())?, *m);
        }
        ensure!(reader.read_frame("test").map_err(|e| e.to_string())?.is_none());
        Ok(())
    });
}

#[test]
fn truncated_frames_never_decode() {
    let stats = real_stats();
    check("truncated_frames_never_decode", 64, |g| {
        let line = gen_message(g, &stats).encode();
        // Every proper prefix is unbalanced JSON; sample a handful of cut
        // points (always including the empty and the almost-complete frame).
        // Cuts count chars, not bytes, so prefixes stay valid UTF-8.
        let nchars = line.chars().count();
        let mut cuts = vec![0, nchars - 1];
        for _ in 0..6 {
            cuts.push(g.usize(0, nchars));
        }
        for cut in cuts {
            let prefix: String = line.chars().take(cut).collect();
            if prefix.len() == line.len() {
                continue; // not a proper prefix
            }
            ensure!(
                Message::decode(&prefix).is_err(),
                "prefix of {} bytes decoded: {prefix:?}",
                prefix.len()
            );
        }
        Ok(())
    });
}

#[test]
fn unknown_type_tags_are_rejected() {
    let line = format!("{{\"v\": \"{WIRE_VERSION}\", \"type\": \"gossip\"}}");
    let e = Message::decode(&line).unwrap_err();
    assert!(e.contains("unknown type `gossip`"), "{e}");

    let missing = format!("{{\"v\": \"{WIRE_VERSION}\"}}");
    let e = Message::decode(&missing).unwrap_err();
    assert!(e.contains("type"), "{e}");
}

#[test]
fn version_mismatches_are_rejected() {
    for bad in ["libra-wire-v0", "libra-wire-v2", "", "LIBRA-WIRE-V1"] {
        let line = format!("{{\"v\": \"{bad}\", \"type\": \"shutdown\"}}");
        let e = Message::decode(&line).unwrap_err();
        assert!(e.contains("version"), "`{bad}`: {e}");
    }
    // And a frame with no version stamp at all.
    let e = Message::decode("{\"type\": \"shutdown\"}").unwrap_err();
    assert!(e.contains("`v`"), "{e}");
}

#[test]
fn oversized_frames_are_rejected_by_the_reader() {
    // A report frame comfortably exceeds a 64-byte cap; the reader must
    // reject it during accumulation rather than buffering it whole.
    let msg = Message::Report {
        fingerprint: 0xdead_beef,
        summary: "x".repeat(256),
        crashes: 0,
        hosts: vec![],
        report_json: String::new(),
    };
    let mut buf = Vec::new();
    write_frame(&mut buf, &msg.encode(), "test").unwrap();
    let mut reader = FrameReader::with_limit(Cursor::new(buf), 64);
    let e = reader.read_frame("test").unwrap_err();
    assert!(e.contains("oversized frame"), "{e}");

    // The default cap admits it fine.
    let mut buf = Vec::new();
    write_frame(&mut buf, &msg.encode(), "test").unwrap();
    let line = FrameReader::new(Cursor::new(buf)).read_frame("test").unwrap().unwrap();
    assert_eq!(Message::decode(&line).unwrap(), msg);
}

#[test]
fn hex_seeds_survive_above_2_to_53() {
    // JSON numbers round above 2^53 in the in-repo parser; 64-bit values must
    // travel as hex strings. Spot-check the extremes.
    for seed in [u64::MAX, 1 << 63, (1 << 53) + 1, 0] {
        let msg = Message::Accepted { jobs: 1, fingerprint: seed };
        match Message::decode(&msg.encode()).unwrap() {
            Message::Accepted { fingerprint, .. } => assert_eq!(fingerprint, seed),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}

#[test]
fn job_spec_rejects_nonsense() {
    let base = JobSpec { take: Some(4), ..JobSpec::default() };
    assert!(base.to_campaign().is_ok());
    let bad_sched = JobSpec { scheduler: "greedy".into(), ..base.clone() };
    assert!(bad_sched.to_campaign().unwrap_err().contains("unknown scheduler"));
    let bad_screen = JobSpec { screen: "imax".into(), ..base.clone() };
    assert!(bad_screen.to_campaign().unwrap_err().contains("unknown screen"));
    let bad_take = JobSpec { take: Some(0), ..base };
    assert!(bad_take.to_campaign().unwrap_err().contains("take"));
}

#[test]
fn job_spec_rejects_unknown_mechanisms() {
    let bad = JobSpec { mechanism: "turbo".into(), take: Some(4), ..JobSpec::default() };
    let e = bad.to_campaign().unwrap_err();
    assert!(e.contains("mechanism") && e.contains("turbo"), "{e}");
    let dup = JobSpec { mechanism: "re+re".into(), take: Some(4), ..JobSpec::default() };
    assert!(dup.to_campaign().is_err());
}

/// A submit frame captured before the mechanism axis existed — no `mechanism`
/// key in the spec object — must decode to the default (mechanism-free) spec,
/// and today's encoder must reproduce that frame byte-identically.
#[test]
fn pre_mechanism_payloads_still_decode_and_re_encode() {
    let legacy = format!(
        "{{\"v\": \"{WIRE_VERSION}\", \"type\": \"submit\", \"spec\": \
         {{\"seed\": \"0x7\", \"scheduler\": \"libra\", \"frames\": 2, \"rus\": 2, \
         \"cores\": 4, \"screen\": \"tiny\", \"ideal_memory\": false, \"take\": 4}}}}"
    );
    let msg = Message::decode(&legacy).expect("legacy submit frame must decode");
    let Message::Submit { spec } = &msg else { panic!("wrong variant: {msg:?}") };
    assert_eq!(spec.mechanism, "none");
    assert_eq!(spec.seed, 7);
    assert_eq!(spec.take, Some(4));
    // The default axis is omitted on encode, so the round trip is byte-exact:
    // an updated endpoint talking to a pre-mechanism peer emits the old bytes.
    assert_eq!(msg.encode(), legacy);
}

/// Fingerprints of default-mechanism specs are pinned to their pre-mechanism
/// values: a checkpoint or coordinator from before the axis existed must keep
/// matching. (Captured by running `to_campaign().fingerprint()` at the commit
/// immediately before the mechanism field was introduced.)
#[test]
fn default_mechanism_fingerprints_are_unchanged() {
    const DEFAULT_SPEC_FP: u64 = 0x3eea63b6adfc0de6;
    const TINY_SPEC_FP: u64 = 0x48e959b221d4060b;

    let (_, c) = JobSpec::default().to_campaign().unwrap();
    assert_eq!(c.fingerprint(), DEFAULT_SPEC_FP, "default spec fingerprint drifted");

    let tiny = JobSpec {
        seed: 7,
        frames: 2,
        screen: "tiny".into(),
        rus: 2,
        take: Some(4),
        ..JobSpec::default()
    };
    let (_, c) = tiny.to_campaign().unwrap();
    assert_eq!(c.fingerprint(), TINY_SPEC_FP, "tiny spec fingerprint drifted");

    // A non-default mechanism is a genuinely different sweep and must not
    // collide with the legacy fingerprint (that would adopt wrong results).
    for mech in ["re", "wasp", "re+wasp", "re-oracle"] {
        let spec = JobSpec {
            seed: 7,
            frames: 2,
            screen: "tiny".into(),
            rus: 2,
            take: Some(4),
            mechanism: mech.into(),
            ..JobSpec::default()
        };
        let (_, c) = spec.to_campaign().unwrap();
        assert_ne!(c.fingerprint(), TINY_SPEC_FP, "mechanism `{mech}` collided");
    }
}

#[test]
fn job_spec_fingerprint_is_spec_deterministic() {
    // Two endpoints rebuilding the same spec must agree on the fingerprint;
    // different specs must disagree (that is the submit-time skew check).
    let spec = JobSpec { take: Some(3), frames: 1, screen: "tiny".into(), ..JobSpec::default() };
    let (_, a) = spec.to_campaign().unwrap();
    let (_, b) = spec.to_campaign().unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.len(), 3);
    let other = JobSpec { seed: 7, ..spec };
    let (_, c) = other.to_campaign().unwrap();
    assert_ne!(a.fingerprint(), c.fingerprint());
}
