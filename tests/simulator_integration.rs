//! Whole-simulator integration tests: invariants that must hold across schedulers,
//! configurations and frames.

use libra_repro::prelude::*;
use tbr_energy::EnergyModel;

fn kinds() -> Vec<(&'static str, SchedulerKind)> {
    vec![
        ("single-z", SchedulerKind::SingleZOrder),
        ("interleaved", SchedulerKind::InterleavedZOrder),
        ("scanline", SchedulerKind::Scanline),
        ("hilbert", SchedulerKind::Hilbert),
        ("static-4", SchedulerKind::StaticSupertile(4)),
        ("libra", SchedulerKind::Libra),
    ]
}

#[test]
fn schedulers_do_identical_functional_work() {
    let screen = ScreenConfig::tiny();
    let cfg = GpuConfig::libra(screen, 2);
    let p = suite().remove(4); // CCS
    let reference = simulate_sequence(&cfg, SchedulerKind::InterleavedZOrder, &p, 2);
    for (name, kind) in kinds() {
        let s = simulate_sequence(&cfg, kind, &p, 2);
        for (a, b) in reference.frames.iter().zip(&s.frames) {
            assert_eq!(a.fragments, b.fragments, "{name}: fragment count differs");
            assert_eq!(a.primitives, b.primitives, "{name}: primitive count differs");
            assert_eq!(a.instructions, b.instructions, "{name}: instruction count differs");
            // DRAM write volume is dominated by the framebuffer flush (64 lines per
            // tile, scheduler-independent); only cache-warmth effects on Parameter-
            // Buffer write-allocates may differ, and those are small.
            let (lo, hi) = (a.dram.writes.min(b.dram.writes), a.dram.writes.max(b.dram.writes));
            assert!(
                hi - lo <= hi / 10,
                "{name}: write volume diverged: {} vs {}",
                a.dram.writes,
                b.dram.writes
            );
        }
    }
}

#[test]
fn every_scheduler_is_deterministic() {
    let screen = ScreenConfig::tiny();
    let cfg = GpuConfig::libra(screen, 2);
    let p = suite().remove(14); // SuS
    for (name, kind) in kinds() {
        let a = simulate_sequence(&cfg, kind, &p, 3);
        let b = simulate_sequence(&cfg, kind, &p, 3);
        assert_eq!(a, b, "{name} is not deterministic");
    }
}

#[test]
fn more_raster_units_never_lose_work() {
    let screen = ScreenConfig::tiny();
    let p = suite().remove(0);
    let one = simulate_sequence(&GpuConfig::libra(screen, 1), SchedulerKind::Libra, &p, 1);
    for n in 2..=4usize {
        let multi = simulate_sequence(&GpuConfig::libra(screen, n), SchedulerKind::Libra, &p, 1);
        assert_eq!(one.frames[0].fragments, multi.frames[0].fragments, "{n} RUs");
        assert_eq!(one.frames[0].primitives, multi.frames[0].primitives, "{n} RUs");
    }
}

#[test]
fn heatmap_attribution_is_complete() {
    let screen = ScreenConfig::tiny();
    let cfg = GpuConfig::baseline(screen);
    let p = suite().remove(4);
    let s = simulate_sequence(&cfg, SchedulerKind::SingleZOrder, &p, 1);
    let f = &s.frames[0];
    let per_tile_instr: u64 = f.heatmap.tiles.iter().map(|t| t.instructions).sum();
    assert_eq!(per_tile_instr, f.instructions);
    let per_tile_frag: u64 = f.heatmap.tiles.iter().map(|t| t.fragments).sum();
    assert_eq!(per_tile_frag, f.fragments);
    // Per-tile DRAM attribution covers the raster phase (geometry DRAM is excluded
    // by design, §III-B), so it must be <= the frame total and > 0.
    let per_tile_dram: u64 = f.heatmap.tiles.iter().map(|t| t.dram_accesses).sum();
    assert!(per_tile_dram > 0);
    assert!(per_tile_dram <= f.dram.total_accesses());
}

#[test]
fn ideal_memory_bounds_real_memory() {
    let screen = ScreenConfig::tiny();
    let p = suite().remove(0);
    let real = simulate_sequence(&GpuConfig::baseline(screen), SchedulerKind::SingleZOrder, &p, 2);
    let ideal = simulate_sequence(
        &GpuConfig::baseline(screen).with_ideal_memory(),
        SchedulerKind::SingleZOrder,
        &p,
        2,
    );
    assert!(ideal.total_cycles() < real.total_cycles());
    assert_eq!(ideal.frames[0].fragments, real.frames[0].fragments);
    for f in &ideal.frames {
        assert_eq!(f.dram.total_accesses(), 0, "ideal memory must not touch DRAM");
    }
}

#[test]
fn energy_decreases_when_cycles_decrease() {
    let screen = ScreenConfig::tiny();
    let model = EnergyModel::default();
    let p = suite().remove(8); // HCR
    let base = simulate_sequence(&GpuConfig::baseline(screen), SchedulerKind::SingleZOrder, &p, 2);
    let libra = simulate_sequence(&GpuConfig::libra(screen, 2), SchedulerKind::Libra, &p, 2);
    let eb = model.sequence_energy(&base);
    let el = model.sequence_energy(&libra);
    if libra.total_cycles() < base.total_cycles() {
        assert!(
            el.static_nj < eb.static_nj,
            "static energy must track cycles: {} vs {}",
            el.static_nj,
            eb.static_nj
        );
    }
    assert!(el.total() > 0.0 && eb.total() > 0.0);
}

#[test]
fn libra_feedback_loop_switches_behaviour_over_frames() {
    // With feedback, LIBRA's plans should eventually differ from the first (Z-order
    // fallback) frame for a memory-intensive benchmark: the temperature order kicks
    // in and redistributes DRAM accesses over time.
    let screen = ScreenConfig::tiny();
    let cfg = GpuConfig::libra(screen, 2);
    let p = suite().remove(4); // CCS, memory-intensive
    let libra = simulate_sequence(&cfg, SchedulerKind::Libra, &p, 4);
    let ptr = simulate_sequence(&cfg, SchedulerKind::InterleavedZOrder, &p, 4);
    // Frame 0 (no feedback) must match PTR exactly.
    assert_eq!(libra.frames[0].raster_cycles, ptr.frames[0].raster_cycles);
    // Later frames must diverge (the scheduler is actually doing something).
    let diverged = libra
        .frames
        .iter()
        .zip(&ptr.frames)
        .skip(1)
        .any(|(a, b)| a.raster_cycles != b.raster_cycles);
    assert!(diverged, "LIBRA never deviated from the PTR schedule");
}

#[test]
fn fps_metric_is_consistent() {
    let screen = ScreenConfig::tiny();
    let cfg = GpuConfig::baseline(screen);
    let p = suite().remove(0);
    let s = simulate_sequence(&cfg, SchedulerKind::SingleZOrder, &p, 2);
    let fps = cfg.fps(s.avg_frame_cycles());
    assert!(fps > 0.0);
    // 800 MHz / cycles-per-frame definition.
    let expect = 800.0e6 / s.avg_frame_cycles();
    assert!((fps - expect).abs() / expect < 1e-9);
}
