//! Fault-tolerance regression tests for the campaign driver: panic isolation,
//! the watchdog cycle budget, retry policy, and checkpoint/resume.
//!
//! The contract under test is twofold:
//!
//! * **Graceful degradation** — a poisoned job becomes a structured failure and
//!   every other job completes, identically under serial and multi-threaded
//!   execution (injection is a pure function of `(job, attempt)`).
//! * **Bit-identical resume** — a campaign interrupted at *any* point and
//!   resumed from its checkpoint finishes with results byte-for-byte equal to
//!   an uninterrupted run, because job seeds are position-derived and stats
//!   round-trip through the checkpoint JSON exactly.
//!
//! Faults are injected through explicit [`RunOptions::fault`] specs (never the
//! `LIBRA_FAULT` env var, which is process-global and would race with the
//! parallel test harness; the env path is exercised by `scripts/ci.sh`).

#[allow(dead_code)]
mod support;

use libra_repro::prelude::*;
use support::check;
use tbr_sim::{checkpoint, Checkpoint, CheckpointFormat, RunOptions};

fn small_campaign(points: usize, frames: u32) -> Campaign {
    let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
    let mut c = Campaign::new(0);
    for p in suite().into_iter().take(points) {
        c.push(&cfg, SchedulerKind::Libra, p, frames);
    }
    c
}

/// A collision-free scratch path under the system temp dir (unique per test
/// name; tests clean up behind themselves, best-effort).
fn tmp_path(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("libra_ft_{}_{}", std::process::id(), name))
        .to_string_lossy()
        .into_owned()
}

fn cleanup(path: &str) {
    let _ = std::fs::remove_file(path);
}

#[test]
fn injected_panic_is_isolated_identically_for_serial_and_parallel() {
    let c = small_campaign(5, 1);
    let fault = Some(FaultSpec::parse("panic:2").unwrap());
    let serial = c
        .run_resilient(&RunOptions { threads: 1, retries: 0, fault, ..RunOptions::default() })
        .unwrap();
    let parallel = c
        .run_resilient(&RunOptions { threads: 2, retries: 0, fault, ..RunOptions::default() })
        .unwrap();
    assert_eq!(serial.results, parallel.results, "fault injection must be thread-count invariant");

    for (i, r) in serial.results.iter().enumerate() {
        if i == 2 {
            match r {
                CampaignResult::Failed { attempts: 1, panic_msg, .. } => {
                    assert!(panic_msg.contains("injected fault"), "bad panic payload: {panic_msg:?}");
                }
                other => panic!("job 2 should have Failed, got {other:?}"),
            }
        } else {
            assert!(r.is_success(), "job {i} should have survived its neighbour's panic");
        }
    }
    let s = serial.summary();
    assert_eq!((s.total, s.done, s.failed), (5, 4, 1));
}

#[test]
fn injected_timeout_is_isolated_identically_for_serial_and_parallel() {
    let c = small_campaign(4, 1);
    let fault = Some(FaultSpec::parse("timeout:1").unwrap());
    let serial = c
        .run_resilient(&RunOptions { threads: 1, retries: 0, fault, ..RunOptions::default() })
        .unwrap();
    let parallel = c
        .run_resilient(&RunOptions { threads: 2, retries: 0, fault, ..RunOptions::default() })
        .unwrap();
    assert_eq!(serial.results, parallel.results);
    match &serial.results[1] {
        CampaignResult::TimedOut { budget_cycles: 0, spent_cycles, .. } => {
            assert!(*spent_cycles > 0, "the watchdog reports how far the job got");
        }
        other => panic!("job 1 should have TimedOut, got {other:?}"),
    }
    assert_eq!(serial.summary().timed_out, 1);
}

#[test]
fn transient_faults_are_healed_by_the_default_retry() {
    let c = small_campaign(3, 1);
    let clean = c.run_serial();
    for spec in ["panic-once:1", "timeout-once:1"] {
        let fault = Some(FaultSpec::parse(spec).unwrap());
        let run = c
            .run_resilient(&RunOptions { threads: 2, fault, ..RunOptions::default() })
            .unwrap();
        assert_eq!(run.results, clean, "{spec}: a healed retry must leave no residue");
    }
}

#[test]
fn watchdog_budget_is_deterministic_and_only_fires_when_exceeded() {
    let c = small_campaign(2, 2);
    let clean = c.run_serial();

    let generous = c
        .run_resilient(&RunOptions { budget_cycles: Some(u64::MAX), ..RunOptions::default() })
        .unwrap();
    assert_eq!(generous.results, clean, "an unreached budget must not perturb results");

    let tiny = c
        .run_resilient(&RunOptions {
            budget_cycles: Some(1),
            retries: 0,
            ..RunOptions::default()
        })
        .unwrap();
    for r in &tiny.results {
        match r {
            CampaignResult::TimedOut { budget_cycles: 1, spent_cycles, .. } => {
                assert!(*spent_cycles > 1);
            }
            other => panic!("expected TimedOut under a 1-cycle budget, got {other:?}"),
        }
    }
}

#[test]
fn failed_jobs_are_rerun_on_resume_and_the_final_state_matches_a_clean_run() {
    let ckpt = tmp_path("salvage.ckpt");
    let c = small_campaign(4, 1);
    let clean = c.run_serial();

    // "Interrupted" run: job 2 is poisoned, no retry — the checkpoint records
    // three successes and one structured failure.
    let poisoned = c
        .run_resilient(&RunOptions {
            threads: 2,
            retries: 0,
            fault: Some(FaultSpec::parse("panic:2").unwrap()),
            checkpoint_to: Some(ckpt.clone()),
            ..RunOptions::default()
        })
        .unwrap();
    assert_eq!(poisoned.summary().failed, 1);
    assert!(poisoned.checkpoint_error.is_none());

    // Resume without the fault: only the failed job re-runs, and the final
    // results are bit-identical to a run that never failed.
    let resumed = c
        .run_resilient(&RunOptions {
            threads: 2,
            resume_from: Some(ckpt.clone()),
            ..RunOptions::default()
        })
        .unwrap();
    assert_eq!(resumed.resumed_jobs, 3, "three successes adopted from the checkpoint");
    assert_eq!(resumed.results, clean, "salvaged run must equal an uninterrupted one");

    // The resume appended a correcting `done` record for job 2; reloading the
    // checkpoint now adopts all four jobs.
    let reloaded = Checkpoint::load(&ckpt).unwrap();
    let done_for_job2 = reloaded
        .records
        .iter()
        .filter(|r| r.job == 2)
        .filter(|r| matches!(r.outcome, tbr_sim::checkpoint::RecordOutcome::Done { .. }))
        .count();
    assert_eq!(done_for_job2, 1, "resume must append the corrected record");
    cleanup(&ckpt);
}

#[test]
fn resuming_a_complete_checkpoint_runs_nothing() {
    let ckpt = tmp_path("complete.ckpt");
    let c = small_campaign(3, 1);
    let full = c
        .run_resilient(&RunOptions {
            threads: 2,
            checkpoint_to: Some(ckpt.clone()),
            ..RunOptions::default()
        })
        .unwrap();

    let resumed = c
        .run_resilient(&RunOptions {
            threads: 2,
            resume_from: Some(ckpt.clone()),
            ..RunOptions::default()
        })
        .unwrap();
    assert_eq!(resumed.resumed_jobs, 3, "every job adopted, none re-run");
    assert_eq!(resumed.results, full.results);
    assert!(resumed.profile.jobs.iter().all(|j| j.secs == 0.0), "no simulation happened");
    cleanup(&ckpt);
}

/// The tentpole property: kill the campaign after any prefix of completed jobs,
/// resume from the truncated checkpoint, and the final results are bit-identical
/// to the uninterrupted run. The clean run and its full checkpoint are computed
/// once; each case replays a different kill point by truncating a copy.
///
/// This variant pins the JSON encoding so kill points can be replayed by line
/// slicing; [`resume_from_any_binary_kill_point_is_bit_identical`] covers the
/// default binary encoding by cutting at frame boundaries.
#[test]
fn resume_from_any_kill_point_is_bit_identical() {
    let full_ckpt = tmp_path("full.ckpt");
    let c = small_campaign(5, 1);
    let clean = c
        .run_resilient(&RunOptions {
            threads: 2,
            checkpoint_to: Some(full_ckpt.clone()),
            ckpt_format: CheckpointFormat::Json,
            ..RunOptions::default()
        })
        .unwrap();
    let full_text = std::fs::read_to_string(&full_ckpt).unwrap();
    let lines: Vec<&str> = full_text.lines().collect();
    assert_eq!(lines.len(), 1 + 5, "header plus one record per job");

    check("resume_from_any_kill_point_is_bit_identical", 12, |g| {
        // Keep the header plus the first k records — exactly what a crash
        // between job k and job k+1 would leave behind.
        let k = g.usize(0, 6);
        let cut = tmp_path(&format!("cut{k}.ckpt"));
        let mut text: String = lines[..1 + k].join("\n");
        text.push('\n');
        std::fs::write(&cut, text).map_err(|e| e.to_string())?;

        let threads = g.usize(1, 4);
        let resumed = c.run_resilient(&RunOptions {
            threads,
            resume_from: Some(cut.clone()),
            ..RunOptions::default()
        })?;
        cleanup(&cut);
        ensure_eq!(resumed.resumed_jobs, k);
        ensure!(
            resumed.results == clean.results,
            "kill point {k}, {threads} threads: resumed results diverged"
        );
        Ok(())
    });
    cleanup(&full_ckpt);
}

/// Splits a binary checkpoint into its frame boundaries: byte offsets at which
/// a crash between appends would leave a loadable prefix (header, then after
/// each complete length-prefixed record frame).
fn binary_frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let header = checkpoint::BIN_MAGIC.len() + 4 + 8 + 8 + 8;
    let mut cuts = vec![header];
    let mut at = header;
    while at < bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 4 + len;
        cuts.push(at);
    }
    assert_eq!(at, bytes.len(), "reference checkpoint ends mid-frame");
    cuts
}

/// The same kill-point property for the default *binary* encoding: cut the
/// sidecar at any frame boundary, resume, and both the results and the final
/// sidecar bytes match the uninterrupted reference. Byte-identity holds because
/// the reference is written serially (job order) and resume re-runs the missing
/// suffix in that same order.
#[test]
fn resume_from_any_binary_kill_point_is_bit_identical() {
    let full_ckpt = tmp_path("full.ckptb");
    let c = small_campaign(5, 1);
    let clean = c
        .run_resilient(&RunOptions {
            threads: 1,
            checkpoint_to: Some(full_ckpt.clone()),
            ..RunOptions::default()
        })
        .unwrap();
    let full_bytes = std::fs::read(&full_ckpt).unwrap();
    assert!(full_bytes.starts_with(checkpoint::BIN_MAGIC), "default encoding must be binary");
    let cuts = binary_frame_boundaries(&full_bytes);
    assert_eq!(cuts.len(), 1 + 5, "header plus one frame per job");

    for (k, &cut_at) in cuts.iter().enumerate() {
        let cut = tmp_path(&format!("bcut{k}.ckptb"));
        std::fs::write(&cut, &full_bytes[..cut_at]).unwrap();
        let resumed = c
            .run_resilient(&RunOptions {
                threads: 1,
                resume_from: Some(cut.clone()),
                ..RunOptions::default()
            })
            .unwrap();
        assert_eq!(resumed.resumed_jobs, k);
        assert_eq!(resumed.results, clean.results, "binary kill point {k}: results diverged");
        let healed = std::fs::read(&cut).unwrap();
        assert_eq!(healed, full_bytes, "binary kill point {k}: healed sidecar not byte-identical");
        cleanup(&cut);
    }
    cleanup(&full_ckpt);
}

/// A binary sidecar cut *inside* a frame (not at a boundary) is a torn append:
/// it must be rejected as truncated, never half-adopted.
#[test]
fn binary_checkpoint_torn_mid_frame_is_rejected() {
    let p = tmp_path("torn.ckptb");
    let c = small_campaign(3, 1);
    c.run_resilient(&RunOptions { checkpoint_to: Some(p.clone()), ..RunOptions::default() })
        .unwrap();
    let bytes = std::fs::read(&p).unwrap();
    let cuts = binary_frame_boundaries(&bytes);
    // One byte short of each frame boundary lands mid-frame (or mid-header).
    for &boundary in &cuts {
        std::fs::write(&p, &bytes[..boundary - 1]).unwrap();
        let err = Checkpoint::load(&p).unwrap_err();
        assert!(err.contains("truncated"), "cut at {}: {err}", boundary - 1);
    }
    cleanup(&p);
}

#[test]
fn corrupt_and_mismatched_checkpoints_are_rejected_with_clear_errors() {
    let c = small_campaign(3, 1);
    let resume = |path: &str| {
        c.run_resilient(&RunOptions {
            resume_from: Some(path.to_string()),
            ..RunOptions::default()
        })
    };

    // Garbage header.
    let p = tmp_path("garbage.ckpt");
    std::fs::write(&p, "not json at all\n").unwrap();
    let err = resume(&p).unwrap_err();
    assert!(err.contains("line 1"), "should name the broken line: {err}");
    cleanup(&p);

    // Wrong schema.
    let p = tmp_path("schema.ckpt");
    std::fs::write(&p, "{\"schema\":\"something-else\",\"seed\":\"0x0\",\"jobs\":3,\"fingerprint\":\"0x0\"}\n")
        .unwrap();
    let err = resume(&p).unwrap_err();
    assert!(err.contains("schema"), "should name the schema mismatch: {err}");
    cleanup(&p);

    // Empty file.
    let p = tmp_path("empty.ckpt");
    std::fs::write(&p, "").unwrap();
    let err = resume(&p).unwrap_err();
    assert!(err.contains("empty"), "{err}");
    cleanup(&p);

    // Truncated mid-append: a complete checkpoint (default binary encoding)
    // with its tail chopped off must be rejected, not half-adopted.
    let p = tmp_path("trunc.ckpt");
    let whole = tmp_path("whole.ckpt");
    c.run_resilient(&RunOptions { checkpoint_to: Some(whole.clone()), ..RunOptions::default() })
        .unwrap();
    let bytes = std::fs::read(&whole).unwrap();
    std::fs::write(&p, &bytes[..bytes.len() - 20]).unwrap();
    let err = resume(&p).unwrap_err();
    assert!(err.contains("truncated"), "should diagnose the torn append: {err}");
    cleanup(&p);

    // Future format version: refused with a version message, not misparsed.
    let p = tmp_path("version.ckpt");
    let mut v2 = bytes.clone();
    v2[checkpoint::BIN_MAGIC.len()] = 2; // bump the little-endian version word
    std::fs::write(&p, &v2).unwrap();
    let err = resume(&p).unwrap_err();
    assert!(err.contains("version"), "should refuse an unknown version: {err}");
    cleanup(&p);

    // A checkpoint from a *different* campaign (different job list) must be
    // refused by the fingerprint even though the header's job count can lie.
    let p = tmp_path("foreign.ckpt");
    let other = small_campaign(4, 1); // different sweep
    other
        .run_resilient(&RunOptions { checkpoint_to: Some(p.clone()), ..RunOptions::default() })
        .unwrap();
    let err = resume(&p).unwrap_err();
    assert!(
        err.contains("jobs") || err.contains("fingerprint"),
        "should refuse a foreign checkpoint: {err}"
    );
    cleanup(&p);

    // Same job count, different frames — only the fingerprint can tell.
    let p = tmp_path("frames.ckpt");
    let other = small_campaign(3, 2);
    other
        .run_resilient(&RunOptions { checkpoint_to: Some(p.clone()), ..RunOptions::default() })
        .unwrap();
    let err = resume(&p).unwrap_err();
    assert!(err.contains("fingerprint"), "should refuse a mismatched sweep: {err}");
    cleanup(&p);
    cleanup(&whole);
}

/// Mechanism-axis checkpoint compatibility. Default-mechanism jobs digest into
/// the fingerprint exactly as they did before the mechanism axis existed, so a
/// pre-mechanism checkpoint still resumes into a default campaign — while a
/// mechanism-bearing campaign over the *same* jobs is a genuinely different
/// sweep and must refuse it.
#[test]
fn mechanism_campaigns_reject_default_checkpoints_and_vice_versa() {
    let p = tmp_path("mech.ckpt");
    let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
    let plain = small_campaign(3, 1);
    plain
        .run_resilient(&RunOptions { checkpoint_to: Some(p.clone()), ..RunOptions::default() })
        .unwrap();

    // Same (cfg, scheduler, workload, frames) grid with RE switched on.
    let mech = MechanismSpec::parse("re").unwrap();
    let mut re = Campaign::new(0);
    for profile in suite().into_iter().take(3) {
        re.push_mech(&cfg, SchedulerKind::Libra, mech, profile, 1);
    }
    assert_ne!(re.fingerprint(), plain.fingerprint(), "RE must change the sweep identity");
    let err = re
        .run_resilient(&RunOptions { resume_from: Some(p.clone()), ..RunOptions::default() })
        .unwrap_err();
    assert!(err.contains("fingerprint"), "should refuse the mechanism mismatch: {err}");

    // The default campaign still adopts the checkpoint whole.
    let resumed = plain
        .run_resilient(&RunOptions { resume_from: Some(p.clone()), ..RunOptions::default() })
        .unwrap();
    assert_eq!(resumed.resumed_jobs, 3, "default sweep must keep matching its checkpoint");

    // And a mechanism campaign's own checkpoint round-trips through resume.
    let pm = tmp_path("mech_own.ckpt");
    re.run_resilient(&RunOptions { checkpoint_to: Some(pm.clone()), ..RunOptions::default() })
        .unwrap();
    let resumed = re
        .run_resilient(&RunOptions { resume_from: Some(pm.clone()), ..RunOptions::default() })
        .unwrap();
    assert_eq!(resumed.resumed_jobs, 3);
    cleanup(&p);
    cleanup(&pm);
}

#[test]
fn checkpoint_survives_parallel_appends() {
    // 6 jobs on 3 threads: appends interleave arbitrarily, but every line must
    // stay whole and the reloaded checkpoint must adopt all six.
    let p = tmp_path("parallel.ckpt");
    let c = small_campaign(6, 1);
    c.run_resilient(&RunOptions {
        threads: 3,
        checkpoint_to: Some(p.clone()),
        ..RunOptions::default()
    })
    .unwrap();
    let ckpt = Checkpoint::load(&p).unwrap();
    assert_eq!(ckpt.records.len(), 6);
    let mut jobs: Vec<usize> = ckpt.records.iter().map(|r| r.job).collect();
    jobs.sort_unstable();
    assert_eq!(jobs, vec![0, 1, 2, 3, 4, 5]);
    cleanup(&p);
}
