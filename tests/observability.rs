//! End-to-end observability tests: the cycle-level tracer, the metrics registry
//! and the campaign profiler, exercised through the public crate surface.
//!
//! The tracer records **simulated** cycles, so every count and timestamp here is
//! exact and host-independent — the trace goldens below are pinned integers, just
//! like `golden_snapshots.rs` pins the perf counters. Tracing is observation
//! only; the first test proves stats are bit-identical with the collector on.

use libra_repro::prelude::*;
use tbr_common::hostprof;
use tbr_common::json;
use tbr_common::trace::{self, EventKind, Trace, Track};

const FRAMES: u32 = 2;

fn cfg() -> GpuConfig {
    GpuConfig::libra(ScreenConfig::tiny(), 2)
}

fn profile(abbrev: &str) -> BenchmarkProfile {
    suite()
        .into_iter()
        .find(|p| p.abbrev == abbrev)
        .expect("workload in suite")
}

/// Renders `FRAMES` frames of `abbrev` on the dual-RU tiny LIBRA config with the
/// trace collector installed; returns the stats and the recorded trace.
fn run_traced(abbrev: &str, kind: SchedulerKind) -> (SequenceStats, Trace) {
    let mut sim = GpuSimulator::new(cfg(), kind);
    trace::start();
    let stats = sim.render_sequence(&profile(abbrev), FRAMES);
    let t = trace::finish().expect("collector was installed");
    (stats, t)
}

fn count_spans(t: &Trace, pred: impl Fn(&Track, &str) -> bool) -> usize {
    t.events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Span { .. }) && pred(&e.track, &e.name))
        .count()
}

#[test]
fn tracing_is_observation_only() {
    let p = profile("AAt");
    let untraced = simulate_sequence(&cfg(), SchedulerKind::Libra, &p, FRAMES);
    let (traced, t) = run_traced("AAt", SchedulerKind::Libra);
    assert!(!t.is_empty());
    assert_eq!(
        traced, untraced,
        "enabling the tracer changed simulation results"
    );
}

#[test]
fn every_tile_gets_front_end_and_flush_spans() {
    let (stats, t) = run_traced("AAt", SchedulerKind::Libra);
    let tiles = cfg().screen.num_tiles();
    let expected = tiles * stats.frames.len();
    let fe = count_spans(&t, |tr, _| matches!(tr, Track::RuFrontEnd(_)));
    let flush = count_spans(&t, |tr, _| matches!(tr, Track::RuFlush(_)));
    let frag = count_spans(&t, |tr, _| matches!(tr, Track::RuFragment(_)));
    assert_eq!(fe, expected, "one front-end span per tile per frame");
    assert_eq!(flush, expected, "every tile (even an empty one) flushes");
    assert!(
        frag <= expected,
        "fragment spans only for tiles with fragments"
    );
    assert!(frag > 0, "a real workload shades fragments");
}

#[test]
fn phase_spans_cover_both_frames() {
    let (stats, t) = run_traced("AAt", SchedulerKind::Libra);
    let frames = stats.frames.len();
    // Per frame: geometry + raster plus the four geometry sub-phases.
    assert_eq!(t.on_track(Track::Phases).count(), 6 * frames);
    for name in [
        "geometry",
        "raster",
        "vertex fetch",
        "vertex shade",
        "assembly",
        "binning",
    ] {
        assert_eq!(
            count_spans(&t, |tr, n| *tr == Track::Phases && n == name),
            frames,
            "phase `{name}` missing from some frame"
        );
    }
    // The sequence timeline is continuous: the last event ends at the total cycle
    // count, and frame 1's raster span starts after frame 0 ends.
    let total: u64 = stats.total_cycles();
    let max_end = t
        .events
        .iter()
        .map(|e| match e.kind {
            EventKind::Span { dur } => e.ts + dur,
            EventKind::Instant => e.ts,
        })
        .max()
        .unwrap();
    assert_eq!(
        max_end, total,
        "trace timeline must end at the sequence cycle count"
    );
}

#[test]
fn dram_tracks_account_for_every_access() {
    let (stats, t) = run_traced("GrT", SchedulerKind::Libra);
    let accesses: u64 = stats.frames.iter().map(|f| f.dram.total_accesses()).sum();
    let bank_reqs = count_spans(&t, |tr, n| {
        matches!(tr, Track::DramBank { .. }) && n != "refresh"
    });
    let bursts = count_spans(&t, |tr, _| matches!(tr, Track::DramBus(_)));
    assert_eq!(bank_reqs as u64, accesses, "one bank span per DRAM access");
    assert_eq!(bursts as u64, accesses, "one bus burst per DRAM access");
    let refreshes = count_spans(&t, |tr, n| {
        matches!(tr, Track::DramBank { .. }) && n == "refresh"
    });
    assert!(
        refreshes > 0,
        "refresh intervals must appear on bank tracks"
    );
}

#[test]
fn scheduler_track_records_plans_and_libra_feedback() {
    let (stats, t) = run_traced("GrT", SchedulerKind::Libra);
    let plans = t
        .on_track(Track::Scheduler)
        .filter(|e| e.name == "plan")
        .count();
    assert_eq!(plans, stats.frames.len(), "one plan instant per frame");
    let feedback = t
        .on_track(Track::Scheduler)
        .filter(|e| e.name == "libra feedback")
        .count();
    assert_eq!(
        feedback,
        stats.frames.len() - 1,
        "feedback instants from frame 1 on"
    );
}

#[test]
fn chrome_json_is_valid_and_carries_all_tracks() {
    let (_, t) = run_traced("AAt", SchedulerKind::Libra);
    let doc = json::parse(&t.chrome_json()).expect("trace JSON must parse");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert_eq!(
        events
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) != Some("M"))
            .count(),
        t.events.len(),
        "every recorded event must serialize"
    );
    // Thread-name metadata must cover the per-RU and DRAM rows.
    let names: Vec<String> = events
        .iter()
        .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some("thread_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str().map(str::to_owned))
        .collect();
    for expected in [
        "phases",
        "scheduler",
        "RU0 front-end",
        "RU1 fragment",
        "DRAM ch0 bus",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing track label {expected:?}"
        );
    }
}

#[test]
fn metrics_report_round_trips_through_json() {
    let mut sim = GpuSimulator::new(cfg(), SchedulerKind::Libra);
    let stats = sim.render_sequence(&profile("AAt"), FRAMES);
    let reg = sim.metrics();
    assert!(!reg.is_empty());
    let doc = json::parse(&reg.to_json()).expect("metrics JSON must parse");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("libra-metrics-v1")
    );
    let metrics = doc
        .get("metrics")
        .and_then(|v| v.as_array())
        .expect("metrics array");
    assert_eq!(metrics.len(), reg.len());
    // Spot-check published values against the stats they came from.
    let labels = &[("frame", "0")][..];
    let reads = reg
        .counter_value("dram_reads", labels)
        .expect("dram_reads{frame=0} published");
    let writes = reg
        .counter_value("dram_writes", labels)
        .expect("dram_writes{frame=0} published");
    assert_eq!(reads + writes, stats.frames[0].dram.total_accesses());
}

#[test]
fn campaign_traces_merge_identically_for_any_thread_count() {
    let mut c = Campaign::new(0);
    for p in suite()
        .into_iter()
        .filter(|p| p.abbrev == "AAt" || p.abbrev == "GrT")
    {
        c.push(&cfg(), SchedulerKind::Libra, p, 1);
    }
    let (r1, t1) = c.run_traced(1);
    let (r3, t3) = c.run_traced(3);
    assert_eq!(r1, r3);
    let j1 = Trace::chrome_json_multi(&t1);
    assert_eq!(
        j1,
        Trace::chrome_json_multi(&t3),
        "merged trace must not depend on threads"
    );
    json::parse(&j1).expect("merged campaign trace must parse");
}

/// Pinned event counts for the standard golden point (`AAt`, Libra, tiny, dual
/// RU, 2 frames). Any intentional change to the instrumentation or the timing
/// model moves these; regenerate with
/// `cargo test print_current_trace_goldens -- --ignored --nocapture`.
const TRACE_GOLDENS: (usize, usize, usize, usize, usize) = (59627, 12, 64, 29265, 4);

fn trace_counts(t: &Trace) -> (usize, usize, usize, usize, usize) {
    (
        t.events.len(),
        t.on_track(Track::Phases).count(),
        t.events
            .iter()
            .filter(|e| matches!(e.track, Track::RuFrontEnd(_)))
            .count(),
        t.events
            .iter()
            .filter(|e| matches!(e.track, Track::DramBank { .. }) && e.name != "refresh")
            .count(),
        t.on_track(Track::Scheduler).count(),
    )
}

#[test]
fn trace_goldens_hold() {
    let (_, t) = run_traced("AAt", SchedulerKind::Libra);
    assert_eq!(
        trace_counts(&t),
        TRACE_GOLDENS,
        "trace shape drifted (total, phases, front-end, dram-requests, scheduler) — if \
         intentional, regenerate with `cargo test print_current_trace_goldens -- --ignored \
         --nocapture`"
    );
}

/// The parallel event core must hit the *same* pinned trace goldens as the
/// serial drivers, and the full event stream — every track ID, name, and
/// timestamp, in emission order — must be invariant under `--sim-threads`:
/// traces are only ever emitted from Shared commits on the coordinator thread.
#[test]
fn trace_goldens_hold_under_the_parallel_core_at_any_thread_count() {
    let (_, serial) = run_traced("AAt", SchedulerKind::Libra);
    event_loop::set_mode(Some(EventLoopMode::Par));
    for threads in [1usize, 2, 4] {
        event_loop::set_sim_threads(Some(threads));
        let (_, t) = run_traced("AAt", SchedulerKind::Libra);
        assert_eq!(
            trace_counts(&t),
            TRACE_GOLDENS,
            "par@{threads} trace shape diverged from the pinned goldens"
        );
        assert!(
            t == serial,
            "par@{threads} trace stream diverged from the serial stream \
             (track IDs must not depend on --sim-threads)"
        );
    }
    event_loop::set_sim_threads(None);
    event_loop::set_mode(None);
}

/// The host-time profiler must be observation-only, exactly like the tracer:
/// stats and the full metrics-registry JSON are bit-identical with the
/// collector installed or not, at every parallel-core thread count.
#[test]
fn hostprof_is_observation_only_at_any_thread_count() {
    let p = profile("AAt");
    event_loop::set_mode(Some(EventLoopMode::Par));
    for threads in [1usize, 2, 4] {
        event_loop::set_sim_threads(Some(threads));

        let mut plain = GpuSimulator::new(cfg(), SchedulerKind::Libra);
        let unprofiled = plain.render_sequence(&p, FRAMES);
        let plain_json = plain.metrics().to_json();

        let mut sim = GpuSimulator::new(cfg(), SchedulerKind::Libra);
        hostprof::start();
        let profiled = sim.render_sequence(&p, FRAMES);
        let hp = hostprof::finish().expect("collector was installed");

        assert_eq!(
            profiled, unprofiled,
            "par@{threads}: enabling hostprof changed simulation results"
        );
        assert_eq!(
            sim.metrics().to_json(),
            plain_json,
            "par@{threads}: enabling hostprof changed the metrics report"
        );
        assert!(
            !hp.is_empty(),
            "par@{threads}: the parallel core must record raster phases"
        );
        let totals = hp.totals();
        assert_eq!(
            totals.phases,
            FRAMES as u64,
            "one raster phase per frame under the par driver"
        );
        assert!(totals.epochs > 0, "par@{threads}: no epochs recorded");
        assert!(
            totals.local_events + totals.shared_commits > 0,
            "par@{threads}: no events attributed"
        );
        json::parse(&hp.to_json()).expect("hostprof JSON must parse");
    }
    event_loop::set_sim_threads(None);
    event_loop::set_mode(None);
}

/// Schema and invariants of the speedup attribution: every fraction lies in
/// [0, 1] and the serial/parallel/barrier/other decomposition of a phase sums
/// to at most one (they are disjoint subintervals of the phase wall).
#[test]
fn attribution_fractions_are_consistent_in_json() {
    use tbr_sim::attribution;

    let profiles = vec![profile("AAt")];
    let (_, attr) = attribution::explain(&cfg(), SchedulerKind::Libra, &profiles, 1);
    let doc = json::parse(&attr.to_json()).expect("attribution JSON must parse");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("libra-attribution-v1")
    );
    let rows = doc
        .get("rows")
        .and_then(|v| v.as_array())
        .expect("rows array");
    assert!(!rows.is_empty());
    for row in rows {
        let frac = |k: &str| {
            row.get(k)
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| panic!("row missing `{k}`"))
        };
        let parts = [
            "serial_fraction",
            "parallel_fraction",
            "barrier_fraction",
            "other_fraction",
        ];
        for k in parts {
            let f = frac(k);
            assert!((0.0..=1.0).contains(&f), "{k} = {f} out of [0, 1]");
        }
        // Each fraction is serialised with 6 decimals, so the exact in-memory
        // sum-≤-1 invariant can overshoot by up to 4 half-ulps of 1e-6 here.
        let sum: f64 = parts.iter().map(|k| frac(k)).sum();
        assert!(sum <= 1.0 + 4e-6, "fractions sum to {sum} > 1");
        assert!(frac("predicted_speedup") >= 1.0);
        assert!(row.get("threads").and_then(|v| v.as_u64()).unwrap() >= 1);
    }
}

/// Regenerates `TRACE_GOLDENS` in source form.
#[test]
#[ignore = "generator, not a check"]
fn print_current_trace_goldens() {
    let (_, t) = run_traced("AAt", SchedulerKind::Libra);
    let (a, b, c, d, e) = trace_counts(&t);
    println!(
        "const TRACE_GOLDENS: (usize, usize, usize, usize, usize) = ({a}, {b}, {c}, {d}, {e});"
    );
}
