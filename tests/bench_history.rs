//! End-to-end tests of the bench-history regression tracker: a real
//! [`ThroughputReport`] flows through the history JSONL and the baseline
//! comparison, and the committed baseline stays parseable.
//!
//! Wall-clock *values* are never asserted on — only the plumbing: schema
//! round-trips, host stamping, and the tolerance-band classification.
//!
//! [`ThroughputReport`]: tbr_sim::throughput::ThroughputReport

use libra_bench::history::{self, CompareStatus, HistoryRecord};
use libra_repro::prelude::*;
use tbr_sim::throughput;

#[test]
fn throughput_report_round_trips_through_history_and_compares_clean() {
    let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
    let profiles = vec![suite().remove(0)];
    let report = throughput::compare(&cfg, SchedulerKind::Libra, &profiles, 1);

    let rec = HistoryRecord::from_report(&report);
    assert!(rec.cores >= 1, "history record must carry the host core count");
    assert!(!rec.git_rev.is_empty(), "history record must carry a git rev");
    assert_eq!(rec.events, report.heap.events);
    assert_eq!(rec.par.len(), throughput::PAR_THREADS.len());

    let dir = std::env::temp_dir().join(format!("libra_hist_it_{}", std::process::id()));
    let path = dir.join("sim_throughput.jsonl");
    let path = path.to_str().unwrap();
    let _ = std::fs::remove_file(path);
    history::append(path, &rec).unwrap();
    let loaded = history::load_last(path).unwrap().expect("one record");
    assert_eq!(loaded, HistoryRecord::parse_line(&rec.to_json_line()).unwrap());

    // A record compared against itself is OK on every metric — except the
    // par-over-heap row, which is SKIPPED (not regressed!) when this host has
    // fewer cores than the widest par rung and the figure is time-slicing
    // noise rather than a measured speedup.
    let cmp = history::compare(&loaded, &loaded, 25.0);
    assert!(!cmp.any_regressed());
    for row in &cmp.rows {
        if row.metric == "speedup_par_over_heap" && !loaded.par_speedup_meaningful() {
            assert_eq!(row.status, CompareStatus::Skipped);
            assert!(row.note.contains("not meaningful"), "{}", row.note);
        } else {
            assert_eq!(row.status, CompareStatus::Ok, "{}", row.metric);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn committed_baseline_parses_and_self_compares_clean() {
    let baseline = history::load_baseline(history::DEFAULT_BASELINE)
        .expect("committed baseline must stay parseable");
    assert!(baseline.workloads > 0);
    assert!(baseline.heap_events_per_sec > 0.0);
    assert!(!baseline.par.is_empty());
    let cmp = history::compare(&baseline, &baseline, 25.0);
    assert!(!cmp.any_regressed());
    assert!(cmp.render().contains("no regressions"));
}

#[test]
fn bench_report_json_written_by_the_report_parses_as_baseline() {
    let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
    let profiles = vec![suite().remove(0)];
    let report = throughput::compare(&cfg, SchedulerKind::Libra, &profiles, 1);
    let rec = HistoryRecord::parse_bench_report(&report.to_json())
        .expect("ThroughputReport::to_json must parse as a baseline");
    assert_eq!(rec.cores, report.host.cores as u64);
    assert_eq!(rec.events, report.heap.events);
}
