//! Minimal in-repo property-testing support (proptest replacement).
//!
//! The workspace builds hermetically offline, so the property tests cannot pull
//! `proptest` from crates.io. This module supplies the slice the repo needs:
//!
//! * [`Gen`] — seeded case generation on the vendored xoshiro256++
//!   ([`tbr_common::rng`]): uniform scalars, ranges and vectors;
//! * [`check`] — the runner: N generated cases per property, each derived from a
//!   per-case seed, with a failing-input report that names the property, the case
//!   number, the case seed, and the environment variable to replay it;
//! * [`ensure!`] — the `prop_assert!`-style early return used inside properties.
//!
//! Replaying a failure: the panic message prints the case seed; rerun with
//! `LIBRA_PROPTEST_SEED=<seed> LIBRA_PROPTEST_CASES=1 cargo test <property>` to
//! regenerate exactly the failing inputs under a debugger.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tbr_common::rng::{splitmix64_mix, Xoshiro256pp};

// Networked-test conventions (flaky-proofing); annotated because each
// including test binary uses only the slice of `support` it needs.
#[allow(dead_code)]
pub mod net;

/// Default cases per property; `LIBRA_PROPTEST_CASES` overrides.
const DEFAULT_CASES: u32 = 96;

/// Seeded input generator handed to every property case.
pub struct Gen {
    rng: Xoshiro256pp,
}

impl Gen {
    /// A generator for one case, from the case seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: Xoshiro256pp::seed_from_u64(seed) }
    }

    /// Any `u32` (full range).
    pub fn any_u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range");
        lo + self.rng.gen_u32(hi - lo)
    }

    /// Uniform `u64` in `[lo, hi)` (ranges up to 2^32 wide).
    pub fn u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let width = hi - lo;
        assert!(width <= u32::MAX as u64 + 1, "range too wide for u64 generator");
        lo + self.rng.gen_u32(width.min(u32::MAX as u64) as u32) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.u32(lo as u32, hi as u32) as usize
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.gen_f32(lo, hi)
    }

    /// A vector with uniform length in `[len_lo, len_hi)` whose elements come from
    /// `f`.
    pub fn vec<T>(
        &mut self,
        len_lo: usize,
        len_hi: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize(len_lo, len_hi);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Runs `property` over generated cases; panics with a replayable report on the
/// first failure (either an `Err` return or a panic inside the property).
pub fn check(name: &str, cases: u32, property: impl Fn(&mut Gen) -> Result<(), String>) {
    let cases = std::env::var("LIBRA_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cases);
    let base: u64 = std::env::var("LIBRA_PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x11BA_5EED);

    for case in 0..cases {
        // Per-case seed: pure function of (base seed, case index), so any single
        // case replays independently of the others.
        let seed = splitmix64_mix(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut Gen::new(seed))));
        let failure = match outcome {
            Ok(Ok(())) => continue,
            Ok(Err(msg)) => msg,
            Err(panic) => panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panicked with a non-string payload".into()),
        };
        panic!(
            "property `{name}` failed at case {case} of {cases} (case seed {seed:#x}):\n  \
             {failure}\nreplay: LIBRA_PROPTEST_SEED={base} cargo test --test property_tests {name}"
        );
    }
}

/// Shorthand for the default case count.
pub fn check_default(name: &str, property: impl Fn(&mut Gen) -> Result<(), String>) {
    check(name, DEFAULT_CASES, property);
}

/// `prop_assert!`-style guard: returns `Err(...)` from the enclosing property when
/// the condition is false, carrying either a formatted message or the condition
/// text itself.
#[macro_export]
macro_rules! ensure {
    ($cond:expr) => {
        // Bind to a bool first so the negation is on `bool`, not on a partial-ord
        // comparison (clippy::neg_cmp_op_on_partial_ord at every call site).
        let ok: bool = $cond;
        if !ok {
            return Err(format!("condition failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let ok: bool = $cond;
        if !ok {
            return Err(format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!` counterpart on top of [`ensure!`].
#[macro_export]
macro_rules! ensure_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{} != {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
}
