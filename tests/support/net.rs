//! Flaky-proofing conventions for the campaign-service tests.
//!
//! Networked tests are where CI flakiness breeds, so every service test in
//! this repo follows three rules, centralised here:
//!
//! 1. **Never pick a port.** Bind `127.0.0.1:0` and read the resolved address
//!    back from the listener (`Coordinator::local_addr`). Two test binaries
//!    running concurrently can then never collide.
//! 2. **Never block forever.** Every TCP socket gets `set_read_timeout`
//!    ([`test_timeout`], default 120 s) so a wedged peer fails the test with a
//!    timeout error instead of hanging the suite; slow machines raise the
//!    budget via `LIBRA_TEST_TIMEOUT_SECS` instead of editing tests.
//! 3. **Never guess the binary path.** Worker processes are spawned from
//!    [`worker_cmd`], which uses the Cargo-provided `CARGO_BIN_EXE_libra-sim`
//!    path — correct across debug/release and custom target dirs.

use std::time::Duration;

/// Read-timeout budget for test sockets: `LIBRA_TEST_TIMEOUT_SECS` (shared
/// with `tbr_sim::service::default_timeout`) or 120 s.
pub fn test_timeout() -> Duration {
    let secs = std::env::var("LIBRA_TEST_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&s| s > 0)
        .unwrap_or(120);
    Duration::from_secs(secs)
}

/// The worker launch command for in-test coordinators: the very `libra-sim`
/// binary Cargo built for this test run, `worker` subcommand.
pub fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_libra-sim").to_string(), "worker".to_string()]
}
