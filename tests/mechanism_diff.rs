//! Differential conformance suite for the mechanism axes (Rendering
//! Elimination, WaSP) across the three event-loop drivers.
//!
//! The mechanisms reorder warps (WaSP) and drop whole tiles (RE) — both are
//! decisions taken at points where per-RU state is bit-identical across the
//! scan, heap, and parallel drivers, so the full simulation must stay bit-for-
//! bit reproducible under every mechanism × driver × worker-count combination.
//! Any divergence means a mechanism consulted driver-dependent state (e.g.
//! cross-RU event interleavings) and MUST be fixed in the mechanism hook,
//! never papered over by regenerating goldens.
//!
//! Everything lives in one `#[test]` because the mode and thread-count
//! overrides are process-global: parallel test threads toggling them would
//! race each other.

use libra_repro::prelude::*;

const FRAMES: u32 = 3;
const WORKLOADS: [&str; 3] = ["AAt", "CCS", "GrT"];
const PAR_THREADS: [usize; 3] = [1, 2, 4];

fn mechanisms() -> [MechanismSpec; 4] {
    [
        MechanismSpec::parse("re").unwrap(),
        MechanismSpec::parse("wasp").unwrap(),
        MechanismSpec::parse("re+wasp").unwrap(),
        MechanismSpec::parse("re-oracle+wasp").unwrap(),
    ]
}

fn run_with(
    mode: EventLoopMode,
    threads: Option<usize>,
    cfg: &GpuConfig,
    mech: MechanismSpec,
    p: &BenchmarkProfile,
) -> SequenceStats {
    event_loop::set_mode(Some(mode));
    event_loop::set_sim_threads(threads);
    let s = simulate_sequence_mech(cfg, SchedulerKind::Libra, mech, p, FRAMES);
    event_loop::set_sim_threads(None);
    event_loop::set_mode(None);
    s
}

#[test]
fn every_mechanism_is_bit_identical_across_drivers_and_thread_counts() {
    let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
    let profiles: Vec<BenchmarkProfile> =
        suite().into_iter().filter(|p| WORKLOADS.contains(&p.abbrev)).collect();
    assert_eq!(profiles.len(), WORKLOADS.len(), "differential workloads must exist");

    for p in &profiles {
        for mech in mechanisms() {
            let scan = run_with(EventLoopMode::Scan, None, &cfg, mech, p);
            let heap = run_with(EventLoopMode::Heap, None, &cfg, mech, p);
            assert_eq!(
                scan.total_cycles(),
                heap.total_cycles(),
                "total cycles diverged for {}/{mech} between scan and heap",
                p.abbrev
            );
            assert!(
                scan == heap,
                "scan and heap SequenceStats diverged for {}/{mech}",
                p.abbrev
            );
            for threads in PAR_THREADS {
                let par = run_with(EventLoopMode::Par, Some(threads), &cfg, mech, p);
                assert_eq!(
                    heap.total_cycles(),
                    par.total_cycles(),
                    "total cycles diverged for {}/{mech} at par@{threads}",
                    p.abbrev
                );
                assert_eq!(
                    heap.total_dram_accesses(),
                    par.total_dram_accesses(),
                    "DRAM accesses diverged for {}/{mech} at par@{threads}",
                    p.abbrev
                );
                assert!(
                    heap == par,
                    "heap and par@{threads} SequenceStats diverged for {}/{mech}",
                    p.abbrev
                );
            }
        }
    }

    // The RE oracle's contract holds under every driver too: rendering is not
    // skipped, so an oracle run equals the mechanism-free run bit for bit.
    let p = &profiles[0];
    let oracle = MechanismSpec::parse("re-oracle").unwrap();
    let plain = run_with(EventLoopMode::Heap, None, &cfg, MechanismSpec::NONE, p);
    for mode in [EventLoopMode::Scan, EventLoopMode::Heap, EventLoopMode::Par] {
        let threads = (mode == EventLoopMode::Par).then_some(2);
        let o = run_with(mode, threads, &cfg, oracle, p);
        assert!(o == plain, "re-oracle perturbed results under {mode:?}");
    }
}
