//! Property-based tests (proptest) on the core data structures and invariants.

use proptest::prelude::*;

use libra_repro::prelude::*;
use tbr_common::config::CacheConfig;
use tbr_common::morton::{morton_decode, morton_encode, zorder_traversal};
use tbr_geom::clip::{clip_triangle, ClipVertex};
use tbr_geom::vec::{Vec2, Vec4};
use tbr_mem::cache::Cache;

use libra::supertile::{SupertileGrid, SupertileTally};
use libra::temperature::TemperatureTable;

proptest! {
    #[test]
    fn morton_roundtrips(x in any::<u32>(), y in any::<u32>()) {
        prop_assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
    }

    #[test]
    fn morton_preserves_quadrant_order(x in 0u32..1 << 15, y in 0u32..1 << 15) {
        // Doubling both coordinates moves strictly later in Morton order.
        prop_assert!(morton_encode(x, y) <= morton_encode(x * 2 + 1, y * 2 + 1));
    }

    #[test]
    fn zorder_traversal_is_a_permutation(w in 1u32..40, h in 1u32..40) {
        let order = zorder_traversal(w, h);
        prop_assert_eq!(order.len(), (w * h) as usize);
        let mut seen = vec![false; (w * h) as usize];
        for c in order {
            prop_assert!(c.x < w && c.y < h);
            let idx = (c.y * w + c.x) as usize;
            prop_assert!(!seen[idx], "tile visited twice");
            seen[idx] = true;
        }
    }

    #[test]
    fn clipped_triangles_stay_inside_the_frustum(
        coords in proptest::collection::vec(-3.0f32..3.0, 9)
    ) {
        let tri = [
            ClipVertex::new(Vec4::new(coords[0], coords[1], coords[2], 1.0), Vec2::default()),
            ClipVertex::new(Vec4::new(coords[3], coords[4], coords[5], 1.0), Vec2::default()),
            ClipVertex::new(Vec4::new(coords[6], coords[7], coords[8], 1.0), Vec2::default()),
        ];
        for out in clip_triangle(tri) {
            for v in out {
                let w = v.pos.w;
                prop_assert!(v.pos.x >= -w - 1e-3 && v.pos.x <= w + 1e-3);
                prop_assert!(v.pos.y >= -w - 1e-3 && v.pos.y <= w + 1e-3);
                prop_assert!(v.pos.z >= -w - 1e-3 && v.pos.z <= w + 1e-3);
            }
        }
    }

    #[test]
    fn cache_hit_after_access(addrs in proptest::collection::vec(0u64..1 << 20, 1..200)) {
        let mut cache = Cache::new(CacheConfig::texture_l1());
        for &a in &addrs {
            cache.access(a);
            // Immediately re-probing the same address must hit (it was just filled).
            prop_assert!(cache.probe(a), "address {a:#x} not resident after access");
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
    }

    #[test]
    fn supertiles_partition_any_screen(
        tiles_x in 1u32..64,
        tiles_y in 1u32..64,
        size_log in 0u32..5,
    ) {
        let screen = tbr_common::config::ScreenConfig {
            width: tiles_x * 32,
            height: tiles_y * 32,
            tile_size: 32,
        };
        let grid = SupertileGrid::new(&screen, 1 << size_log);
        let mut seen = vec![false; screen.num_tiles()];
        for st in 0..grid.num_supertiles() as u32 {
            for t in grid.tiles_of(tbr_common::ids::SupertileId(st)) {
                prop_assert!(!seen[t.index()], "tile in two supertiles");
                seen[t.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some tile not covered");
    }

    #[test]
    fn temperature_rank_is_sorted_and_complete(
        tallies in proptest::collection::vec((0u64..100_000, 0u64..10_000_000), 1..511)
    ) {
        let tallies: Vec<SupertileTally> = tallies
            .into_iter()
            .map(|(d, i)| SupertileTally { dram_accesses: d, instructions: i })
            .collect();
        let table = TemperatureTable::from_tallies(&tallies);
        let rank = table.rank();
        prop_assert_eq!(rank.len(), tallies.len());
        // Permutation.
        let mut seen = vec![false; tallies.len()];
        for id in &rank {
            prop_assert!(!seen[id.index()]);
            seen[id.index()] = true;
        }
        // Hottest-first by the hardware fixed-point field.
        let api: Vec<u16> = rank.iter().map(|id| table.entries()[id.index()].api_fixed).collect();
        prop_assert!(api.windows(2).all(|w| w[0] >= w[1]), "rank not descending");
    }

    #[test]
    fn frame_plans_always_cover_all_tiles(
        kind_sel in 0usize..6,
        rus in 1u8..5,
        seed in 0u64..1000,
    ) {
        use libra::feedback::FrameFeedback;
        use tbr_common::stats::TileHeatmap;

        let screen = ScreenConfig::tiny();
        let kind = [
            SchedulerKind::SingleZOrder,
            SchedulerKind::Scanline,
            SchedulerKind::Hilbert,
            SchedulerKind::StaticSupertile(2),
            SchedulerKind::StaticSupertile(8),
            SchedulerKind::Libra,
        ][kind_sel];
        let mut sched = kind.build();
        // Pseudo-random feedback derived from the seed.
        let mut hm = TileHeatmap::new(screen.num_tiles());
        for (i, t) in hm.tiles.iter_mut().enumerate() {
            t.dram_accesses = (seed.wrapping_mul(31).wrapping_add(i as u64 * 7)) % 5000;
            t.instructions = 1 + (seed.wrapping_add(i as u64 * 13)) % 100_000;
        }
        let fb = FrameFeedback::new(hm, 100_000 + seed * 100, (seed % 100) as f64 / 100.0);
        let mut plan = sched.plan_frame(&screen, Some(&fb));

        let mut seen = vec![false; screen.num_tiles()];
        let mut ru = 0u8;
        while let Some(group) = plan.next_group(tbr_common::ids::RasterUnitId(ru)) {
            for t in group {
                prop_assert!(!seen[t.index()], "tile dispatched twice");
                seen[t.index()] = true;
            }
            ru = (ru + 1) % rus;
        }
        prop_assert!(seen.iter().all(|&s| s), "plan lost tiles");
    }

    #[test]
    fn coherence_cdf_is_monotone(values in proptest::collection::vec(0u64..1000, 8)) {
        use tbr_common::stats::TileHeatmap;
        let mut a = TileHeatmap::new(values.len());
        let mut b = TileHeatmap::new(values.len());
        for (i, &v) in values.iter().enumerate() {
            a.tiles[i].dram_accesses = v;
            b.tiles[i].dram_accesses = v.wrapping_mul(3) % 1000;
        }
        let thresholds = [0.1, 0.2, 0.5, 1.0];
        let cdf = a.coherence_cdf(&b, &thresholds);
        for w in cdf.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12, "CDF must be monotone");
        }
        prop_assert!((cdf[3] - 1.0).abs() < 1e-12, "everything differs by at most 100%");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn rasterized_coverage_matches_area(
        x0 in 2.0f32..60.0,
        y0 in 2.0f32..60.0,
        w in 8.0f32..60.0,
        h in 8.0f32..60.0,
    ) {
        use tbr_common::ids::{DrawCallId, TextureId};
        use tbr_geom::pipeline::ScreenVertex;
        use tbr_geom::scene::{BlendMode, FragmentShaderDesc, TextureDesc};
        use tbr_raster::rasterizer::rasterize_in_rect;

        // An axis-aligned rectangle (two triangles) must cover ~w*h pixels.
        let mk = |p: [(f32, f32); 3]| tbr_geom::pipeline::ScreenTriangle {
            v: p.map(|(x, y)| ScreenVertex { x, y, z: 0.5, u: 0.0, v: 0.0 }),
            draw: DrawCallId(0),
            texture: TextureDesc::new(TextureId(0), 64),
            shader: FragmentShaderDesc::simple(),
            blend: BlendMode::Opaque,
            seq: 0,
        };
        let (x1, y1) = (x0 + w, y0 + h);
        let a = mk([(x0, y0), (x1, y0), (x0, y1)]);
        let b = mk([(x1, y0), (x1, y1), (x0, y1)]);
        let cov: u32 = rasterize_in_rect(&a, 0, 0, 128, 128)
            .iter()
            .chain(rasterize_in_rect(&b, 0, 0, 128, 128).iter())
            .map(|q| q.coverage())
            .sum();
        let area = w * h;
        let err = (cov as f32 - area).abs() / area;
        // Pixel-centre sampling error is bounded by the perimeter.
        prop_assert!(err < 0.35, "coverage {cov} vs area {area}");
    }
}
