//! Property-based tests on the core data structures and invariants, running on the
//! in-repo seeded runner (`tests/support`) so the workspace needs no crates.io
//! dependencies. Each `check`/`check_default` call generates seeded random cases
//! and reports the failing case's seed for replay (see `support::check`).

mod support;

use support::{check, check_default, Gen};

use libra_repro::prelude::*;
use tbr_common::config::CacheConfig;
use tbr_common::morton::{morton_decode, morton_encode, zorder_traversal};
use tbr_geom::clip::{clip_triangle, ClipVertex};
use tbr_geom::vec::{Vec2, Vec4};
use tbr_mem::cache::Cache;

use libra::supertile::{SupertileGrid, SupertileTally};
use libra::temperature::TemperatureTable;

#[test]
fn morton_roundtrips() {
    check_default("morton_roundtrips", |g: &mut Gen| {
        let (x, y) = (g.any_u32(), g.any_u32());
        ensure_eq!(morton_decode(morton_encode(x, y)), (x, y));
        Ok(())
    });
}

#[test]
fn morton_preserves_quadrant_order() {
    check_default("morton_preserves_quadrant_order", |g: &mut Gen| {
        // Doubling both coordinates moves strictly later in Morton order.
        let x = g.u32(0, 1 << 15);
        let y = g.u32(0, 1 << 15);
        ensure!(
            morton_encode(x, y) <= morton_encode(x * 2 + 1, y * 2 + 1),
            "order violated at ({x}, {y})"
        );
        Ok(())
    });
}

#[test]
fn zorder_traversal_is_a_permutation() {
    check_default("zorder_traversal_is_a_permutation", |g: &mut Gen| {
        let (w, h) = (g.u32(1, 40), g.u32(1, 40));
        let order = zorder_traversal(w, h);
        ensure_eq!(order.len(), (w * h) as usize);
        let mut seen = vec![false; (w * h) as usize];
        for c in order {
            ensure!(c.x < w && c.y < h, "tile ({},{}) outside {w}x{h}", c.x, c.y);
            let idx = (c.y * w + c.x) as usize;
            ensure!(!seen[idx], "tile visited twice");
            seen[idx] = true;
        }
        Ok(())
    });
}

#[test]
fn clipped_triangles_stay_inside_the_frustum() {
    check_default(
        "clipped_triangles_stay_inside_the_frustum",
        |g: &mut Gen| {
            let coord = |g: &mut Gen| g.f32(-3.0, 3.0);
            let tri = [
                ClipVertex::new(
                    Vec4::new(coord(g), coord(g), coord(g), 1.0),
                    Vec2::default(),
                ),
                ClipVertex::new(
                    Vec4::new(coord(g), coord(g), coord(g), 1.0),
                    Vec2::default(),
                ),
                ClipVertex::new(
                    Vec4::new(coord(g), coord(g), coord(g), 1.0),
                    Vec2::default(),
                ),
            ];
            for out in clip_triangle(tri) {
                for v in out {
                    let w = v.pos.w;
                    ensure!(
                        v.pos.x >= -w - 1e-3 && v.pos.x <= w + 1e-3,
                        "x out: {:?}",
                        v.pos
                    );
                    ensure!(
                        v.pos.y >= -w - 1e-3 && v.pos.y <= w + 1e-3,
                        "y out: {:?}",
                        v.pos
                    );
                    ensure!(
                        v.pos.z >= -w - 1e-3 && v.pos.z <= w + 1e-3,
                        "z out: {:?}",
                        v.pos
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn cache_hit_after_access() {
    check_default("cache_hit_after_access", |g: &mut Gen| {
        let addrs = g.vec(1, 200, |g| g.u64(0, 1 << 20));
        let mut cache = Cache::new(CacheConfig::texture_l1());
        for &a in &addrs {
            cache.access(a);
            // Immediately re-probing the same address must hit (it was just filled).
            ensure!(cache.probe(a), "address {a:#x} not resident after access");
        }
        let s = cache.stats();
        ensure_eq!(s.hits + s.misses, s.accesses);
        Ok(())
    });
}

#[test]
fn supertiles_partition_any_screen() {
    check_default("supertiles_partition_any_screen", |g: &mut Gen| {
        let tiles_x = g.u32(1, 64);
        let tiles_y = g.u32(1, 64);
        let size_log = g.u32(0, 5);
        let screen = tbr_common::config::ScreenConfig {
            width: tiles_x * 32,
            height: tiles_y * 32,
            tile_size: 32,
        };
        let grid = SupertileGrid::new(&screen, 1 << size_log);
        let mut seen = vec![false; screen.num_tiles()];
        for st in 0..grid.num_supertiles() as u32 {
            for t in grid.tiles_of(tbr_common::ids::SupertileId(st)) {
                ensure!(!seen[t.index()], "tile in two supertiles");
                seen[t.index()] = true;
            }
        }
        ensure!(seen.iter().all(|&s| s), "some tile not covered");
        Ok(())
    });
}

#[test]
fn temperature_rank_is_sorted_and_complete() {
    check_default("temperature_rank_is_sorted_and_complete", |g: &mut Gen| {
        let tallies: Vec<SupertileTally> = g.vec(1, 511, |g| SupertileTally {
            dram_accesses: g.u64(0, 100_000),
            instructions: g.u64(0, 10_000_000),
        });
        let table = TemperatureTable::from_tallies(&tallies);
        let rank = table.rank();
        ensure_eq!(rank.len(), tallies.len());
        // Permutation.
        let mut seen = vec![false; tallies.len()];
        for id in &rank {
            ensure!(!seen[id.index()], "supertile ranked twice");
            seen[id.index()] = true;
        }
        // Hottest-first by the hardware fixed-point field.
        let api: Vec<u16> = rank
            .iter()
            .map(|id| table.entries()[id.index()].api_fixed)
            .collect();
        ensure!(api.windows(2).all(|w| w[0] >= w[1]), "rank not descending");
        Ok(())
    });
}

#[test]
fn frame_plans_always_cover_all_tiles() {
    check_default("frame_plans_always_cover_all_tiles", |g: &mut Gen| {
        use libra::feedback::FrameFeedback;
        use tbr_common::stats::TileHeatmap;

        let kind_sel = g.usize(0, 6);
        let rus = g.u32(1, 5) as u8;
        let seed = g.u64(0, 1000);

        let screen = ScreenConfig::tiny();
        let kind = [
            SchedulerKind::SingleZOrder,
            SchedulerKind::Scanline,
            SchedulerKind::Hilbert,
            SchedulerKind::StaticSupertile(2),
            SchedulerKind::StaticSupertile(8),
            SchedulerKind::Libra,
        ][kind_sel];
        let mut sched = kind.build();
        // Pseudo-random feedback derived from the seed.
        let mut hm = TileHeatmap::new(screen.num_tiles());
        for (i, t) in hm.tiles.iter_mut().enumerate() {
            t.dram_accesses = (seed.wrapping_mul(31).wrapping_add(i as u64 * 7)) % 5000;
            t.instructions = 1 + (seed.wrapping_add(i as u64 * 13)) % 100_000;
        }
        let fb = FrameFeedback::new(hm, 100_000 + seed * 100, (seed % 100) as f64 / 100.0);
        let mut plan = sched.plan_frame(&screen, Some(&fb));

        let mut seen = vec![false; screen.num_tiles()];
        let mut ru = 0u8;
        while let Some(group) = plan.next_group(tbr_common::ids::RasterUnitId(ru)) {
            for t in group {
                ensure!(!seen[t.index()], "tile dispatched twice");
                seen[t.index()] = true;
            }
            ru = (ru + 1) % rus;
        }
        ensure!(seen.iter().all(|&s| s), "plan lost tiles");
        Ok(())
    });
}

#[test]
fn coherence_cdf_is_monotone() {
    check_default("coherence_cdf_is_monotone", |g: &mut Gen| {
        use tbr_common::stats::TileHeatmap;
        let values = g.vec(8, 9, |g| g.u64(0, 1000));
        let mut a = TileHeatmap::new(values.len());
        let mut b = TileHeatmap::new(values.len());
        for (i, &v) in values.iter().enumerate() {
            a.tiles[i].dram_accesses = v;
            b.tiles[i].dram_accesses = v.wrapping_mul(3) % 1000;
        }
        let thresholds = [0.1, 0.2, 0.5, 1.0];
        let cdf = a.coherence_cdf(&b, &thresholds);
        for w in cdf.windows(2) {
            ensure!(w[0] <= w[1] + 1e-12, "CDF must be monotone");
        }
        ensure!(
            (cdf[3] - 1.0).abs() < 1e-12,
            "everything differs by at most 100%"
        );
        Ok(())
    });
}

#[test]
fn rasterized_coverage_matches_area() {
    // Heavier property (full-rect rasterization): fewer cases, like the original
    // proptest config (`ProptestConfig::with_cases(8)`).
    check("rasterized_coverage_matches_area", 8, |g: &mut Gen| {
        use tbr_common::ids::{DrawCallId, TextureId};
        use tbr_geom::pipeline::ScreenVertex;
        use tbr_geom::scene::{BlendMode, FragmentShaderDesc, TextureDesc};
        use tbr_raster::rasterizer::rasterize_in_rect;

        let x0 = g.f32(2.0, 60.0);
        let y0 = g.f32(2.0, 60.0);
        let w = g.f32(8.0, 60.0);
        let h = g.f32(8.0, 60.0);

        // An axis-aligned rectangle (two triangles) must cover ~w*h pixels.
        let mk = |p: [(f32, f32); 3]| tbr_geom::pipeline::ScreenTriangle {
            v: p.map(|(x, y)| ScreenVertex {
                x,
                y,
                z: 0.5,
                u: 0.0,
                v: 0.0,
            }),
            draw: DrawCallId(0),
            texture: TextureDesc::new(TextureId(0), 64),
            shader: FragmentShaderDesc::simple(),
            blend: BlendMode::Opaque,
            seq: 0,
        };
        let (x1, y1) = (x0 + w, y0 + h);
        let a = mk([(x0, y0), (x1, y0), (x0, y1)]);
        let b = mk([(x1, y0), (x1, y1), (x0, y1)]);
        let cov: u32 = rasterize_in_rect(&a, 0, 0, 128, 128)
            .iter()
            .chain(rasterize_in_rect(&b, 0, 0, 128, 128).iter())
            .map(|q| q.coverage())
            .sum();
        let area = w * h;
        let err = (cov as f32 - area).abs() / area;
        // Pixel-centre sampling error is bounded by the perimeter.
        ensure!(err < 0.35, "coverage {cov} vs area {area}");
        Ok(())
    });
}

// ---- tbr_common::event_queue — the indexed next-event core ------------------
//
// The raster phase's heap driver leans on three promises: popped times are
// monotone (simulated time never runs backwards), nothing is lost or
// duplicated, and under lazy invalidation the queue agrees with a naive
// first-minimum scan over the live set — the exact selection rule of the
// retired scan loop it replaced.

use tbr_common::event_queue::EventQueue;
use tbr_common::Cycle;

#[test]
fn event_queue_pop_times_never_decrease() {
    check_default("event_queue_pop_times_never_decrease", |g: &mut Gen| {
        let mut q = EventQueue::new();
        let n = g.usize(1, 200);
        for _ in 0..n {
            q.push(g.u64(0, 1 << 20), g.u32(0, 64));
        }
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            ensure!(t >= last, "time ran backwards: popped {t} after {last}");
            last = t;
        }
        ensure_eq!(q.len(), 0);
        Ok(())
    });
}

#[test]
fn event_queue_pops_each_push_exactly_once() {
    check_default("event_queue_pops_each_push_exactly_once", |g: &mut Gen| {
        let mut q = EventQueue::new();
        let n = g.usize(1, 300);
        let mut pushed: Vec<(Cycle, u32)> = Vec::with_capacity(n);
        for i in 0..n {
            // Deliberately collide times so the key tie-break is exercised.
            let t = g.u64(0, 32);
            q.push(t, i as u32);
            pushed.push((t, i as u32));
        }
        let mut popped = Vec::with_capacity(n);
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        pushed.sort_unstable();
        ensure_eq!(popped, pushed);
        Ok(())
    });
}

#[test]
fn event_queue_matches_naive_scan_under_churn() {
    check(
        "event_queue_matches_naive_scan_under_churn",
        64,
        |g: &mut Gen| {
            // Model of the raster-phase driver: one pending time per key, re-pushes
            // supersede (stale heap entries linger), cancels invalidate lazily. The
            // queue must agree with a naive first-minimum scan over the live set at
            // every pop.
            let keys = g.usize(1, 24);
            let mut q = EventQueue::with_capacity(keys);
            let mut live: Vec<Option<Cycle>> = vec![None; keys];
            let naive_min = |live: &[Option<Cycle>]| {
                live.iter()
                    .enumerate()
                    .filter_map(|(k, t)| t.map(|t| (t, k as u32)))
                    .min()
            };
            let ops = g.usize(1, 400);
            for _ in 0..ops {
                match g.u32(0, 4) {
                    0 | 1 => {
                        let k = g.usize(0, keys);
                        let t = g.u64(0, 1 << 16);
                        live[k] = Some(t);
                        q.push(t, k as u32);
                    }
                    2 => {
                        let k = g.usize(0, keys);
                        live[k] = None;
                    }
                    _ => {
                        let expect = naive_min(&live);
                        let got = q.pop_valid(|t, k| live[k as usize] == Some(t));
                        ensure_eq!(got, expect);
                        if let Some((_, k)) = got {
                            live[k as usize] = None;
                        }
                    }
                }
            }
            // Drain: the two views must stay in lock-step to the end.
            loop {
                let expect = naive_min(&live);
                let got = q.pop_valid(|t, k| live[k as usize] == Some(t));
                ensure_eq!(got, expect);
                match got {
                    Some((_, k)) => live[k as usize] = None,
                    None => break,
                }
            }
            Ok(())
        },
    );
}

// ---- epoch-barrier exchange — the parallel raster core's ledgers ------------
//
// The parallel driver (`LIBRA_EVENT_LOOP=par`) merges cross-shard events
// through two ledgers: a `ShardedEventQueue` keyed by Raster Unit and a
// `ChannelQueues` keyed by DRAM channel. Bit-identity with the serial drivers
// rests on three promises, checked here against a naive flat-queue oracle
// under random push / lazy-invalidate / cross-shard-defer churn: merged pops
// are monotone in `(time, key)`, every pushed event is delivered exactly once,
// and no event crosses an epoch horizon. Replay a failure with
// `LIBRA_PROPTEST_SEED=<seed>` (see `tests/support`).

use tbr_common::event_queue::ShardedEventQueue;
use tbr_mem::channels::ChannelQueues;

#[test]
fn sharded_queue_merge_matches_flat_oracle_under_churn() {
    check(
        "sharded_queue_merge_matches_flat_oracle_under_churn",
        64,
        |g: &mut Gen| {
            let shards = g.usize(1, 6);
            let keys = g.usize(1, 48);
            let mut q: ShardedEventQueue<u32> = ShardedEventQueue::new(shards);
            // Oracle: one flat queue plus the live-set map that drives lazy
            // invalidation on both sides identically.
            let mut flat: EventQueue<u32> = EventQueue::new();
            let mut live: Vec<Option<Cycle>> = vec![None; keys];
            let mut last: Option<(Cycle, u32)> = None;
            for _ in 0..g.usize(1, 250) {
                match g.u32(0, 3) {
                    0 | 1 => {
                        // Push: a key re-push supersedes the old entry (the
                        // stale one lazily invalidates in both views). The
                        // shard is chosen independently of the key — a
                        // cross-shard defer.
                        let k = g.usize(0, keys);
                        let t = g.u64(0, 1 << 12);
                        let s = g.usize(0, shards);
                        q.push(s, t, k as u32);
                        flat.push(t, k as u32);
                        live[k] = Some(t);
                        last = None; // re-pushes may back-date: restart monotonicity
                    }
                    2 => {
                        let k = g.usize(0, keys);
                        live[k] = None;
                    }
                    _ => {
                        let expect = flat.pop_valid(|t, k| live[k as usize] == Some(t));
                        let got = q.pop_min_valid(|t, k| live[k as usize] == Some(t));
                        ensure_eq!(got.map(|(_, t, k)| (t, k)), expect);
                        ensure_eq!(
                            q.horizon(|t, k| live[k as usize] == Some(t)),
                            flat.peek_valid(|t, k| live[k as usize] == Some(t))
                        );
                        if let Some((t, k)) = expect {
                            // Exactly-once: a delivered event leaves the live
                            // set, so a duplicate would fail validity.
                            live[k as usize] = None;
                            if let Some(prev) = last {
                                ensure!(
                                    (t, k) >= prev,
                                    "merged pop order ran backwards: {:?} after {:?}",
                                    (t, k),
                                    prev
                                );
                            }
                            last = Some((t, k));
                        }
                    }
                }
            }
            // Drain to empty: lock-step to the very end.
            loop {
                let expect = flat.pop_valid(|t, k| live[k as usize] == Some(t));
                let got = q.pop_min_valid(|t, k| live[k as usize] == Some(t));
                ensure_eq!(got.map(|(_, t, k)| (t, k)), expect);
                match expect {
                    Some((_, k)) => live[k as usize] = None,
                    None => break,
                }
            }
            Ok(())
        },
    );
}

#[test]
fn channel_queues_drain_matches_flat_oracle_and_respects_horizons() {
    check(
        "channel_queues_drain_matches_flat_oracle_and_respects_horizons",
        64,
        |g: &mut Gen| {
            let channels = g.usize(1, 5);
            let mut q: ChannelQueues<u32> = ChannelQueues::new(channels);
            let mut flat: EventQueue<u32> = EventQueue::new();
            let mut next_key = 0u32;
            let mut pushed = 0u64;
            let mut drained = 0u64;
            for _ in 0..g.usize(1, 40) {
                // An epoch: a batch of cross-shard pushes, then a barrier
                // drain to a random horizon.
                for _ in 0..g.usize(0, 12) {
                    let t = g.u64(0, 1 << 10);
                    let c = g.usize(0, channels);
                    q.push(c, t, next_key);
                    flat.push(t, next_key);
                    next_key += 1;
                    pushed += 1;
                }
                let horizon = g.u64(0, 1 << 10);
                let mut got: Vec<(Cycle, u32)> = Vec::new();
                q.drain_until(horizon, |_, t, k| got.push((t, k)));
                drained += got.len() as u64;
                // No event crosses the barrier, and the merged order is the
                // canonical flat-queue order.
                let mut want: Vec<(Cycle, u32)> = Vec::new();
                while let Some((t, _)) = flat.peek() {
                    if t > horizon {
                        break;
                    }
                    want.push(flat.pop().expect("peeked head exists"));
                }
                ensure!(got == want, "epoch drain diverged at horizon {horizon}");
                ensure!(
                    q.peek_min() == flat.peek(),
                    "post-barrier frontiers diverged at horizon {horizon}"
                );
            }
            // Exactly-once accounting: everything pushed is either delivered
            // or still queued, and the ledger counters agree.
            ensure_eq!(q.total_pushed(), pushed);
            ensure_eq!(q.total_drained(), drained);
            ensure_eq!(q.len() as u64, pushed - drained);
            let mut got: Vec<(Cycle, u32)> = Vec::new();
            q.drain_until(Cycle::MAX, |_, t, k| got.push((t, k)));
            let mut want: Vec<(Cycle, u32)> = Vec::new();
            while let Some(e) = flat.pop() {
                want.push(e);
            }
            ensure!(got == want, "final drain diverged");
            ensure!(q.is_empty(), "ledger retained events past a MAX horizon");
            Ok(())
        },
    );
}

#[test]
fn channel_queues_pop_min_is_the_flat_minimum() {
    check(
        "channel_queues_pop_min_is_the_flat_minimum",
        64,
        |g: &mut Gen| {
            let channels = g.usize(1, 5);
            let mut q: ChannelQueues<u32> = ChannelQueues::new(channels);
            let mut flat: EventQueue<u32> = EventQueue::new();
            let mut next_key = 0u32;
            let mut last: Option<(Cycle, u32)> = None;
            for _ in 0..g.usize(1, 200) {
                if g.u32(0, 2) == 0 {
                    let t = g.u64(0, 1 << 12);
                    q.push(g.usize(0, channels), t, next_key);
                    flat.push(t, next_key);
                    next_key += 1;
                    last = None; // pushes may back-date: restart monotonicity
                } else {
                    let got = q.pop_min().map(|(_, t, k)| (t, k));
                    ensure_eq!(got, flat.pop());
                    if let Some(e) = got {
                        if let Some(prev) = last {
                            ensure!(
                                e >= prev,
                                "merged pop order ran backwards: {e:?} after {prev:?}"
                            );
                        }
                        last = Some(e);
                    }
                }
            }
            loop {
                let got = q.pop_min().map(|(_, t, k)| (t, k));
                ensure_eq!(got, flat.pop());
                if got.is_none() {
                    break;
                }
            }
            Ok(())
        },
    );
}

/// Rendering Elimination's safety contract, fuzzed: across randomly perturbed
/// frame pairs, a tile is discarded *only* when its raw signature word stream
/// (binned primitives, vertex lanes, draw state) is bit-identical to the
/// previous frame's — zero false discards — and every bit-identical tile IS
/// discarded (the signature is a pure function of the words). Hash collisions
/// would surface as `false_negatives`; none occur across the fuzzed corpus.
#[test]
fn rendering_elimination_never_falsely_discards_a_changed_tile() {
    use libra::elimination::ReCache;
    use tbr_geom::pipeline::ScreenTriangle;
    use tbr_geom::scene::TextureDesc;
    use tbr_geom::stream::TriangleStream;
    use tbr_common::ids::TextureId;
    use tbr_tiling::binner::bin_stream;
    use tbr_tiling::signature::frame_signatures;

    // Build a small random frame straight out of a workload generator (real
    // draw states, real binning), then derive frame B by perturbing a random
    // subset of triangles in randomized ways.
    let screen = ScreenConfig::tiny();
    let profiles = suite();
    check("rendering_elimination_never_falsely_discards_a_changed_tile", 48, |g: &mut Gen| {
        let p = &profiles[g.usize(0, profiles.len())];
        let scene = tbr_workloads::SceneGenerator::new(p, &screen).scene(g.u32(0, 8));
        let (mut frame_a, _counts): (Vec<ScreenTriangle>, _) =
            tbr_geom::pipeline::process_scene(&scene, &screen);
        frame_a.truncate(64); // keep each case cheap
        ensure!(!frame_a.is_empty(), "workload produced no triangles");

        let mut frame_b = frame_a.clone();
        for _ in 0..g.usize(0, 6) {
            let i = g.usize(0, frame_b.len());
            match g.u32(0, 4) {
                0 => frame_b[i].v[g.usize(0, 3)].x += g.f32(0.01, 2.0),
                1 => frame_b[i].v[g.usize(0, 3)].u += g.f32(0.01, 0.5),
                2 => frame_b[i].texture = TextureDesc::new(TextureId(g.u32(900, 999)), 64),
                _ => frame_b[i].seq ^= 1 << g.u32(0, 8),
            }
        }

        let sig = |frame: &[ScreenTriangle]| {
            let stream = TriangleStream::from_triangles(frame);
            let bins = bin_stream(&stream, &screen);
            frame_signatures(&stream, &bins, true)
        };
        let (a, b) = (sig(&frame_a), sig(&frame_b));
        let words_a = a.words.clone().expect("oracle words");
        let words_b = b.words.clone().expect("oracle words");

        let mut cache = ReCache::new();
        let first = cache.observe(a.sigs, a.words);
        ensure!(first.discarded == 0, "frame 0 has no predecessor to match");
        let d = cache.observe(b.sigs, b.words);
        ensure!(d.false_negatives == 0, "hash collision in the fuzzed corpus");
        for t in 0..words_a.len() {
            let same = words_a[t] == words_b[t];
            ensure!(
                d.matched[t] == same,
                "tile {t}: discard decision disagrees with true input equality"
            );
        }
        ensure_eq!(d.discarded, d.matched.iter().filter(|&&m| m).count() as u64);
        Ok(())
    });
}
