//! Cross-crate integration: the *tiled* pipeline (geometry → binning → per-tile
//! rasterisation → Early-Z → blending → flush) must produce exactly the same image
//! as the untiled reference renderer, for every workload in the suite.

use libra_repro::prelude::*;
use tbr_geom::{process_scene, process_scene_stream};
use tbr_mem::hierarchy::{L1Cache, MemoryHierarchy};
use tbr_raster::raster_unit::RasterUnit;
use tbr_raster::reference::render_frame;
use tbr_tiling::binner::{bin_stream, bin_triangles};
use tbr_workloads::SceneGenerator;

/// Renders a scene through the tiled pipeline and returns the assembled image.
fn render_tiled(scene: &tbr_geom::Scene, cfg: &tbr_common::config::GpuConfig) -> Vec<u32> {
    let screen = &cfg.screen;
    let (tris, _) = process_scene_stream(scene, screen);
    let bins = bin_stream(&tris, screen);
    let mut hier = MemoryHierarchy::new(cfg.l2_cache, cfg.dram, cfg.dram_interval_cycles);
    let mut ru = RasterUnit::new(cfg);
    let mut frame = vec![0u32; (screen.width * screen.height) as usize];
    for t in 0..screen.num_tiles() as u32 {
        let tile = tbr_common::ids::TileId(t);
        let _ = ru.render_tile_front_end(tile, &tris, bins.list(tile), screen, 0, &mut hier);
        ru.blit_last_tile(tile, screen, &mut frame);
    }
    frame
}

#[test]
fn tiled_pipeline_matches_reference_renderer_on_every_benchmark() {
    let screen = ScreenConfig::tiny();
    let cfg = tbr_common::config::GpuConfig::baseline(screen);
    for p in suite() {
        let scene = SceneGenerator::new(&p, &screen).scene(0);
        let (tris, _) = process_scene(&scene, &screen);
        let want = render_frame(&tris, &screen);
        let got = render_tiled(&scene, &cfg);
        let diff = want.iter().zip(&got).filter(|(a, b)| a != b).count();
        // The tiled path and the reference path share the rasteriser, so images must
        // match exactly (same coverage, same z decisions, same blending).
        assert_eq!(diff, 0, "{}: {diff} of {} pixels differ", p.abbrev, want.len());
    }
}

#[test]
fn tile_order_does_not_change_the_image() {
    // Tiles are independent: rendering them in reverse order must give the same
    // image (the property LIBRA's scheduler relies on).
    let screen = ScreenConfig::tiny();
    let cfg = tbr_common::config::GpuConfig::baseline(screen);
    let p = suite().remove(4); // CCS
    let scene = SceneGenerator::new(&p, &screen).scene(0);
    let (tris, _) = process_scene_stream(&scene, &screen);
    let bins = bin_stream(&tris, &screen);
    let mut hier = MemoryHierarchy::new(cfg.l2_cache, cfg.dram, cfg.dram_interval_cycles);
    let mut ru = RasterUnit::new(&cfg);

    let mut forward = vec![0u32; (screen.width * screen.height) as usize];
    for t in 0..screen.num_tiles() as u32 {
        let tile = tbr_common::ids::TileId(t);
        ru.render_tile_front_end(tile, &tris, bins.list(tile), &screen, 0, &mut hier);
        ru.blit_last_tile(tile, &screen, &mut forward);
    }
    let mut backward = vec![0u32; (screen.width * screen.height) as usize];
    for t in (0..screen.num_tiles() as u32).rev() {
        let tile = tbr_common::ids::TileId(t);
        ru.render_tile_front_end(tile, &tris, bins.list(tile), &screen, 0, &mut hier);
        ru.blit_last_tile(tile, &screen, &mut backward);
    }
    assert_eq!(forward, backward);
}

#[test]
fn geometry_counters_are_consistent_with_binning() {
    let screen = ScreenConfig::tiny();
    for p in suite().into_iter().take(8) {
        let scene = SceneGenerator::new(&p, &screen).scene(0);
        let (tris, counts) = process_scene(&scene, &screen);
        assert_eq!(tris.len() as u64, counts.prims_out, "{}", p.abbrev);
        let bins = bin_triangles(&tris, &screen);
        // Every emitted primitive overlaps at least one tile (it survived clipping,
        // so it is at least partially on screen).
        let mut touched = vec![false; tris.len()];
        for list in &bins.lists {
            for &i in list {
                touched[i as usize] = true;
            }
        }
        let untouched = touched.iter().filter(|&&t| !t).count();
        assert_eq!(untouched, 0, "{}: {untouched} primitives binned nowhere", p.abbrev);
    }
}

#[test]
fn vertex_cache_filters_geometry_traffic() {
    // Sequential vertex fetches of indexed quads are highly local: the vertex cache
    // must absorb most of them.
    let screen = ScreenConfig::tiny();
    let cfg = tbr_common::config::GpuConfig::baseline(screen);
    let p = suite().remove(0);
    let scene = SceneGenerator::new(&p, &screen).scene(0);
    let mut hier = MemoryHierarchy::new(cfg.l2_cache, cfg.dram, cfg.dram_interval_cycles);
    let mut vl1 = L1Cache::new(cfg.vertex_cache);
    let geo = tbr_sim::geometry_phase::run_geometry_phase(&cfg, &mut vl1, &mut hier, &scene);
    let stats = vl1.stats();
    assert!(stats.hit_ratio() > 0.5, "vertex hit ratio {:.2}", stats.hit_ratio());
    assert!(stats.misses < stats.accesses, "the cache must absorb some fetches");
    assert!(geo.dram_accesses > 0, "cold caches still reach DRAM");
}
