//! Differential oracle for the indexed event-queue simulation core.
//!
//! The retired linear scan loop (`LIBRA_EVENT_LOOP=scan`) is kept as the
//! executable specification of the raster phase's event selection; the indexed
//! heap driver must reproduce it *bit for bit* — same cycles, same DRAM traffic,
//! same heatmaps, same trace streams — across workloads from both suite halves
//! and every scheduler variant. Any divergence here means the heap's
//! `(ready_cycle, stable id)` tie-break no longer matches the scan's
//! first-minimum selection and MUST be fixed in the heap driver, never papered
//! over by regenerating goldens.
//!
//! Everything lives in one `#[test]` because the mode override is
//! process-global: parallel test threads toggling it would race each other.
//! (The modes are bit-identical, so a race could not corrupt results — but it
//! could make a failure report blame the wrong mode.)

use libra_repro::prelude::*;

const FRAMES: u32 = 2;
const WORKLOADS: [&str; 4] = ["AAt", "AnB", "CCS", "GrT"];

fn kinds() -> [(&'static str, SchedulerKind); 5] {
    [
        ("Hilbert", SchedulerKind::Hilbert),
        ("Libra", SchedulerKind::Libra),
        ("Scanline", SchedulerKind::Scanline),
        ("SingleZOrder", SchedulerKind::SingleZOrder),
        ("StaticSupertile4", SchedulerKind::StaticSupertile(4)),
    ]
}

fn run_with(
    mode: EventLoopMode,
    cfg: &GpuConfig,
    kind: SchedulerKind,
    p: &BenchmarkProfile,
) -> SequenceStats {
    event_loop::set_mode(Some(mode));
    let s = simulate_sequence(cfg, kind, p, FRAMES);
    event_loop::set_mode(None);
    s
}

#[test]
fn heap_and_scan_event_loops_are_bit_identical() {
    let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
    let profiles: Vec<BenchmarkProfile> =
        suite().into_iter().filter(|p| WORKLOADS.contains(&p.abbrev)).collect();
    assert_eq!(profiles.len(), WORKLOADS.len(), "differential workloads must exist");

    for p in &profiles {
        for (label, kind) in kinds() {
            let scan = run_with(EventLoopMode::Scan, &cfg, kind, p);
            let heap = run_with(EventLoopMode::Heap, &cfg, kind, p);

            // Targeted checks first, so a divergence names the counter that
            // moved instead of dumping two whole SequenceStats.
            assert_eq!(
                scan.total_cycles(),
                heap.total_cycles(),
                "total cycles diverged for {}/{label}",
                p.abbrev
            );
            assert_eq!(
                scan.total_dram_accesses(),
                heap.total_dram_accesses(),
                "DRAM accesses diverged for {}/{label}",
                p.abbrev
            );
            assert_eq!(scan.frames.len(), heap.frames.len());
            for (i, (sf, hf)) in scan.frames.iter().zip(&heap.frames).enumerate() {
                assert_eq!(
                    sf.dram, hf.dram,
                    "DramStats diverged for {}/{label} frame {i}",
                    p.abbrev
                );
                assert_eq!(
                    sf.heatmap, hf.heatmap,
                    "tile heatmap diverged for {}/{label} frame {i}",
                    p.abbrev
                );
                assert_eq!(
                    sf.micro_events, hf.micro_events,
                    "micro-event count diverged for {}/{label} frame {i}",
                    p.abbrev
                );
            }
            // Then the exhaustive check: every FrameStats field, bit for bit.
            assert!(
                scan == heap,
                "scan and heap SequenceStats diverged for {}/{label} \
                 (per-field checks passed; diff the remaining FrameStats fields)",
                p.abbrev
            );
        }
    }

    // One traced configuration: the cycle-level event streams (spans and
    // instants, in emission order) must match too, not just the aggregates.
    let traced = |mode: EventLoopMode| -> Trace {
        event_loop::set_mode(Some(mode));
        trace::start();
        let mut sim = GpuSimulator::new(cfg.clone(), SchedulerKind::Libra);
        sim.render_sequence(&profiles[0], FRAMES);
        let t = trace::finish().expect("trace was started");
        event_loop::set_mode(None);
        t
    };
    let scan_trace = traced(EventLoopMode::Scan);
    let heap_trace = traced(EventLoopMode::Heap);
    assert!(!scan_trace.is_empty(), "traced run produced no events");
    assert_eq!(
        scan_trace.len(),
        heap_trace.len(),
        "trace event counts diverged between scan and heap modes"
    );
    assert!(
        scan_trace == heap_trace,
        "trace event streams diverged between scan and heap modes"
    );
}
