//! Property tests for the binary sidecar formats and the SoA hot path.
//!
//! Three contracts, each exercised with seeded random inputs (replay with
//! `LIBRA_PROPTEST_SEED` / `LIBRA_PROPTEST_CASES`):
//!
//! * **Checkpoint records** (`libra-ckpt-bin-v1`) round-trip JSON ↔ binary
//!   bit-exactly: the same [`CampaignResult`]s written in either encoding load
//!   back as identical [`Record`]s, and re-encoding is byte-deterministic.
//!   Full-range `u64` counters survive the binary encoding even where JSON
//!   would be limited to exact-in-`f64` integers (≤ 2⁵³).
//! * **Metrics snapshots** (`libra-metrics-bin-v1`) round-trip binary
//!   bit-exactly, and corrupt / truncated / version-bumped sidecars of either
//!   kind are rejected with a diagnosis, never misparsed.
//! * **SoA ≡ AoS**: the [`TriangleStream`] lanes are a lossless re-layout of
//!   the AoS triangles — geometry output, interned draw states and tile
//!   binning agree exactly between the two representations on every suite
//!   scene.

#[allow(dead_code)]
mod support;

use libra_repro::prelude::*;
use support::{check, Gen};
use tbr_common::metrics::{self, MetricsRegistry};
use tbr_common::stats::{CacheStats, DramStats, TileHeatmap, TileTally};
use tbr_geom::pipeline::process_scene_stream;
use tbr_geom::stream::TriangleStream;
use tbr_sim::checkpoint::{
    self, Checkpoint, CheckpointFormat, CheckpointHeader, CheckpointWriter, RecordOutcome,
};
use tbr_sim::CampaignResult;
use tbr_tiling::binner::{bin_stream, bin_triangles};
use tbr_workloads::SceneGenerator;

fn tmp_path(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("libra_bs_{}_{}", std::process::id(), name))
        .to_string_lossy()
        .into_owned()
}

fn cleanup(path: &str) {
    let _ = std::fs::remove_file(path);
}

// ---------------------------------------------------------------------------
// Random model values
// ---------------------------------------------------------------------------

/// Largest integer JSON can round-trip exactly (the in-repo parser holds
/// numbers as `f64`); binary-only tests go beyond it on purpose.
const JSON_EXACT_MAX: u64 = 1 << 53;

/// Uniform `u64` in `[0, max]` — [`Gen::u64`] only spans 2³²-wide ranges, so
/// wide values are composed from two draws (modulo bias is fine for tests).
fn wide(g: &mut Gen, max: u64) -> u64 {
    let v = ((g.any_u32() as u64) << 32) | g.any_u32() as u64;
    if max == u64::MAX {
        v
    } else {
        v % (max + 1)
    }
}

fn gen_cache(g: &mut Gen, max: u64) -> CacheStats {
    CacheStats {
        accesses: wide(g, max),
        hits: wide(g, max),
        misses: wide(g, max),
        evictions: wide(g, max),
    }
}

fn gen_dram(g: &mut Gen, max: u64) -> DramStats {
    let n = g.usize(0, 5);
    DramStats {
        reads: wide(g, max),
        writes: wide(g, max),
        row_hits: wide(g, max),
        row_misses: wide(g, max),
        latency_sum: wide(g, max),
        max_latency: wide(g, max),
        intervals: (0..n).map(|_| wide(g, max)).collect(),
        interval_width: g.u64(1, 1 << 20),
    }
}

fn gen_heatmap(g: &mut Gen, max: u64) -> TileHeatmap {
    let n = g.usize(0, 6);
    TileHeatmap {
        tiles: (0..n)
            .map(|_| TileTally {
                dram_accesses: wide(g, max),
                instructions: wide(g, max),
                fragments: wide(g, max),
                warps: wide(g, max),
            })
            .collect(),
    }
}

fn gen_frame_stats(g: &mut Gen, frame: u32, max: u64) -> FrameStats {
    FrameStats {
        frame: tbr_common::ids::FrameId(frame),
        geometry_cycles: wide(g, max),
        raster_cycles: wide(g, max),
        vertex_cache: gen_cache(g, max),
        tile_cache: gen_cache(g, max),
        texture_cache: gen_cache(g, max),
        l2_cache: gen_cache(g, max),
        dram: gen_dram(g, max),
        heatmap: gen_heatmap(g, max),
        vertices: wide(g, max),
        primitives: wide(g, max),
        fragments: wide(g, max),
        warps: wide(g, max),
        instructions: wide(g, max),
        texture_requests: wide(g, max),
        texture_latency_sum: wide(g, max),
        texture_fill_lines: wide(g, max),
        texture_unique_lines: wide(g, max),
        micro_events: wide(g, max),
    }
}

fn gen_sequence_stats(g: &mut Gen, max: u64) -> SequenceStats {
    let n = g.usize(0, 3);
    SequenceStats { frames: (0..n).map(|i| gen_frame_stats(g, i as u32, max)).collect() }
}

/// Panic payloads stress the JSON string escaper and the binary `str32` path.
const PANIC_POOL: &[&str] = &[
    "injected fault",
    "quote \" backslash \\ newline \n tab \t",
    "unicode: tilé ünïcode ✓",
    "",
];

fn gen_result(g: &mut Gen, job: usize, max: u64) -> CampaignResult {
    let abbrevs: &[&'static str] = &["AAt", "CCS", "MCp"];
    let abbrev = abbrevs[g.usize(0, abbrevs.len())];
    match g.usize(0, 3) {
        0 => CampaignResult::Done(JobSuccess {
            job,
            abbrev,
            scheduler: "libra",
            effective_seed: wide(g, u64::MAX),
            stats: gen_sequence_stats(g, max),
        }),
        1 => CampaignResult::Failed {
            job,
            abbrev,
            scheduler: "libra",
            attempts: g.u32(1, 5),
            panic_msg: PANIC_POOL[g.usize(0, PANIC_POOL.len())].to_string(),
        },
        // `budget_cycles`/`spent_cycles` are plain JSON numbers (unlike the
        // hex-encoded seeds), so they respect `max` for the cross-format test.
        _ => CampaignResult::TimedOut {
            job,
            abbrev,
            scheduler: "libra",
            attempts: g.u32(1, 5),
            budget_cycles: wide(g, max),
            spent_cycles: wide(g, max),
        },
    }
}

/// The [`Record`] a loader must hand back for `r`.
fn expected_record(r: &CampaignResult) -> checkpoint::Record {
    let outcome = match r {
        CampaignResult::Done(s) => RecordOutcome::Done {
            effective_seed: s.effective_seed,
            stats: s.stats.clone(),
        },
        CampaignResult::Failed { attempts, panic_msg, .. } => RecordOutcome::Failed {
            attempts: *attempts,
            panic_msg: panic_msg.clone(),
        },
        CampaignResult::TimedOut { attempts, budget_cycles, spent_cycles, .. } => {
            RecordOutcome::TimedOut {
                attempts: *attempts,
                budget_cycles: *budget_cycles,
                spent_cycles: *spent_cycles,
            }
        }
    };
    checkpoint::Record {
        job: r.job(),
        abbrev: r.abbrev().to_string(),
        scheduler: r.scheduler().to_string(),
        outcome,
    }
}

// ---------------------------------------------------------------------------
// Checkpoint sidecar
// ---------------------------------------------------------------------------

#[test]
fn checkpoint_records_round_trip_json_and_binary_bit_exactly() {
    check("checkpoint_records_round_trip", 24, |g| {
        let jobs = g.usize(1, 6);
        let header = CheckpointHeader {
            seed: wide(g, u64::MAX),
            jobs,
            fingerprint: wide(g, u64::MAX),
        };
        // Counters stay ≤ 2⁵³ here so the *JSON* leg is exact too; the
        // binary-only full-range test below drops that cap.
        let results: Vec<CampaignResult> =
            (0..jobs).map(|j| gen_result(g, j, JSON_EXACT_MAX)).collect();
        let expected: Vec<checkpoint::Record> = results.iter().map(expected_record).collect();

        let case = wide(g, u64::MAX); // unique scratch names per case
        let mut loaded = Vec::new();
        for format in [CheckpointFormat::Binary, CheckpointFormat::Json] {
            let path = tmp_path(&format!("rt_{case:x}_{format:?}"));
            let w = CheckpointWriter::create(&path, header, format)?;
            for r in &results {
                w.append(r)?;
            }
            let bytes = std::fs::read(&path).map_err(|e| e.to_string())?;
            ensure_eq!(
                bytes.starts_with(checkpoint::BIN_MAGIC),
                format == CheckpointFormat::Binary
            );

            let ckpt = Checkpoint::load(&path)?;
            ensure_eq!(ckpt.format, format);
            ensure_eq!(ckpt.header, header);
            ensure!(ckpt.records == expected, "{format:?}: decoded records diverged");

            // Byte-determinism: the same results always encode to the same file.
            let again = tmp_path(&format!("rt2_{case:x}_{format:?}"));
            let w2 = CheckpointWriter::create(&again, header, format)?;
            for r in &results {
                w2.append(r)?;
            }
            let bytes2 = std::fs::read(&again).map_err(|e| e.to_string())?;
            ensure!(bytes == bytes2, "{format:?}: re-encoding is not byte-deterministic");
            cleanup(&path);
            cleanup(&again);
            loaded.push(ckpt.records);
        }
        // JSON ↔ binary: both encodings decode to the same records.
        ensure!(loaded[0] == loaded[1], "binary and JSON decoded records diverged");
        Ok(())
    });
}

#[test]
fn binary_checkpoint_carries_full_range_u64_counters() {
    check("binary_checkpoint_full_range", 16, |g| {
        let header = CheckpointHeader { seed: u64::MAX, jobs: 1, fingerprint: u64::MAX };
        let result = gen_result(g, 0, u64::MAX);
        let path = tmp_path(&format!("full_{:x}", wide(g, u64::MAX)));
        let w = CheckpointWriter::create(&path, header, CheckpointFormat::Binary)?;
        w.append(&result)?;
        let ckpt = Checkpoint::load(&path)?;
        cleanup(&path);
        ensure_eq!(ckpt.records.len(), 1);
        ensure!(
            ckpt.records[0] == expected_record(&result),
            "full-range counters did not survive the binary round trip"
        );
        Ok(())
    });
}

#[test]
fn corrupt_binary_checkpoints_are_rejected() {
    // One well-formed single-record file, then every kind of damage.
    let header = CheckpointHeader { seed: 1, jobs: 1, fingerprint: 2 };
    let mut g = Gen::new(7);
    let result = gen_result(&mut g, 0, u64::MAX);
    let path = tmp_path("damage_base");
    let w = CheckpointWriter::create(&path, header, CheckpointFormat::Binary).unwrap();
    w.append(&result).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    cleanup(&path);

    let load = |bytes: &[u8], name: &str| -> Result<Checkpoint, String> {
        let p = tmp_path(name);
        std::fs::write(&p, bytes).unwrap();
        let r = Checkpoint::load(&p);
        cleanup(&p);
        r
    };

    // Truncation at every byte boundary after the magic: never a panic, never
    // a silent partial adoption — always an error mentioning the damage. The
    // one exception is the exact end of the header, which is a *valid* (empty)
    // checkpoint.
    let magic = checkpoint::BIN_MAGIC.len();
    let header_end = magic + 4 + 8 + 8 + 8;
    for cut in (magic..bytes.len()).filter(|&c| c != header_end) {
        let err = load(&bytes[..cut], "damage_trunc").expect_err("truncated file must not load");
        assert!(
            err.contains("truncated") || err.contains("version"),
            "cut at {cut}: undiagnosed error: {err}"
        );
    }
    assert!(load(&bytes[..header_end], "damage_empty").unwrap().records.is_empty());

    // Version bump.
    let mut v2 = bytes.clone();
    v2[magic] = checkpoint::BIN_VERSION as u8 + 1;
    let err = load(&v2, "damage_version").unwrap_err();
    assert!(err.contains("version"), "{err}");

    // A corrupted frame-length word pointing past the end of the file.
    let mut huge = bytes.clone();
    let frame_at = magic + 4 + 8 + 8 + 8;
    huge[frame_at..frame_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = load(&huge, "damage_len").unwrap_err();
    assert!(err.contains("truncated"), "{err}");

    // Trailing garbage after a complete frame is a corrupt frame, not ignored.
    let mut trailing = bytes.clone();
    trailing.extend_from_slice(&[0xAB; 3]);
    assert!(load(&trailing, "damage_trailing").is_err(), "trailing bytes must be rejected");
}

// ---------------------------------------------------------------------------
// Metrics sidecar
// ---------------------------------------------------------------------------

fn gen_registry(g: &mut Gen) -> MetricsRegistry {
    // Metric kind is keyed by name (the registry rejects re-registering a
    // name+labels pair as a different kind).
    let counters = ["cycles_total", "dram_reads"];
    let gauges = ["l2_hit_rate", "warp_occupancy"];
    let histograms = ["tile_heat", "dram_latency"];
    let label_pool: &[&[(&str, &str)]] =
        &[&[], &[("ru", "0")], &[("ru", "1"), ("phase", "raster")], &[("sched", "libra")]];
    let mut reg = MetricsRegistry::new();
    for _ in 0..g.usize(0, 12) {
        let labels = label_pool[g.usize(0, label_pool.len())];
        match g.usize(0, 3) {
            // Counters accumulate, so cap each increment to keep a dozen
            // draws on one key from overflowing u64.
            0 => reg.add_counter(counters[g.usize(0, 2)], labels, wide(g, u64::MAX >> 8)),
            1 => reg.set_gauge(gauges[g.usize(0, 2)], labels, g.f32(-1.0e6, 1.0e6) as f64),
            _ => {
                let n = g.usize(0, 6);
                let buckets = (0..n).map(|_| wide(g, u64::MAX)).collect();
                reg.set_histogram(histograms[g.usize(0, 2)], labels, g.u64(1, 1 << 30), buckets)
            }
        }
    }
    reg
}

#[test]
fn metrics_snapshots_round_trip_binary_bit_exactly() {
    check("metrics_binary_round_trip", 32, |g| {
        let reg = gen_registry(g);
        let bytes = reg.to_binary();
        ensure!(bytes.starts_with(metrics::BIN_MAGIC), "missing metrics magic");
        let back = MetricsRegistry::from_binary(&bytes)?;
        ensure!(back == reg, "decoded registry diverged");
        ensure!(back.to_binary() == bytes, "re-encoding is not byte-deterministic");
        ensure_eq!(back.to_json(), reg.to_json());
        Ok(())
    });
}

#[test]
fn corrupt_binary_metrics_are_rejected() {
    let mut g = Gen::new(11);
    let mut reg = gen_registry(&mut g);
    reg.add_counter("anchor", &[], 1); // never empty
    let bytes = reg.to_binary();

    for cut in 0..bytes.len() {
        assert!(
            MetricsRegistry::from_binary(&bytes[..cut]).is_err(),
            "truncation at {cut} must be rejected"
        );
    }

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xFF;
    assert!(MetricsRegistry::from_binary(&wrong_magic).is_err());

    let mut v2 = bytes.clone();
    v2[metrics::BIN_MAGIC.len()] = metrics::BIN_VERSION as u8 + 1;
    let err = MetricsRegistry::from_binary(&v2).unwrap_err();
    assert!(err.contains("version"), "{err}");
}

// ---------------------------------------------------------------------------
// SoA ≡ AoS
// ---------------------------------------------------------------------------

#[test]
fn soa_stream_is_a_lossless_relayout_of_aos_triangles() {
    let screen = ScreenConfig::tiny();
    let profiles = suite();
    check("soa_equals_aos", 24, |g| {
        let profile = &profiles[g.usize(0, profiles.len())];
        let frame = g.u32(0, 4);
        let scene = SceneGenerator::new(profile, &screen).scene(frame);

        let (stream, _) = process_scene_stream(&scene, &screen);
        let tris = stream.to_triangles();

        // Lossless both ways: AoS → SoA → AoS is the identity, per-triangle
        // accessors agree with the AoS structs, and interning is consistent.
        let rebuilt = TriangleStream::from_triangles(&tris);
        ensure!(rebuilt.to_triangles() == tris, "{}: AoS→SoA→AoS not the identity", profile.abbrev);
        ensure_eq!(rebuilt.len(), stream.len());
        for (i, tri) in tris.iter().enumerate() {
            ensure!(stream.get(i) == *tri, "triangle {i} diverged");
            ensure_eq!(stream.bounding_box(i, &screen), tri.bounding_box(&screen));
            ensure_eq!(stream.vertices(i), tri.v);
        }

        // The Tiling Engine sees the same bins either way.
        ensure!(
            bin_stream(&stream, &screen) == bin_triangles(&tris, &screen),
            "{}: SoA and AoS binning diverged",
            profile.abbrev
        );
        Ok(())
    });
}
