//! Three-way differential conformance suite for the intra-frame parallel
//! event core (`LIBRA_EVENT_LOOP=par`).
//!
//! The linear scan loop is the executable specification, the indexed heap
//! driver is the production serial core, and the epoch-barrier parallel driver
//! must reproduce both *bit for bit* — same cycles, same DRAM traffic, same
//! heatmaps, same micro-event counts, same trace streams — at every worker
//! count, across workloads from both suite halves and every scheduler variant.
//! Any divergence means the parallel driver's `(gate, RU)` commit order no
//! longer matches the serial head-merge and MUST be fixed in the parallel
//! driver, never papered over by regenerating goldens.
//!
//! Everything lives in one `#[test]` because the mode and thread-count
//! overrides are process-global: parallel test threads toggling them would
//! race each other.

use libra_repro::prelude::*;

const FRAMES: u32 = 2;
const WORKLOADS: [&str; 4] = ["AAt", "AnB", "CCS", "GrT"];
const PAR_THREADS: [usize; 3] = [1, 2, 4];

fn kinds() -> [(&'static str, SchedulerKind); 5] {
    [
        ("Hilbert", SchedulerKind::Hilbert),
        ("Libra", SchedulerKind::Libra),
        ("Scanline", SchedulerKind::Scanline),
        ("SingleZOrder", SchedulerKind::SingleZOrder),
        ("StaticSupertile4", SchedulerKind::StaticSupertile(4)),
    ]
}

fn run_serial(
    mode: EventLoopMode,
    cfg: &GpuConfig,
    kind: SchedulerKind,
    p: &BenchmarkProfile,
) -> SequenceStats {
    event_loop::set_mode(Some(mode));
    let s = simulate_sequence(cfg, kind, p, FRAMES);
    event_loop::set_mode(None);
    s
}

fn run_par(
    threads: usize,
    cfg: &GpuConfig,
    kind: SchedulerKind,
    p: &BenchmarkProfile,
) -> SequenceStats {
    event_loop::set_mode(Some(EventLoopMode::Par));
    event_loop::set_sim_threads(Some(threads));
    let s = simulate_sequence(cfg, kind, p, FRAMES);
    event_loop::set_sim_threads(None);
    event_loop::set_mode(None);
    s
}

#[test]
fn parallel_core_is_bit_identical_to_both_serial_drivers() {
    let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
    let profiles: Vec<BenchmarkProfile> = suite()
        .into_iter()
        .filter(|p| WORKLOADS.contains(&p.abbrev))
        .collect();
    assert_eq!(
        profiles.len(),
        WORKLOADS.len(),
        "differential workloads must exist"
    );

    for p in &profiles {
        for (label, kind) in kinds() {
            let scan = run_serial(EventLoopMode::Scan, &cfg, kind, p);
            let heap = run_serial(EventLoopMode::Heap, &cfg, kind, p);
            assert!(
                scan == heap,
                "scan and heap diverged for {}/{label} — fix the serial core \
                 before blaming the parallel driver",
                p.abbrev
            );

            for threads in PAR_THREADS {
                let par = run_par(threads, &cfg, kind, p);

                // Targeted checks first, so a divergence names the counter
                // that moved instead of dumping two whole SequenceStats.
                assert_eq!(
                    heap.total_cycles(),
                    par.total_cycles(),
                    "total cycles diverged for {}/{label} at par@{threads}",
                    p.abbrev
                );
                assert_eq!(
                    heap.total_dram_accesses(),
                    par.total_dram_accesses(),
                    "DRAM accesses diverged for {}/{label} at par@{threads}",
                    p.abbrev
                );
                assert_eq!(heap.frames.len(), par.frames.len());
                for (i, (hf, pf)) in heap.frames.iter().zip(&par.frames).enumerate() {
                    assert_eq!(
                        hf.dram, pf.dram,
                        "DramStats diverged for {}/{label} frame {i} at par@{threads}",
                        p.abbrev
                    );
                    assert_eq!(
                        hf.heatmap, pf.heatmap,
                        "tile heatmap diverged for {}/{label} frame {i} at par@{threads}",
                        p.abbrev
                    );
                    assert_eq!(
                        hf.micro_events, pf.micro_events,
                        "micro-event count diverged for {}/{label} frame {i} at par@{threads}",
                        p.abbrev
                    );
                }
                // Then the exhaustive check: every FrameStats field, bit for
                // bit, against both serial drivers.
                assert!(
                    heap == par,
                    "heap and par@{threads} SequenceStats diverged for {}/{label} \
                     (per-field checks passed; diff the remaining FrameStats fields)",
                    p.abbrev
                );
                assert!(
                    scan == par,
                    "scan and par@{threads} SequenceStats diverged for {}/{label}",
                    p.abbrev
                );
            }
        }
    }

    // One traced configuration: the cycle-level event streams (spans and
    // instants, in emission order) must match the serial stream at every
    // worker count — trace emission happens only on the coordinator thread,
    // so track IDs and event order are invariant under --sim-threads.
    let traced = |mode: EventLoopMode, threads: Option<usize>| -> Trace {
        event_loop::set_mode(Some(mode));
        event_loop::set_sim_threads(threads);
        trace::start();
        let mut sim = GpuSimulator::new(cfg.clone(), SchedulerKind::Libra);
        sim.render_sequence(&profiles[0], FRAMES);
        let t = trace::finish().expect("trace was started");
        event_loop::set_sim_threads(None);
        event_loop::set_mode(None);
        t
    };
    let heap_trace = traced(EventLoopMode::Heap, None);
    assert!(!heap_trace.is_empty(), "traced run produced no events");
    for threads in PAR_THREADS {
        let par_trace = traced(EventLoopMode::Par, Some(threads));
        assert_eq!(
            heap_trace.len(),
            par_trace.len(),
            "trace event counts diverged between heap and par@{threads}"
        );
        assert!(
            heap_trace == par_trace,
            "trace event streams diverged between heap and par@{threads}"
        );
    }
}
