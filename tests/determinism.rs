//! Determinism regression tests: the whole point of the simulator (and the
//! parallel campaign driver on top of it) is that a `(config, scheduler, workload,
//! frames)` tuple names ONE result. These tests pin that contract at the two
//! levels where it could silently rot:
//!
//! * `simulate_sequence` run twice must produce identical `FrameStats`
//!   (cycles, DRAM accesses, cache hits — the full struct, field for field);
//! * the parallel campaign driver must produce results bit-identical to a serial
//!   run of the same campaign, at several thread counts.

use libra_repro::prelude::*;

/// Full-struct equality of two sequences, with a field-level message when the
/// blanket `PartialEq` fails (so a regression names the counter that drifted).
fn assert_sequences_identical(a: &SequenceStats, b: &SequenceStats, what: &str) {
    assert_eq!(a.frames.len(), b.frames.len(), "{what}: frame counts differ");
    for (fa, fb) in a.frames.iter().zip(&b.frames) {
        assert_eq!(fa.frame, fb.frame, "{what}: frame ids differ");
        assert_eq!(
            fa.geometry_cycles, fb.geometry_cycles,
            "{what}: geometry cycles differ at frame {:?}",
            fa.frame
        );
        assert_eq!(
            fa.raster_cycles, fb.raster_cycles,
            "{what}: raster cycles differ at frame {:?}",
            fa.frame
        );
        assert_eq!(
            fa.dram.total_accesses(),
            fb.dram.total_accesses(),
            "{what}: DRAM accesses differ at frame {:?}",
            fa.frame
        );
        assert_eq!(
            fa.texture_cache, fb.texture_cache,
            "{what}: texture-L1 stats differ at frame {:?}",
            fa.frame
        );
        assert_eq!(
            fa.l2_cache, fb.l2_cache,
            "{what}: L2 stats differ at frame {:?}",
            fa.frame
        );
        // Everything else (heatmaps, latency sums, warp/fragment counters).
        assert_eq!(fa, fb, "{what}: FrameStats differ at frame {:?}", fa.frame);
    }
    assert_eq!(a, b, "{what}: SequenceStats differ");
}

#[test]
fn simulate_sequence_is_bit_identical_across_runs() {
    let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
    let p = suite().remove(0);
    for kind in [SchedulerKind::SingleZOrder, SchedulerKind::Libra] {
        let a = simulate_sequence(&cfg, kind, &p, 3);
        let b = simulate_sequence(&cfg, kind, &p, 3);
        assert_sequences_identical(&a, &b, "repeat run");
    }
}

#[test]
fn campaign_parallel_is_bit_identical_to_serial() {
    let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
    let profiles: Vec<BenchmarkProfile> = suite().into_iter().take(6).collect();
    let schedulers = [SchedulerKind::SingleZOrder, SchedulerKind::Libra];
    let campaign = Campaign::grid(2024, &cfg, &schedulers, &profiles, 2);

    let serial = campaign.run_serial();
    assert_eq!(serial.len(), 12);
    for threads in [2, 4, 7] {
        let parallel = campaign.run(threads);
        assert_eq!(parallel.len(), serial.len(), "{threads} threads lost jobs");
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.job(), s.job(), "{threads} threads: result order diverged");
            let (ps, ss) = (p.success().expect("job done"), s.success().expect("job done"));
            assert_eq!(ps.effective_seed, ss.effective_seed, "{threads} threads: seeds diverged");
            assert_sequences_identical(
                &ps.stats,
                &ss.stats,
                &format!("{} threads, job {} ({}/{})", threads, p.job(), p.abbrev(), p.scheduler()),
            );
        }
    }
}

#[test]
fn campaign_seed_is_reproducible_but_resamples_layouts() {
    let cfg = GpuConfig::libra(ScreenConfig::tiny(), 2);
    let profiles: Vec<BenchmarkProfile> = suite().into_iter().take(2).collect();
    let schedulers = [SchedulerKind::Libra];

    let a = Campaign::grid(7, &cfg, &schedulers, &profiles, 1).run(2);
    let b = Campaign::grid(7, &cfg, &schedulers, &profiles, 1).run(3);
    assert_eq!(a, b, "same campaign seed must reproduce regardless of thread count");

    let c = Campaign::grid(8, &cfg, &schedulers, &profiles, 1).run(2);
    assert_ne!(
        a[0].success().unwrap().effective_seed,
        c[0].success().unwrap().effective_seed,
        "different campaign seeds must resample the workload layout"
    );
}
