//! Integration suite for the campaign service: coordinator + real worker
//! processes on loopback TCP, checked against the plain in-process campaign.
//!
//! The headline contract: a sweep sharded across N worker processes produces
//! a `libra-metrics-v1` report **byte-identical** to `Campaign::run` of the
//! same spec — for N ∈ {1, 2}, and even when a worker is killed mid-campaign
//! and its job re-dispatched to a respawned process.
//!
//! Flaky-proofing follows `tests/support/net.rs`: ephemeral ports only
//! (bind `127.0.0.1:0`, read the port back), every socket under
//! `set_read_timeout` (`LIBRA_TEST_TIMEOUT_SECS` to raise), and worker
//! binaries located via `CARGO_BIN_EXE_libra-sim`.

#[allow(dead_code)]
mod support;

use std::collections::HashSet;

use support::net::{test_timeout, worker_cmd};
use tbr_sim::report::campaign_metrics_json;
use tbr_sim::wire::{JobSpec, Message};
use tbr_sim::{submit, Checkpoint, Coordinator, ServeOptions, SubmitOutcome};

/// The test sweep: first `take` workloads, tiny screen, one frame — small
/// enough for debug-build worker processes, structured enough to detect any
/// mis-slotting (each job has distinct stats).
fn spec_tiny(take: usize) -> JobSpec {
    JobSpec {
        seed: 0,
        scheduler: "libra".into(),
        frames: 1,
        rus: 2,
        cores: 4,
        screen: "tiny".into(),
        ideal_memory: false,
        take: Some(take),
        mechanism: "none".into(),
    }
}

/// The single-process ground truth: plain `Campaign::run`, serial.
fn serial_report(spec: &JobSpec) -> (String, u64, usize) {
    let (_cfg, campaign) = spec.to_campaign().expect("spec is valid");
    let results = campaign.run(1);
    (campaign_metrics_json(&results), campaign.fingerprint(), campaign.len())
}

/// Runs one sweep through a real coordinator + worker processes on loopback,
/// collecting every progress frame the client sees.
fn sharded(
    spec: &JobSpec,
    workers: usize,
    kill_job: Option<usize>,
    checkpoint_to: Option<String>,
) -> (SubmitOutcome, Vec<Message>) {
    let opts = ServeOptions {
        workers,
        worker_cmd: worker_cmd(),
        once: true,
        kill_job,
        checkpoint_to,
        read_timeout: test_timeout(),
    };
    let coord = Coordinator::bind("127.0.0.1:0", opts).expect("bind ephemeral");
    let addr = coord.local_addr().expect("local addr").to_string();
    let server = std::thread::spawn(move || coord.serve(&mut |_| {}));
    let mut progress = Vec::new();
    let outcome = submit(&addr, spec, test_timeout(), &mut |m| progress.push(m.clone()))
        .expect("submit succeeds");
    server.join().expect("serve thread").expect("serve ok");
    (outcome, progress)
}

#[test]
fn one_worker_matches_plain_campaign_byte_for_byte() {
    let spec = spec_tiny(4);
    let (want_report, want_fp, jobs) = serial_report(&spec);
    let (got, _) = sharded(&spec, 1, None, None);
    assert_eq!(got.jobs, jobs);
    assert_eq!(got.fingerprint, want_fp);
    assert_eq!(got.crashes, 0);
    assert_eq!(got.report_json, want_report, "1-worker report must be byte-identical");
}

#[test]
fn two_workers_match_plain_campaign_byte_for_byte() {
    let spec = spec_tiny(4);
    let (want_report, want_fp, _) = serial_report(&spec);
    let (got, _) = sharded(&spec, 2, None, None);
    assert_eq!(got.fingerprint, want_fp);
    assert_eq!(got.crashes, 0);
    assert_eq!(got.report_json, want_report, "2-worker report must be byte-identical");
}

#[test]
fn killed_worker_is_respawned_and_the_report_is_unchanged() {
    let spec = spec_tiny(4);
    let (want_report, want_fp, _) = serial_report(&spec);
    // Kill whichever worker draws job 1; the position is requeued, a fresh
    // worker adopts it, and the bytes must not care.
    let (got, _) = sharded(&spec, 2, Some(1), None);
    assert_eq!(got.crashes, 1, "exactly one injected crash");
    assert_eq!(got.fingerprint, want_fp);
    assert_eq!(
        got.report_json, want_report,
        "crash + re-dispatch must not change a byte of the report"
    );
}

#[test]
fn report_stamps_one_host_per_worker() {
    // The multi-host attribution fix: aggregated reports carry one HostMeta
    // per contributing worker process, in worker order — not a single stamp
    // pretending the whole sweep ran on one host.
    let spec = spec_tiny(4);
    let (two, _) = sharded(&spec, 2, None, None);
    assert_eq!(two.hosts.len(), 2, "one stamp per worker: {:?}", two.hosts);
    let (one, _) = sharded(&spec, 1, None, None);
    assert_eq!(one.hosts.len(), 1, "one stamp per worker: {:?}", one.hosts);
    for h in two.hosts.iter().chain(one.hosts.iter()) {
        assert!(h.cores >= 1);
        assert!(!h.git_rev.is_empty());
        assert!(!h.utc.is_empty());
    }
}

#[test]
fn progress_stream_covers_every_job_exactly_once() {
    let spec = spec_tiny(4);
    let (outcome, progress) = sharded(&spec, 2, None, None);
    assert_eq!(progress.len(), outcome.jobs);
    let mut seen = HashSet::new();
    let mut dones = Vec::new();
    for m in &progress {
        let Message::Progress { job, done, total, ok, .. } = m else {
            panic!("non-progress frame in the progress stream: {m:?}");
        };
        assert_eq!(*total, outcome.jobs);
        assert!(*ok, "job {job} failed");
        assert!(seen.insert(*job), "job {job} reported twice");
        dones.push(*done);
    }
    // `done` counts completions monotonically: each value 1..=total, once.
    dones.sort_unstable();
    assert_eq!(dones, (1..=outcome.jobs).collect::<Vec<_>>());
}

#[test]
fn coordinator_checkpoint_is_resume_compatible() {
    // The service writes an ordinary campaign checkpoint; a single-process
    // `--resume` must be able to adopt every record it contains.
    let spec = spec_tiny(3);
    let ckpt = std::env::temp_dir()
        .join(format!("libra_svc_{}_resume.ckptb", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let _ = std::fs::remove_file(&ckpt);
    let (outcome, _) = sharded(&spec, 2, None, Some(ckpt.clone()));

    let (_cfg, campaign) = spec.to_campaign().unwrap();
    let loaded = Checkpoint::load(&ckpt).expect("service checkpoint parses");
    assert_eq!(loaded.header.fingerprint, campaign.fingerprint());
    assert_eq!(loaded.header.jobs, outcome.jobs);
    assert_eq!(loaded.records.len(), outcome.jobs, "every job checkpointed");
    for rec in &loaded.records {
        campaign.adopt_record(rec).expect("record adopts into the rebuilt campaign");
    }
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn submit_rejects_a_fingerprint_mismatch() {
    // Version/suite skew check: a coordinator that rebuilds a *different*
    // campaign from the same spec (mismatched builds) must be refused at
    // accept time, before any cycles burn. Fake the coordinator with a raw
    // socket that answers a wrong fingerprint.
    use std::io::BufReader;
    use tbr_common::wire::{write_frame, FrameReader};

    let spec = spec_tiny(2);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(test_timeout())).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = FrameReader::new(BufReader::new(stream));
        let _hello = reader.read_frame("client").unwrap();
        let _submit = reader.read_frame("client").unwrap();
        write_frame(
            &mut writer,
            &Message::Accepted { jobs: 2, fingerprint: 0x1234 }.encode(),
            "client",
        )
        .unwrap();
    });
    let err = submit(&addr, &spec, test_timeout(), &mut |_| {}).unwrap_err();
    assert!(err.contains("fingerprint"), "{err}");
    server.join().unwrap();
}

#[test]
fn submit_surfaces_connection_failures_structurally() {
    // Nothing listens here (bind, resolve, drop the listener): the client
    // must fail with a structured error naming the address, not hang.
    let spec = spec_tiny(2);
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let err = submit(&addr, &spec, test_timeout(), &mut |_| {}).unwrap_err();
    assert!(err.contains("connecting"), "{err}");
}
