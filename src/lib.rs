//! # LIBRA reproduction — umbrella crate
//!
//! This crate re-exports the whole workspace behind a single dependency so that the
//! repository-level examples and integration tests (and downstream users who want
//! "everything") can write `use libra_repro::prelude::*;`.
//!
//! The workspace reproduces *LIBRA: Memory Bandwidth- and Locality-Aware Parallel Tile
//! Rendering* (MICRO 2024) on top of a from-scratch cycle-level Tile-Based Rendering
//! GPU simulator. See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure and table.
//!
//! ## Quickstart
//!
//! ```
//! use libra_repro::prelude::*;
//!
//! // Simulate three frames of the Candy-Crush-like workload on the baseline GPU and
//! // on LIBRA, and compare raster cycles.
//! let screen = ScreenConfig::quarter_fhd();
//! let profile = suite().into_iter().find(|p| p.abbrev == "CCS").unwrap();
//! let baseline = GpuConfig::baseline(screen);
//! let libra_cfg = GpuConfig::libra(screen, 2);
//!
//! let base = simulate_sequence(&baseline, SchedulerKind::SingleZOrder, &profile, 3);
//! let libra = simulate_sequence(&libra_cfg, SchedulerKind::Libra, &profile, 3);
//! assert!(libra.total_cycles() > 0 && base.total_cycles() > 0);
//! ```

#![warn(missing_docs)]

pub use libra;
pub use tbr_common;
pub use tbr_energy;
pub use tbr_geom;
pub use tbr_mem;
pub use tbr_raster;
pub use tbr_sim;
pub use tbr_tiling;
pub use tbr_workloads;

/// Commonly used items, flattened for examples and tests.
pub mod prelude {
    pub use libra::adaptive::AdaptiveController;
    pub use libra::scheduler::{SchedulerKind, TileScheduler};
    pub use libra::supertile::SupertileGrid;
    pub use libra::temperature::TemperatureTable;
    pub use tbr_common::config::{DramConfig, GpuConfig, ScreenConfig};
    pub use tbr_common::ids::{SupertileId, TileCoord, TileId};
    pub use tbr_common::mechanism::MechanismSpec;
    pub use tbr_common::metrics::MetricsRegistry;
    pub use tbr_common::stats::{FrameStats, SequenceStats};
    pub use tbr_common::trace::{self, Trace, Track};
    pub use tbr_energy::EnergyModel;
    pub use tbr_sim::{
        event_loop, simulate_frame, simulate_sequence, simulate_sequence_mech, Campaign,
        CampaignProfile, CampaignResult, CampaignRun, CampaignSummary, CheckpointFormat,
        EventLoopMode, FaultSpec, GpuSimulator, JobSuccess, RunOptions,
    };
    pub use tbr_workloads::{suite, BenchmarkProfile, Category};
}
