//! `libra-sim` — command-line driver for the LIBRA TBR GPU simulator.
//!
//! ```text
//! libra-sim suite                         list the 32 benchmarks
//! libra-sim run <ABBREV> [opts]           simulate one benchmark
//! libra-sim compare <ABBREV> [opts]       baseline vs PTR vs LIBRA
//! libra-sim sweep-ru <ABBREV> [opts]      1..4 Raster Units
//! libra-sim campaign [opts]               parallel sweep over the whole suite
//! libra-sim serve [opts]                  campaign service: TCP coordinator +
//!                                         multi-process worker sharding
//! libra-sim submit [opts]                 send a sweep to a running coordinator
//! libra-sim worker                        stdio shard worker (spawned by serve)
//! libra-sim throughput [opts]             scan-vs-heap-vs-par events/sec benchmark
//! libra-sim bench-compare [opts]          diff latest history vs committed baseline
//! libra-sim trace-check <FILE>            validate an emitted Chrome trace
//!
//! options: --frames N (default 6)   --fhd   --scheduler z|scanline|hilbert|static2|
//!          static4|static8|static16|libra   --rus N   --cores N   --ideal-memory
//!          --mechanism none|re|wasp|re+wasp|re-oracle|re-oracle+wasp (orthogonal
//!          mechanism axes: Rendering Elimination and/or WaSP, composable with
//!          every scheduler; default none)   --re-oracle (differential RE mode:
//!          render everything anyway and count would-be discards + hash
//!          collisions; shorthand that upgrades the current --mechanism)
//!          --event-loop heap|scan|par (pin the raster event-loop driver)
//!          --sim-threads N (worker threads for `--event-loop par`; also
//!          settable via LIBRA_SIM_THREADS — the results are bit-identical at
//!          every thread count)
//!
//! run options (additionally): --trace-out FILE (Perfetto/Chrome trace JSON;
//!          with LIBRA_HOSTPROF=1 the trace gains host-time lanes)
//!          --report-json FILE (full metrics-registry report)
//!
//! campaign options (additionally): --threads N (default: all cores)   --seed S
//!          --verify (re-run serially, assert bit-identical results)
//!          --profile (write worker/job wall-clock CSVs to bench_results/, plus
//!          aggregated host telemetry to bench_results/campaign_hostprof.json)
//!          --trace-out FILE (merged per-job traces, one Perfetto process each)
//!          --report-json FILE (survivor metrics, `libra-metrics-v1`)
//!          --checkpoint FILE | --no-checkpoint (default: auto path under
//!          bench_results/)   --ckpt-format binary|json (default: binary; the
//!          `libra-ckpt-bin-v1` sidecar, `.ckptb` auto paths)   --resume FILE
//!          (adopt completed jobs of either encoding, re-run the rest)
//!          --budget-cycles N (watchdog: abort a job past N simulated cycles)
//!          --retries N (re-run failing jobs N more times; default 1)
//!          --fault KIND:JOB (inject panic|panic-once|timeout|timeout-once)
//!          --take N (truncate the suite to its first N workloads)
//!
//! serve options: --addr HOST:PORT (default 127.0.0.1:4650; port 0 binds an
//!          ephemeral port, echoed in the "listening on" line)   --workers N
//!          (worker processes per sweep; default 2)   --once (serve one
//!          connection, then exit)   --checkpoint FILE (append adopted results
//!          to a `--resume`-compatible campaign checkpoint)
//!          --kill-worker JOB (fault injection: kill the worker assigned JOB
//!          once, exercising crash recovery)
//!
//! submit options: --addr HOST:PORT plus the campaign spec flags (--frames,
//!          --scheduler, --mechanism, --rus, --cores, --fhd, --ideal-memory,
//!          --seed, --take); --report-json FILE writes the returned report — byte-
//!          identical to `libra-sim campaign --report-json` of the same spec
//!
//! throughput options (additionally): --out FILE (JSON record; default
//!          BENCH_sim_throughput.json)   --sim-threads N / LIBRA_SIM_THREADS
//!          (pin par-driver workers for ad-hoc runs; the recorded par sweep
//!          always measures its fixed thread ladder)   --explain (profile the
//!          par driver and decompose the speedup: serial/barrier/imbalance
//!          fractions, Amdahl predicted vs measured; writes
//!          bench_results/sim_throughput_attribution.json)
//!          --history FILE (append-only JSONL history; default
//!          bench_results/history/sim_throughput.jsonl, env LIBRA_BENCH_HISTORY)
//!
//! bench-compare options: --baseline FILE (default
//!          bench_results/baseline/sim_throughput.json)   --history FILE
//!          --tolerance PCT (default 25)   --strict (exit non-zero on
//!          regression; default is report-only)
//! ```
//!
//! Traces carry *simulated* timestamps (1 GPU cycle = 1 µs on the Perfetto
//! timeline), so trace output is bit-identical for every `--threads` value.
//! Host-time observability is opt-in: `LIBRA_HOSTPROF=1` (or `--explain`)
//! enables wall-clock telemetry of the parallel event core — observation-only,
//! simulated results are bit-identical with it on or off.
//!
//! A campaign with failed or timed-out jobs still writes every output for the
//! survivors, prints a structured failure report, and exits non-zero. See
//! `docs/OPERATIONS.md` for the full operational reference including a worked
//! resume-after-crash walkthrough.
//!
//! Argument parsing is hand-rolled (the workspace intentionally carries no CLI
//! dependency).

use std::process::ExitCode;

use libra_repro::prelude::*;
use tbr_sim::{event_loop, report, throughput, CheckpointFormat};

#[derive(Debug, Clone)]
struct Opts {
    frames: u32,
    fhd: bool,
    scheduler: SchedulerKind,
    mechanism: MechanismSpec,
    re_oracle: bool,
    rus: usize,
    cores: usize,
    ideal: bool,
    threads: usize,
    seed: u64,
    verify: bool,
    profile: bool,
    trace_out: Option<String>,
    report_json: Option<String>,
    out: Option<String>,
    checkpoint: Option<String>,
    no_checkpoint: bool,
    ckpt_format: CheckpointFormat,
    resume: Option<String>,
    budget_cycles: Option<u64>,
    retries: u32,
    fault: Option<String>,
    explain: bool,
    history: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
    strict: bool,
    take: Option<usize>,
    addr: String,
    workers: usize,
    once: bool,
    kill_worker: Option<usize>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            frames: 6,
            fhd: false,
            scheduler: SchedulerKind::Libra,
            mechanism: MechanismSpec::NONE,
            re_oracle: false,
            rus: 2,
            cores: 4,
            ideal: false,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            seed: 0,
            verify: false,
            profile: false,
            trace_out: None,
            report_json: None,
            out: None,
            checkpoint: None,
            no_checkpoint: false,
            ckpt_format: CheckpointFormat::default(),
            resume: None,
            budget_cycles: None,
            retries: 1,
            fault: None,
            explain: false,
            history: None,
            baseline: None,
            tolerance: 25.0,
            strict: false,
            take: None,
            addr: "127.0.0.1:4650".to_string(),
            workers: 2,
            once: false,
            kill_worker: None,
        }
    }
}

use tbr_sim::wire::parse_scheduler;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut need = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--frames" => o.frames = need("--frames")?.parse().map_err(|e| format!("{e}"))?,
            "--fhd" => o.fhd = true,
            "--scheduler" => o.scheduler = parse_scheduler(need("--scheduler")?)?,
            "--mechanism" => o.mechanism = MechanismSpec::parse(need("--mechanism")?)?,
            "--re-oracle" => o.re_oracle = true,
            "--rus" => o.rus = need("--rus")?.parse().map_err(|e| format!("{e}"))?,
            "--cores" => o.cores = need("--cores")?.parse().map_err(|e| format!("{e}"))?,
            "--ideal-memory" => o.ideal = true,
            "--threads" => o.threads = need("--threads")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => o.seed = need("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--verify" => o.verify = true,
            "--profile" => o.profile = true,
            "--trace-out" => o.trace_out = Some(need("--trace-out")?.clone()),
            "--report-json" => o.report_json = Some(need("--report-json")?.clone()),
            "--out" => o.out = Some(need("--out")?.clone()),
            "--checkpoint" => o.checkpoint = Some(need("--checkpoint")?.clone()),
            "--no-checkpoint" => o.no_checkpoint = true,
            "--ckpt-format" => {
                o.ckpt_format = match need("--ckpt-format")?.as_str() {
                    "binary" => CheckpointFormat::Binary,
                    "json" => CheckpointFormat::Json,
                    other => return Err(format!("unknown checkpoint format `{other}` (binary|json)")),
                }
            }
            "--resume" => o.resume = Some(need("--resume")?.clone()),
            "--budget-cycles" => {
                o.budget_cycles = Some(
                    need("--budget-cycles")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--retries" => o.retries = need("--retries")?.parse().map_err(|e| format!("{e}"))?,
            "--fault" => o.fault = Some(need("--fault")?.clone()),
            "--explain" => o.explain = true,
            "--history" => o.history = Some(need("--history")?.clone()),
            "--baseline" => o.baseline = Some(need("--baseline")?.clone()),
            "--tolerance" => {
                o.tolerance = need("--tolerance")?.parse().map_err(|e| format!("{e}"))?
            }
            "--strict" => o.strict = true,
            "--take" => {
                let n: usize = need("--take")?.parse().map_err(|e| format!("{e}"))?;
                if n == 0 {
                    return Err("--take needs a value >= 1".into());
                }
                o.take = Some(n);
            }
            "--addr" => o.addr = need("--addr")?.clone(),
            "--workers" => o.workers = need("--workers")?.parse().map_err(|e| format!("{e}"))?,
            "--once" => o.once = true,
            "--kill-worker" => {
                o.kill_worker = Some(need("--kill-worker")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--event-loop" => {
                let name = need("--event-loop")?;
                let mode = event_loop::parse(name)
                    .ok_or_else(|| format!("unknown event loop `{name}` (heap|scan|par)"))?;
                event_loop::set_mode(Some(mode));
            }
            "--sim-threads" => {
                let n: usize = need("--sim-threads")?.parse().map_err(|e| format!("{e}"))?;
                if n == 0 {
                    return Err("--sim-threads needs a value >= 1".into());
                }
                event_loop::set_sim_threads(Some(n));
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

fn screen(o: &Opts) -> ScreenConfig {
    if o.fhd {
        ScreenConfig::fhd()
    } else {
        ScreenConfig::quarter_fhd()
    }
}

fn config(o: &Opts) -> GpuConfig {
    let mut cfg = GpuConfig::libra(screen(o), o.rus);
    cfg.cores_per_ru = o.cores;
    cfg.ideal_memory = o.ideal;
    cfg
}

/// The effective mechanism axis: `--re-oracle` is shorthand that upgrades
/// whatever `--mechanism` selected into the differential oracle mode.
fn mech(o: &Opts) -> MechanismSpec {
    let mut m = o.mechanism;
    if o.re_oracle {
        m.re = true;
        m.re_oracle = true;
    }
    m
}

fn find(abbrev: &str) -> Result<BenchmarkProfile, String> {
    suite()
        .into_iter()
        .find(|p| p.abbrev.eq_ignore_ascii_case(abbrev))
        .ok_or_else(|| format!("unknown benchmark `{abbrev}` (try `libra-sim suite`)"))
}

fn cmd_suite() {
    println!(
        "{:<6} {:<24} {:<5} {:<8} {:>8}",
        "abbr", "name", "cat", "class", "tris≈"
    );
    for p in suite() {
        println!(
            "{:<6} {:<24} {:<5} {:<8} {:>8}",
            p.abbrev,
            p.name,
            p.category.label(),
            if p.memory_intensive {
                "memory"
            } else {
                "compute"
            },
            p.approx_triangles()
        );
    }
}

fn write_file(path: &str, contents: &str, what: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| format!("writing {what} to {path}: {e}"))?;
    println!("{what} written to {path}");
    Ok(())
}

fn cmd_run(abbrev: &str, o: &Opts) -> Result<(), String> {
    use tbr_common::{hostprof, trace};

    let p = find(abbrev)?;
    let cfg = config(o);

    // The simulator publishes into its metrics registry unconditionally; the
    // trace and host-profile collectors are installed only on request (they are
    // observation-only either way — stats are bit-identical with them on or off).
    let mech = mech(o);
    let mut sim = GpuSimulator::with_mechanism(cfg.clone(), o.scheduler, mech);
    if o.trace_out.is_some() {
        trace::start();
    }
    if hostprof::env_enabled() {
        hostprof::start();
    }
    let s = sim.render_sequence(&p, o.frames);
    let trace = trace::finish();
    let host = hostprof::finish();

    println!(
        "{}",
        report::sequence_summary(
            &if mech.is_default() {
                format!("{} ({} RU x {} cores)", p.abbrev, o.rus, o.cores)
            } else {
                format!("{} ({} RU x {} cores, {mech})", p.abbrev, o.rus, o.cores)
            },
            &s,
            &cfg
        )
    );
    for f in &s.frames {
        println!("  {}", report::frame_line(f));
    }
    if let Some(host) = &host {
        print!("{}", host.render());
    }

    if let Some(path) = &o.trace_out {
        let mut trace = trace.expect("collector was installed above");
        if let Some(host) = &host {
            // Host lanes ride along as extra tracks; timestamps are host
            // microseconds, the simulated tracks stay cycle-denominated.
            trace.events.extend(host.chrome_events());
        }
        write_file(path, &trace.chrome_json(), "Chrome trace")?;
    }
    if let Some(path) = &o.report_json {
        write_file(path, &sim.metrics().to_json(), "metrics report")?;
    }
    Ok(())
}

/// Validates that `path` holds a well-formed Chrome trace: parses the JSON with
/// the in-repo parser and checks the `traceEvents` envelope plus the per-event
/// required fields. This is the CI smoke gate for the trace exporter.
fn cmd_trace_check(path: &str) -> Result<(), String> {
    use tbr_common::json;

    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("{path}: missing `traceEvents` array"))?;
    let mut spans = 0usize;
    let mut instants = 0usize;
    let mut metadata = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{path}: event {i} has no `ph`"))?;
        for field in ["pid", "tid"] {
            if ev.get(field).and_then(|v| v.as_f64()).is_none() {
                return Err(format!("{path}: event {i} ({ph}) has no numeric `{field}`"));
            }
        }
        match ph {
            "X" => {
                spans += 1;
                for field in ["ts", "dur"] {
                    if ev.get(field).and_then(|v| v.as_f64()).is_none() {
                        return Err(format!("{path}: span {i} has no numeric `{field}`"));
                    }
                }
            }
            "i" => instants += 1,
            "M" => metadata += 1,
            other => return Err(format!("{path}: event {i} has unexpected phase `{other}`")),
        }
    }
    println!(
        "{path}: ok — {} events ({spans} spans, {instants} instants, {metadata} metadata)",
        events.len()
    );
    Ok(())
}

fn cmd_compare(abbrev: &str, o: &Opts) -> Result<(), String> {
    let p = find(abbrev)?;
    let base_cfg = GpuConfig::baseline(screen(o));
    let dual_cfg = GpuConfig::libra(screen(o), 2);
    let base = simulate_sequence(&base_cfg, SchedulerKind::SingleZOrder, &p, o.frames);
    let ptr = simulate_sequence(&dual_cfg, SchedulerKind::InterleavedZOrder, &p, o.frames);
    let libra = simulate_sequence(&dual_cfg, SchedulerKind::Libra, &p, o.frames);
    print!(
        "{}",
        report::sequence_summary("baseline 1RUx8", &base, &base_cfg)
    );
    print!("{}", report::sequence_summary("PTR 2RUx4", &ptr, &dual_cfg));
    print!(
        "{}",
        report::sequence_summary("LIBRA 2RUx4", &libra, &dual_cfg)
    );
    println!("{}", report::compare("baseline", &base, "PTR  ", &ptr));
    println!("{}", report::compare("baseline", &base, "LIBRA", &libra));
    Ok(())
}

fn cmd_sweep_ru(abbrev: &str, o: &Opts) -> Result<(), String> {
    let p = find(abbrev)?;
    println!("{:<4} {:>12} {:>9}", "RUs", "cycles/f", "speedup");
    let mut base_cycles = 0.0;
    for n in 1..=4usize {
        let cfg = GpuConfig::libra(screen(o), n);
        let s = simulate_sequence(&cfg, SchedulerKind::Libra, &p, o.frames);
        if n == 1 {
            base_cycles = s.avg_frame_cycles();
        }
        println!(
            "{:<4} {:>12.0} {:>8.3}x",
            n,
            s.avg_frame_cycles(),
            base_cycles / s.avg_frame_cycles()
        );
    }
    Ok(())
}

/// Scan-vs-heap-vs-par wall-clock comparison over the whole suite: the
/// recorded (never asserted) simulation-throughput benchmark; the parallel
/// driver is timed at each of [`throughput::PAR_THREADS`] worker counts.
/// Writes the JSON record to `bench_results/sim_throughput.json` and to
/// `--out` (default `BENCH_sim_throughput.json`), and appends one history
/// line to the bench-history file. With `--explain`, additionally profiles
/// the parallel driver and prints/writes the speedup attribution.
fn cmd_throughput(o: &Opts) -> Result<(), String> {
    use libra_bench::history;
    use tbr_sim::attribution;

    let cfg = config(o);
    let profiles = suite();
    println!(
        "throughput: {} workloads x {} frames, {} RU x {} cores, scheduler {:?} (scan, heap, par)",
        profiles.len(),
        o.frames,
        o.rus,
        o.cores,
        o.scheduler
    );
    let report = if o.explain {
        let (report, attr) = attribution::explain(&cfg, o.scheduler, &profiles, o.frames);
        print!("{}", report.render());
        print!("{}", attr.render());
        write_file(
            "bench_results/sim_throughput_attribution.json",
            &attr.to_json(),
            "speedup attribution",
        )?;
        report
    } else {
        let report = throughput::compare(&cfg, o.scheduler, &profiles, o.frames);
        print!("{}", report.render());
        report
    };
    let json = report.to_json();
    write_file(
        "bench_results/sim_throughput.json",
        &json,
        "throughput record",
    )?;
    let root = o.out.as_deref().unwrap_or("BENCH_sim_throughput.json");
    write_file(root, &json, "throughput record")?;
    let hist = o.history.clone().unwrap_or_else(history::history_path);
    history::append(&hist, &history::HistoryRecord::from_report(&report))?;
    println!("history appended to {hist}");
    Ok(())
}

/// Diffs the most recent bench-history record against the committed baseline
/// with a tolerance band. Report-only by default (wall-clock on shared runners
/// is too noisy to gate on); `--strict` turns a regression into a failure.
fn cmd_bench_compare(o: &Opts) -> Result<(), String> {
    use libra_bench::history;

    let baseline_path = o
        .baseline
        .clone()
        .unwrap_or_else(|| history::DEFAULT_BASELINE.to_string());
    let hist = o.history.clone().unwrap_or_else(history::history_path);
    let baseline = history::load_baseline(&baseline_path)?;
    let current = history::load_last(&hist)?
        .ok_or_else(|| format!("{hist}: no history records (run `libra-sim throughput` first)"))?;
    let report = history::compare(&baseline, &current, o.tolerance);
    print!("{}", report.render());
    if report.any_regressed() {
        if o.strict {
            return Err("bench-compare: regression beyond tolerance (--strict)".into());
        }
        println!("bench-compare: report-only (pass --strict to fail on regression)");
    }
    Ok(())
}

use tbr_sim::report::campaign_metrics_json;

/// Parallel sweep of the whole suite under one scheduler: the smallest useful
/// campaign (one job per workload), reported in campaign order with wall-clock and
/// per-job summary lines.
///
/// Fault-tolerant by default: jobs that panic or exceed `--budget-cycles` become
/// structured failures (retried per `--retries`), completed jobs are appended to a
/// checkpoint file, and `--resume` continues an interrupted sweep bit-identically.
fn cmd_campaign(o: &Opts) -> Result<(), String> {
    use tbr_sim::{Campaign, FaultSpec, RunOptions};

    let cfg = config(o);
    let threads = o.threads.max(1);
    let schedulers = [o.scheduler];
    let mut profiles = suite();
    if let Some(n) = o.take {
        profiles.truncate(n);
    }
    let mech = mech(o);
    let campaign = Campaign::grid_mech(o.seed, &cfg, &schedulers, mech, &profiles, o.frames);
    println!(
        "campaign: {} jobs ({} workloads x {} scheduler, mechanism {}) on {} thread(s), seed {}",
        campaign.len(),
        profiles.len(),
        schedulers.len(),
        mech,
        threads,
        o.seed
    );

    let start = std::time::Instant::now();
    let results = if o.verify {
        let (results, par_secs, ser_secs) = campaign.run_verified(threads);
        println!(
            "verify: parallel ({} threads) bit-identical to serial — {:.2}s vs {:.2}s ({:.2}x)",
            threads,
            par_secs,
            ser_secs,
            ser_secs / par_secs.max(1e-9)
        );
        results
    } else {
        let fault = match &o.fault {
            Some(spec) => Some(FaultSpec::parse(spec)?),
            None => FaultSpec::from_env(),
        };
        // Checkpoint by default so an interrupted sweep is always resumable;
        // --resume without --checkpoint keeps appending to the resume file.
        let checkpoint_to = if o.no_checkpoint || o.resume.is_some() {
            o.checkpoint.clone()
        } else {
            // Binary sidecars get their own extension so a glance at
            // bench_results/ tells the encoding apart.
            let ext = match o.ckpt_format {
                CheckpointFormat::Binary => "ckptb",
                CheckpointFormat::Json => "ckpt",
            };
            // Non-default mechanisms get their own sidecar so an `re` sweep
            // never clobbers (or resumes into) the plain sweep's checkpoint.
            let mech_tag = if mech.is_default() {
                String::new()
            } else {
                format!("_{}", mech.name().replace('+', "-"))
            };
            o.checkpoint.clone().or_else(|| {
                Some(format!(
                    "bench_results/campaign_{}{mech_tag}_seed{}_f{}.{ext}",
                    o.scheduler.build().name(),
                    o.seed,
                    o.frames
                ))
            })
        };
        let opts = RunOptions {
            threads,
            traced: o.trace_out.is_some(),
            budget_cycles: o.budget_cycles,
            retries: o.retries,
            fault,
            checkpoint_to: checkpoint_to.clone(),
            resume_from: o.resume.clone(),
            ckpt_format: o.ckpt_format,
            hostprof: o.profile || tbr_common::hostprof::env_enabled(),
        };
        let run = campaign.run_resilient(&opts)?;
        if run.resumed_jobs > 0 {
            println!(
                "resume: adopted {} completed job(s) from {}, ran the remaining {}",
                run.resumed_jobs,
                o.resume.as_deref().unwrap_or("checkpoint"),
                run.results.len() - run.resumed_jobs
            );
        }
        if let Some(path) = checkpoint_to.as_deref().or(o.resume.as_deref()) {
            println!("checkpoint: {path}");
        }
        if let Some(e) = &run.checkpoint_error {
            eprintln!("warning: checkpoint writes degraded ({e}); results are complete anyway");
        }
        if let Some(path) = &o.trace_out {
            write_file(
                path,
                &tbr_common::trace::Trace::chrome_json_multi(&run.traces),
                "Chrome trace",
            )?;
        }
        if o.profile {
            let profile = &run.profile;
            write_file(
                "bench_results/campaign_workers.csv",
                &profile.workers_csv(),
                "worker profile",
            )?;
            write_file(
                "bench_results/campaign_jobs.csv",
                &profile.jobs_csv(),
                "job profile",
            )?;
            println!(
                "profile: {} threads, {:.2}s wall, {:.1}% mean worker utilization, {} steals",
                profile.threads,
                profile.wall_secs,
                profile.utilization() * 100.0,
                profile.workers.iter().map(|w| w.steals).sum::<u64>()
            );
            if let Some(host) = &profile.host {
                write_file(
                    "bench_results/campaign_hostprof.json",
                    &host.to_json(),
                    "host telemetry",
                )?;
                print!("{}", host.render());
            }
        }
        run.results
    };
    let elapsed = start.elapsed().as_secs_f64();

    println!(
        "{:<6} {:<10} {:>12} {:>12} {:>8}",
        "bench", "scheduler", "cycles/f", "dram", "texL1%"
    );
    for r in &results {
        match r.stats() {
            Some(stats) => println!(
                "{:<6} {:<10} {:>12.0} {:>12} {:>7.1}%",
                r.abbrev(),
                r.scheduler(),
                stats.avg_frame_cycles(),
                stats.total_dram_accesses(),
                stats.texture_hit_ratio() * 100.0
            ),
            None => println!("{:<6} {:<10} -- no result --", r.abbrev(), r.scheduler()),
        }
    }
    if let Some(path) = &o.report_json {
        write_file(
            path,
            &campaign_metrics_json(&results),
            "campaign metrics report",
        )?;
    }

    let done = results.iter().filter(|r| r.is_success()).count();
    let failures: Vec<String> = results.iter().filter_map(|r| r.failure_line()).collect();
    println!(
        "campaign done: {done}/{} jobs x {} frames in {elapsed:.2}s wall-clock",
        results.len(),
        o.frames,
    );
    if !failures.is_empty() {
        for line in &failures {
            eprintln!("  {line}");
        }
        return Err(format!(
            "{} of {} jobs did not complete (survivor outputs were still written; \
             re-run with --resume to retry the failures)",
            failures.len(),
            results.len()
        ));
    }
    Ok(())
}

/// The wire spelling of a scheduler kind (inverse of `wire::parse_scheduler`).
/// Only kinds the CLI vocabulary can name are submittable.
fn scheduler_wire_name(k: SchedulerKind) -> Result<String, String> {
    Ok(match k {
        SchedulerKind::SingleZOrder => "z".into(),
        SchedulerKind::Scanline => "scanline".into(),
        SchedulerKind::Hilbert => "hilbert".into(),
        SchedulerKind::StaticSupertile(n) => format!("static{n}"),
        SchedulerKind::Libra => "libra".into(),
        other => return Err(format!("scheduler {other:?} has no wire spelling")),
    })
}

/// The campaign spec the current CLI options describe, in wire form.
fn spec_from_opts(o: &Opts) -> Result<tbr_sim::JobSpec, String> {
    Ok(tbr_sim::JobSpec {
        seed: o.seed,
        scheduler: scheduler_wire_name(o.scheduler)?,
        mechanism: mech(o).name(),
        frames: o.frames,
        rus: o.rus,
        cores: o.cores,
        screen: if o.fhd { "fhd".into() } else { "quarter".into() },
        ideal_memory: o.ideal,
        take: o.take,
    })
}

fn progress_line(prefix: &str, msg: &tbr_sim::Message) {
    if let tbr_sim::Message::Progress { job, done, total, abbrev, scheduler, ok } = msg {
        println!(
            "{prefix}: job {job} ({abbrev}/{scheduler}) {} [{done}/{total}]",
            if *ok { "ok" } else { "FAILED" }
        );
    }
}

/// Long-running campaign coordinator: accepts `submit` connections and shards
/// each sweep across `--workers` spawned `libra-sim worker` processes. The
/// aggregated report is byte-identical to `libra-sim campaign` of the same
/// spec (see docs/OPERATIONS.md §8).
fn cmd_serve(o: &Opts) -> Result<(), String> {
    use tbr_sim::{Coordinator, Message, ServeOptions};

    let workers = o.workers.max(1);
    let opts = ServeOptions {
        workers,
        once: o.once,
        kill_job: o.kill_worker,
        checkpoint_to: o.checkpoint.clone(),
        ..ServeOptions::default()
    };
    let coord = Coordinator::bind(&o.addr, opts)?;
    let addr = coord.local_addr()?;
    // Scripts poll for this exact line (and parse the resolved port out of
    // it when binding port 0), so print-and-flush before accepting.
    println!("serve: listening on {addr} ({workers} workers)");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    coord.serve(&mut |msg: &Message| match msg {
        Message::Progress { .. } => progress_line("serve", msg),
        Message::Report { summary, .. } => println!("serve: report: {summary}"),
        Message::Error { message } => eprintln!("serve: error: {message}"),
        _ => {}
    })
}

/// Client side of the campaign service: submit a sweep spec to a coordinator,
/// stream its progress, and (optionally) write the returned report.
fn cmd_submit(o: &Opts) -> Result<(), String> {
    use tbr_sim::service;

    let spec = spec_from_opts(o)?;
    let outcome = service::submit(
        &o.addr,
        &spec,
        service::default_timeout(),
        &mut |msg| progress_line("submit", msg),
    )?;
    println!(
        "submit: {} jobs done, fingerprint {:#x}, {}",
        outcome.jobs, outcome.fingerprint, outcome.summary
    );
    for (i, h) in outcome.hosts.iter().enumerate() {
        println!(
            "submit: worker {i} host: {} core(s), rev {}, {}",
            h.cores, h.git_rev, h.utc
        );
    }
    if outcome.crashes > 0 {
        println!(
            "submit: sweep absorbed {} worker crash(es) (results are unaffected)",
            outcome.crashes
        );
    }
    if let Some(path) = &o.report_json {
        write_file(path, &outcome.report_json, "campaign metrics report")?;
    }
    Ok(())
}

fn usage() {
    eprintln!(
        "usage: libra-sim <suite|run|compare|sweep-ru|campaign|serve|submit|worker|throughput|\
         bench-compare|trace-check> \
         [ABBREV|FILE] [--frames N] [--fhd] [--scheduler z|scanline|hilbert|staticN|libra] \
         [--mechanism none|re|wasp|re+wasp|re-oracle|re-oracle+wasp] [--re-oracle] \
         [--rus N] [--cores N] [--ideal-memory] [--event-loop heap|scan|par] \
         [--sim-threads N] [--threads N] [--take N] \
         [--seed S] [--verify] [--profile] [--trace-out FILE] [--report-json FILE] [--out FILE] \
         [--checkpoint FILE] [--no-checkpoint] [--ckpt-format binary|json] [--resume FILE] \
         [--budget-cycles N] \
         [--retries N] [--fault KIND:JOB] \
         [--addr HOST:PORT] [--workers N] [--once] [--kill-worker JOB] \
         [--explain] [--history FILE] [--baseline FILE] [--tolerance PCT] [--strict]\n\
         env: LIBRA_SIM_THREADS (par-driver workers), LIBRA_HOSTPROF=1 (host-time \
         telemetry), LIBRA_BENCH_HISTORY (history file), LIBRA_TEST_TIMEOUT_SECS \
         (service read timeout)  (see docs/OPERATIONS.md)"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        usage();
        return ExitCode::FAILURE;
    };
    // CLI mistakes (bad flags, missing operands) get the usage text; runtime
    // failures (a failed campaign job, an invalid trace file) get only the
    // structured error — re-printing usage there would bury the report.
    let result = match cmd {
        "suite" => {
            cmd_suite();
            Ok(())
        }
        "campaign" | "throughput" | "bench-compare" | "serve" | "submit" => {
            match parse_opts(&args[1..]) {
                Err(e) => {
                    eprintln!("error: {e}");
                    usage();
                    return ExitCode::FAILURE;
                }
                Ok(o) => match cmd {
                    "campaign" => cmd_campaign(&o),
                    "throughput" => cmd_throughput(&o),
                    "serve" => cmd_serve(&o),
                    "submit" => cmd_submit(&o),
                    _ => cmd_bench_compare(&o),
                },
            }
        }
        // The worker speaks libra-wire-v1 on stdio and takes no options; its
        // stdout belongs to the protocol, so nothing else may print there.
        "worker" => tbr_sim::service::run_worker(),
        "trace-check" => {
            let Some(path) = args.get(1) else {
                usage();
                return ExitCode::FAILURE;
            };
            cmd_trace_check(path)
        }
        "run" | "compare" | "sweep-ru" => {
            let Some(abbrev) = args.get(1) else {
                usage();
                return ExitCode::FAILURE;
            };
            match parse_opts(&args[2..]) {
                Err(e) => {
                    eprintln!("error: {e}");
                    usage();
                    return ExitCode::FAILURE;
                }
                Ok(o) => match cmd {
                    "run" => cmd_run(abbrev, &o),
                    "compare" => cmd_compare(abbrev, &o),
                    _ => cmd_sweep_ru(abbrev, &o),
                },
            }
        }
        _ => {
            eprintln!("error: unknown command `{cmd}`");
            usage();
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
