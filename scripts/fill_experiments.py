#!/usr/bin/env python3
"""Fills EXPERIMENTS.md placeholders from bench_output.txt.

Usage: python3 scripts/fill_experiments.py
Idempotent only on a template containing {FIGxx} placeholders; keep a template copy
if you plan to re-run.
"""
import re
import sys
from pathlib import Path

root = Path(__file__).resolve().parent.parent
out = (root / "bench_output.txt").read_text()
exp_path = root / "EXPERIMENTS.md"
exp = exp_path.read_text()


def grab(pattern, default="(not in this run)"):
    m = re.search(pattern, out)
    return m.group(1).strip() if m else default


subs = {
    "{FIG01}": grab(r"AVG raster fraction: ([\d.]+%)"),
    "{V01}": "reproduced (raster dominates)",
    "{FIG02}": grab(r"contrast = p90/p50 = ([\d.]+)x"),
    "{FIG04}": grab(r"(\d+ of \d+) benchmarks below 1.5x"),
    "{V04}": "direction reproduced; all benchmarks scale poorly here (see divergences)",
    "{FIG06A}": grab(r"(\d+ of \d+) benchmarks are memory-intensive[^\n]*"),
    "{V06A}": "threshold classification diverges (see divergences)",
    "{FIG06B}": grab(r"Pearson correlation\(memory fraction, PTR speedup\) = (-?[\d.]+)"),
    "{V06B}": "reproduced (negative correlation)",
    "{FIG08}": grab(r"fraction of tiles with <20% change: ([\d.]+%)"),
    "{V08}": "reproduced",
    "{FIG11}": grab(r"AVG \(geomean\): (PTR \+[\d.]+%  scheduler \+?-?[\d.]+%  total \+[\d.]+%)\s+\(paper: \+13.2"),
    "{FIG12}": grab(r"AVG decrease: (PTR [-+][\d.]+%  LIBRA [-+][\d.]+%)"),
    "{V12}": "direction reproduced",
    "{FIG13}": grab(r"AVG: hit-ratio increase (PTR \+[\d.]+%, LIBRA \+[\d.]+%)"),
    "{V13}": "direction reproduced",
    "{FIG14}": grab(r"AVG normalised accesses: ([\d.]+)"),
    "{V14}": "reproduced (volume ~constant)",
    "{FIG15}": grab(r"AVG decrease: (PTR [-+][\d.]+%  scheduler [-+][\d.]+%  total [-+][\d.]+%)"),
    "{V15}": "direction reproduced",
    "{FIG16}": grab(r"AVG\s+((?:\s*[-+][\d.]+%){5})").replace("\n", " "),
    "{V16}": "shape reproduced (dynamic ≥ statics)",
    "{FIG17}": grab(r"AVG \(geomean\): (PTR \+[\d.]+%  scheduler \+?-?[\d.]+%  total \+[\d.]+%)\s+\(paper: \+9.9"),
    "{V17}": "reproduced",
    "{FIG18}": grab(r"AVG \(geomean\): (2RU [-+][\d.]+%  3RU [-+][\d.]+%  4RU [-+][\d.]+%)"),
    "{V18}": "shape reproduced (multi-RU keeps helping)",
    "{FIG19A}": "see fig19a table in bench_output.txt",
    "{V19A}": "flat-beyond-threshold shape reproduced",
    "{FIG19B}": "see fig19b table in bench_output.txt",
    "{V19B}": "flat-beyond-threshold shape reproduced",
    "{TAB2}": grab(r"average estimated footprint: ([\d.]+ MB)/frame"),
    "{HW}": grab(r"ranking hides under geometry:\s+(\w+)") + " (4080 B table, 13770-cycle ranking)",
    "{ABL_PRED}": grab(r"AVG speedup over PTR: (LIBRA [-+][\d.]+%  oracle [-+][\d.]+%)"),
    "{ABL_MEM}": "normalised cycles " + grab(r"AVG\s+(1\.000x[^\n]*)"),
}

for k, v in subs.items():
    exp = exp.replace(k, v)

exp_path.write_text(exp)
missing = re.findall(r"\{[A-Z0-9_]+\}", exp)
print("filled; missing placeholders:", missing or "none")
