#!/usr/bin/env bash
# CI gate: hermetic offline build, full test suite, and a 2-thread campaign smoke
# run verified bit-identical against serial execution.
#
# The workspace has zero crates.io dependencies, so everything here must succeed
# with no network and no registry cache. CARGO_NET_OFFLINE=1 turns any accidental
# reintroduction of an external dependency into a hard failure.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=1

echo "== [1/14] offline release build =="
cargo build --release --workspace

echo "== [2/14] clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== [3/14] rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== [4/14] test suite =="
cargo test -q

echo "== [5/14] trace-export smoke (emit, then validate with the in-repo parser) =="
cargo run --release --bin libra-sim -- run AAt --frames 1 \
    --trace-out target/ci_trace.json --report-json target/ci_report.json
cargo run --release --bin libra-sim -- trace-check target/ci_trace.json

echo "== [6/14] 2-thread campaign smoke (parallel == serial, bit-identical) =="
cargo run --release --bin libra-sim -- campaign --frames 1 --threads 2 --verify

echo "== [7/14] heap-vs-scan event-loop differential smoke (metrics bit-identical) =="
cargo run --release --bin libra-sim -- run CCS --frames 2 --event-loop scan \
    --report-json target/ci_eventloop_scan.json
cargo run --release --bin libra-sim -- run CCS --frames 2 --event-loop heap \
    --report-json target/ci_eventloop_heap.json
cmp target/ci_eventloop_scan.json target/ci_eventloop_heap.json

echo "== [8/14] par-vs-heap event-loop differential smoke (2 worker threads, metrics bit-identical) =="
cargo run --release --bin libra-sim -- run CCS --frames 2 --event-loop par --sim-threads 2 \
    --report-json target/ci_eventloop_par.json
cmp target/ci_eventloop_heap.json target/ci_eventloop_par.json

echo "== [9/14] kill-and-resume smoke (poison one job, resume, metrics bit-identical) =="
# Reference: an uninterrupted sweep (no checkpoint so it cannot collide).
cargo run --release --bin libra-sim -- campaign --frames 1 --threads 2 \
    --no-checkpoint --report-json target/ci_campaign_ref.json
# Poisoned: LIBRA_FAULT (the env form) panics job 5, --retries 0 makes the
# failure stick, and the run exits non-zero by design — assert exactly that.
rm -f target/ci_campaign.ckpt
if LIBRA_FAULT=panic:5 cargo run --release --bin libra-sim -- campaign --frames 1 \
    --threads 2 --retries 0 --checkpoint target/ci_campaign.ckpt \
    --report-json target/ci_campaign_poisoned.json; then
    echo "ERROR: poisoned campaign was expected to exit non-zero" >&2
    exit 1
fi
# Resume: only the poisoned job re-runs; the final report must be bit-identical
# to the uninterrupted reference.
cargo run --release --bin libra-sim -- campaign --frames 1 --threads 2 \
    --resume target/ci_campaign.ckpt --report-json target/ci_campaign_resumed.json
cmp target/ci_campaign_ref.json target/ci_campaign_resumed.json

echo "== [10/14] binary-checkpoint kill-and-resume (torn sidecar healed byte-identically) =="
# Reference: a serial sweep writing the default binary sidecar (job order is
# deterministic at --threads 1, so the file is byte-reproducible).
rm -f target/ci_campaign_ref.ckptb target/ci_campaign_cut.ckptb
cargo run --release --bin libra-sim -- campaign --frames 1 --threads 1 \
    --checkpoint target/ci_campaign_ref.ckptb >/dev/null
# Simulate a crash after the second append: keep the 36-byte header plus two
# complete length-prefixed frames. (od honours host byte order; the format is
# little-endian, as are all supported CI hosts.)
off=36
for _ in 1 2; do
    len=$(od -An -tu4 -j "$off" -N 4 target/ci_campaign_ref.ckptb | tr -d ' ')
    off=$((off + 4 + len))
done
head -c "$off" target/ci_campaign_ref.ckptb > target/ci_campaign_cut.ckptb
# Resume appends the missing suffix in the same serial order; the healed
# sidecar must be byte-identical to the uninterrupted reference.
cargo run --release --bin libra-sim -- campaign --frames 1 --threads 1 \
    --resume target/ci_campaign_cut.ckptb >/dev/null
cmp target/ci_campaign_ref.ckptb target/ci_campaign_cut.ckptb

echo "== [11/14] sim-throughput record (scan vs heap vs par wall-clock; record only, never asserted) =="
cargo run --release --bin libra-sim -- throughput --frames 1 --rus 64 --cores 8 \
    --out BENCH_sim_throughput.json

echo "== [12/14] speedup attribution + bench-history compare (report-only) =="
# Small config: the point is the plumbing (hostprof, attribution invariants,
# history append, baseline diff), not the numbers. The CI history lives under
# target/ so the committed history file is never dirtied, and the compare is
# report-only — wall-clock on shared runners is too noisy to gate merges on.
rm -f target/ci_bench_history.jsonl
cp bench_results/sim_throughput.json target/ci_sim_throughput_saved.json
LIBRA_BENCH_HISTORY=target/ci_bench_history.jsonl \
    cargo run --release --bin libra-sim -- throughput --frames 1 --rus 4 --cores 2 \
    --explain --out target/ci_throughput_explain.json
LIBRA_BENCH_HISTORY=target/ci_bench_history.jsonl \
    cargo run --release --bin libra-sim -- bench-compare
# The small-config run overwrote the gate-10 record; put it back.
mv target/ci_sim_throughput_saved.json bench_results/sim_throughput.json

echo "== [13/14] campaign service smoke (serve/submit on loopback, 2 workers, report byte-identical to serial campaign) =="
# Reference: a plain single-process 4-job sweep.
cargo run --release --bin libra-sim -- campaign --frames 1 --take 4 --threads 1 \
    --no-checkpoint --report-json target/ci_serve_ref.json >/dev/null
# Coordinator on an ephemeral port (printed in the "listening on" line), one
# connection, two worker processes.
rm -f target/ci_serve_listen.log
cargo run --release --bin libra-sim -- serve --addr 127.0.0.1:0 --workers 2 --once \
    > target/ci_serve_listen.log 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" target/ci_serve_listen.log && break
    sleep 0.1
done
SERVE_ADDR=$(sed -n 's/serve: listening on \([0-9.:]*\) .*/\1/p' target/ci_serve_listen.log)
if [ -z "$SERVE_ADDR" ]; then
    echo "ERROR: coordinator never reported its address" >&2
    cat target/ci_serve_listen.log >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
cargo run --release --bin libra-sim -- submit --addr "$SERVE_ADDR" --frames 1 --take 4 \
    --report-json target/ci_serve_report.json
wait "$SERVE_PID"
# The sharded report must be byte-identical to the single-process one.
cmp target/ci_serve_ref.json target/ci_serve_report.json

echo "== [14/14] mechanism sweep smoke (re+wasp campaign, serial == 2-thread bit-identical) =="
# The mechanism axes must compose with the campaign driver deterministically:
# the same re+wasp sweep on 1 and 2 threads writes byte-identical reports
# (per-job cycles, DRAM and cache counters under RE discards + WaSP reorders).
cargo run --release --bin libra-sim -- campaign --frames 2 --take 4 --threads 1 \
    --mechanism re+wasp --no-checkpoint \
    --report-json target/ci_mech_serial.json >/dev/null
cargo run --release --bin libra-sim -- campaign --frames 2 --take 4 --threads 2 \
    --mechanism re+wasp --no-checkpoint \
    --report-json target/ci_mech_thr2.json >/dev/null
cmp target/ci_mech_serial.json target/ci_mech_thr2.json

echo "ci.sh: all gates passed"
