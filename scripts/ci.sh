#!/usr/bin/env bash
# CI gate: hermetic offline build, full test suite, and a 2-thread campaign smoke
# run verified bit-identical against serial execution.
#
# The workspace has zero crates.io dependencies, so everything here must succeed
# with no network and no registry cache. CARGO_NET_OFFLINE=1 turns any accidental
# reintroduction of an external dependency into a hard failure.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=1

echo "== [1/7] offline release build =="
cargo build --release --workspace

echo "== [2/7] clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== [3/7] test suite =="
cargo test -q

echo "== [4/7] trace-export smoke (emit, then validate with the in-repo parser) =="
cargo run --release --bin libra-sim -- run AAt --frames 1 \
    --trace-out target/ci_trace.json --report-json target/ci_report.json
cargo run --release --bin libra-sim -- trace-check target/ci_trace.json

echo "== [5/7] 2-thread campaign smoke (parallel == serial, bit-identical) =="
cargo run --release --bin libra-sim -- campaign --frames 1 --threads 2 --verify

echo "== [6/7] heap-vs-scan event-loop differential smoke (metrics bit-identical) =="
cargo run --release --bin libra-sim -- run CCS --frames 2 --event-loop scan \
    --report-json target/ci_eventloop_scan.json
cargo run --release --bin libra-sim -- run CCS --frames 2 --event-loop heap \
    --report-json target/ci_eventloop_heap.json
cmp target/ci_eventloop_scan.json target/ci_eventloop_heap.json

echo "== [7/7] sim-throughput record (scan vs heap wall-clock; record only, never asserted) =="
cargo run --release --bin libra-sim -- throughput --frames 1 --rus 64 --cores 8 \
    --out BENCH_sim_throughput.json

echo "ci.sh: all gates passed"
