#!/usr/bin/env bash
# CI gate: hermetic offline build, full test suite, and a 2-thread campaign smoke
# run verified bit-identical against serial execution.
#
# The workspace has zero crates.io dependencies, so everything here must succeed
# with no network and no registry cache. CARGO_NET_OFFLINE=1 turns any accidental
# reintroduction of an external dependency into a hard failure.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=1

echo "== [1/10] offline release build =="
cargo build --release --workspace

echo "== [2/10] clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== [3/10] rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== [4/10] test suite =="
cargo test -q

echo "== [5/10] trace-export smoke (emit, then validate with the in-repo parser) =="
cargo run --release --bin libra-sim -- run AAt --frames 1 \
    --trace-out target/ci_trace.json --report-json target/ci_report.json
cargo run --release --bin libra-sim -- trace-check target/ci_trace.json

echo "== [6/10] 2-thread campaign smoke (parallel == serial, bit-identical) =="
cargo run --release --bin libra-sim -- campaign --frames 1 --threads 2 --verify

echo "== [7/10] heap-vs-scan event-loop differential smoke (metrics bit-identical) =="
cargo run --release --bin libra-sim -- run CCS --frames 2 --event-loop scan \
    --report-json target/ci_eventloop_scan.json
cargo run --release --bin libra-sim -- run CCS --frames 2 --event-loop heap \
    --report-json target/ci_eventloop_heap.json
cmp target/ci_eventloop_scan.json target/ci_eventloop_heap.json

echo "== [8/10] par-vs-heap event-loop differential smoke (2 worker threads, metrics bit-identical) =="
cargo run --release --bin libra-sim -- run CCS --frames 2 --event-loop par --sim-threads 2 \
    --report-json target/ci_eventloop_par.json
cmp target/ci_eventloop_heap.json target/ci_eventloop_par.json

echo "== [9/10] kill-and-resume smoke (poison one job, resume, metrics bit-identical) =="
# Reference: an uninterrupted sweep (no checkpoint so it cannot collide).
cargo run --release --bin libra-sim -- campaign --frames 1 --threads 2 \
    --no-checkpoint --report-json target/ci_campaign_ref.json
# Poisoned: LIBRA_FAULT (the env form) panics job 5, --retries 0 makes the
# failure stick, and the run exits non-zero by design — assert exactly that.
rm -f target/ci_campaign.ckpt
if LIBRA_FAULT=panic:5 cargo run --release --bin libra-sim -- campaign --frames 1 \
    --threads 2 --retries 0 --checkpoint target/ci_campaign.ckpt \
    --report-json target/ci_campaign_poisoned.json; then
    echo "ERROR: poisoned campaign was expected to exit non-zero" >&2
    exit 1
fi
# Resume: only the poisoned job re-runs; the final report must be bit-identical
# to the uninterrupted reference.
cargo run --release --bin libra-sim -- campaign --frames 1 --threads 2 \
    --resume target/ci_campaign.ckpt --report-json target/ci_campaign_resumed.json
cmp target/ci_campaign_ref.json target/ci_campaign_resumed.json

echo "== [10/10] sim-throughput record (scan vs heap vs par wall-clock; record only, never asserted) =="
cargo run --release --bin libra-sim -- throughput --frames 1 --rus 64 --cores 8 \
    --out BENCH_sim_throughput.json

echo "ci.sh: all gates passed"
