//! The tile-sized on-chip Colour Buffer and the Blending Unit.
//!
//! §II-A: "output colors are processed by the Blending Unit to properly combine them
//! with the ones already in the same position in the *Color Buffer* […] once all the
//! primitives in the current tile have been completely rendered, the content of the
//! Color Buffer is flushed to the *Frame Buffer*."

use crate::quad::Quad;
use tbr_common::addr::framebuffer_addr;
use tbr_common::config::ScreenConfig;
use tbr_common::ids::TileId;
use tbr_geom::scene::BlendMode;

/// Tile-local colour storage (RGBA8 packed as `0xAABBGGRR`).
#[derive(Debug, Clone)]
pub struct ColorBuffer {
    size: u32,
    pixels: Vec<u32>,
}

/// The colour tiles are cleared to at the start of each tile (dark grey).
pub const CLEAR_COLOR: u32 = 0xFF20_2020;

fn blend_alpha(dst: u32, src: u32) -> u32 {
    // Fixed 50 % source-over blend — enough to exercise read-modify-write behaviour
    // and produce plausible images.
    let mut out = 0xFF00_0000u32;
    for shift in [0u32, 8, 16] {
        let d = (dst >> shift) & 0xFF;
        let s = (src >> shift) & 0xFF;
        out |= (((d + s) / 2) & 0xFF) << shift;
    }
    out
}

impl ColorBuffer {
    /// A cleared buffer for a `size`×`size` tile.
    ///
    /// # Panics
    /// Panics if `size` is zero.
    pub fn new(size: u32) -> Self {
        assert!(size > 0, "tile size must be non-zero");
        Self { size, pixels: vec![CLEAR_COLOR; (size * size) as usize] }
    }

    /// Clears for the next tile.
    pub fn clear(&mut self) {
        self.pixels.fill(CLEAR_COLOR);
    }

    /// Writes the surviving lanes of a shaded quad. Coordinates are screen-space;
    /// `(tile_x0, tile_y0)` is the tile origin.
    pub fn write_quad(
        &mut self,
        quad: &Quad,
        surviving: u8,
        colors: [u32; 4],
        blend: BlendMode,
        tile_x0: u32,
        tile_y0: u32,
    ) {
        self.write_lanes(quad.x, quad.y, surviving, colors, blend, tile_x0, tile_y0)
    }

    /// Lane-based body of [`ColorBuffer::write_quad`]: the SoA raster loop calls
    /// this directly with the `x`/`y` lanes of a [`crate::quad::QuadStream`]
    /// entry, skipping the depth and texcoord lanes entirely.
    #[allow(clippy::too_many_arguments)]
    pub fn write_lanes(
        &mut self,
        x: u32,
        y: u32,
        surviving: u8,
        colors: [u32; 4],
        blend: BlendMode,
        tile_x0: u32,
        tile_y0: u32,
    ) {
        for (lane, &color) in colors.iter().enumerate() {
            if surviving & (1 << lane) == 0 {
                continue;
            }
            let px = x + (lane as u32 & 1);
            let py = y + (lane as u32 >> 1);
            let lx = px - tile_x0;
            let ly = py - tile_y0;
            debug_assert!(lx < self.size && ly < self.size, "quad outside tile");
            let idx = (ly * self.size + lx) as usize;
            self.pixels[idx] = match blend {
                BlendMode::Opaque => color,
                BlendMode::AlphaBlend => blend_alpha(self.pixels[idx], color),
            };
        }
    }

    /// The stored colour at tile-local `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinate is outside the tile.
    pub fn color_at(&self, x: u32, y: u32) -> u32 {
        assert!(x < self.size && y < self.size, "coordinate outside tile");
        self.pixels[(y * self.size + x) as usize]
    }

    /// The 64 B-line framebuffer addresses the flush of `tile` writes (16 RGBA8
    /// pixels per line, clipped to the screen).
    pub fn flush_line_addrs(&self, tile: TileId, screen: &ScreenConfig) -> Vec<u64> {
        let mut addrs = Vec::new();
        self.flush_addrs_into(tile, screen, &mut addrs);
        addrs
    }

    /// Non-allocating form of [`ColorBuffer::flush_line_addrs`]: clears `out` and
    /// fills it in place, so per-flush callers can reuse one scratch buffer.
    pub fn flush_addrs_into(&self, tile: TileId, screen: &ScreenConfig, out: &mut Vec<u64>) {
        out.clear();
        let (x0, y0, x1, y1) = screen.tile_rect(tile);
        for y in y0..y1 {
            let mut x = x0;
            while x < x1 {
                out.push(framebuffer_addr(screen, x, y));
                x += 16; // 16 pixels x 4 B = 64 B
            }
        }
    }

    /// Copies the tile's pixels into a full-frame image at the tile's position
    /// (used by the reference renderer / examples).
    pub fn blit_to(&self, tile: TileId, screen: &ScreenConfig, frame: &mut [u32]) {
        let (x0, y0, x1, y1) = screen.tile_rect(tile);
        for y in y0..y1 {
            for x in x0..x1 {
                frame[(y * screen.width + x) as usize] = self.color_at(x - x0, y - y0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_at(x: u32, y: u32) -> Quad {
        Quad { x, y, mask: 0xF, z: [0.5; 4], uv: [(0.0, 0.0); 4] }
    }

    #[test]
    fn opaque_write_overwrites() {
        let mut cb = ColorBuffer::new(32);
        cb.write_quad(&quad_at(0, 0), 0xF, [0xFF0000FF; 4], BlendMode::Opaque, 0, 0);
        assert_eq!(cb.color_at(0, 0), 0xFF0000FF);
        assert_eq!(cb.color_at(1, 1), 0xFF0000FF);
        // Unwritten pixel keeps the clear colour.
        assert_eq!(cb.color_at(5, 5), CLEAR_COLOR);
    }

    #[test]
    fn alpha_blend_mixes_channels() {
        let mut cb = ColorBuffer::new(32);
        cb.write_quad(&quad_at(0, 0), 0xF, [0xFF0000FF; 4], BlendMode::Opaque, 0, 0);
        cb.write_quad(&quad_at(0, 0), 0xF, [0xFF000001; 4], BlendMode::AlphaBlend, 0, 0);
        // R channel: (0xFF + 0x01) / 2 = 0x80.
        assert_eq!(cb.color_at(0, 0) & 0xFF, 0x80);
    }

    #[test]
    fn surviving_mask_limits_writes() {
        let mut cb = ColorBuffer::new(32);
        cb.write_quad(&quad_at(0, 0), 0b0001, [0xFFFFFFFF; 4], BlendMode::Opaque, 0, 0);
        assert_eq!(cb.color_at(0, 0), 0xFFFFFFFF);
        assert_eq!(cb.color_at(1, 0), CLEAR_COLOR);
    }

    #[test]
    fn flush_addr_count_matches_tile_bytes() {
        let s = ScreenConfig::tiny(); // 32px tiles
        let cb = ColorBuffer::new(32);
        let addrs = cb.flush_line_addrs(TileId(0), &s);
        // 32 rows x 32 px x 4 B = 4096 B = 64 lines.
        assert_eq!(addrs.len(), 64);
        // All distinct.
        let set: std::collections::HashSet<_> = addrs.iter().collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn flush_addrs_clip_to_screen_edge() {
        let s = ScreenConfig { width: 100, height: 50, tile_size: 32 };
        let cb = ColorBuffer::new(32);
        // Rightmost tile column covers x in [96, 100): 4px -> still 1 line per row.
        let last_col = s.tile_id(tbr_common::ids::TileCoord::new(s.tiles_x() - 1, 0));
        let addrs = cb.flush_line_addrs(last_col, &s);
        assert_eq!(addrs.len(), 32); // 32 rows x 1 segment
    }

    #[test]
    fn blit_places_tile_at_its_screen_position() {
        let s = ScreenConfig::tiny();
        let mut cb = ColorBuffer::new(32);
        cb.write_quad(&quad_at(34, 2), 0b0001, [0xAA; 4], BlendMode::Opaque, 32, 0);
        let mut frame = vec![0u32; (s.width * s.height) as usize];
        cb.blit_to(TileId(1), &s, &mut frame);
        assert_eq!(frame[(2 * s.width + 34) as usize], 0xAA);
    }
}
