//! The tile-sized on-chip Z-Buffer and the Early-Z test.
//!
//! §II-A: "This stage aims to eliminate fragments that are known to be occluded by a
//! previously processed one. This is accomplished by employing a tile-sized on-chip
//! buffer called *Z-Buffer* that stores the depth value of the closest fragment
//! processed for each tile's pixel position so far." The Z-Buffer never needs to be
//! written to main memory (§II-C).

use crate::quad::Quad;

/// Tile-local depth buffer; depth test is less-or-equal (smaller = closer).
#[derive(Debug, Clone)]
pub struct ZBuffer {
    size: u32,
    depths: Vec<f32>,
    /// Fragments killed by the depth test since the last clear.
    pub killed: u64,
    /// Fragments that passed since the last clear.
    pub passed: u64,
}

impl ZBuffer {
    /// A cleared buffer for a `size`×`size` tile.
    ///
    /// # Panics
    /// Panics if `size` is zero.
    pub fn new(size: u32) -> Self {
        assert!(size > 0, "tile size must be non-zero");
        Self { size, depths: vec![f32::INFINITY; (size * size) as usize], killed: 0, passed: 0 }
    }

    /// Clears to "infinitely far" for the next tile; resets the counters.
    pub fn clear(&mut self) {
        self.depths.fill(f32::INFINITY);
        self.killed = 0;
        self.passed = 0;
    }

    /// Depth-tests a quad whose coordinates are relative to the tile origin
    /// `(tile_x0, tile_y0)`. Returns the surviving mask. When `depth_write` is true
    /// (opaque geometry) passing fragments update the buffer; transparent geometry
    /// tests but does not write.
    pub fn test_quad(&mut self, quad: &Quad, tile_x0: u32, tile_y0: u32, depth_write: bool) -> u8 {
        self.test_lanes(quad.x, quad.y, quad.mask, &quad.z, tile_x0, tile_y0, depth_write)
    }

    /// Lane-based body of [`ZBuffer::test_quad`]: the SoA raster loop calls this
    /// directly with the `x`/`y`/`mask`/`z` lanes of a
    /// [`crate::quad::QuadStream`] entry, skipping the `uv` lanes entirely.
    #[allow(clippy::too_many_arguments)]
    pub fn test_lanes(
        &mut self,
        x: u32,
        y: u32,
        mask: u8,
        z: &[f32; 4],
        tile_x0: u32,
        tile_y0: u32,
        depth_write: bool,
    ) -> u8 {
        let mut surviving = 0u8;
        for (lane, &lane_z) in z.iter().enumerate() {
            if mask & (1 << lane) == 0 {
                continue;
            }
            let px = x + (lane as u32 & 1);
            let py = y + (lane as u32 >> 1);
            let lx = px - tile_x0;
            let ly = py - tile_y0;
            debug_assert!(lx < self.size && ly < self.size, "quad outside tile");
            let idx = (ly * self.size + lx) as usize;
            if lane_z <= self.depths[idx] {
                surviving |= 1 << lane;
                self.passed += 1;
                if depth_write {
                    self.depths[idx] = lane_z;
                }
            } else {
                self.killed += 1;
            }
        }
        surviving
    }

    /// The stored depth at tile-local `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinate is outside the tile.
    pub fn depth_at(&self, x: u32, y: u32) -> f32 {
        assert!(x < self.size && y < self.size, "coordinate outside tile");
        self.depths[(y * self.size + x) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_at(x: u32, y: u32, z: f32) -> Quad {
        Quad { x, y, mask: 0xF, z: [z; 4], uv: [(0.0, 0.0); 4] }
    }

    #[test]
    fn first_fragment_always_passes() {
        let mut zb = ZBuffer::new(32);
        let q = quad_at(0, 0, 0.5);
        assert_eq!(zb.test_quad(&q, 0, 0, true), 0xF);
        assert_eq!(zb.passed, 4);
        assert_eq!(zb.killed, 0);
    }

    #[test]
    fn closer_fragment_overwrites_farther_is_killed() {
        let mut zb = ZBuffer::new(32);
        zb.test_quad(&quad_at(0, 0, 0.5), 0, 0, true);
        // Farther fragment: killed.
        assert_eq!(zb.test_quad(&quad_at(0, 0, 0.9), 0, 0, true), 0);
        assert_eq!(zb.killed, 4);
        // Closer fragment: passes and updates.
        assert_eq!(zb.test_quad(&quad_at(0, 0, 0.1), 0, 0, true), 0xF);
        assert_eq!(zb.depth_at(0, 0), 0.1);
    }

    #[test]
    fn equal_depth_passes() {
        let mut zb = ZBuffer::new(32);
        zb.test_quad(&quad_at(0, 0, 0.5), 0, 0, true);
        assert_eq!(zb.test_quad(&quad_at(0, 0, 0.5), 0, 0, true), 0xF);
    }

    #[test]
    fn transparent_geometry_tests_without_writing() {
        let mut zb = ZBuffer::new(32);
        // Transparent quad at 0.3 passes but doesn't write...
        assert_eq!(zb.test_quad(&quad_at(0, 0, 0.3), 0, 0, false), 0xF);
        // ...so a later opaque quad at 0.5 still passes.
        assert_eq!(zb.test_quad(&quad_at(0, 0, 0.5), 0, 0, true), 0xF);
    }

    #[test]
    fn tile_origin_offset_is_applied() {
        let mut zb = ZBuffer::new(32);
        // Quad at screen (64, 32) in the tile whose origin is (64, 32) -> local (0,0).
        let q = quad_at(64, 32, 0.2);
        zb.test_quad(&q, 64, 32, true);
        assert_eq!(zb.depth_at(0, 0), 0.2);
    }

    #[test]
    fn partial_masks_only_test_covered_lanes() {
        let mut zb = ZBuffer::new(32);
        let mut q = quad_at(0, 0, 0.5);
        q.mask = 0b0101;
        assert_eq!(zb.test_quad(&q, 0, 0, true), 0b0101);
        assert_eq!(zb.passed, 2);
        // The untested lanes are still at infinity.
        assert_eq!(zb.depth_at(1, 0), f32::INFINITY);
    }

    #[test]
    fn clear_resets_everything() {
        let mut zb = ZBuffer::new(32);
        zb.test_quad(&quad_at(0, 0, 0.5), 0, 0, true);
        zb.clear();
        assert_eq!(zb.depth_at(0, 0), f32::INFINITY);
        assert_eq!(zb.passed, 0);
    }
}
