//! One Raster Unit: tile front-end + private shader cores (Fig 5).
//!
//! The front-end renders a tile in the paper's stage order: Parameter-Buffer fetch
//! (through the RU's tile cache) → rasterisation → Early-Z → warp assembly →
//! fragment shading on the RU's cores → blending into the on-chip Colour Buffer →
//! flush to the Frame Buffer. "Each Raster Unit has its own private resources": input
//! FIFO, tile cache, Z-Buffer, Colour Buffer and shader cores; only the L2 and DRAM
//! are shared.
//!
//! Data layout: the front-end consumes the frame's primitives as a SoA
//! [`TriangleStream`] plus the tile's index list, rasterises into a SoA
//! [`QuadStream`], and parks each warp's texture line lists in two per-frame
//! bump arenas ([`Arena`]) owned by the RU — a [`WarpWork`] carries only
//! [`Span`]s, so warp assembly allocates nothing in steady state. The arenas
//! are reset wholesale in [`RasterUnit::end_frame`], when no warp is in flight.
//!
//! Time-ordering contract: the caller (the event-driven simulator) interleaves
//! front-end and warp execution across Raster Units in global time order, so the
//! shared-memory reservations stay causal.

use crate::color_buffer::ColorBuffer;
use crate::quad::{Quad, QuadStream};
use crate::rasterizer::{rasterize_setup_in_rect_into, TriangleSetup};
use crate::reference::shade_color;
use crate::shader::{SampleLines, SampleLinesRef, ShaderCore, WarpOutcome};
use crate::texture::{select_mip, MipAddresser};
use crate::zbuffer::ZBuffer;
use tbr_common::addr::{param_entry_addr, AccessKind};
use tbr_common::arena::{Arena, Span};
use tbr_common::config::{GpuConfig, PipelineCosts, ScreenConfig};
use tbr_common::ids::TileId;
use tbr_common::stats::CacheStats;
use tbr_common::Cycle;
use tbr_geom::scene::{BlendMode, FilterMode, FragmentShaderDesc, TextureDesc};
use tbr_geom::stream::TriangleStream;
use tbr_mem::hierarchy::{L1Cache, MemoryHierarchy};

/// A warp of fragments ready for a shader core.
///
/// The texture line lists live in the owning Raster Unit's per-frame arenas;
/// this struct carries only their [`Span`]s (resolve with
/// [`RasterUnit::sample_lines_ref`]). Spans are valid until the RU's
/// [`RasterUnit::end_frame`] / [`RasterUnit::cold_reset`].
#[derive(Debug, Clone, PartialEq)]
pub struct WarpWork {
    /// Cycle at which the front-end finished assembling this warp.
    pub arrival: Cycle,
    /// Tile the warp belongs to (for per-tile attribution).
    pub tile: TileId,
    /// Shader profile to execute.
    pub shader: FragmentShaderDesc,
    /// Covered fragments in the warp (≤ 32).
    pub fragments: u32,
    /// Flattened texture line addresses, in the RU's line arena.
    pub lines: Span,
    /// Per-stage end offsets (relative to `lines`), in the RU's ends arena.
    pub ends: Span,
}

/// Everything the tile front-end produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TileFrontEndOutcome {
    /// Warps to execute, in assembly order.
    pub warps: Vec<WarpWork>,
    /// Cycle the front-end finished (rasterisation + Early-Z + blend accounting).
    pub fe_done: Cycle,
    /// Primitives fetched from the Parameter Buffer.
    pub primitives: u64,
    /// Quads produced by the rasteriser.
    pub quads: u64,
    /// Fragments surviving Early-Z (these get shaded).
    pub fragments: u64,
    /// Fragments killed by Early-Z.
    pub earlyz_killed: u64,
    /// Parameter-Buffer read requests issued.
    pub param_reads: u64,
    /// DRAM accesses caused by Parameter-Buffer reads.
    pub dram_accesses: u64,
}

/// One Raster Unit.
#[derive(Debug, Clone)]
pub struct RasterUnit {
    cores: Vec<ShaderCore>,
    tile_l1: L1Cache,
    zbuffer: ZBuffer,
    color: ColorBuffer,
    costs: PipelineCosts,
    quads_per_warp: usize,
    next_core: usize,
    // Per-frame bump arenas holding every warp's texture line lists; reset
    // wholesale in end_frame()/cold_reset(), when no warp is in flight.
    lines: Arena<u64>,
    ends: Arena<u32>,
    // Scratch buffers reused across tiles so the per-event path stays
    // allocation-free once warmed up. Purely capacity caches: no state crosses
    // from one use to the next (each user clears before filling).
    scratch_read_done: Vec<Cycle>,
    scratch_surviving: Vec<(u32, u8)>,
    scratch_flush: Vec<u64>,
    scratch_quads: QuadStream,
}

impl RasterUnit {
    /// Builds a Raster Unit per the GPU configuration (cores, caches, costs).
    pub fn new(cfg: &GpuConfig) -> Self {
        Self {
            cores: (0..cfg.cores_per_ru)
                .map(|_| ShaderCore::new(cfg.texture_cache, cfg.max_warps_per_core))
                .collect(),
            tile_l1: L1Cache::new(cfg.tile_cache),
            zbuffer: ZBuffer::new(cfg.screen.tile_size),
            color: ColorBuffer::new(cfg.screen.tile_size),
            costs: cfg.costs,
            quads_per_warp: cfg.quads_per_warp() as usize,
            next_core: 0,
            lines: Arena::new(),
            ends: Arena::new(),
            scratch_read_done: Vec::new(),
            scratch_surviving: Vec::new(),
            scratch_flush: Vec::new(),
            scratch_quads: QuadStream::new(),
        }
    }

    /// Number of shader cores in this RU.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Resolves a warp's texture line lists from this RU's arenas.
    ///
    /// # Panics
    /// Panics if the warp's spans are stale (produced before the last
    /// [`RasterUnit::end_frame`]) or belong to a different RU.
    #[inline]
    pub fn sample_lines_ref(&self, warp: &WarpWork) -> SampleLinesRef<'_> {
        SampleLinesRef { lines: self.lines.get(warp.lines), ends: self.ends.get(warp.ends) }
    }

    /// Runs the tile front-end over the tile's Parameter-Buffer `list` (indices
    /// into `tris`, in program order), starting at cycle `now`. Returns the
    /// assembled warps and front-end statistics. Shading and blending results are
    /// written to the on-chip Colour Buffer functionally; their *timing* is the
    /// warps' to determine.
    pub fn render_tile_front_end(
        &mut self,
        tile: TileId,
        tris: &TriangleStream,
        list: &[u32],
        screen: &ScreenConfig,
        now: Cycle,
        hier: &mut MemoryHierarchy,
    ) -> TileFrontEndOutcome {
        let mut out = TileFrontEndOutcome::default();
        let (tx0, ty0, tx1, ty1) = screen.tile_rect(tile);
        self.zbuffer.clear();
        self.color.clear();
        let mut fe = now;

        // Stream the tile's Parameter-Buffer list: the Tile Fetcher issues reads
        // ahead of the pipeline into the RU's FIFO (Fig 5), one per cycle, so list
        // fetch latency is pipelined rather than serialising the front-end.
        let mut read_done = std::mem::take(&mut self.scratch_read_done);
        read_done.clear();
        let mut surviving = std::mem::take(&mut self.scratch_surviving);
        let mut quads = std::mem::take(&mut self.scratch_quads);
        for (n, issue) in (0..list.len()).zip(now..) {
            let entry_addr = param_entry_addr(tile, n as u64);
            let rd = self
                .tile_l1
                .access(entry_addr, issue, AccessKind::ParamRead, hier);
            out.param_reads += 1;
            out.dram_accesses += rd.dram_accesses as u64;
            read_done.push(rd.completion);
        }

        for (n, &pidx) in list.iter().enumerate() {
            let pidx = pidx as usize;
            // The primitive can only be rasterised once its FIFO entry arrived.
            fe = fe.max(read_done[n]);
            fe += self.costs.raster_setup_cycles;
            out.primitives += 1;

            // One TriangleSetup per (primitive × tile), shared by rasterisation
            // and mip selection.
            let Some(setup) = TriangleSetup::from_vertices(tris.vertices(pidx)) else {
                quads.clear();
                continue;
            };
            rasterize_setup_in_rect_into(&setup, tx0, ty0, tx1, ty1, &mut quads);
            if quads.is_empty() {
                continue;
            }
            fe += (quads.len() as Cycle).div_ceil(self.costs.raster_quads_per_cycle.max(1))
                + quads.len() as Cycle * self.costs.earlyz_cycles_per_quad;
            out.quads += quads.len() as u64;

            let state = tris.state_of(pidx);
            let lod = select_mip(&state.texture, setup.uv_derivative);
            let depth_write = state.blend == BlendMode::Opaque;
            // Depth-modifying shaders disable Early-Z: every covered fragment is
            // shaded and the visibility test happens after shading (Late-Z, §II-A).
            let late_z = state.shader.late_z;

            surviving.clear();
            for qi in 0..quads.len() {
                let mask = quads.mask[qi];
                let pass = self.zbuffer.test_lanes(
                    quads.x[qi],
                    quads.y[qi],
                    mask,
                    &quads.z[qi],
                    tx0,
                    ty0,
                    depth_write,
                );
                let covered = quads.coverage(qi) as u64;
                let passed = pass.count_ones() as u64;
                let shade_mask = if late_z { mask } else { pass };
                if !late_z {
                    out.earlyz_killed += covered - passed;
                }
                if shade_mask == 0 {
                    continue;
                }
                // Functional shading + blending (timing belongs to the warps). Only
                // depth-passing lanes reach the Colour Buffer, Early- or Late-Z.
                let mut colors = [0u32; 4];
                for (lane, color) in colors.iter_mut().enumerate() {
                    if pass & (1 << lane) != 0 {
                        let (u, v) = quads.uv[qi][lane];
                        *color = shade_color(&state.texture, u, v);
                    }
                }
                self.color
                    .write_lanes(quads.x[qi], quads.y[qi], pass, colors, state.blend, tx0, ty0);
                fe += self.costs.blend_cycles_per_quad;
                surviving.push((qi as u32, shade_mask));
            }

            // Assemble surviving quads into warps of `quads_per_warp`; each warp's
            // line lists land in the RU's per-frame arenas.
            for group in surviving.chunks(self.quads_per_warp) {
                let fragments: u32 = group.iter().map(|(_, m)| m.count_ones()).sum();
                out.fragments += fragments as u64;
                let (lspan, espan) = gather_sample_lines_arena(
                    &mut self.lines,
                    &mut self.ends,
                    group,
                    &quads,
                    &state.texture,
                    lod,
                    state.shader.tex_samples,
                    state.shader.filter,
                );
                out.warps.push(WarpWork {
                    arrival: fe,
                    tile,
                    shader: state.shader,
                    fragments,
                    lines: lspan,
                    ends: espan,
                });
            }
        }
        self.scratch_read_done = read_done;
        self.scratch_surviving = surviving;
        self.scratch_quads = quads;
        out.fe_done = fe;
        out
    }

    /// Executes one warp atomically on the next core (round-robin within the RU).
    /// Correct for isolated warps (tests, micro-benchmarks); the event-driven
    /// simulator uses the steppable API below so concurrent warps overlap.
    pub fn execute_warp(&mut self, warp: &WarpWork, hier: &mut MemoryHierarchy) -> WarpOutcome {
        let idx = self.next_core;
        self.next_core = (self.next_core + 1) % self.cores.len();
        let sl = SampleLinesRef { lines: self.lines.get(warp.lines), ends: self.ends.get(warp.ends) };
        self.cores[idx].execute_warp(&warp.shader, sl, warp.arrival, hier)
    }

    /// Starts a warp on a specific core (the dispatcher has granted it a slot).
    pub fn begin_warp_on(
        &self,
        core: usize,
        start: tbr_common::Cycle,
    ) -> crate::shader::WarpExecState {
        self.cores[core].begin_warp(start)
    }

    /// Advances a warp on a specific core by one stage; `true` when it retired.
    pub fn step_warp_on(
        &mut self,
        core: usize,
        warp: &WarpWork,
        state: &mut crate::shader::WarpExecState,
        hier: &mut MemoryHierarchy,
    ) -> bool {
        let sl = SampleLinesRef { lines: self.lines.get(warp.lines), ends: self.ends.get(warp.ends) };
        self.cores[core].step_warp(&warp.shader, sl, state, hier)
    }

    /// Whether the warp's next step on `core` would be served entirely by that
    /// core's L1 (see [`ShaderCore::step_is_resident`]) — the parallel driver's
    /// test for executing the step on a worker thread.
    pub fn warp_step_is_resident(
        &self,
        core: usize,
        warp: &WarpWork,
        state: &crate::shader::WarpExecState,
        ideal: bool,
    ) -> bool {
        self.cores[core].step_is_resident(self.sample_lines_ref(warp), state, ideal)
    }

    /// Whether the warp's next step retires it (see [`ShaderCore::step_retires`]).
    pub fn warp_step_retires(&self, warp: &WarpWork, state: &crate::shader::WarpExecState) -> bool {
        ShaderCore::step_retires(&warp.shader, self.sample_lines_ref(warp), state)
    }

    /// The first L1-missing line of the warp's next step on `core` (see
    /// [`ShaderCore::step_first_miss`]).
    pub fn warp_step_first_miss(
        &self,
        core: usize,
        warp: &WarpWork,
        state: &crate::shader::WarpExecState,
    ) -> Option<u64> {
        self.cores[core].step_first_miss(self.sample_lines_ref(warp), state)
    }

    /// [`RasterUnit::step_warp_on`] for a step proven resident via
    /// [`RasterUnit::warp_step_is_resident`]: no shared hierarchy required.
    pub fn step_warp_on_resident(
        &mut self,
        core: usize,
        warp: &WarpWork,
        state: &mut crate::shader::WarpExecState,
        ideal: bool,
    ) -> bool {
        let sl = SampleLinesRef { lines: self.lines.get(warp.lines), ends: self.ends.get(warp.ends) };
        self.cores[core].step_warp_resident(&warp.shader, sl, state, ideal)
    }

    /// Resident-warp capacity per core.
    pub fn max_warps_per_core(&self) -> usize {
        self.cores[0].max_warps()
    }

    /// Flushes the Colour Buffer to the Frame Buffer (bypassing L2). Returns
    /// `(front-end time after issuing the flush, last write completion, writes)`.
    pub fn flush_tile(
        &mut self,
        tile: TileId,
        screen: &ScreenConfig,
        now: Cycle,
        hier: &mut MemoryHierarchy,
    ) -> (Cycle, Cycle, u64) {
        let mut addrs = std::mem::take(&mut self.scratch_flush);
        self.color.flush_addrs_into(tile, screen, &mut addrs);
        let mut fe = now;
        let mut last = now;
        for addr in &addrs {
            let o = hier.access(*addr, fe, AccessKind::FramebufferWrite);
            fe += self.costs.flush_cycles_per_line;
            last = last.max(o.completion);
        }
        let writes = addrs.len() as u64;
        self.scratch_flush = addrs;
        (fe, last, writes)
    }

    /// Copies the last rendered tile's pixels into a frame image (examples/tests).
    pub fn blit_last_tile(&self, tile: TileId, screen: &ScreenConfig, frame: &mut [u32]) {
        self.color.blit_to(tile, screen, frame);
    }

    /// Aggregated texture-L1 counters across this RU's cores (without resetting).
    pub fn texture_stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for c in &self.cores {
            agg.merge(c.l1_stats());
        }
        agg
    }

    /// Ends a frame: returns `(texture L1 aggregate, tile cache)` counters and resets
    /// per-frame timing state; cache contents stay warm. Also resets the warp
    /// line arenas, invalidating every outstanding [`WarpWork`] span — callers
    /// must only end a frame once no warp is in flight.
    pub fn end_frame(&mut self) -> (CacheStats, CacheStats) {
        let mut tex = CacheStats::default();
        for c in &mut self.cores {
            tex.merge(&c.end_frame());
        }
        let tile = self.tile_l1.end_frame();
        self.next_core = 0;
        self.lines.reset();
        self.ends.reset();
        (tex, tile)
    }

    /// Full reset between independent runs.
    pub fn cold_reset(&mut self) {
        for c in &mut self.cores {
            c.cold_reset();
        }
        self.tile_l1.cold_reset();
        self.zbuffer.clear();
        self.color.clear();
        self.next_core = 0;
        self.lines.reset();
        self.ends.reset();
    }
}

/// Public wrapper over the internal line-gathering loop for alternate pipeline
/// organisations (e.g. the IMR comparison mode in `tbr-sim`), producing an
/// owned [`SampleLines`].
pub fn gather_sample_lines_for(
    group: &[(Quad, u8)],
    texture: &TextureDesc,
    lod: u32,
    tex_samples: u32,
    filter: FilterMode,
) -> SampleLines {
    let mut out =
        SampleLines::with_capacity(tex_samples as usize * group.len() * 2, tex_samples as usize);
    gather_lines_generic(
        group.len(),
        |i| (group[i].0.uv, group[i].1),
        texture,
        lod,
        tex_samples,
        filter,
        &mut out,
    );
    out
}

/// Where gathered sample lines land: an owned [`SampleLines`] (IMR mode,
/// tests) or the Raster Unit's per-frame arenas (the TBR hot path).
trait LineSink {
    /// Appends one quad's deduplicated lines to the stage being built.
    fn sink_lines(&mut self, lines: &[u64]);
    /// Closes the stage being built.
    fn sink_end_stage(&mut self);
}

impl LineSink for SampleLines {
    fn sink_lines(&mut self, lines: &[u64]) {
        self.extend_lines(lines);
    }
    fn sink_end_stage(&mut self) {
        self.end_stage();
    }
}

/// Sink writing into a Raster Unit's per-frame arenas; stage end offsets are
/// recorded relative to `base` (the warp's first line), matching the
/// [`SampleLinesRef`] contract.
struct ArenaSink<'a> {
    lines: &'a mut Arena<u64>,
    ends: &'a mut Arena<u32>,
    base: usize,
}

impl LineSink for ArenaSink<'_> {
    fn sink_lines(&mut self, lines: &[u64]) {
        self.lines.alloc_slice(lines);
    }
    fn sink_end_stage(&mut self) {
        self.ends.push((self.lines.len() - self.base) as u32);
    }
}

/// Gathers one warp's sample lines straight into the RU's arenas, returning the
/// `(lines, ends)` spans for its [`WarpWork`].
#[allow(clippy::too_many_arguments)]
fn gather_sample_lines_arena(
    lines: &mut Arena<u64>,
    ends: &mut Arena<u32>,
    group: &[(u32, u8)],
    quads: &QuadStream,
    texture: &TextureDesc,
    lod: u32,
    tex_samples: u32,
    filter: FilterMode,
) -> (Span, Span) {
    let lmark = lines.mark();
    let emark = ends.mark();
    let mut sink = ArenaSink { base: lmark, lines, ends };
    gather_lines_generic(
        group.len(),
        |i| {
            let (qi, pass) = group[i];
            (quads.uv[qi as usize], pass)
        },
        texture,
        lod,
        tex_samples,
        filter,
        &mut sink,
    );
    (lines.span_since(lmark), ends.span_since(emark))
}

/// Collects, per texture-sample instruction, the cache-line requests of a warp's
/// quads — the single body behind the owned ([`gather_sample_lines_for`]) and
/// arena ([`gather_sample_lines_arena`]) paths, so the two cannot diverge.
///
/// Coalescing happens at *quad* granularity (a texture unit fetches the
/// texels of one 2×2 quad together), so lines shared between different quads are
/// requested once per quad — that inter-quad reuse is what the texture L1 turns into
/// hits, matching how hardware hit ratios are counted.
#[allow(clippy::too_many_arguments)]
fn gather_lines_generic<S: LineSink>(
    count: usize,
    mut quad_of: impl FnMut(usize) -> ([(f32, f32); 4], u8),
    texture: &TextureDesc,
    lod: u32,
    tex_samples: u32,
    filter: FilterMode,
    sink: &mut S,
) {
    for s in 0..tex_samples {
        let addr = MipAddresser::new(texture, lod, s);
        for i in 0..count {
            let (uv, pass) = quad_of(i);
            let mut quad_lines = [0u64; 16];
            let mut n = 0;
            let push = |line: u64, quad_lines: &mut [u64; 16], n: &mut usize| {
                if !quad_lines[..*n].contains(&line) {
                    quad_lines[*n] = line;
                    *n += 1;
                }
            };
            for (lane, &(u, v)) in uv.iter().enumerate() {
                if pass & (1 << lane) != 0 {
                    match filter {
                        FilterMode::Nearest => {
                            push(addr.line_addr(u, v), &mut quad_lines, &mut n)
                        }
                        FilterMode::Bilinear => {
                            let mut bl = [0u64; 4];
                            let k = addr.bilinear_line_addrs(u, v, &mut bl);
                            for &line in &bl[..k] {
                                push(line, &mut quad_lines, &mut n);
                            }
                        }
                    }
                }
            }
            sink.sink_lines(&quad_lines[..n]);
        }
        sink.sink_end_stage();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbr_common::config::{CacheConfig, DramConfig};
    use tbr_common::ids::{DrawCallId, TextureId};
    use tbr_geom::pipeline::ScreenVertex;

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(CacheConfig::shared_l2(), DramConfig::lpddr4(), 5000)
    }

    fn cfg() -> GpuConfig {
        GpuConfig::baseline(ScreenConfig::tiny())
    }

    fn full_tile_tri(z: f32, seq: u32) -> ScreenTriangle {
        // Covers the whole 32x32 tile 0 (and more).
        let p = [(0.0f32, 0.0f32), (80.0, 0.0), (0.0, 80.0)];
        let mut v = [ScreenVertex::default(); 3];
        for i in 0..3 {
            v[i] = ScreenVertex {
                x: p[i].0,
                y: p[i].1,
                z,
                u: p[i].0 / 80.0,
                v: p[i].1 / 80.0,
            };
        }
        ScreenTriangle {
            v,
            draw: DrawCallId(0),
            texture: TextureDesc::new(TextureId(0), 256),
            shader: FragmentShaderDesc::simple(),
            blend: BlendMode::Opaque,
            seq,
        }
    }

    use tbr_geom::pipeline::ScreenTriangle;

    fn stream(tris: &[ScreenTriangle]) -> (TriangleStream, Vec<u32>) {
        let list = (0..tris.len() as u32).collect();
        (TriangleStream::from_triangles(tris), list)
    }

    #[test]
    fn front_end_produces_warps_covering_the_tile() {
        let cfg = cfg();
        let mut h = hier();
        let mut ru = RasterUnit::new(&cfg);
        let (ts, list) = stream(&[full_tile_tri(0.5, 0)]);
        let out = ru.render_tile_front_end(TileId(0), &ts, &list, &cfg.screen, 0, &mut h);
        // Full 32x32 tile = 1024 fragments = 256 quads = 32 warps of 8 quads.
        assert_eq!(out.fragments, 1024);
        assert_eq!(out.quads, 256);
        assert_eq!(out.warps.len(), 32);
        assert_eq!(out.earlyz_killed, 0);
        assert!(out.fe_done > 0);
        assert_eq!(out.param_reads, 1);
        // Warp arrivals are monotone.
        for w in out.warps.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn early_z_kills_occluded_second_primitive() {
        let cfg = cfg();
        let mut h = hier();
        let mut ru = RasterUnit::new(&cfg);
        let (ts, list) = stream(&[full_tile_tri(0.1, 0), full_tile_tri(0.9, 1)]);
        let out = ru.render_tile_front_end(TileId(0), &ts, &list, &cfg.screen, 0, &mut h);
        assert_eq!(out.fragments, 1024, "only the near primitive is shaded");
        assert_eq!(out.earlyz_killed, 1024, "the far primitive dies in Early-Z");
    }

    #[test]
    fn painter_order_far_then_near_shades_both() {
        let cfg = cfg();
        let mut h = hier();
        let mut ru = RasterUnit::new(&cfg);
        let (ts, list) = stream(&[full_tile_tri(0.9, 0), full_tile_tri(0.1, 1)]);
        let out = ru.render_tile_front_end(TileId(0), &ts, &list, &cfg.screen, 0, &mut h);
        assert_eq!(out.fragments, 2048, "back-to-front order shades everything");
    }

    #[test]
    fn warp_execution_counts_instructions_and_tex_requests() {
        let cfg = cfg();
        let mut h = hier();
        let mut ru = RasterUnit::new(&cfg);
        let (ts, list) = stream(&[full_tile_tri(0.5, 0)]);
        let out = ru.render_tile_front_end(TileId(0), &ts, &list, &cfg.screen, 0, &mut h);
        let mut instructions = 0;
        let mut tex = 0;
        for w in &out.warps {
            let o = ru.execute_warp(w, &mut h);
            instructions += o.instructions;
            tex += o.tex_requests;
            assert!(o.completion > w.arrival);
        }
        // 32 warps x 7 SIMD instructions each (simple() shader).
        assert_eq!(instructions, 32 * 7);
        assert!(tex > 0);
        assert!(ru.texture_stats().accesses > 0);
    }

    #[test]
    fn flush_writes_one_tile_of_framebuffer() {
        let cfg = cfg();
        let mut h = hier();
        let mut ru = RasterUnit::new(&cfg);
        let (fe, last, writes) = ru.flush_tile(TileId(0), &cfg.screen, 100, &mut h);
        assert_eq!(writes, 64, "32x32x4B = 64 lines");
        assert!(fe >= 100 + 64);
        assert!(last > fe - 64);
        assert_eq!(h.dram_stats().writes, 64);
    }

    #[test]
    fn sample_lines_exploit_quad_locality() {
        let cfg = cfg();
        let mut h = hier();
        let mut ru = RasterUnit::new(&cfg);
        let (ts, list) = stream(&[full_tile_tri(0.5, 0)]);
        let out = ru.render_tile_front_end(TileId(0), &ts, &list, &cfg.screen, 0, &mut h);
        let mut requests = 0usize;
        let mut unique = std::collections::HashSet::new();
        for w in &out.warps {
            let sl = ru.sample_lines_ref(w);
            for lines in sl.iter_stages() {
                // 8 quads x at most 4 distinct lines per quad.
                assert!(lines.len() <= 32);
                assert!(!lines.is_empty());
                requests += lines.len();
                unique.extend(lines.iter().copied());
            }
        }
        // Inter-quad reuse must exist: strictly fewer unique lines than requests
        // (that surplus is what the texture L1 converts into hits).
        assert!(
            unique.len() < requests,
            "unique {} vs requests {requests}",
            unique.len()
        );
    }

    #[test]
    fn round_robin_spreads_warps_over_cores() {
        let cfg = cfg();
        let mut h = hier();
        let mut ru = RasterUnit::new(&cfg);
        let (ts, list) = stream(&[full_tile_tri(0.5, 0)]);
        let out = ru.render_tile_front_end(TileId(0), &ts, &list, &cfg.screen, 0, &mut h);
        for w in &out.warps {
            ru.execute_warp(w, &mut h);
        }
        // All 8 cores should have seen ~32/8 = 4 warps worth of L1 traffic.
        let per_core: Vec<u64> = ru.cores.iter().map(|c| c.l1_stats().accesses).collect();
        assert!(
            per_core.iter().all(|&a| a > 0),
            "all cores used: {per_core:?}"
        );
    }

    #[test]
    fn end_frame_resets_the_warp_arenas() {
        let cfg = cfg();
        let mut h = hier();
        let mut ru = RasterUnit::new(&cfg);
        let (ts, list) = stream(&[full_tile_tri(0.5, 0)]);
        let out = ru.render_tile_front_end(TileId(0), &ts, &list, &cfg.screen, 0, &mut h);
        assert!(!ru.lines.is_empty(), "warps parked lines in the arena");
        ru.end_frame();
        assert!(ru.lines.is_empty() && ru.ends.is_empty(), "end_frame resets arenas");
        // Spans from before the reset must not silently resolve; the first
        // warp's span now points past the arena end (unless it was empty).
        let stale = &out.warps[0];
        assert!(stale.lines.len > 0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = ru.sample_lines_ref(stale);
        }));
        assert!(caught.is_err(), "stale span must panic, not alias");
    }
}

#[cfg(test)]
mod feature_tests {
    use super::*;
    use tbr_common::config::{CacheConfig, DramConfig, ScreenConfig};
    use tbr_common::ids::{DrawCallId, TextureId};
    use tbr_geom::pipeline::{ScreenTriangle, ScreenVertex};

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(CacheConfig::shared_l2(), DramConfig::lpddr4(), 5000)
    }

    fn tri(z: f32, seq: u32, shader: FragmentShaderDesc) -> ScreenTriangle {
        let p = [(0.0f32, 0.0f32), (80.0, 0.0), (0.0, 80.0)];
        let mut v = [ScreenVertex::default(); 3];
        for i in 0..3 {
            v[i] = ScreenVertex {
                x: p[i].0,
                y: p[i].1,
                z,
                u: p[i].0 / 80.0,
                v: p[i].1 / 80.0,
            };
        }
        ScreenTriangle {
            v,
            draw: DrawCallId(0),
            texture: TextureDesc::new(TextureId(0), 256),
            shader,
            blend: BlendMode::Opaque,
            seq,
        }
    }

    fn stream(tris: &[ScreenTriangle]) -> (TriangleStream, Vec<u32>) {
        let list = (0..tris.len() as u32).collect();
        (TriangleStream::from_triangles(tris), list)
    }

    #[test]
    fn late_z_shades_occluded_fragments() {
        let cfg = GpuConfig::baseline(ScreenConfig::tiny());
        let mut h = hier();
        let mut ru = RasterUnit::new(&cfg);
        // Near opaque primitive first, then a far one.
        let near = tri(0.1, 0, FragmentShaderDesc::simple());
        let far_early = tri(0.9, 1, FragmentShaderDesc::simple());
        let (ts, list) = stream(&[near, far_early]);
        let out_early = ru.render_tile_front_end(TileId(0), &ts, &list, &cfg.screen, 0, &mut h);
        assert_eq!(
            out_early.fragments, 1024,
            "Early-Z kills the occluded primitive"
        );

        let mut ru2 = RasterUnit::new(&cfg);
        let near2 = tri(0.1, 0, FragmentShaderDesc::simple());
        let far_late = tri(0.9, 1, FragmentShaderDesc::simple().with_late_z());
        let (ts2, list2) = stream(&[near2, far_late]);
        let out_late = ru2.render_tile_front_end(TileId(0), &ts2, &list2, &cfg.screen, 0, &mut h);
        assert_eq!(
            out_late.fragments, 2048,
            "Late-Z must shade the occluded fragments"
        );
        assert!(out_late.earlyz_killed < out_early.earlyz_killed);
        assert!(out_late.warps.len() > out_early.warps.len());
    }

    #[test]
    fn late_z_still_produces_correct_colors() {
        // The occluded late-Z primitive is shaded but must NOT reach the colour
        // buffer: final image identical to the early-Z case.
        let cfg = GpuConfig::baseline(ScreenConfig::tiny());
        let mut h = hier();
        let near = tri(0.1, 0, FragmentShaderDesc::simple());
        let far_e = tri(0.9, 1, FragmentShaderDesc::simple());
        let far_l = tri(0.9, 1, FragmentShaderDesc::simple().with_late_z());

        let mut img_e = vec![0u32; (cfg.screen.width * cfg.screen.height) as usize];
        let mut ru = RasterUnit::new(&cfg);
        let (ts, list) = stream(&[near, far_e]);
        ru.render_tile_front_end(TileId(0), &ts, &list, &cfg.screen, 0, &mut h);
        ru.blit_last_tile(TileId(0), &cfg.screen, &mut img_e);

        let mut img_l = vec![0u32; (cfg.screen.width * cfg.screen.height) as usize];
        let mut ru2 = RasterUnit::new(&cfg);
        let (ts2, list2) = stream(&[near, far_l]);
        ru2.render_tile_front_end(TileId(0), &ts2, &list2, &cfg.screen, 0, &mut h);
        ru2.blit_last_tile(TileId(0), &cfg.screen, &mut img_l);

        assert_eq!(img_e, img_l);
    }

    #[test]
    fn bilinear_filtering_increases_texture_traffic() {
        let cfg = GpuConfig::baseline(ScreenConfig::tiny());
        let mut h = hier();
        let mut ru = RasterUnit::new(&cfg);
        let nearest = tri(0.5, 0, FragmentShaderDesc::simple());
        let (ts_n, list_n) = stream(&[nearest]);
        let out_n = ru.render_tile_front_end(TileId(0), &ts_n, &list_n, &cfg.screen, 0, &mut h);
        let req_n: usize = out_n
            .warps
            .iter()
            .map(|w| ru.sample_lines_ref(w).total_lines())
            .sum();

        let mut ru2 = RasterUnit::new(&cfg);
        let bilinear = tri(0.5, 0, FragmentShaderDesc::simple().with_bilinear());
        let (ts_b, list_b) = stream(&[bilinear]);
        let out_b = ru2.render_tile_front_end(TileId(0), &ts_b, &list_b, &cfg.screen, 0, &mut h);
        let req_b: usize = out_b
            .warps
            .iter()
            .map(|w| ru2.sample_lines_ref(w).total_lines())
            .sum();

        assert!(
            req_b > req_n,
            "bilinear {req_b} must exceed nearest {req_n}"
        );
        assert!(req_b <= req_n * 4, "bilinear touches at most 4x the lines");
        // Functional output identical (same fragments shaded).
        assert_eq!(out_n.fragments, out_b.fragments);
    }
}
