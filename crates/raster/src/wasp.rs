//! WaSP-style warp scheduling for prefetching (arXiv 2404.06156).
//!
//! WaSP observes that a texture-bound shader's stalls are dominated by cold
//! texture-cache misses, and that the warps of a tile collectively name every
//! cache line they will touch *before* any of them issues. It therefore splits
//! each tile's warp queue into:
//!
//! * a **spearhead** group — a small set of warps chosen to collectively cover
//!   as many *distinct* texture lines as possible, issued first so their
//!   misses warm the L1/L2 for everyone else (prefetching without a
//!   prefetcher); and
//! * the **remainder**, issued in criticality order — warps with the most
//!   texture lines first, since they carry the longest memory-latency chains.
//!
//! The decision is *driven by the measured texture-miss stats*: the spearhead
//! grows with the RU's texture-L1 miss ratio and the mechanism disengages
//! entirely when the caches are already hot (re-ordering warm warps only
//! costs). Everything here is a pure function of the warp line lists and the
//! miss counters, both of which are bit-identical across the event-loop
//! drivers, so WaSP keeps the scan ≡ heap ≡ par equivalence intact.

use crate::raster_unit::{RasterUnit, WarpWork};
use crate::shader::SampleLinesRef;
use tbr_common::fasthash::U64Set;
use tbr_common::stats::CacheStats;

/// Texture-L1 miss ratio (in ‰) below which WaSP leaves the assembly order
/// untouched: the caches are hot and re-ordering has nothing to prefetch.
pub const ENGAGE_MISS_PERMILLE: u64 = 20;

/// The spearhead never exceeds ¼ of the tile's warps (rounded up): its job is
/// warming, not reordering the whole queue.
pub const SPEARHEAD_MAX_FRACTION: u64 = 4;

/// What WaSP decided for one tile's warp queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaspDecision {
    /// Whether the mechanism engaged (miss ratio above the threshold).
    pub engaged: bool,
    /// Warps placed in the spearhead group.
    pub spearhead: u64,
    /// Whether the issue order actually changed versus assembly order.
    pub reordered: bool,
}

/// The RU's texture-L1 miss ratio in integer ‰. An untouched cache counts as
/// fully cold (1000‰): the first tiles of a frame are exactly when the
/// spearhead pays off most.
pub fn miss_permille(stats: &CacheStats) -> u64 {
    (stats.misses * 1000).checked_div(stats.accesses).unwrap_or(1000)
}

/// Core policy, pure for testability: given each warp's texture-line list and
/// the current miss ratio, returns the issue order (indices into `line_sets`)
/// and the spearhead size. Deterministic: greedy max-new-coverage selection
/// with index order breaking ties, then a stable criticality sort.
pub fn plan_order(line_sets: &[&[u64]], miss_permille: u64) -> (Vec<usize>, u64, bool) {
    let n = line_sets.len();
    let identity: Vec<usize> = (0..n).collect();
    if n < 2 || miss_permille < ENGAGE_MISS_PERMILLE {
        return (identity, 0, false);
    }
    // Spearhead size scales with how cold the caches are, capped at ¼.
    let cap = (n as u64).div_ceil(SPEARHEAD_MAX_FRACTION);
    let scaled = (n as u64 * miss_permille).div_ceil(1000);
    let target = scaled.clamp(1, cap) as usize;

    // Greedy max-coverage: each pick adds the most lines not yet covered.
    let mut covered = U64Set::default();
    let mut picked = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..target {
        let mut best: Option<(usize, usize)> = None; // (new_lines, index)
        for (i, lines) in line_sets.iter().enumerate() {
            if picked[i] {
                continue;
            }
            let new_lines = lines.iter().filter(|l| !covered.contains(l)).count();
            let better = match best {
                None => true,
                Some((b, _)) => new_lines > b,
            };
            if better {
                best = Some((new_lines, i));
            }
        }
        let (_, i) = best.expect("target <= n");
        picked[i] = true;
        covered.extend(line_sets[i].iter().copied());
        order.push(i);
    }
    let spearhead = order.len() as u64;

    // Remainder: stable sort by descending line count (criticality proxy).
    let mut rest: Vec<usize> = (0..n).filter(|&i| !picked[i]).collect();
    rest.sort_by_key(|&i| std::cmp::Reverse(line_sets[i].len()));
    order.extend(rest);

    let reordered = order != identity;
    (order, spearhead, reordered)
}

/// Applies WaSP to one tile's assembled warp queue in place, using the RU's
/// arenas to resolve each warp's texture-line list and its cumulative
/// texture-L1 stats to gauge cache temperature.
pub fn schedule_tile_warps(ru: &RasterUnit, warps: &mut Vec<WarpWork>) -> WaspDecision {
    if warps.len() < 2 {
        return WaspDecision::default();
    }
    let ratio = miss_permille(&ru.texture_stats());
    let refs: Vec<SampleLinesRef<'_>> = warps.iter().map(|w| ru.sample_lines_ref(w)).collect();
    let line_sets: Vec<&[u64]> = refs.iter().map(|r| r.lines).collect();
    let (order, spearhead, reordered) = plan_order(&line_sets, ratio);
    drop(refs);
    if reordered {
        let mut out = Vec::with_capacity(warps.len());
        for &i in &order {
            out.push(warps[i].clone());
        }
        *warps = out;
    }
    WaspDecision { engaged: spearhead > 0, spearhead, reordered }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_caches_disengage_and_preserve_assembly_order() {
        let sets: Vec<&[u64]> = vec![&[1, 2], &[3, 4], &[5, 6], &[7, 8]];
        let (order, spearhead, reordered) = plan_order(&sets, 5);
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(spearhead, 0);
        assert!(!reordered);
    }

    #[test]
    fn cold_caches_pick_the_max_coverage_spearhead() {
        // Warp 2 covers the most distinct lines; it must lead even though it
        // was assembled last.
        let sets: Vec<&[u64]> = vec![&[1, 2], &[1, 2, 3], &[4, 5, 6, 7]];
        let (order, spearhead, reordered) = plan_order(&sets, 1000);
        assert_eq!(spearhead, 1, "3 warps => spearhead capped at ceil(3/4) = 1");
        assert_eq!(order[0], 2);
        // Remainder in descending line count: warp 1 (3 lines) before 0 (2).
        assert_eq!(order, vec![2, 1, 0]);
        assert!(reordered);
    }

    #[test]
    fn spearhead_prefers_new_coverage_over_raw_size() {
        // Warp 0 has 4 lines; warp 1 repeats 3 of them plus 1 new; warp 2 has
        // 3 entirely new lines. With a 2-warp spearhead the greedy pass must
        // take 0 then 2 (3 new lines beats 1 new line).
        let sets: Vec<&[u64]> = vec![&[1, 2, 3, 4], &[1, 2, 3, 9], &[5, 6, 7], &[1], &[2], &[3], &[4], &[9]];
        let (order, spearhead, _) = plan_order(&sets, 1000);
        assert_eq!(spearhead, 2, "8 warps => cap ceil(8/4) = 2");
        assert_eq!(&order[..2], &[0, 2]);
    }

    #[test]
    fn plan_is_deterministic_and_a_permutation() {
        let sets: Vec<&[u64]> = vec![&[8], &[1, 2, 3], &[1, 2], &[9, 10], &[], &[3, 4, 5]];
        let (a, ..) = plan_order(&sets, 700);
        let (b, ..) = plan_order(&sets, 700);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..sets.len()).collect::<Vec<_>>());
    }

    #[test]
    fn untouched_stats_count_as_fully_cold() {
        assert_eq!(miss_permille(&CacheStats::default()), 1000);
        let warm = CacheStats { accesses: 1000, hits: 990, misses: 10, evictions: 0 };
        assert_eq!(miss_permille(&warm), 10);
    }
}
