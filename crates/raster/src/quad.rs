//! The 2×2 fragment quad, the unit of rasterisation and shading.
//!
//! §II-A: "Fragments are assembled into groups of 2x2 adjacent fragments to form
//! *quads* which are sent to the Early Z-Test stage."

/// A 2×2 block of fragments at even pixel coordinates. Lane order is
/// `[(0,0), (1,0), (0,1), (1,1)]` relative to `(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quad {
    /// Top-left pixel X (even).
    pub x: u32,
    /// Top-left pixel Y (even).
    pub y: u32,
    /// Coverage mask, bit `i` = lane `i` covered.
    pub mask: u8,
    /// Interpolated depth per lane.
    pub z: [f32; 4],
    /// Interpolated texture coordinates per lane `(u, v)`.
    pub uv: [(f32, f32); 4],
}

impl Quad {
    /// Number of covered fragments.
    #[inline]
    pub fn coverage(&self) -> u32 {
        (self.mask & 0xF).count_ones()
    }

    /// Whether any lane is covered.
    #[inline]
    pub fn any(&self) -> bool {
        self.mask & 0xF != 0
    }

    /// Pixel coordinate of lane `i`.
    ///
    /// # Panics
    /// Panics if `i >= 4`.
    #[inline]
    pub fn lane_pixel(&self, i: usize) -> (u32, u32) {
        assert!(i < 4, "quad lane out of range");
        (self.x + (i as u32 & 1), self.y + (i as u32 >> 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(mask: u8) -> Quad {
        Quad { x: 10, y: 20, mask, z: [0.0; 4], uv: [(0.0, 0.0); 4] }
    }

    #[test]
    fn coverage_counts_bits() {
        assert_eq!(q(0b0000).coverage(), 0);
        assert_eq!(q(0b1010).coverage(), 2);
        assert_eq!(q(0b1111).coverage(), 4);
        assert!(!q(0).any());
        assert!(q(1).any());
    }

    #[test]
    fn lane_pixels_form_the_2x2_block() {
        let quad = q(0xF);
        assert_eq!(quad.lane_pixel(0), (10, 20));
        assert_eq!(quad.lane_pixel(1), (11, 20));
        assert_eq!(quad.lane_pixel(2), (10, 21));
        assert_eq!(quad.lane_pixel(3), (11, 21));
    }

    #[test]
    #[should_panic(expected = "lane out of range")]
    fn lane_out_of_range_panics() {
        let _ = q(0xF).lane_pixel(4);
    }
}
