//! The 2×2 fragment quad, the unit of rasterisation and shading.
//!
//! §II-A: "Fragments are assembled into groups of 2x2 adjacent fragments to form
//! *quads* which are sent to the Early Z-Test stage."

/// A 2×2 block of fragments at even pixel coordinates. Lane order is
/// `[(0,0), (1,0), (0,1), (1,1)]` relative to `(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quad {
    /// Top-left pixel X (even).
    pub x: u32,
    /// Top-left pixel Y (even).
    pub y: u32,
    /// Coverage mask, bit `i` = lane `i` covered.
    pub mask: u8,
    /// Interpolated depth per lane.
    pub z: [f32; 4],
    /// Interpolated texture coordinates per lane `(u, v)`.
    pub uv: [(f32, f32); 4],
}

impl Quad {
    /// Number of covered fragments.
    #[inline]
    pub fn coverage(&self) -> u32 {
        (self.mask & 0xF).count_ones()
    }

    /// Whether any lane is covered.
    #[inline]
    pub fn any(&self) -> bool {
        self.mask & 0xF != 0
    }

    /// Pixel coordinate of lane `i`.
    ///
    /// # Panics
    /// Panics if `i >= 4`.
    #[inline]
    pub fn lane_pixel(&self, i: usize) -> (u32, u32) {
        assert!(i < 4, "quad lane out of range");
        (self.x + (i as u32 & 1), self.y + (i as u32 >> 1))
    }
}

/// A frame's-worth (or tile's-worth) of quads in structure-of-arrays form, so the
/// early-Z loop reads only `x`/`y`/`mask`/`z` lanes and the texture-sampling loop
/// only `uv`, instead of striding over 60-byte [`Quad`] structs.
///
/// The stream is cleared and refilled per (primitive × tile) by the rasteriser;
/// [`QuadStream::get`] reassembles the AoS struct for reference paths and tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuadStream {
    /// Top-left pixel X per quad (even).
    pub x: Vec<u32>,
    /// Top-left pixel Y per quad (even).
    pub y: Vec<u32>,
    /// Coverage mask per quad.
    pub mask: Vec<u8>,
    /// Interpolated depth per lane per quad.
    pub z: Vec<[f32; 4]>,
    /// Interpolated texture coordinates per lane per quad.
    pub uv: Vec<[(f32, f32); 4]>,
}

impl QuadStream {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of quads.
    #[inline]
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// Whether the stream holds no quads.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// Empties the stream, keeping capacity for the next primitive.
    pub fn clear(&mut self) {
        self.x.clear();
        self.y.clear();
        self.mask.clear();
        self.z.clear();
        self.uv.clear();
    }

    /// Appends one quad, dissolving it into lanes.
    pub fn push(&mut self, q: &Quad) {
        self.x.push(q.x);
        self.y.push(q.y);
        self.mask.push(q.mask);
        self.z.push(q.z);
        self.uv.push(q.uv);
    }

    /// Reassembles quad `i` as the AoS struct.
    #[inline]
    pub fn get(&self, i: usize) -> Quad {
        Quad { x: self.x[i], y: self.y[i], mask: self.mask[i], z: self.z[i], uv: self.uv[i] }
    }

    /// Number of covered fragments of quad `i`.
    #[inline]
    pub fn coverage(&self, i: usize) -> u32 {
        (self.mask[i] & 0xF).count_ones()
    }

    /// Pixel coordinate of lane `lane` of quad `i`.
    #[inline]
    pub fn lane_pixel(&self, i: usize, lane: usize) -> (u32, u32) {
        assert!(lane < 4, "quad lane out of range");
        (self.x[i] + (lane as u32 & 1), self.y[i] + (lane as u32 >> 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(mask: u8) -> Quad {
        Quad { x: 10, y: 20, mask, z: [0.0; 4], uv: [(0.0, 0.0); 4] }
    }

    #[test]
    fn coverage_counts_bits() {
        assert_eq!(q(0b0000).coverage(), 0);
        assert_eq!(q(0b1010).coverage(), 2);
        assert_eq!(q(0b1111).coverage(), 4);
        assert!(!q(0).any());
        assert!(q(1).any());
    }

    #[test]
    fn lane_pixels_form_the_2x2_block() {
        let quad = q(0xF);
        assert_eq!(quad.lane_pixel(0), (10, 20));
        assert_eq!(quad.lane_pixel(1), (11, 20));
        assert_eq!(quad.lane_pixel(2), (10, 21));
        assert_eq!(quad.lane_pixel(3), (11, 21));
    }

    #[test]
    #[should_panic(expected = "lane out of range")]
    fn lane_out_of_range_panics() {
        let _ = q(0xF).lane_pixel(4);
    }

    #[test]
    fn stream_round_trips_quads() {
        let quads = [
            Quad { x: 0, y: 0, mask: 0b1010, z: [0.1, 0.2, 0.3, 0.4], uv: [(0.5, 0.5); 4] },
            Quad { x: 6, y: 2, mask: 0xF, z: [0.9; 4], uv: [(0.0, 1.0); 4] },
        ];
        let mut s = QuadStream::new();
        for q in &quads {
            s.push(q);
        }
        assert_eq!(s.len(), 2);
        for (i, q) in quads.iter().enumerate() {
            assert_eq!(s.get(i), *q);
            assert_eq!(s.coverage(i), q.coverage());
            for lane in 0..4 {
                assert_eq!(s.lane_pixel(i, lane), q.lane_pixel(lane));
            }
        }
        s.clear();
        assert!(s.is_empty());
    }
}
