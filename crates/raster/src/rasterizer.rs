//! Edge-function rasterisation of one primitive within one tile.
//!
//! §II-A: "The Rasterizer determines the pixels that are overlapped by each primitive
//! in the current tile and discretizes each primitive into a set of *fragments*. In
//! addition, the Rasterizer interpolates the values of the primitive's attributes."
//!
//! Coverage is evaluated at pixel centres with a top-left fill rule approximation;
//! attributes (depth, UV) are interpolated barycentrically (affine — adequate for the
//! mobile content modelled here and for the memory-address streams the simulator
//! needs).

use crate::quad::{Quad, QuadStream};
use tbr_geom::pipeline::{double_area_from_lanes, ScreenTriangle, ScreenVertex};

/// Per-triangle interpolation setup: edge functions and attribute gradients.
#[derive(Debug, Clone, Copy)]
pub struct TriangleSetup {
    // Edge functions e_i(x, y) = a_i x + b_i y + c_i, positive inside.
    a: [f32; 3],
    b: [f32; 3],
    c: [f32; 3],
    inv_area2: f32,
    z: [f32; 3],
    u: [f32; 3],
    v: [f32; 3],
    // Screen bounding box, pre-folded once at setup: floor of the min corner and
    // ceil of the max corner, so per-tile rasterisation only clamps to the rect.
    min_x: f32,
    min_y: f32,
    max_x: f32,
    max_y: f32,
    /// Maximum screen-space UV derivative (in UV units per pixel), used for mip
    /// selection — constant per triangle under affine interpolation.
    pub uv_derivative: f32,
}

impl TriangleSetup {
    /// Builds the setup; returns `None` for degenerate (zero-area) triangles.
    pub fn new(tri: &ScreenTriangle) -> Option<Self> {
        Self::from_vertices(tri.v)
    }

    /// Builds the setup from three screen-space vertices — the body shared by
    /// the AoS [`TriangleSetup::new`] and the SoA raster front-end (which feeds
    /// it `TriangleStream::vertices(i)`).
    pub fn from_vertices(p: [ScreenVertex; 3]) -> Option<Self> {
        let xs = p.map(|v| v.x);
        let ys = p.map(|v| v.y);
        let area2 = double_area_from_lanes(xs, ys);
        if area2.abs() < 1.0e-6 {
            return None;
        }
        // Normalise winding so all edge functions are positive inside.
        let s = if area2 > 0.0 { 1.0 } else { -1.0 };
        let mut a = [0.0f32; 3];
        let mut b = [0.0f32; 3];
        let mut c = [0.0f32; 3];
        for i in 0..3 {
            let v0 = p[i];
            let v1 = p[(i + 1) % 3];
            // e(x,y) = (v1-v0) x (p - v0), z-component; positive to the left.
            a[i] = s * (v0.y - v1.y);
            b[i] = s * (v1.x - v0.x);
            c[i] = s * (v1.y * v0.x - v1.x * v0.y);
        }
        // Barycentric weights: w_i proportional to the edge opposite vertex i.
        // With the edge ordering above, edge i (from v_i to v_{i+1}) is opposite
        // vertex i+2.
        let inv_area2 = 1.0 / area2.abs();

        // Affine attribute gradients for the UV derivative: solve via barycentric
        // gradient. grad(w_i) = (a_{i'}, b_{i'}) * inv_area2 with i' = edge opposite.
        let mut dudx = 0.0f32;
        let mut dudy = 0.0f32;
        let mut dvdx = 0.0f32;
        let mut dvdy = 0.0f32;
        for (i, v) in p.iter().enumerate() {
            let e = (i + 1) % 3; // edge opposite vertex i is edge i+1 in our ordering
            let gx = a[e] * inv_area2;
            let gy = b[e] * inv_area2;
            dudx += v.u * gx;
            dudy += v.u * gy;
            dvdx += v.v * gx;
            dvdy += v.v * gy;
        }
        let uv_derivative =
            dudx.abs().max(dudy.abs()).max(dvdx.abs()).max(dvdy.abs());

        Some(Self {
            a,
            b,
            c,
            inv_area2,
            z: [p[0].z, p[1].z, p[2].z],
            u: [p[0].u, p[1].u, p[2].u],
            v: [p[0].v, p[1].v, p[2].v],
            min_x: xs.iter().copied().fold(f32::INFINITY, f32::min).floor(),
            min_y: ys.iter().copied().fold(f32::INFINITY, f32::min).floor(),
            max_x: xs.iter().copied().fold(f32::NEG_INFINITY, f32::max).ceil(),
            max_y: ys.iter().copied().fold(f32::NEG_INFINITY, f32::max).ceil(),
            uv_derivative,
        })
    }

    /// Evaluates coverage + attributes at a pixel centre; `None` when outside.
    #[inline]
    fn sample(&self, px: u32, py: u32) -> Option<(f32, f32, f32)> {
        let x = px as f32 + 0.5;
        let y = py as f32 + 0.5;
        let e0 = self.a[0] * x + self.b[0] * y + self.c[0];
        let e1 = self.a[1] * x + self.b[1] * y + self.c[1];
        let e2 = self.a[2] * x + self.b[2] * y + self.c[2];
        // Top-left-rule approximation: include edges on the >= 0 side.
        if e0 < 0.0 || e1 < 0.0 || e2 < 0.0 {
            return None;
        }
        // Barycentric weights: edge e_i is opposite vertex i+2.
        let w2 = e0 * self.inv_area2;
        let w0 = e1 * self.inv_area2;
        let w1 = e2 * self.inv_area2;
        let z = w0 * self.z[0] + w1 * self.z[1] + w2 * self.z[2];
        let u = w0 * self.u[0] + w1 * self.u[1] + w2 * self.u[2];
        let v = w0 * self.v[0] + w1 * self.v[1] + w2 * self.v[2];
        Some((z, u, v))
    }
}

/// Rasterises `tri` within the pixel rectangle `[x0, x1) × [y0, y1)` (a tile, already
/// clipped to the screen), producing covered quads.
pub fn rasterize_in_rect(
    tri: &ScreenTriangle,
    x0: u32,
    y0: u32,
    x1: u32,
    y1: u32,
) -> Vec<Quad> {
    let mut quads = Vec::new();
    rasterize_in_rect_into(tri, x0, y0, x1, y1, &mut quads);
    quads
}

/// [`rasterize_in_rect`] writing into a caller-owned buffer (cleared first), so
/// the per-(primitive × tile) hot path can reuse one allocation.
pub fn rasterize_in_rect_into(
    tri: &ScreenTriangle,
    x0: u32,
    y0: u32,
    x1: u32,
    y1: u32,
    quads: &mut Vec<Quad>,
) {
    quads.clear();
    let Some(setup) = TriangleSetup::new(tri) else {
        return;
    };
    raster_loop(&setup, x0, y0, x1, y1, |x, y, mask, z, uv| {
        quads.push(Quad { x, y, mask, z, uv });
    });
}

/// Rasterises an already-built [`TriangleSetup`] within `[x0, x1) × [y0, y1)`
/// into a SoA [`QuadStream`] (cleared first) — the hot path: the raster
/// front-end builds the setup once per (primitive × tile) and reuses it for
/// both rasterisation and mip selection.
pub fn rasterize_setup_in_rect_into(
    setup: &TriangleSetup,
    x0: u32,
    y0: u32,
    x1: u32,
    y1: u32,
    quads: &mut QuadStream,
) {
    quads.clear();
    raster_loop(setup, x0, y0, x1, y1, |x, y, mask, z, uv| {
        quads.x.push(x);
        quads.y.push(y);
        quads.mask.push(mask);
        quads.z.push(z);
        quads.uv.push(uv);
    });
}

/// The single quad-emission loop behind both [`rasterize_in_rect_into`] (AoS)
/// and [`rasterize_setup_in_rect_into`] (SoA) — one body, so the two output
/// layouts cannot diverge arithmetically.
fn raster_loop(
    setup: &TriangleSetup,
    x0: u32,
    y0: u32,
    x1: u32,
    y1: u32,
    mut emit: impl FnMut(u32, u32, u8, [f32; 4], [(f32, f32); 4]),
) {
    // Intersect the tile rect with the triangle bbox (pre-folded in the setup),
    // then align to the quad grid.
    let bminx = setup.min_x.max(x0 as f32) as u32;
    let bminy = setup.min_y.max(y0 as f32) as u32;
    let bmaxx = (setup.max_x as u32).min(x1);
    let bmaxy = (setup.max_y as u32).min(y1);
    if bminx >= bmaxx || bminy >= bmaxy {
        return;
    }
    let qx0 = bminx & !1;
    let qy0 = bminy & !1;

    let mut py = qy0;
    while py < bmaxy {
        let mut px = qx0;
        while px < bmaxx {
            let mut mask = 0u8;
            let mut z = [0.0f32; 4];
            let mut uv = [(0.0f32, 0.0f32); 4];
            for lane in 0..4u32 {
                let lx = px + (lane & 1);
                let ly = py + (lane >> 1);
                if lx < x0 || lx >= x1 || ly < y0 || ly >= y1 {
                    continue;
                }
                if let Some((sz, su, sv)) = setup.sample(lx, ly) {
                    mask |= 1 << lane;
                    z[lane as usize] = sz;
                    uv[lane as usize] = (su, sv);
                }
            }
            if mask != 0 {
                emit(px, py, mask, z, uv);
            }
            px += 2;
        }
        py += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbr_common::ids::{DrawCallId, TextureId};
    use tbr_geom::pipeline::ScreenVertex;
    use tbr_geom::scene::{BlendMode, FragmentShaderDesc, TextureDesc};

    fn tri(p: [(f32, f32); 3], uv: [(f32, f32); 3]) -> ScreenTriangle {
        let mut v = [ScreenVertex::default(); 3];
        for i in 0..3 {
            v[i] = ScreenVertex { x: p[i].0, y: p[i].1, z: 0.5, u: uv[i].0, v: uv[i].1 };
        }
        ScreenTriangle {
            v,
            draw: DrawCallId(0),
            texture: TextureDesc::new(TextureId(0), 64),
            shader: FragmentShaderDesc::simple(),
            blend: BlendMode::Opaque,
            seq: 0,
        }
    }

    fn coverage(quads: &[Quad]) -> u32 {
        quads.iter().map(Quad::coverage).sum()
    }

    #[test]
    fn right_triangle_covers_half_the_square() {
        // A 32x32 right triangle covers ~half of the 32x32 square = ~512 pixels.
        let t = tri([(0.0, 0.0), (32.0, 0.0), (0.0, 32.0)], [(0.0, 0.0); 3]);
        let quads = rasterize_in_rect(&t, 0, 0, 32, 32);
        let cov = coverage(&quads);
        assert!((450..=560).contains(&cov), "coverage {cov} not ~512");
    }

    #[test]
    fn full_square_from_two_triangles_covers_exactly_once() {
        let a = tri([(0.0, 0.0), (32.0, 0.0), (0.0, 32.0)], [(0.0, 0.0); 3]);
        let b = tri([(32.0, 0.0), (32.0, 32.0), (0.0, 32.0)], [(0.0, 0.0); 3]);
        let ca = coverage(&rasterize_in_rect(&a, 0, 0, 32, 32));
        let cb = coverage(&rasterize_in_rect(&b, 0, 0, 32, 32));
        let total = ca + cb;
        // The shared diagonal must not be double-counted badly: allow the diagonal
        // (~32 px) of slack either way around the exact 1024.
        assert!((992..=1056).contains(&total), "total coverage {total}");
    }

    #[test]
    fn rasterization_is_clipped_to_rect() {
        let t = tri([(0.0, 0.0), (64.0, 0.0), (0.0, 64.0)], [(0.0, 0.0); 3]);
        for q in rasterize_in_rect(&t, 0, 0, 32, 32) {
            for lane in 0..4 {
                if q.mask & (1 << lane) != 0 {
                    let (x, y) = q.lane_pixel(lane);
                    assert!(x < 32 && y < 32, "fragment ({x},{y}) escaped the rect");
                }
            }
        }
    }

    #[test]
    fn winding_invariance() {
        let ccw = tri([(0.0, 0.0), (32.0, 0.0), (0.0, 32.0)], [(0.0, 0.0); 3]);
        let cw = tri([(0.0, 0.0), (0.0, 32.0), (32.0, 0.0)], [(0.0, 0.0); 3]);
        assert_eq!(
            coverage(&rasterize_in_rect(&ccw, 0, 0, 32, 32)),
            coverage(&rasterize_in_rect(&cw, 0, 0, 32, 32))
        );
    }

    #[test]
    fn depth_interpolates_linearly() {
        // z goes 0 at x=0 to 1 at x=32 along a wide thin quad pair; check midpoint.
        let mut t = tri([(0.0, 0.0), (32.0, 0.0), (0.0, 32.0)], [(0.0, 0.0); 3]);
        t.v[0].z = 0.0;
        t.v[1].z = 1.0;
        t.v[2].z = 0.0;
        let quads = rasterize_in_rect(&t, 0, 0, 32, 32);
        for q in &quads {
            for lane in 0..4 {
                if q.mask & (1 << lane) != 0 {
                    let (x, _) = q.lane_pixel(lane);
                    let expect = (x as f32 + 0.5) / 32.0;
                    assert!(
                        (q.z[lane] - expect).abs() < 0.05,
                        "z at x={x}: {} vs {expect}",
                        q.z[lane]
                    );
                }
            }
        }
    }

    #[test]
    fn uv_derivative_matches_texel_density() {
        // UV spans 1.0 over 32 pixels -> derivative = 1/32 per pixel.
        let t = tri(
            [(0.0, 0.0), (32.0, 0.0), (0.0, 32.0)],
            [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)],
        );
        let setup = TriangleSetup::new(&t).unwrap();
        assert!((setup.uv_derivative - 1.0 / 32.0).abs() < 1e-4, "{}", setup.uv_derivative);
    }

    #[test]
    fn degenerate_triangle_produces_nothing() {
        let t = tri([(0.0, 0.0), (10.0, 10.0), (20.0, 20.0)], [(0.0, 0.0); 3]);
        assert!(rasterize_in_rect(&t, 0, 0, 32, 32).is_empty());
    }

    #[test]
    fn empty_when_triangle_outside_rect() {
        let t = tri([(100.0, 100.0), (120.0, 100.0), (100.0, 120.0)], [(0.0, 0.0); 3]);
        assert!(rasterize_in_rect(&t, 0, 0, 32, 32).is_empty());
    }
}
