//! Texture addressing: UV → mip level → Morton-blocked texel address.
//!
//! Textures are stored with the layout real mobile GPUs use for bandwidth
//! efficiency: 32-bit texels grouped into 4×4-texel blocks (64 B = exactly one cache
//! line), blocks ordered by Morton code within each mip level. Two properties follow,
//! and both matter to LIBRA:
//!
//! * fragments that are close on screen sample texels that are close in UV space and
//!   therefore land in the *same or adjacent cache lines* — this is the locality that
//!   nearby tiles share (§III-C) and that supertiles preserve;
//! * mip-mapping keeps the texel-per-pixel density ≈ 1, so the per-tile texture
//!   footprint scales with on-screen area, as in real content.

use tbr_common::addr::TEXTURE_BASE;
use tbr_common::ids::TextureId;
use tbr_common::morton::morton_encode;
use tbr_geom::scene::TextureDesc;

/// Bytes reserved per texture object (fits a 1024² RGBA texture with full mip chain).
pub const TEXTURE_STRIDE: u64 = 8 << 20;
/// Bytes per texel (RGBA8).
pub const BYTES_PER_TEXEL: u64 = 4;
/// Edge of a texel block in texels (4×4 texels × 4 B = 64 B line).
pub const BLOCK_EDGE: u32 = 4;

/// Base address of a texture object.
#[inline]
pub fn texture_base(id: TextureId) -> u64 {
    TEXTURE_BASE + id.0 as u64 * TEXTURE_STRIDE
}

/// Number of mip levels of a texture of edge `size` (level 0 = full size, last = 1×1).
#[inline]
pub fn mip_levels(size: u32) -> u32 {
    32 - size.leading_zeros()
}

/// Byte offset of mip level `level` within a texture of edge `size`.
///
/// # Panics
/// Panics if `level` is out of range for `size`.
pub fn mip_offset(size: u32, level: u32) -> u64 {
    assert!(level < mip_levels(size), "mip level {level} out of range for size {size}");
    let mut off = 0u64;
    for l in 0..level {
        let edge = (size >> l).max(1) as u64;
        off += edge * edge * BYTES_PER_TEXEL;
    }
    off
}

/// Selects the mip level for a given screen-space UV derivative (UV units per pixel):
/// the level at which one texel ≈ one pixel.
pub fn select_mip(tex: &TextureDesc, uv_derivative: f32) -> u32 {
    let texel_step = (uv_derivative * tex.size_texels as f32).max(1.0e-6);
    let lod = texel_step.log2().floor();
    (lod.max(0.0) as u32).min(mip_levels(tex.size_texels) - 1)
}

/// `t.floor()` without the `floorf` libcall on targets without a native floor
/// instruction — bit-identical to [`f32::floor`] for every input.
#[inline]
fn fast_floor(t: f32) -> f32 {
    if t.abs() < 8_388_608.0 {
        // |t| < 2^23: `as i32` is an exact truncation toward zero, and the
        // down-adjusted integer is exactly representable.
        let i = t as i32 as f32;
        i - ((t < i) as u32 as f32)
    } else {
        // Every finite f32 at this magnitude is already an integer; NaN and
        // the infinities take the libcall.
        t.floor()
    }
}

/// Per-(texture, mip, sample) addressing state: hoists the mip-chain walk,
/// the base-address arithmetic, and the edge conversions out of the per-texel
/// inner loop. Addresses are bit-identical to [`texel_line_addr`].
pub struct MipAddresser {
    edge: u32,
    edge_f: f32,
    step: f32,
    base: u64,
}

impl MipAddresser {
    /// Addressing state for `tex` sampled at mip `level` by shader texture
    /// sample `sample_index` (sample `s` reads texture `tex.id + s`, see the
    /// workload generator).
    pub fn new(tex: &TextureDesc, level: u32, sample_index: u32) -> Self {
        let edge = (tex.size_texels >> level).max(1);
        Self {
            edge,
            edge_f: edge as f32,
            step: 1.0 / edge as f32,
            base: texture_base(TextureId(tex.id.0 + sample_index))
                + mip_offset(tex.size_texels, level),
        }
    }

    /// Address of the 64 B cache line holding texel `(u, v)`; UVs wrap
    /// (repeat addressing).
    #[inline]
    pub fn line_addr(&self, u: f32, v: f32) -> u64 {
        // Wrap to [0, 1) then scale to texels.
        let wrap = |t: f32| -> u32 {
            let frac = t - fast_floor(t);
            ((frac * self.edge_f) as u32).min(self.edge - 1)
        };
        let bx = wrap(u) / BLOCK_EDGE;
        let by = wrap(v) / BLOCK_EDGE;
        self.base + morton_encode(bx, by) * 64
    }

    /// The cache lines holding the 2×2 bilinear texel neighbourhood of
    /// `(u, v)` — between 1 and 4 distinct lines, written into `out`; returns
    /// the count.
    #[inline]
    pub fn bilinear_line_addrs(&self, u: f32, v: f32, out: &mut [u64; 4]) -> usize {
        let step = self.step;
        let mut n = 0;
        for (du, dv) in [(0.0, 0.0), (step, 0.0), (0.0, step), (step, step)] {
            let line = self.line_addr(u + du - 0.5 * step, v + dv - 0.5 * step);
            if !out[..n].contains(&line) {
                out[n] = line;
                n += 1;
            }
        }
        n
    }
}

/// Address of the 64 B cache line holding texel `(u, v)` of `tex` at mip `level`.
/// UVs wrap (repeat addressing); `sample_index` selects among the shader's bound
/// textures (sample `s` reads texture `tex.id + s`, see the workload generator).
pub fn texel_line_addr(tex: &TextureDesc, u: f32, v: f32, level: u32, sample_index: u32) -> u64 {
    MipAddresser::new(tex, level, sample_index).line_addr(u, v)
}

/// The cache lines holding the 2×2 bilinear texel neighbourhood of `(u, v)` at mip
/// `level` — between 1 and 4 distinct lines, written into `out`; returns the count.
pub fn bilinear_line_addrs(
    tex: &TextureDesc,
    u: f32,
    v: f32,
    level: u32,
    sample_index: u32,
    out: &mut [u64; 4],
) -> usize {
    MipAddresser::new(tex, level, sample_index).bilinear_line_addrs(u, v, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tex(size: u32) -> TextureDesc {
        TextureDesc::new(TextureId(3), size)
    }

    #[test]
    fn mip_levels_and_offsets() {
        assert_eq!(mip_levels(1), 1);
        assert_eq!(mip_levels(256), 9);
        assert_eq!(mip_offset(256, 0), 0);
        assert_eq!(mip_offset(256, 1), 256 * 256 * 4);
        assert_eq!(mip_offset(256, 2), 256 * 256 * 4 + 128 * 128 * 4);
        // Whole chain fits in the stride.
        let total = mip_offset(1024, mip_levels(1024) - 1) + 4;
        assert!(total <= TEXTURE_STRIDE);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mip_offset_rejects_bad_level() {
        let _ = mip_offset(16, 5);
    }

    #[test]
    fn select_mip_matches_texel_density() {
        let t = tex(256);
        // 1 UV across 256 pixels -> 1 texel/pixel -> level 0.
        assert_eq!(select_mip(&t, 1.0 / 256.0), 0);
        // 1 UV across 64 pixels -> 4 texels/pixel -> level 2.
        assert_eq!(select_mip(&t, 1.0 / 64.0), 2);
        // Extremely minified: clamps to the last level.
        assert_eq!(select_mip(&t, 100.0), mip_levels(256) - 1);
        // Magnified: clamps to level 0.
        assert_eq!(select_mip(&t, 1.0e-9), 0);
    }

    #[test]
    fn texels_in_same_block_share_a_line() {
        let t = tex(256);
        // Texels (0..4, 0..4) are one 4x4 block.
        let a = texel_line_addr(&t, 0.5 / 256.0, 0.5 / 256.0, 0, 0);
        let b = texel_line_addr(&t, 3.5 / 256.0, 3.5 / 256.0, 0, 0);
        assert_eq!(a, b);
        // Texel (4, 0) is the next block -> different line.
        let c = texel_line_addr(&t, 4.5 / 256.0, 0.5 / 256.0, 0, 0);
        assert_ne!(a, c);
    }

    #[test]
    fn nearby_blocks_have_nearby_addresses() {
        let t = tex(256);
        let a = texel_line_addr(&t, 0.0, 0.0, 0, 0);
        let b = texel_line_addr(&t, 4.0 / 256.0, 4.0 / 256.0, 0, 0); // diagonal block
        // Morton keeps the 2x2 block neighbourhood within 4 lines.
        assert!(b - a <= 4 * 64, "morton locality violated: {} vs {}", a, b);
    }

    #[test]
    fn uv_wrapping_repeats() {
        let t = tex(64);
        let a = texel_line_addr(&t, 0.1, 0.2, 0, 0);
        let b = texel_line_addr(&t, 1.1, 2.2, 0, 0);
        assert_eq!(a, b);
        let c = texel_line_addr(&t, -0.9, 0.2, 0, 0);
        assert_eq!(a, c);
    }

    #[test]
    fn bilinear_touches_at_most_four_lines() {
        let t = tex(256);
        let mut out = [0u64; 4];
        // Interior of a block: all four neighbours share one line.
        let n = bilinear_line_addrs(&t, 2.0 / 256.0, 2.0 / 256.0, 0, 0, &mut out);
        assert_eq!(n, 1);
        // On a block corner: up to four lines.
        let n = bilinear_line_addrs(&t, 4.0 / 256.0, 4.0 / 256.0, 0, 0, &mut out);
        assert!((2..=4).contains(&n), "{n}");
        // All returned lines are distinct.
        for i in 0..n {
            for j in 0..i {
                assert_ne!(out[i], out[j]);
            }
        }
    }

    #[test]
    fn sample_index_selects_sibling_texture() {
        let t = tex(64);
        let a = texel_line_addr(&t, 0.1, 0.1, 0, 0);
        let b = texel_line_addr(&t, 0.1, 0.1, 0, 1);
        assert_eq!(b - a, TEXTURE_STRIDE);
    }

    #[test]
    fn different_textures_do_not_alias() {
        let t0 = TextureDesc::new(TextureId(0), 256);
        let t1 = TextureDesc::new(TextureId(1), 256);
        let a = texel_line_addr(&t0, 0.99, 0.99, 0, 0);
        let b = texel_line_addr(&t1, 0.0, 0.0, 0, 0);
        assert!(a < b, "texture regions must be disjoint");
    }
}
