//! # tbr-raster — the Raster Pipeline of the LIBRA TBR GPU simulator
//!
//! Implements the per-tile rendering units of Fig 3 (right) / Fig 5:
//!
//! * [`rasterizer`] — edge-function rasterisation of a primitive inside a tile,
//!   producing 2×2 [`quad::Quad`]s with interpolated depth and texture coordinates;
//! * [`zbuffer`] — the tile-sized on-chip Z-Buffer backing the Early-Z (and Late-Z)
//!   test;
//! * [`texture`] — texture addressing: mip-map selection from screen-space UV
//!   derivatives and a Morton-blocked texel layout (4×4-texel 64 B blocks), which is
//!   what gives nearby tiles their texture-locality (§III-C);
//! * [`shader`] — the multithreaded shader-core timing model: resident warp slots, an
//!   in-order issue port, and texture accesses through a per-core L1 (Table I);
//! * [`color_buffer`] — the tile-sized on-chip Colour Buffer with blending, flushed to
//!   the Frame Buffer in DRAM when a tile completes;
//! * [`raster_unit`] — one Raster Unit: tile front-end (Parameter-Buffer fetch →
//!   rasterise → Early-Z → warp assembly) plus its private shader cores;
//! * [`mod@reference`] — a purely functional renderer used as a golden model in tests and
//!   to dump PPM images in the examples;
//! * [`wasp`] — WaSP-style warp scheduling (arXiv 2404.06156): a max-coverage
//!   "spearhead" warp group issued first to warm the texture caches, then the
//!   remainder in criticality order, driven by the measured miss ratio.

#![warn(missing_docs)]

pub mod color_buffer;
pub mod quad;
pub mod raster_unit;
pub mod rasterizer;
pub mod reference;
pub mod shader;
pub mod texture;
pub mod wasp;
pub mod zbuffer;

pub use quad::{Quad, QuadStream};
pub use raster_unit::{RasterUnit, TileFrontEndOutcome, WarpWork};
pub use shader::{SampleLines, SampleLinesRef, ShaderCore, WarpOutcome};
pub use wasp::WaspDecision;
pub use zbuffer::ZBuffer;
