//! The shader-core timing model.
//!
//! "The shader cores are designed to exploit \[parallelism\] by being highly
//! multithreaded to increase throughput and hide memory latency." (§I)
//!
//! Each core issues one instruction per cycle from its in-order issue port and sends
//! texture reads through its private L1 texture cache into the shared hierarchy.
//! Warp execution is *steppable*: one [`ShaderCore::step_warp`] call executes one
//! texture-sample stage (its preceding ALU burst, the sample instruction, and the
//! line fetches) or the final ALU tail. The event-driven simulator interleaves steps
//! from many warps — across cores and Raster Units — in global time order, which is
//! what lets a core's other warps issue while one warp waits on memory (latency
//! hiding) and keeps shared-resource reservations causal.
//!
//! Warp-slot admission (`max_warps` resident warps per core) is enforced by the
//! caller that owns dispatch (the raster-phase loop / Raster Unit), since slot
//! release times are only known once warps actually finish.

use tbr_common::addr::AccessKind;
use tbr_common::config::CacheConfig;
use tbr_common::stats::CacheStats;
use tbr_common::Cycle;
use tbr_geom::scene::FragmentShaderDesc;
use tbr_mem::hierarchy::{L1Cache, MemoryHierarchy};

/// Cycles from last instruction to warp retirement (pipeline drain).
const DRAIN_CYCLES: Cycle = 4;

/// Accumulated result of one warp's execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarpOutcome {
    /// Cycle the warp started.
    pub start: Cycle,
    /// Cycle the warp retired (valid once execution is done).
    pub completion: Cycle,
    /// SIMD instructions issued (ALU + texture).
    pub instructions: u64,
    /// Line-granular texture requests issued.
    pub tex_requests: u64,
    /// Sum of texture request latencies in cycles.
    pub tex_latency_sum: u64,
    /// DRAM accesses triggered by this warp's texture misses.
    pub dram_accesses: u64,
    /// Texture lines filled into this core's L1 (for replication tracking).
    pub fills: Vec<u64>,
}

/// Per-stage texture line lists of one warp, flattened into one allocation.
///
/// A warp with `t` texture stages used to carry `Vec<Vec<u64>>` — one heap
/// allocation per stage, at roughly a million warps per simulated frame. The
/// flat layout (stage `i` is `lines[ends[i-1]..ends[i]]`) costs two allocations
/// per warp regardless of stage count and keeps the lines contiguous for the
/// L1 access loop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleLines {
    lines: Vec<u64>,
    ends: Vec<u32>,
}

impl SampleLines {
    /// An empty list with room for `lines` total lines across `stages` stages.
    pub fn with_capacity(lines: usize, stages: usize) -> Self {
        Self {
            lines: Vec::with_capacity(lines),
            ends: Vec::with_capacity(stages),
        }
    }

    /// Builds from the nested per-stage representation (test convenience).
    pub fn from_nested(stages: &[Vec<u64>]) -> Self {
        let mut out = Self::with_capacity(stages.iter().map(Vec::len).sum(), stages.len());
        for st in stages {
            out.lines.extend_from_slice(st);
            out.end_stage();
        }
        out
    }

    /// Number of texture stages.
    #[inline]
    pub fn stages(&self) -> usize {
        self.ends.len()
    }

    /// The line addresses of stage `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.stages()`.
    #[inline]
    pub fn stage(&self, i: usize) -> &[u64] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.lines[start..self.ends[i] as usize]
    }

    /// Iterates the stages in order.
    pub fn iter_stages(&self) -> impl Iterator<Item = &[u64]> + '_ {
        (0..self.stages()).map(|i| self.stage(i))
    }

    /// Total line addresses across all stages.
    #[inline]
    pub fn total_lines(&self) -> usize {
        self.lines.len()
    }

    /// Appends a line to the stage currently being built.
    #[inline]
    pub fn push_line(&mut self, line: u64) {
        self.lines.push(line);
    }

    /// Appends several lines to the stage currently being built.
    #[inline]
    pub fn extend_lines(&mut self, lines: &[u64]) {
        self.lines.extend_from_slice(lines);
    }

    /// Closes the stage currently being built (lines pushed afterwards belong
    /// to the next stage).
    #[inline]
    pub fn end_stage(&mut self) {
        self.ends.push(self.lines.len() as u32);
    }

    /// A borrowed view over this list — what the stepping API consumes.
    #[inline]
    pub fn view(&self) -> SampleLinesRef<'_> {
        SampleLinesRef { lines: &self.lines, ends: &self.ends }
    }
}

/// Borrowed view over a warp's per-stage texture line lists — the form the
/// [`ShaderCore`] stepping API consumes.
///
/// Obtained from [`SampleLines::view`], or assembled directly from per-frame
/// arena spans by the Raster Unit, which is what lets warp scratch live in two
/// bump allocations per frame instead of two heap allocations per warp. `ends`
/// offsets are relative to the start of `lines` (stage `i` is
/// `lines[ends[i-1]..ends[i]]`), so a view over an arena span is just the two
/// subslices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleLinesRef<'a> {
    /// Flattened line addresses, all stages back to back.
    pub lines: &'a [u64],
    /// End offset of each stage within `lines`.
    pub ends: &'a [u32],
}

impl<'a> SampleLinesRef<'a> {
    /// Number of texture stages.
    #[inline]
    pub fn stages(&self) -> usize {
        self.ends.len()
    }

    /// The line addresses of stage `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.stages()`.
    #[inline]
    pub fn stage(&self, i: usize) -> &'a [u64] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.lines[start..self.ends[i] as usize]
    }

    /// Iterates the stages in order.
    pub fn iter_stages(&self) -> impl Iterator<Item = &'a [u64]> + '_ {
        (0..self.stages()).map(|i| self.stage(i))
    }

    /// Total line addresses across all stages.
    #[inline]
    pub fn total_lines(&self) -> usize {
        self.lines.len()
    }
}

/// In-flight execution state of one warp on one core.
#[derive(Debug, Clone, PartialEq)]
pub struct WarpExecState {
    /// Next sample stage to execute (== `sample_lines.stages()` means only the
    /// ALU tail remains).
    stage: usize,
    /// Warp-local data-ready time.
    t: Cycle,
    /// Whether the warp has retired.
    done: bool,
    /// Statistics so far.
    pub outcome: WarpOutcome,
}

impl WarpExecState {
    /// The earliest cycle at which this warp can make progress.
    pub fn ready_at(&self) -> Cycle {
        self.t
    }

    /// Whether the warp has retired.
    pub fn is_done(&self) -> bool {
        self.done
    }
}

/// One multithreaded shader core with a private texture L1.
#[derive(Debug, Clone)]
pub struct ShaderCore {
    l1: L1Cache,
    issue_free: Cycle,
    max_warps: usize,
}

impl ShaderCore {
    /// Builds a core with a texture L1 of the given geometry and `max_warps`
    /// resident warp slots (advertised via [`ShaderCore::max_warps`]; enforced by
    /// the dispatcher).
    ///
    /// # Panics
    /// Panics if `max_warps` is zero.
    pub fn new(texture_l1: CacheConfig, max_warps: usize) -> Self {
        assert!(max_warps > 0, "a core needs at least one warp slot");
        Self {
            l1: L1Cache::new(texture_l1),
            issue_free: 0,
            max_warps,
        }
    }

    /// Resident-warp capacity of this core.
    pub fn max_warps(&self) -> usize {
        self.max_warps
    }

    /// Starts executing a warp that arrived (and was granted a slot) at `start`.
    pub fn begin_warp(&self, start: Cycle) -> WarpExecState {
        WarpExecState {
            stage: 0,
            t: start,
            done: false,
            outcome: WarpOutcome {
                start,
                ..WarpOutcome::default()
            },
        }
    }

    /// Executes the warp's next stage: one (ALU burst + texture sample + line
    /// fetches) group, or the final ALU tail. Returns `true` when the warp retired.
    ///
    /// # Panics
    /// Panics if called on a warp that already finished.
    pub fn step_warp(
        &mut self,
        shader: &FragmentShaderDesc,
        sample_lines: SampleLinesRef<'_>,
        state: &mut WarpExecState,
        hier: &mut MemoryHierarchy,
    ) -> bool {
        let ideal = hier.ideal;
        self.step_warp_inner(shader, sample_lines, state, Some(hier), ideal)
    }

    /// Whether the next [`ShaderCore::step_warp`] on `state` would be served
    /// without touching the shared hierarchy: every line of the current stage is
    /// resident in this core's L1 (or the stage is a pure-ALU tail, or memory is
    /// ideal). Hits never evict, so residency of the whole stage up front exactly
    /// predicts an all-hit stage. This is the parallel driver's locality test.
    pub fn step_is_resident(
        &self,
        sample_lines: SampleLinesRef<'_>,
        state: &WarpExecState,
        ideal: bool,
    ) -> bool {
        ideal
            || state.stage >= sample_lines.stages()
            || sample_lines
                .stage(state.stage)
                .iter()
                .all(|&l| self.l1.is_resident(l))
    }

    /// Whether the next step retires the warp (the last sample stage of a
    /// tail-less shader, or the ALU tail itself).
    pub fn step_retires(
        shader: &FragmentShaderDesc,
        sample_lines: SampleLinesRef<'_>,
        state: &WarpExecState,
    ) -> bool {
        if state.stage < sample_lines.stages() {
            state.stage + 1 >= sample_lines.stages() && shader.alu_tail == 0
        } else {
            true
        }
    }

    /// The first line of the warp's current stage that is *not* resident in
    /// this core's L1 (`None` for a resident or pure-ALU-tail step). The line
    /// names the DRAM channel that will serve the blocking miss, which is how
    /// the parallel driver files a non-resident step under a channel queue.
    pub fn step_first_miss(
        &self,
        sample_lines: SampleLinesRef<'_>,
        state: &WarpExecState,
    ) -> Option<u64> {
        if state.stage >= sample_lines.stages() {
            return None;
        }
        sample_lines
            .stage(state.stage)
            .iter()
            .copied()
            .find(|&l| !self.l1.is_resident(l))
    }

    /// [`ShaderCore::step_warp`] for a step the caller has proven resident via
    /// [`ShaderCore::step_is_resident`] — no shared hierarchy needed, so a
    /// worker thread that owns only this core may execute it. Shares one body
    /// with `step_warp`, so the timing and counters are identical by
    /// construction.
    ///
    /// # Panics
    /// Panics if a line actually misses (a misclassified step).
    pub fn step_warp_resident(
        &mut self,
        shader: &FragmentShaderDesc,
        sample_lines: SampleLinesRef<'_>,
        state: &mut WarpExecState,
        ideal: bool,
    ) -> bool {
        self.step_warp_inner(shader, sample_lines, state, None, ideal)
    }

    /// The one body behind [`ShaderCore::step_warp`] and
    /// [`ShaderCore::step_warp_resident`]: `hier` is `None` exactly when the
    /// caller guarantees every line of the stage hits.
    fn step_warp_inner(
        &mut self,
        shader: &FragmentShaderDesc,
        sample_lines: SampleLinesRef<'_>,
        state: &mut WarpExecState,
        mut hier: Option<&mut MemoryHierarchy>,
        ideal: bool,
    ) -> bool {
        assert!(!state.done, "stepping a retired warp");
        if state.stage < sample_lines.stages() {
            let lines = sample_lines.stage(state.stage);
            // ALU burst before the sample (address math).
            if shader.alu_per_sample > 0 {
                let issue = state.t.max(self.issue_free);
                self.issue_free = issue + shader.alu_per_sample as Cycle;
                state.t = issue + shader.alu_per_sample as Cycle;
                state.outcome.instructions += shader.alu_per_sample as u64;
            }
            // The texture sample instruction itself.
            let issue = state.t.max(self.issue_free);
            self.issue_free = issue + 1;
            state.outcome.instructions += 1;
            let mut ready = issue + 1;
            for &line in lines {
                let o = match hier.as_deref_mut() {
                    Some(h) => self.l1.access(line, issue, AccessKind::TextureRead, h),
                    None => self
                        .l1
                        .access_resident(line, issue, AccessKind::TextureRead, ideal),
                };
                state.outcome.tex_requests += 1;
                state.outcome.tex_latency_sum += o.completion - issue;
                state.outcome.dram_accesses += o.dram_accesses as u64;
                if let Some(f) = o.filled_line {
                    state.outcome.fills.push(f);
                }
                ready = ready.max(o.completion);
            }
            state.t = ready;
            state.stage += 1;
            if state.stage < sample_lines.stages() || shader.alu_tail > 0 {
                return false;
            }
        } else if shader.alu_tail > 0 {
            let issue = state.t.max(self.issue_free);
            self.issue_free = issue + shader.alu_tail as Cycle;
            state.t = issue + shader.alu_tail as Cycle;
            state.outcome.instructions += shader.alu_tail as u64;
        }
        state.t += DRAIN_CYCLES;
        state.outcome.completion = state.t;
        state.done = true;
        true
    }

    /// Convenience: runs a whole warp to completion in one call. Correct timing for
    /// a *single* warp; when many warps must overlap, use the steppable API from an
    /// event loop instead (running warps back-to-back here serialises their memory
    /// phases through the shared reservations).
    pub fn execute_warp(
        &mut self,
        shader: &FragmentShaderDesc,
        sample_lines: SampleLinesRef<'_>,
        arrival: Cycle,
        hier: &mut MemoryHierarchy,
    ) -> WarpOutcome {
        let mut state = self.begin_warp(arrival);
        while !self.step_warp(shader, sample_lines, &mut state, hier) {}
        state.outcome
    }

    /// The texture L1's counters.
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1.stats()
    }

    /// Ends a frame: returns the L1 counters and resets per-frame timing state
    /// (cache contents stay warm).
    pub fn end_frame(&mut self) -> CacheStats {
        self.issue_free = 0;
        self.l1.end_frame()
    }

    /// Full reset between independent runs.
    pub fn cold_reset(&mut self) {
        self.issue_free = 0;
        self.l1.cold_reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbr_common::config::DramConfig;

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(CacheConfig::shared_l2(), DramConfig::lpddr4(), 5000)
    }

    fn core() -> ShaderCore {
        ShaderCore::new(CacheConfig::texture_l1(), 16)
    }

    fn shader(samples: u32, alu_pre: u32, alu_tail: u32) -> FragmentShaderDesc {
        FragmentShaderDesc {
            tex_samples: samples,
            alu_per_sample: alu_pre,
            alu_tail,
            ..FragmentShaderDesc::simple()
        }
    }

    #[test]
    fn pure_alu_warp_costs_its_instruction_count() {
        let mut h = hier();
        let mut c = core();
        let o = c.execute_warp(&shader(0, 0, 10), SampleLines::default().view(), 0, &mut h);
        assert_eq!(o.instructions, 10);
        assert_eq!(o.completion, 10 + DRAIN_CYCLES);
        assert_eq!(o.tex_requests, 0);
    }

    #[test]
    fn cold_texture_miss_reaches_dram() {
        let mut h = hier();
        let mut c = core();
        let o = c.execute_warp(
            &shader(1, 0, 0),
            SampleLines::from_nested(&[vec![0x4000_0000]]).view(),
            0,
            &mut h,
        );
        assert!(o.completion > 100, "cold texture miss must reach DRAM");
        assert_eq!(o.dram_accesses, 1);
        assert_eq!(o.fills, vec![0x4000_0000]);
    }

    #[test]
    fn stepped_warps_interleave_and_hide_latency() {
        // Two warps with one memory sample each, stepped in time order: warp B's
        // sample issues while warp A waits on DRAM, so both finish in roughly one
        // memory round-trip instead of two.
        let mut h = hier();
        let mut c = core();
        let s = shader(1, 0, 0);
        let la = SampleLines::from_nested(&[vec![0x4000_0000u64]]);
        let lb = SampleLines::from_nested(&[vec![0x4100_0000u64]]);
        let mut a = c.begin_warp(0);
        let mut b = c.begin_warp(1);
        // Interleave: both issue their sample before either's data returns.
        assert!(!c.step_warp(&s, la.view(), &mut a, &mut h) || a.is_done());
        assert!(!c.step_warp(&s, lb.view(), &mut b, &mut h) || b.is_done());
        while !a.is_done() {
            c.step_warp(&s, la.view(), &mut a, &mut h);
        }
        while !b.is_done() {
            c.step_warp(&s, lb.view(), &mut b, &mut h);
        }
        let serial_estimate = a.outcome.completion * 2;
        assert!(
            b.outcome.completion < serial_estimate - 50,
            "latency hiding failed: a={} b={}",
            a.outcome.completion,
            b.outcome.completion
        );
    }

    #[test]
    fn repeated_lines_hit_the_l1() {
        let mut h = hier();
        let mut c = core();
        let s = shader(1, 0, 0);
        let a = c.execute_warp(
            &s,
            SampleLines::from_nested(&[vec![0x4000_0000]]).view(),
            0,
            &mut h,
        );
        let b = c.execute_warp(
            &s,
            SampleLines::from_nested(&[vec![0x4000_0000]]).view(),
            a.completion,
            &mut h,
        );
        assert_eq!(b.dram_accesses, 0);
        assert!(b.tex_latency_sum < a.tex_latency_sum);
        assert_eq!(c.l1_stats().hits, 1);
        assert!(b.fills.is_empty());
    }

    #[test]
    fn instruction_count_matches_shader_shape() {
        let mut h = hier();
        let mut c = core();
        let s = shader(2, 3, 5);
        let o = c.execute_warp(
            &s,
            SampleLines::from_nested(&[vec![0x4000_0000], vec![0x4000_0040]]).view(),
            0,
            &mut h,
        );
        // 2 * (3 + 1) + 5 = 13 SIMD instructions.
        assert_eq!(o.instructions, 13);
        assert_eq!(o.tex_requests, 2);
    }

    #[test]
    fn step_count_is_samples_plus_tail() {
        let mut h = hier();
        let mut c = core();
        let s = shader(2, 1, 3);
        let lines = SampleLines::from_nested(&[vec![0x4000_0000u64], vec![0x4000_0040u64]]);
        let mut st = c.begin_warp(0);
        let mut steps = 0;
        while !c.step_warp(&s, lines.view(), &mut st, &mut h) {
            steps += 1;
        }
        steps += 1;
        assert_eq!(steps, 3, "2 sample stages + 1 tail stage");
        assert!(st.is_done());
        assert_eq!(st.outcome.completion, st.ready_at());
    }

    #[test]
    #[should_panic(expected = "retired warp")]
    fn stepping_finished_warp_panics() {
        let mut h = hier();
        let mut c = core();
        let s = shader(0, 0, 1);
        let mut st = c.begin_warp(0);
        assert!(c.step_warp(&s, SampleLines::default().view(), &mut st, &mut h));
        let _ = c.step_warp(&s, SampleLines::default().view(), &mut st, &mut h);
    }

    #[test]
    fn end_frame_resets_timing_keeps_cache_warm() {
        let mut h = hier();
        let mut c = core();
        let s = shader(1, 0, 0);
        c.execute_warp(
            &s,
            SampleLines::from_nested(&[vec![0x4000_0000]]).view(),
            0,
            &mut h,
        );
        let stats = c.end_frame();
        assert_eq!(stats.accesses, 1);
        let o = c.execute_warp(
            &s,
            SampleLines::from_nested(&[vec![0x4000_0000]]).view(),
            0,
            &mut h,
        );
        assert_eq!(o.dram_accesses, 0, "L1 contents must survive end_frame");
    }

    #[test]
    fn max_warps_is_advertised() {
        assert_eq!(core().max_warps(), 16);
    }

    #[test]
    fn resident_step_matches_shared_step_bit_for_bit() {
        // Warm a line on two separately-built cores with an identical warm-up
        // warp, then step one warp through the shared path on the first and its
        // twin through the resident-only path on the second: timing, counters
        // and retirement must be identical.
        let mut h = hier();
        let s = shader(1, 2, 3);
        let lines = SampleLines::from_nested(&[vec![0x4000_0000u64]]);
        let mut c_shared = core();
        let mut c_resident = core();
        let warm = c_shared.execute_warp(&s, lines.view(), 0, &mut h);
        // The second warm-up replays the same line at the same cycle; the
        // hierarchy now holds it, but the fill into the private L1 and the
        // core-local timing state are identical to the first core's.
        let warm2 = c_resident.execute_warp(&s, lines.view(), 0, &mut h);
        assert_eq!(warm.fills, warm2.fills, "both cores filled the same line");

        let mut a = c_shared.begin_warp(warm.completion);
        let mut b = c_resident.begin_warp(warm.completion);
        assert!(c_resident.step_is_resident(lines.view(), &b, false));
        loop {
            let da = c_shared.step_warp(&s, lines.view(), &mut a, &mut h);
            let db = c_resident.step_warp_resident(&s, lines.view(), &mut b, false);
            assert_eq!(da, db);
            assert_eq!(a, b, "shared and resident step paths diverged");
            if da {
                break;
            }
        }
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(c_shared.l1_stats(), c_resident.l1_stats());
    }

    #[test]
    fn step_is_resident_is_false_for_cold_lines_and_true_for_ideal() {
        let c = core();
        let lines = SampleLines::from_nested(&[vec![0x4000_0000u64]]);
        let st = c.begin_warp(0);
        assert!(
            !c.step_is_resident(lines.view(), &st, false),
            "cold line cannot be resident"
        );
        assert!(
            c.step_is_resident(lines.view(), &st, true),
            "ideal memory is always local"
        );
    }

    #[test]
    fn step_retires_predicts_the_actual_retirement() {
        let mut h = hier();
        h.ideal = true;
        let mut c = core();
        for (samples, tail) in [(0u32, 1u32), (1, 0), (2, 3)] {
            let s = shader(samples, 1, tail);
            let nested: Vec<Vec<u64>> = (0..samples as u64)
                .map(|i| vec![0x4000_0000 + i * 64])
                .collect();
            let lines = SampleLines::from_nested(&nested);
            let mut st = c.begin_warp(0);
            loop {
                let predicted = ShaderCore::step_retires(&s, lines.view(), &st);
                let actual = c.step_warp(&s, lines.view(), &mut st, &mut h);
                assert_eq!(predicted, actual, "samples={samples} tail={tail}");
                if actual {
                    break;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn resident_step_on_cold_line_panics() {
        let mut c = core();
        let s = shader(1, 0, 0);
        let lines = SampleLines::from_nested(&[vec![0x7000_0000u64]]);
        let mut st = c.begin_warp(0);
        let _ = c.step_warp_resident(&s, lines.view(), &mut st, false);
    }
}
