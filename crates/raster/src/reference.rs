//! A purely functional reference renderer.
//!
//! Renders a frame's screen-space primitives directly (whole-screen Z-buffer, no
//! tiling, no timing) — the golden model the tiled pipeline is checked against in the
//! integration tests, and the image producer for the examples (PPM output).

use crate::quad::Quad;
use crate::rasterizer::rasterize_in_rect;
use tbr_common::config::ScreenConfig;
use tbr_geom::pipeline::ScreenTriangle;
use tbr_geom::scene::{BlendMode, TextureDesc};

/// Deterministic procedural "texture sampling": hashes the texture id and texel
/// coordinate into a colour, so images show stable per-texture patterns without any
/// stored texel data.
pub fn shade_color(tex: &TextureDesc, u: f32, v: f32) -> u32 {
    let size = tex.size_texels as f32;
    let wrap = |t: f32| -> u32 {
        let f = t - t.floor();
        ((f * size) as u32).min(tex.size_texels - 1)
    };
    let (tx, ty) = (wrap(u), wrap(v));
    // xorshift-style mix of (texture, texel) -> stable pseudo-colour.
    let mut h = tex.id.0.wrapping_mul(0x9E37_79B9) ^ (tx << 16 | ty);
    h ^= h >> 15;
    h = h.wrapping_mul(0x2C1B_3C6D);
    h ^= h >> 12;
    h = h.wrapping_mul(0x297A_2D39);
    h ^= h >> 15;
    0xFF00_0000 | (h & 0x00FF_FFFF)
}

/// Renders primitives (in program order) into an RGBA8 image of the screen.
pub fn render_frame(tris: &[ScreenTriangle], screen: &ScreenConfig) -> Vec<u32> {
    let w = screen.width;
    let h = screen.height;
    let mut color = vec![crate::color_buffer::CLEAR_COLOR; (w * h) as usize];
    let mut depth = vec![f32::INFINITY; (w * h) as usize];

    for tri in tris {
        let quads = rasterize_in_rect(tri, 0, 0, w, h);
        for q in quads {
            write_quad(&q, tri, &mut color, &mut depth, w);
        }
    }
    color
}

fn write_quad(q: &Quad, tri: &ScreenTriangle, color: &mut [u32], depth: &mut [f32], width: u32) {
    for lane in 0..4usize {
        if q.mask & (1 << lane) == 0 {
            continue;
        }
        let (px, py) = q.lane_pixel(lane);
        let idx = (py * width + px) as usize;
        if q.z[lane] > depth[idx] {
            continue;
        }
        let (u, v) = q.uv[lane];
        let src = shade_color(&tri.texture, u, v);
        match tri.blend {
            BlendMode::Opaque => {
                color[idx] = src;
                depth[idx] = q.z[lane];
            }
            BlendMode::AlphaBlend => {
                let dst = color[idx];
                let mut out = 0xFF00_0000u32;
                for shift in [0u32, 8, 16] {
                    let d = (dst >> shift) & 0xFF;
                    let s = (src >> shift) & 0xFF;
                    out |= (((d + s) / 2) & 0xFF) << shift;
                }
                color[idx] = out;
                // Transparent geometry does not write depth.
            }
        }
    }
}

/// Encodes an RGBA8 image as binary PPM (P6), for easy viewing.
pub fn to_ppm(frame: &[u32], width: u32, height: u32) -> Vec<u8> {
    assert_eq!(frame.len(), (width * height) as usize, "frame size mismatch");
    let mut out = format!("P6\n{width} {height}\n255\n").into_bytes();
    out.reserve(frame.len() * 3);
    for px in frame {
        out.push((px & 0xFF) as u8);
        out.push(((px >> 8) & 0xFF) as u8);
        out.push(((px >> 16) & 0xFF) as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbr_common::ids::{DrawCallId, TextureId};
    use tbr_geom::pipeline::ScreenVertex;
    use tbr_geom::scene::FragmentShaderDesc;

    fn tri(p: [(f32, f32); 3], z: f32, tex: u32, blend: BlendMode) -> ScreenTriangle {
        let mut v = [ScreenVertex::default(); 3];
        for i in 0..3 {
            v[i] = ScreenVertex { x: p[i].0, y: p[i].1, z, u: p[i].0 / 64.0, v: p[i].1 / 64.0 };
        }
        ScreenTriangle {
            v,
            draw: DrawCallId(0),
            texture: TextureDesc::new(TextureId(tex), 64),
            shader: FragmentShaderDesc::simple(),
            blend,
            seq: 0,
        }
    }

    #[test]
    fn shade_color_is_deterministic_and_texture_dependent() {
        let t0 = TextureDesc::new(TextureId(0), 64);
        let t1 = TextureDesc::new(TextureId(1), 64);
        assert_eq!(shade_color(&t0, 0.3, 0.7), shade_color(&t0, 0.3, 0.7));
        assert_ne!(shade_color(&t0, 0.3, 0.7), shade_color(&t1, 0.3, 0.7));
        // Alpha is always opaque.
        assert_eq!(shade_color(&t0, 0.1, 0.1) >> 24, 0xFF);
    }

    #[test]
    fn nearer_triangle_wins_regardless_of_order() {
        let s = ScreenConfig::tiny();
        let near = tri([(0.0, 0.0), (64.0, 0.0), (0.0, 64.0)], 0.1, 0, BlendMode::Opaque);
        let far = tri([(0.0, 0.0), (64.0, 0.0), (0.0, 64.0)], 0.9, 1, BlendMode::Opaque);
        let a = render_frame(&[near, far], &s);
        let b = render_frame(&[far, near], &s);
        assert_eq!(a, b, "z-buffering must make order irrelevant for opaque geometry");
    }

    #[test]
    fn uncovered_pixels_keep_clear_color() {
        let s = ScreenConfig::tiny();
        let t = tri([(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)], 0.5, 0, BlendMode::Opaque);
        let img = render_frame(&[t], &s);
        assert_eq!(img[(s.width * s.height - 1) as usize], crate::color_buffer::CLEAR_COLOR);
        // Inside the triangle something was drawn.
        assert_ne!(img[s.width as usize + 1], crate::color_buffer::CLEAR_COLOR);
    }

    #[test]
    fn ppm_header_and_size() {
        let img = vec![0xFF00FF00u32; 4];
        let ppm = to_ppm(&img, 2, 2);
        assert!(ppm.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(ppm.len(), 11 + 12);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn ppm_rejects_wrong_dimensions() {
        let _ = to_ppm(&[0u32; 3], 2, 2);
    }
}
