//! The Polygon List Builder: bins screen-space primitives into per-tile lists.
//!
//! §II-A: "The Polygon List Builder is in charge of binning the primitives into tiles,
//! i.e., to produce a list in program order for each tile with all the primitives that
//! totally (or partially) fall inside it."
//!
//! Binning uses an exact triangle/rectangle overlap test (bounding box + the three
//! edge half-planes), not just the bounding box, so thin diagonal triangles don't get
//! listed in tiles they never touch — this matters for per-tile workload fidelity.

use tbr_common::config::ScreenConfig;
use tbr_common::ids::{TileCoord, TileId};
use tbr_geom::pipeline::ScreenTriangle;
use tbr_geom::stream::TriangleStream;

/// Per-tile primitive lists for one frame, each in program order. Entries are indices
/// into the frame's primitive array.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TileBins {
    /// `lists[tile.index()]` = primitive indices overlapping that tile.
    pub lists: Vec<Vec<u32>>,
    /// Total (primitive, tile) insertions — each is a Parameter Buffer write.
    pub insertions: u64,
}

impl TileBins {
    /// Primitive list of one tile.
    ///
    /// # Panics
    /// Panics if `tile` is out of range.
    pub fn list(&self, tile: TileId) -> &[u32] {
        &self.lists[tile.index()]
    }

    /// Tiles that have at least one primitive.
    pub fn non_empty_tiles(&self) -> usize {
        self.lists.iter().filter(|l| !l.is_empty()).count()
    }
}

/// Exact overlap test between a triangle and an axis-aligned rectangle
/// `[x0, x1) × [y0, y1)` using the separating-axis theorem: the boxes' axes are
/// handled by the bounding-box pre-test, and each triangle edge is tested against the
/// rectangle's most-inside corner.
pub fn triangle_overlaps_rect(tri: &ScreenTriangle, x0: f32, y0: f32, x1: f32, y1: f32) -> bool {
    triangle_overlaps_rect_lanes(
        tri.v.map(|v| v.x),
        tri.v.map(|v| v.y),
        tri.double_area(),
        x0,
        y0,
        x1,
        y1,
    )
}

/// Lane-based body of [`triangle_overlaps_rect`]: both the AoS wrapper and the
/// SoA binning loop call through here, so they cannot diverge arithmetically.
#[allow(clippy::too_many_arguments)]
pub fn triangle_overlaps_rect_lanes(
    xs: [f32; 3],
    ys: [f32; 3],
    area2: f32,
    x0: f32,
    y0: f32,
    x1: f32,
    y1: f32,
) -> bool {
    // Bounding-box reject.
    let (tminx, tmaxx) = (xs.iter().copied().fold(f32::INFINITY, f32::min), xs.iter().copied().fold(f32::NEG_INFINITY, f32::max));
    let (tminy, tmaxy) = (ys.iter().copied().fold(f32::INFINITY, f32::min), ys.iter().copied().fold(f32::NEG_INFINITY, f32::max));
    if tmaxx <= x0 || tminx >= x1 || tmaxy <= y0 || tminy >= y1 {
        return false;
    }

    // Edge half-plane tests. Normalise winding so inside = positive.
    if area2 == 0.0 {
        return false;
    }
    let sign = if area2 > 0.0 { 1.0 } else { -1.0 };
    for i in 0..3 {
        let (ax, ay) = (xs[i], ys[i]);
        let j = (i + 1) % 3;
        let (ex, ey) = (xs[j] - ax, ys[j] - ay);
        // Pick the rectangle corner with the greatest signed distance ("most inside"
        // corner for this edge); if even that corner is outside, the edge separates.
        let cx = if sign * ey >= 0.0 { x0 } else { x1 };
        let cy = if sign * ex >= 0.0 { y1 } else { y0 };
        let dist = sign * (ex * (cy - ay) - ey * (cx - ax));
        if dist <= 0.0 {
            return false;
        }
    }
    true
}

/// Bins a frame's primitives into per-tile lists (program order preserved because
/// primitives are scanned in order).
pub fn bin_triangles(tris: &[ScreenTriangle], screen: &ScreenConfig) -> TileBins {
    bin_stream(&TriangleStream::from_triangles(tris), screen)
}

/// Bins a SoA triangle stream into per-tile lists — the hot path; reads only the
/// x/y lanes of each triangle. [`bin_triangles`] is the AoS wrapper over this.
pub fn bin_stream(tris: &TriangleStream, screen: &ScreenConfig) -> TileBins {
    let mut bins = TileBins { lists: vec![Vec::new(); screen.num_tiles()], insertions: 0 };
    let ts = screen.tile_size as f32;
    for idx in 0..tris.len() {
        let (bx0, by0, bx1, by1) = tris.bounding_box(idx, screen);
        if bx0 >= bx1 || by0 >= by1 {
            continue;
        }
        let xs = tris.xs_of(idx);
        let ys = tris.ys_of(idx);
        let area2 = tris.double_area(idx);
        let t0x = bx0 / screen.tile_size;
        let t0y = by0 / screen.tile_size;
        // bounding_box is exclusive-max, so the last covered pixel is bx1-1.
        let t1x = ((bx1 - 1) / screen.tile_size).min(screen.tiles_x() - 1);
        let t1y = ((by1 - 1) / screen.tile_size).min(screen.tiles_y() - 1);
        for ty in t0y..=t1y {
            for tx in t0x..=t1x {
                let rx0 = tx as f32 * ts;
                let ry0 = ty as f32 * ts;
                if triangle_overlaps_rect_lanes(xs, ys, area2, rx0, ry0, rx0 + ts, ry0 + ts) {
                    let tile = screen.tile_id(TileCoord::new(tx, ty));
                    bins.lists[tile.index()].push(idx as u32);
                    bins.insertions += 1;
                }
            }
        }
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbr_common::ids::{DrawCallId, TextureId};
    use tbr_geom::pipeline::ScreenVertex;
    use tbr_geom::scene::{BlendMode, FragmentShaderDesc, TextureDesc};

    fn tri(p: [(f32, f32); 3]) -> ScreenTriangle {
        ScreenTriangle {
            v: p.map(|(x, y)| ScreenVertex { x, y, z: 0.5, u: 0.0, v: 0.0 }),
            draw: DrawCallId(0),
            texture: TextureDesc::new(TextureId(0), 64),
            shader: FragmentShaderDesc::simple(),
            blend: BlendMode::Opaque,
            seq: 0,
        }
    }

    #[test]
    fn small_triangle_lands_in_one_tile() {
        let s = ScreenConfig::tiny(); // 8x4 tiles of 32px
        let t = tri([(5.0, 5.0), (20.0, 5.0), (5.0, 20.0)]);
        let bins = bin_triangles(&[t], &s);
        assert_eq!(bins.insertions, 1);
        assert_eq!(bins.list(TileId(0)), &[0]);
        assert_eq!(bins.non_empty_tiles(), 1);
    }

    #[test]
    fn tile_spanning_triangle_lands_in_all_covered_tiles() {
        let s = ScreenConfig::tiny();
        // Covers x in [0,64) x y in [0,64) fully -> tiles (0,0),(1,0),(0,1),(1,1).
        let t = tri([(0.0, 0.0), (128.0, 0.0), (0.0, 128.0)]);
        let bins = bin_triangles(&[t], &s);
        // Bbox covers 4x4 tiles but the hypotenuse cuts the upper-right half away.
        assert!(bins.insertions >= 4, "at least the 2x2 block near origin");
        assert!(bins.list(TileId(0)).contains(&0));
        // Tile (3,3) at pixels [96..128)^2 is entirely outside the hypotenuse
        // x + y <= 128 except the single corner point — no overlap area.
        let far = s.tile_id(TileCoord::new(3, 3));
        assert!(bins.list(far).is_empty(), "exact test must reject corner-touching tile");
    }

    #[test]
    fn thin_diagonal_triangle_skips_off_diagonal_tiles() {
        let s = ScreenConfig::tiny();
        // A sliver along the diagonal of a 4-tile-wide region.
        let t = tri([(0.0, 0.0), (128.0, 126.0), (128.0, 128.0)]);
        let bins = bin_triangles(&[t], &s);
        // Bbox-only binning would insert into all 16 tiles; the exact test keeps only
        // the tiles the sliver actually crosses (the diagonal band).
        assert!(bins.insertions < 16, "sliver must not be binned by bbox alone");
        assert!(bins.insertions >= 4, "it does cross the diagonal tiles");
    }

    #[test]
    fn program_order_is_preserved_within_a_tile() {
        let s = ScreenConfig::tiny();
        let a = tri([(1.0, 1.0), (10.0, 1.0), (1.0, 10.0)]);
        let b = tri([(2.0, 2.0), (12.0, 2.0), (2.0, 12.0)]);
        let bins = bin_triangles(&[a, b], &s);
        assert_eq!(bins.list(TileId(0)), &[0, 1]);
    }

    #[test]
    fn winding_does_not_affect_overlap() {
        let s = ScreenConfig::tiny();
        let cw = tri([(5.0, 5.0), (5.0, 20.0), (20.0, 5.0)]);
        let ccw = tri([(5.0, 5.0), (20.0, 5.0), (5.0, 20.0)]);
        assert_eq!(bin_triangles(&[cw], &s).insertions, 1);
        assert_eq!(bin_triangles(&[ccw], &s).insertions, 1);
    }

    #[test]
    fn offscreen_triangle_bins_nowhere() {
        let s = ScreenConfig::tiny();
        let t = tri([(-50.0, -50.0), (-10.0, -50.0), (-50.0, -10.0)]);
        let bins = bin_triangles(&[t], &s);
        assert_eq!(bins.insertions, 0);
    }

    #[test]
    fn full_screen_quad_touches_every_tile() {
        let s = ScreenConfig::tiny();
        let t1 = tri([(0.0, 0.0), (256.0, 0.0), (0.0, 128.0)]);
        let t2 = tri([(256.0, 0.0), (256.0, 128.0), (0.0, 128.0)]);
        let bins = bin_triangles(&[t1, t2], &s);
        assert_eq!(bins.non_empty_tiles(), s.num_tiles());
    }
}
