//! The per-Raster-Unit primitive FIFO of the PTR architecture (Fig 5).
//!
//! "One input FIFO queue is required for each Raster Unit to allow them to progress at
//! their own pace. These FIFO queues store a primitive in each entry, taking into
//! account that all the primitives of a given tile must be rendered in the same Raster
//! Unit to maintain the program order among overlapping primitives." (§III-A)

use std::collections::VecDeque;

/// A bounded FIFO with high-water-mark statistics, generic over the entry type
/// (primitive indices in the simulator).
#[derive(Debug, Clone)]
pub struct PrimitiveFifo<T> {
    queue: VecDeque<T>,
    capacity: usize,
    high_water: usize,
    total_pushed: u64,
}

impl<T> PrimitiveFifo<T> {
    /// Creates a FIFO holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be non-zero");
        Self { queue: VecDeque::with_capacity(capacity), capacity, high_water: 0, total_pushed: 0 }
    }

    /// Attempts to enqueue; returns the entry back when the FIFO is full (the
    /// producer must stall).
    pub fn push(&mut self, entry: T) -> Result<(), T> {
        if self.queue.len() >= self.capacity {
            return Err(entry);
        }
        self.queue.push_back(entry);
        self.total_pushed += 1;
        self.high_water = self.high_water.max(self.queue.len());
        Ok(())
    }

    /// Dequeues the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Maximum occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total entries ever enqueued.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_order() {
        let mut f = PrimitiveFifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        assert_eq!((0..4).map(|_| f.pop().unwrap()).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(f.pop().is_none());
    }

    #[test]
    fn full_fifo_rejects_and_returns_entry() {
        let mut f = PrimitiveFifo::new(2);
        f.push("a").unwrap();
        f.push("b").unwrap();
        assert!(f.is_full());
        assert_eq!(f.push("c"), Err("c"));
        f.pop();
        assert!(f.push("c").is_ok());
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut f = PrimitiveFifo::new(8);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.push(3).unwrap();
        f.pop();
        f.pop();
        f.push(4).unwrap();
        assert_eq!(f.high_water(), 3);
        assert_eq!(f.total_pushed(), 4);
        assert_eq!(f.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _: PrimitiveFifo<u32> = PrimitiveFifo::new(0);
    }
}
