//! Parameter Buffer bookkeeping.
//!
//! The Parameter Buffer is the main-memory data structure holding each tile's
//! primitive list (§II-A). The Polygon List Builder appends entries as it bins
//! geometry; the Tile Fetcher later reads each list sequentially. This module tracks
//! list lengths and produces the addresses those writes and reads touch, so the
//! memory model can time them.

use tbr_common::addr::{param_entry_addr, PARAM_ENTRY_BYTES};
use tbr_common::ids::TileId;

/// The per-frame Parameter Buffer state: one append cursor per tile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParamBuffer {
    counts: Vec<u64>,
}

impl ParamBuffer {
    /// An empty buffer for `num_tiles` tiles.
    pub fn new(num_tiles: usize) -> Self {
        Self { counts: vec![0; num_tiles] }
    }

    /// Appends one primitive entry to `tile`'s list and returns the address written.
    ///
    /// # Panics
    /// Panics if `tile` is out of range.
    pub fn push(&mut self, tile: TileId) -> u64 {
        let n = self.counts[tile.index()];
        self.counts[tile.index()] = n + 1;
        param_entry_addr(tile, n)
    }

    /// Number of entries currently in `tile`'s list.
    ///
    /// # Panics
    /// Panics if `tile` is out of range.
    pub fn len(&self, tile: TileId) -> u64 {
        self.counts[tile.index()]
    }

    /// Whether `tile`'s list is empty.
    pub fn is_empty(&self, tile: TileId) -> bool {
        self.len(tile) == 0
    }

    /// Address the Tile Fetcher reads for entry `n` of `tile`'s list.
    ///
    /// # Panics
    /// Panics if `n` is past the end of the list.
    pub fn read_addr(&self, tile: TileId, n: u64) -> u64 {
        assert!(n < self.counts[tile.index()], "read past end of tile list");
        param_entry_addr(tile, n)
    }

    /// Total bytes written into the buffer this frame.
    pub fn bytes_written(&self) -> u64 {
        self.counts.iter().sum::<u64>() * PARAM_ENTRY_BYTES
    }

    /// Clears all lists (start of a new frame).
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_returns_consecutive_addresses() {
        let mut pb = ParamBuffer::new(4);
        let t = TileId(2);
        let a0 = pb.push(t);
        let a1 = pb.push(t);
        assert_eq!(a1 - a0, PARAM_ENTRY_BYTES);
        assert_eq!(pb.len(t), 2);
        assert!(pb.is_empty(TileId(0)));
    }

    #[test]
    fn read_matches_write_addresses() {
        let mut pb = ParamBuffer::new(2);
        let t = TileId(1);
        let w: Vec<u64> = (0..5).map(|_| pb.push(t)).collect();
        let r: Vec<u64> = (0..5).map(|n| pb.read_addr(t, n)).collect();
        assert_eq!(w, r);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn reading_past_end_panics() {
        let pb = ParamBuffer::new(1);
        let _ = pb.read_addr(TileId(0), 0);
    }

    #[test]
    fn tiles_use_disjoint_regions() {
        let mut pb = ParamBuffer::new(2);
        let a = pb.push(TileId(0));
        let b = pb.push(TileId(1));
        assert_ne!(a, b);
    }

    #[test]
    fn bytes_written_and_clear() {
        let mut pb = ParamBuffer::new(3);
        pb.push(TileId(0));
        pb.push(TileId(0));
        pb.push(TileId(2));
        assert_eq!(pb.bytes_written(), 3 * PARAM_ENTRY_BYTES);
        pb.clear();
        assert_eq!(pb.bytes_written(), 0);
        assert!(pb.is_empty(TileId(0)));
    }
}
