//! # tbr-tiling — the Tiling Engine of the LIBRA TBR GPU simulator
//!
//! TBR architectures are *sort-middle* (§II-A): between the Geometry and Raster
//! pipelines sits a Tiling Engine that bins every screen-space primitive into the
//! tiles it overlaps and stores the per-tile primitive lists in a main-memory region
//! called the *Parameter Buffer*. Once the whole frame's geometry is binned, the Tile
//! Fetcher walks the tiles (one per Raster Unit at a time in the PTR architecture) and
//! streams each tile's primitives — in program order — into that Raster Unit's FIFO.
//!
//! * [`binner`] — the Polygon List Builder: exact triangle/tile overlap tests (not
//!   just bounding boxes), producing [`binner::TileBins`].
//! * [`param_buffer`] — the Parameter Buffer bookkeeping: per-tile list lengths and
//!   the memory addresses its writes/reads touch.
//! * [`traversal`] — frame-level tile traversal orders (Z-order/Morton, scanline).
//! * [`fetcher`] — the per-Raster-Unit primitive FIFO of Fig 5.
//! * [`signature`] — per-tile input signatures for Rendering Elimination
//!   (arXiv 1807.09449): a deterministic hash over each tile's binned
//!   primitive stream, vertex lanes and interned draw state.

#![warn(missing_docs)]

pub mod binner;
pub mod fetcher;
pub mod param_buffer;
pub mod signature;
pub mod traversal;

pub use binner::{bin_stream, bin_triangles, TileBins};
pub use fetcher::PrimitiveFifo;
pub use param_buffer::ParamBuffer;
pub use signature::{frame_signatures, FrameSignatures};
pub use traversal::{tile_order, TraversalOrder};
