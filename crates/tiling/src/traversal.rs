//! Frame-level tile traversal orders.
//!
//! §II-B: "The most common tile traversal orders in computer graphics are scanline and
//! Morton order. […] we assume the Morton order (or Z-order) as the one used in the
//! baseline GPU of this work."

use tbr_common::config::ScreenConfig;
use tbr_common::hilbert::hilbert_traversal;
use tbr_common::ids::TileId;
use tbr_common::morton::{scanline_traversal, zorder_traversal};

/// The order in which the Tile Fetcher visits tiles within a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TraversalOrder {
    /// Morton / Z-order (the baseline's cache-friendly order).
    #[default]
    ZOrder,
    /// Row-major scanline order.
    Scanline,
    /// Hilbert-curve order (never jumps: consecutive tiles are always adjacent;
    /// used by the DTexL-style traversal ablation).
    Hilbert,
}

/// Produces the full tile visiting order for a screen.
pub fn tile_order(screen: &ScreenConfig, order: TraversalOrder) -> Vec<TileId> {
    let coords = match order {
        TraversalOrder::ZOrder => zorder_traversal(screen.tiles_x(), screen.tiles_y()),
        TraversalOrder::Scanline => scanline_traversal(screen.tiles_x(), screen.tiles_y()),
        TraversalOrder::Hilbert => hilbert_traversal(screen.tiles_x(), screen.tiles_y()),
    };
    coords.into_iter().map(|c| screen.tile_id(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn both_orders_are_permutations_of_all_tiles() {
        let s = ScreenConfig::quarter_fhd();
        for order in [TraversalOrder::ZOrder, TraversalOrder::Scanline, TraversalOrder::Hilbert] {
            let tiles = tile_order(&s, order);
            assert_eq!(tiles.len(), s.num_tiles());
            let set: HashSet<_> = tiles.iter().copied().collect();
            assert_eq!(set.len(), s.num_tiles());
        }
    }

    #[test]
    fn scanline_is_sequential_tile_ids() {
        let s = ScreenConfig::tiny();
        let tiles = tile_order(&s, TraversalOrder::Scanline);
        let expect: Vec<TileId> = (0..s.num_tiles() as u32).map(TileId).collect();
        assert_eq!(tiles, expect);
    }

    #[test]
    fn zorder_starts_at_origin_and_stays_local_initially() {
        let s = ScreenConfig::quarter_fhd();
        let tiles = tile_order(&s, TraversalOrder::ZOrder);
        assert_eq!(tiles[0], TileId(0));
        // The first four visited tiles form the 2x2 block at the origin.
        let first4: HashSet<_> =
            tiles[..4].iter().map(|&t| s.tile_coord(t)).map(|c| (c.x, c.y)).collect();
        assert_eq!(first4, HashSet::from([(0, 0), (1, 0), (0, 1), (1, 1)]));
    }
}
