//! Per-tile input signatures for Rendering Elimination (arXiv 1807.09449).
//!
//! RE observes that consecutive frames are highly coherent: most tiles receive
//! *exactly* the same inputs as the frame before, so their raster/shade/flush
//! work can be skipped and the previous frame's colour-buffer contents kept.
//! "Same inputs" is decided by hashing, per tile, everything the Raster
//! Pipeline would consume for that tile:
//!
//! * the binned primitive list in program order (each primitive's sequence
//!   number — insertions, deletions and reorderings all change the stream);
//! * the transformed vertex lanes (`x, y, z, u, v` per vertex, hashed as exact
//!   IEEE-754 bit patterns — no epsilon: RE is only allowed to discard on
//!   bit-exact repetition);
//! * the interned [`DrawState`] (draw call, texture descriptor, fragment
//!   shader profile, blend mode).
//!
//! The hash is [`SplitMix64Hasher`] from `tbr_common::fasthash` folded over a
//! canonical `u64` word stream ([`tile_signature_words`]). The word stream is
//! what the hardware's signature unit would pump through its hash pipeline;
//! its length is the DRAM-side cost of signature generation and is reported as
//! `re_signature_bytes`. The oracle mode keeps the words themselves so a
//! signature match can be cross-checked against true input equality — a
//! mismatch there is a hash collision, counted as a false negative.

use crate::binner::TileBins;
use std::hash::{Hash, Hasher};
use tbr_common::fasthash::SplitMix64Hasher;
use tbr_common::ids::TileId;
use tbr_geom::stream::{DrawState, TriangleStream};

/// Words appended to the signature stream per binned primitive: sequence
/// number, draw-state digest, and nine packed vertex-lane words (three per
/// vertex: `x|y`, `z|u`, `v`).
pub const WORDS_PER_PRIMITIVE: usize = 11;

/// Per-tile input signatures for one frame.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameSignatures {
    /// One signature per tile, indexed by `TileId::index()`.
    pub sigs: Vec<u64>,
    /// Total bytes pumped through the signature unit this frame (8 per word).
    pub bytes_hashed: u64,
    /// The raw word streams, kept only in oracle mode for exact-equality
    /// cross-checking of signature matches.
    pub words: Option<Vec<Vec<u64>>>,
}

fn pack(a: f32, b: f32) -> u64 {
    ((a.to_bits() as u64) << 32) | b.to_bits() as u64
}

fn state_digest(s: &DrawState) -> u64 {
    let mut h = SplitMix64Hasher::default();
    s.hash(&mut h);
    h.finish()
}

/// Appends the canonical signature word stream of one tile — its binned
/// primitive list `prims` (indices into `tris`, program order) — to `out`.
pub fn tile_signature_words(tris: &TriangleStream, prims: &[u32], out: &mut Vec<u64>) {
    out.reserve(prims.len() * WORDS_PER_PRIMITIVE);
    for &p in prims {
        let i = p as usize;
        out.push(tris.seq[i] as u64);
        out.push(state_digest(tris.state_of(i)));
        let b = 3 * i;
        for k in 0..3 {
            out.push(pack(tris.xs[b + k], tris.ys[b + k]));
            out.push(pack(tris.zs[b + k], tris.us[b + k]));
            out.push(tris.vs[b + k].to_bits() as u64);
        }
    }
}

/// Folds a word stream into its 64-bit signature. The tile id seeds the fold
/// so identical streams in different tiles (e.g. two empty tiles) still get
/// decorrelated signatures.
pub fn signature_of_words(tile: TileId, words: &[u64]) -> u64 {
    let mut h = SplitMix64Hasher::default();
    h.write_u64(tile.index() as u64);
    for &w in words {
        h.write_u64(w);
    }
    h.finish()
}

/// Computes every tile's input signature for one binned frame. With
/// `keep_words` (oracle mode) the raw word streams are retained for exact
/// cross-checking; otherwise only the 8-byte signatures survive, which is the
/// hardware's storage cost.
pub fn frame_signatures(tris: &TriangleStream, bins: &TileBins, keep_words: bool) -> FrameSignatures {
    let num_tiles = bins.lists.len();
    let mut sigs = Vec::with_capacity(num_tiles);
    let mut bytes_hashed = 0u64;
    let mut words = keep_words.then(|| Vec::with_capacity(num_tiles));
    let mut scratch = Vec::new();
    for t in 0..num_tiles {
        let tile = TileId(t as u32);
        scratch.clear();
        tile_signature_words(tris, bins.list(tile), &mut scratch);
        bytes_hashed += 8 * scratch.len() as u64;
        sigs.push(signature_of_words(tile, &scratch));
        if let Some(w) = words.as_mut() {
            w.push(scratch.clone());
        }
    }
    FrameSignatures { sigs, bytes_hashed, words }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binner::bin_stream;
    use tbr_common::config::ScreenConfig;
    use tbr_geom::pipeline::{ScreenTriangle, ScreenVertex};
    use tbr_geom::scene::{BlendMode, FragmentShaderDesc, TextureDesc};
    use tbr_common::ids::{DrawCallId, TextureId};

    fn tri(x: f32, y: f32, seq: u32, draw: u32) -> ScreenTriangle {
        ScreenTriangle {
            v: [
                ScreenVertex { x, y, z: 0.25, u: 0.0, v: 0.0 },
                ScreenVertex { x: x + 12.0, y, z: 0.5, u: 1.0, v: 0.0 },
                ScreenVertex { x, y: y + 12.0, z: 0.75, u: 0.0, v: 1.0 },
            ],
            draw: DrawCallId(draw),
            texture: TextureDesc::new(TextureId(draw), 64),
            shader: FragmentShaderDesc::simple(),
            blend: BlendMode::Opaque,
            seq,
        }
    }

    fn sigs_of(tris: &[ScreenTriangle]) -> FrameSignatures {
        let screen = ScreenConfig::tiny();
        let stream = TriangleStream::from_triangles(tris);
        let bins = bin_stream(&stream, &screen);
        frame_signatures(&stream, &bins, false)
    }

    #[test]
    fn identical_frames_sign_identically() {
        let frame = vec![tri(0.0, 0.0, 0, 0), tri(40.0, 8.0, 1, 1)];
        assert_eq!(sigs_of(&frame), sigs_of(&frame.clone()));
    }

    #[test]
    fn any_input_perturbation_changes_the_touched_tiles_signature() {
        let base = vec![tri(0.0, 0.0, 0, 0)];
        let a = sigs_of(&base);

        // Nudge one vertex by one ULP-scale step.
        let mut moved = base.clone();
        moved[0].v[0].x += 0.25;
        assert_ne!(a.sigs[0], sigs_of(&moved).sigs[0], "vertex lanes must be hashed");

        // Change only the draw state.
        let mut restate = base.clone();
        restate[0].texture = TextureDesc::new(TextureId(9), 64);
        assert_ne!(a.sigs[0], sigs_of(&restate).sigs[0], "draw state must be hashed");

        // Change only the program-order sequence number.
        let mut reseq = base.clone();
        reseq[0].seq = 7;
        assert_ne!(a.sigs[0], sigs_of(&reseq).sigs[0], "program order must be hashed");
    }

    #[test]
    fn untouched_tiles_keep_their_signature_when_another_tile_changes() {
        let frame_a = vec![tri(0.0, 0.0, 0, 0), tri(100.0, 40.0, 1, 1)];
        let mut frame_b = frame_a.clone();
        frame_b[1].v[0].u = 0.5; // perturb only the second triangle
        let (a, b) = (sigs_of(&frame_a), sigs_of(&frame_b));
        let screen = ScreenConfig::tiny();
        let stream = TriangleStream::from_triangles(&frame_a);
        let bins = bin_stream(&stream, &screen);
        let second: std::collections::HashSet<u32> = {
            let s2 = TriangleStream::from_triangles(&frame_b);
            let b2 = bin_stream(&s2, &screen);
            (0..b2.lists.len() as u32)
                .filter(|&t| b2.list(TileId(t)).contains(&1))
                .collect()
        };
        for t in 0..bins.lists.len() as u32 {
            if !second.contains(&t) && !bins.list(TileId(t)).contains(&1) {
                assert_eq!(a.sigs[t as usize], b.sigs[t as usize], "tile {t} shares no input");
            }
        }
        assert!(a.sigs.iter().zip(&b.sigs).any(|(x, y)| x != y), "some tile must differ");
    }

    #[test]
    fn oracle_words_reproduce_the_signature_and_the_byte_count() {
        let frame = vec![tri(0.0, 0.0, 0, 0), tri(8.0, 8.0, 1, 0)];
        let screen = ScreenConfig::tiny();
        let stream = TriangleStream::from_triangles(&frame);
        let bins = bin_stream(&stream, &screen);
        let f = frame_signatures(&stream, &bins, true);
        let words = f.words.as_ref().expect("oracle keeps words");
        let total: usize = words.iter().map(Vec::len).sum();
        assert_eq!(f.bytes_hashed, 8 * total as u64);
        for (t, w) in words.iter().enumerate() {
            assert_eq!(f.sigs[t], signature_of_words(TileId(t as u32), w));
            assert_eq!(w.len(), bins.list(TileId(t as u32)).len() * WORDS_PER_PRIMITIVE);
        }
    }
}
