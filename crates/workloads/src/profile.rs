//! Benchmark profile: the knobs a synthetic "game" is generated from.

use tbr_geom::scene::FragmentShaderDesc;

/// Scene dimensionality category (Table II: "We cover games in 2D (e.g. CCS), 2.5D
/// (e.g. CoC), and 3D (e.g. SuS)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Flat sprite scenes (match-3, endless jumpers).
    TwoD,
    /// Isometric/layered scenes (strategy, builders).
    TwoHalfD,
    /// Perspective scenes (runners, racers, shooters).
    ThreeD,
}

impl Category {
    /// Short label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Category::TwoD => "2D",
            Category::TwoHalfD => "2.5D",
            Category::ThreeD => "3D",
        }
    }
}

/// All generation parameters of one synthetic benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Full descriptive name.
    pub name: &'static str,
    /// Three-letter abbreviation used in the paper's figures (e.g. `CCS`).
    pub abbrev: &'static str,
    /// Scene category.
    pub category: Category,
    /// Whether the profile is *designed* to be memory-intensive (≥ 25 % of time in
    /// memory, §V). The actual classification is measured (Fig 6a); this flag selects
    /// the expected group in the experiment harness.
    pub memory_intensive: bool,
    /// RNG seed: the whole layout and all motion derive deterministically from it.
    pub seed: u64,
    /// Full-screen scrolling background layers (cold, uniform work).
    pub background_layers: u32,
    /// Edge of the background/atlas textures in texels (power of two).
    pub texture_size: u32,
    /// Number of hot clusters (dense groups of overlapping detailed objects).
    pub hotspot_clusters: u32,
    /// Objects per cluster.
    pub cluster_objects: u32,
    /// Cluster radius as a fraction of the screen's smaller dimension.
    pub cluster_radius_frac: f32,
    /// Object edge range in pixels `(min, max)`.
    pub object_size_px: (f32, f32),
    /// Overdraw layers inside clusters (back-to-front, all shaded).
    pub overdraw_layers: u32,
    /// Uniformly scattered mid-ground objects (coins, rails, pickups).
    pub scattered_objects: u32,
    /// HUD quads (alpha-blended, static, top/bottom bands).
    pub hud_elements: u32,
    /// Distinct texture atlases the scene cycles through.
    pub texture_pool: u32,
    /// Texels sampled per screen pixel (1.0 = native density; < 1 = magnified
    /// sprites that reuse texels). The main texture-footprint knob.
    pub texel_density: f32,
    /// Per-fragment shader profile (ALU vs texture balance = compute vs memory).
    pub shader: FragmentShaderDesc,
    /// Scroll velocity in pixels/frame `(x, y)` — the frame-coherence knob.
    pub scroll_speed: (f32, f32),
    /// Per-frame random cluster displacement bound in pixels (coherence noise).
    pub jitter_px: f32,
}

impl BenchmarkProfile {
    /// Rough triangle count per frame (for Table II-style reporting).
    pub fn approx_triangles(&self) -> u64 {
        let quads = self.background_layers as u64
            + (self.hotspot_clusters * self.cluster_objects * self.overdraw_layers) as u64
            + self.scattered_objects as u64
            + self.hud_elements as u64
            // 3-D games add the 8x12-quad perspective ground strip.
            + if self.category == Category::ThreeD { 96 } else { 0 };
        quads * 2
    }

    /// Rough texture footprint per frame in bytes: every drawn fragment samples its
    /// own atlas region at `texel_density` texels per pixel, `tex_samples` textures
    /// per fragment.
    pub fn approx_footprint_bytes(&self, screen_pixels: u64) -> u64 {
        let density2 = (self.texel_density * self.texel_density) as f64;
        let bg = self.background_layers as u64 * screen_pixels;
        let avg_obj = {
            let (lo, hi) = self.object_size_px;
            let e = (lo + hi) * 0.5;
            (e * e) as u64
        };
        let objects = (self.hotspot_clusters * self.cluster_objects * self.overdraw_layers)
            as u64
            * avg_obj
            + self.scattered_objects as u64 * avg_obj;
        (((bg + objects) * 4 * self.shader.tex_samples as u64) as f64 * density2) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "Test Game",
            abbrev: "TsG",
            category: Category::TwoD,
            memory_intensive: true,
            seed: 7,
            background_layers: 2,
            texture_size: 512,
            hotspot_clusters: 3,
            cluster_objects: 10,
            cluster_radius_frac: 0.15,
            object_size_px: (24.0, 48.0),
            overdraw_layers: 2,
            scattered_objects: 20,
            hud_elements: 4,
            texture_pool: 8,
            texel_density: 1.0,
            shader: FragmentShaderDesc::simple(),
            scroll_speed: (4.0, 0.0),
            jitter_px: 1.0,
        }
    }

    #[test]
    fn approx_triangles_counts_all_quads() {
        let p = sample();
        // (2 + 3*10*2 + 20 + 4) * 2 = 172
        assert_eq!(p.approx_triangles(), 172);
    }

    #[test]
    fn footprint_grows_with_samples_and_layers() {
        let p = sample();
        let base = p.approx_footprint_bytes(960 * 544);
        let mut heavier = p.clone();
        heavier.shader.tex_samples = 2;
        assert_eq!(heavier.approx_footprint_bytes(960 * 544), base * 2);
        let mut more_bg = p;
        more_bg.background_layers = 4;
        assert!(more_bg.approx_footprint_bytes(960 * 544) > base);
    }

    #[test]
    fn category_labels() {
        assert_eq!(Category::TwoD.label(), "2D");
        assert_eq!(Category::TwoHalfD.label(), "2.5D");
        assert_eq!(Category::ThreeD.label(), "3D");
    }
}
