//! Deterministic per-frame scene synthesis from a [`BenchmarkProfile`].
//!
//! The layout (cluster centres, object offsets, atlas windows) is generated once from
//! the profile seed; each frame applies smooth scrolling and bounded jitter on top,
//! which is exactly what gives the workloads their frame-to-frame coherence (Fig 8).

use crate::profile::{BenchmarkProfile, Category};
use tbr_common::rng::Xoshiro256pp;
use tbr_common::config::ScreenConfig;
use tbr_common::ids::{DrawCallId, TextureId};
use tbr_geom::camera::{perspective, screen_ortho};
use tbr_geom::scene::{BlendMode, DrawCall, Scene, TextureDesc, Vertex};
use tbr_geom::vec::{Vec2, Vec3};
use tbr_geom::Mat4;

/// Texture-id spacing: sample instruction `s` of a shader reads texture `id + s`, so
/// atlases are allocated on this stride (max 4 samples per shader).
pub const TEXTURE_ID_STRIDE: u32 = 4;

#[derive(Debug, Clone, Copy)]
struct ObjDef {
    dx: f32,
    dy: f32,
    size: f32,
    z: f32,
    // Atlas window origin (UV); window extent is size/texture_size.
    u0: f32,
    v0: f32,
}

#[derive(Debug, Clone)]
struct Cluster {
    cx: f32,
    cy: f32,
    tex: u32, // atlas index
    objects: Vec<ObjDef>,
}

/// Generates the per-frame [`Scene`]s of one benchmark.
#[derive(Debug, Clone)]
pub struct SceneGenerator {
    profile: BenchmarkProfile,
    screen: ScreenConfig,
    clusters: Vec<Cluster>,
    scattered: Vec<(ObjDef, u32)>,
    hud: Vec<ObjDef>,
}

impl SceneGenerator {
    /// Builds the static layout from the profile seed.
    pub fn new(profile: &BenchmarkProfile, screen: &ScreenConfig) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(profile.seed);
        let w = screen.width as f32;
        let h = screen.height as f32;
        let radius = profile.cluster_radius_frac * w.min(h);
        let (olo, ohi) = profile.object_size_px;
        let ts = profile.texture_size as f32;

        let obj = |rng: &mut Xoshiro256pp, cx_off: f32, cy_off: f32, layer: u32| -> ObjDef {
            let size = rng.gen_f32_inclusive(olo, ohi);
            ObjDef {
                dx: cx_off,
                dy: cy_off,
                size,
                // Back-to-front inside a cluster: later overdraw layers are nearer.
                z: 0.5 - layer as f32 * 0.01 - rng.gen_f32(0.0, 0.005),
                u0: rng.gen_f32(0.0, (1.0 - size / ts).max(0.01)),
                v0: rng.gen_f32(0.0, (1.0 - size / ts).max(0.01)),
            }
        };

        let clusters = (0..profile.hotspot_clusters)
            .map(|_| {
                let cx = rng.gen_f32(0.1 * w, 0.9 * w);
                let cy = rng.gen_f32(0.1 * h, 0.9 * h);
                let tex = rng.gen_u32(profile.texture_pool.max(1));
                let mut objects = Vec::new();
                for layer in 0..profile.overdraw_layers.max(1) {
                    for _ in 0..profile.cluster_objects {
                        let ox = rng.gen_f32(-radius, radius);
                        let oy = rng.gen_f32(-radius, radius);
                        objects.push(obj(&mut rng, ox, oy, layer));
                    }
                }
                Cluster { cx, cy, tex, objects }
            })
            .collect();

        let scattered = (0..profile.scattered_objects)
            .map(|_| {
                let x = rng.gen_f32(0.0, w);
                let y = rng.gen_f32(0.0, h);
                let tex = rng.gen_u32(profile.texture_pool.max(1));
                let mut o = obj(&mut rng, x, y, 0);
                o.z = 0.65;
                (o, tex)
            })
            .collect();

        let hud = (0..profile.hud_elements)
            .map(|i| {
                let band_top = i % 2 == 0;
                let x = rng.gen_f32(0.0, w * 0.8);
                let size = rng.gen_f32(24.0, 64.0);
                ObjDef {
                    dx: x,
                    dy: if band_top { 4.0 } else { h - size - 4.0 },
                    size,
                    z: 0.05,
                    u0: rng.gen_f32(0.0, 0.9),
                    v0: rng.gen_f32(0.0, 0.9),
                }
            })
            .collect();

        Self { profile: profile.clone(), screen: *screen, clusters, scattered, hud }
    }

    fn atlas(&self, index: u32) -> TextureDesc {
        TextureDesc::new(TextureId(index * TEXTURE_ID_STRIDE), self.profile.texture_size)
    }

    /// Background/HUD shader: lighter than the profile's object shader (one sample,
    /// half the ALU tail). This is what makes background-only tiles *cold* and
    /// cluster tiles *hot* — the contrast of Fig 2 that LIBRA's scheduler exploits.
    fn light_shader(&self) -> tbr_geom::scene::FragmentShaderDesc {
        let s = self.profile.shader;
        tbr_geom::scene::FragmentShaderDesc {
            tex_samples: 1,
            alu_per_sample: 2,
            alu_tail: (s.alu_tail / 2).max(4),
            filter: tbr_geom::scene::FilterMode::Nearest,
            late_z: false,
        }
    }

    /// Synthesises the scene of `frame`. Deterministic: the same `(profile, frame)`
    /// always yields an identical scene.
    pub fn scene(&self, frame: u32) -> Scene {
        let p = &self.profile;
        let w = self.screen.width as f32;
        let h = self.screen.height as f32;
        let transform: Mat4 = screen_ortho(self.screen.width, self.screen.height);
        let mut frame_rng =
            Xoshiro256pp::seed_from_u64(p.seed ^ (frame as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut draws: Vec<DrawCall> = Vec::new();
        let mut next_id = 0u32;
        let mut draw_id = || {
            let id = DrawCallId(next_id);
            next_id += 1;
            id
        };

        // Background layers, far to near, parallax scrolling in UV space. Backgrounds
        // are magnified (lower texel density than sprites): large, blurry art reused
        // across many pixels — this is what makes background-only tiles *cold* in
        // DRAM terms (high cache reuse), as in the Fig 2 heatmaps.
        const BG_DENSITY_SCALE: f32 = 0.5;
        for layer in 0..p.background_layers {
            let ts = p.texture_size as f32;
            let parallax = 1.0 + 0.3 * layer as f32;
            let bg_density = p.texel_density * BG_DENSITY_SCALE;
            let du = p.scroll_speed.0 * frame as f32 * parallax * bg_density / ts;
            let dv = p.scroll_speed.1 * frame as f32 * parallax * bg_density / ts;
            let span_u = w * bg_density / ts;
            let span_v = h * bg_density / ts;
            let z = 0.9 + layer as f32 * 0.01;
            let tex_idx = layer % p.texture_pool.max(1);
            let blend =
                if layer == 0 { BlendMode::Opaque } else { BlendMode::AlphaBlend };
            let mut dc = DrawCall {
                id: draw_id(),
                transform,
                vertices: Vec::with_capacity(4),
                indices: Vec::with_capacity(6),
                texture: self.atlas(tex_idx),
                shader: self.light_shader(),
                blend,
                base_depth: z,
            };
            push_quad(&mut dc, 0.0, 0.0, w, h, z, du, dv, span_u, span_v);
            draws.push(dc);
        }

        // 3-D games additionally render a perspective ground plane (road/terrain):
        // a strip grid receding into the distance, scrolling toward the camera. This
        // exercises real perspective projection, near-plane clipping and the full
        // mip-level range (minified far away, magnified up close).
        if p.category == Category::ThreeD {
            let ts = p.texture_size as f32;
            let proj = perspective(
                60f32.to_radians(),
                w / h,
                0.5,
                60.0,
            ) * Mat4::translate(tbr_geom::vec::Vec3::new(0.0, -1.5, 0.0));
            let mut dc = DrawCall {
                id: draw_id(),
                transform: proj,
                vertices: Vec::new(),
                indices: Vec::new(),
                texture: self.atlas(1 % p.texture_pool.max(1)),
                shader: self.light_shader(),
                blend: BlendMode::Opaque,
                base_depth: 0.7,
            };
            // An 8-quad-wide, 12-quad-deep strip along -Z, scrolling in V.
            let scroll_v = (p.scroll_speed.0 + p.scroll_speed.1) * frame as f32 * 0.01;
            let tile_world = 2.0f32;
            let v_span = tile_world * 64.0 * p.texel_density / ts;
            for iz in 0..12u32 {
                for ix in 0..8u32 {
                    let x0 = -8.0 + ix as f32 * tile_world;
                    let z0 = -(2.0 + iz as f32 * tile_world);
                    let base = dc.vertices.len() as u32;
                    for (dx, dz) in [(0.0, 0.0), (tile_world, 0.0), (tile_world, -tile_world), (0.0, -tile_world)] {
                        let u = (ix as f32 + dx / tile_world) * v_span;
                        let v = (iz as f32 + dz.abs() / tile_world) * v_span + scroll_v;
                        dc.vertices.push(Vertex::new(
                            tbr_geom::vec::Vec3::new(x0 + dx, 0.0, z0 + dz),
                            Vec2::new(u, v),
                        ));
                    }
                    dc.indices.extend_from_slice(&[base, base + 1, base + 2, base, base + 2, base + 3]);
                }
            }
            draws.push(dc);
        }

        // Scattered mid-ground objects: scroll across the screen, wrapping.
        if !self.scattered.is_empty() {
            let mut per_tex: std::collections::BTreeMap<u32, DrawCall> =
                std::collections::BTreeMap::new();
            for (o, tex) in &self.scattered {
                let ts = p.texture_size as f32;
                let x = (o.dx - p.scroll_speed.0 * frame as f32).rem_euclid(w + o.size) - o.size;
                let y = (o.dy - p.scroll_speed.1 * frame as f32).rem_euclid(h + o.size) - o.size;
                let dc = per_tex.entry(*tex).or_insert_with(|| DrawCall {
                    id: DrawCallId(u32::MAX), // assigned below
                    transform,
                    vertices: Vec::new(),
                    indices: Vec::new(),
                    texture: self.atlas(*tex),
                    shader: p.shader,
                    blend: BlendMode::Opaque,
                    base_depth: o.z,
                });
                let span = o.size * p.texel_density / ts;
                push_quad(dc, x, y, o.size, o.size, o.z, o.u0, o.v0, span, span);
            }
            for (_, mut dc) in per_tex {
                dc.id = draw_id();
                draws.push(dc);
            }
        }

        // Hot clusters: jittered positions, one draw call per cluster (shared atlas).
        for cluster in &self.clusters {
            let ts = p.texture_size as f32;
            let jx = frame_rng.gen_f32_inclusive(-p.jitter_px, p.jitter_px.max(0.001));
            let jy = frame_rng.gen_f32_inclusive(-p.jitter_px, p.jitter_px.max(0.001));
            let mut dc = DrawCall {
                id: draw_id(),
                transform,
                vertices: Vec::with_capacity(cluster.objects.len() * 4),
                indices: Vec::with_capacity(cluster.objects.len() * 6),
                texture: self.atlas(cluster.tex),
                shader: p.shader,
                blend: BlendMode::Opaque,
                base_depth: 0.5,
            };
            for o in &cluster.objects {
                let span = o.size * p.texel_density / ts;
                push_quad(
                    &mut dc,
                    cluster.cx + o.dx + jx,
                    cluster.cy + o.dy + jy,
                    o.size,
                    o.size,
                    o.z,
                    o.u0,
                    o.v0,
                    span,
                    span,
                );
            }
            draws.push(dc);
        }

        // HUD: static alpha-blended quads (very coherent, always hot-ish regions).
        if !self.hud.is_empty() {
            let mut dc = DrawCall {
                id: draw_id(),
                transform,
                vertices: Vec::new(),
                indices: Vec::new(),
                texture: self.atlas(0),
                shader: self.light_shader(),
                blend: BlendMode::AlphaBlend,
                base_depth: 0.05,
            };
            for o in &self.hud {
                let span = o.size * p.texel_density / p.texture_size as f32;
                push_quad(&mut dc, o.dx, o.dy, o.size, o.size, o.z, o.u0, o.v0, span, span);
            }
            draws.push(dc);
        }

        Scene { draws }
    }

    /// The screen this generator targets.
    pub fn screen(&self) -> &ScreenConfig {
        &self.screen
    }

    /// The profile this generator was built from.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }
}

/// Appends an axis-aligned textured quad (two CCW triangles) to a draw call.
#[allow(clippy::too_many_arguments)]
fn push_quad(
    dc: &mut DrawCall,
    x: f32,
    y: f32,
    w: f32,
    h: f32,
    z: f32,
    u0: f32,
    v0: f32,
    span_u: f32,
    span_v: f32,
) {
    let base = dc.vertices.len() as u32;
    dc.vertices.extend_from_slice(&[
        Vertex::new(Vec3::new(x, y, z), Vec2::new(u0, v0)),
        Vertex::new(Vec3::new(x + w, y, z), Vec2::new(u0 + span_u, v0)),
        Vertex::new(Vec3::new(x + w, y + h, z), Vec2::new(u0 + span_u, v0 + span_v)),
        Vertex::new(Vec3::new(x, y + h, z), Vec2::new(u0, v0 + span_v)),
    ]);
    dc.indices.extend_from_slice(&[base, base + 1, base + 2, base, base + 2, base + 3]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::suite;

    fn small_profile() -> BenchmarkProfile {
        let mut p = suite().remove(0);
        p.hotspot_clusters = 2;
        p.cluster_objects = 5;
        p.scattered_objects = 8;
        p
    }

    #[test]
    fn scene_is_deterministic() {
        let p = small_profile();
        let s = ScreenConfig::tiny();
        let g1 = SceneGenerator::new(&p, &s);
        let g2 = SceneGenerator::new(&p, &s);
        assert_eq!(g1.scene(5), g2.scene(5));
        assert_eq!(g1.scene(0), g2.scene(0));
    }

    #[test]
    fn different_frames_differ_but_keep_structure() {
        let p = small_profile();
        let s = ScreenConfig::tiny();
        let g = SceneGenerator::new(&p, &s);
        let a = g.scene(0);
        let b = g.scene(1);
        assert_ne!(a, b, "motion must change the scene");
        assert_eq!(a.draws.len(), b.draws.len(), "structure is stable");
        assert_eq!(a.num_triangles(), b.num_triangles());
    }

    #[test]
    fn triangle_count_matches_profile_estimate_order() {
        let p = small_profile();
        let s = ScreenConfig::tiny();
        let g = SceneGenerator::new(&p, &s);
        let scene = g.scene(0);
        let n = scene.num_triangles() as u64;
        let est = p.approx_triangles();
        assert!(n >= est / 2 && n <= est * 2, "triangles {n} vs estimate {est}");
    }

    #[test]
    fn background_covers_screen() {
        let p = small_profile();
        let s = ScreenConfig::tiny();
        let g = SceneGenerator::new(&p, &s);
        let scene = g.scene(0);
        let bg = &scene.draws[0];
        let xs: Vec<f32> = bg.vertices.iter().map(|v| v.pos.x).collect();
        assert!(xs.iter().cloned().fold(f32::INFINITY, f32::min) <= 0.0);
        assert!(xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max) >= s.width as f32);
    }

    #[test]
    fn every_suite_profile_generates_nonempty_scenes() {
        let s = ScreenConfig::tiny();
        for p in suite() {
            let g = SceneGenerator::new(&p, &s);
            let scene = g.scene(0);
            assert!(scene.num_triangles() > 0, "{} generated an empty scene", p.abbrev);
            assert!(scene.draws.len() < 200, "{} generated too many draws", p.abbrev);
        }
    }

    #[test]
    fn scroll_moves_background_uvs() {
        let mut p = small_profile();
        p.scroll_speed = (8.0, 0.0);
        let s = ScreenConfig::tiny();
        let g = SceneGenerator::new(&p, &s);
        let a = g.scene(0).draws[0].vertices[0].uv;
        let b = g.scene(1).draws[0].vertices[0].uv;
        assert!((b.x - a.x).abs() > 1e-6, "background UV must scroll");
    }
}
