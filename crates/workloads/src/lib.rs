//! # tbr-workloads — synthetic mobile-game workloads for the LIBRA simulator
//!
//! The paper evaluates 32 commercial Android games captured through the TEAPOT
//! toolchain (Table II). Those traces are not publicly available, so this crate
//! substitutes them with 32 parameterised synthetic scene generators that reproduce
//! the statistical properties every LIBRA mechanism depends on (see `DESIGN.md` §1):
//!
//! * **per-tile heterogeneity with spatial clustering** (Fig 2): scenes are composed
//!   of full-screen background layers (cold, uniform), spatially clustered groups of
//!   small, overlapping, texture-hungry objects (hot), scattered mid-ground objects
//!   and a HUD — so DRAM-access heatmaps show hot blobs on a cold field;
//! * **frame-to-frame coherence** (Fig 8): the layout is static per benchmark (seeded
//!   RNG), and per-frame change is smooth scrolling plus bounded jitter;
//! * **a memory-intensity spectrum** (Fig 6): texture footprints range from
//!   cache-resident (compute-bound games, high-ALU shaders) to several MB per frame
//!   streamed through unique sprite-atlas regions (memory-bound games);
//! * **2D / 2.5D / 3D variety** (Table II categories).
//!
//! [`suite()`] returns the 32 profiles; [`SceneGenerator`] turns a profile into a
//! deterministic per-frame [`tbr_geom::Scene`].

#![warn(missing_docs)]

pub mod profile;
pub mod scene;
pub mod suite;

pub use profile::{BenchmarkProfile, Category};
pub use scene::SceneGenerator;
pub use suite::suite;
