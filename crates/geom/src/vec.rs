//! Small dense vector types (`f32`), written from scratch.

use core::ops::{Add, AddAssign, Mul, Neg, Sub};

/// 2-component vector (texture coordinates, screen positions).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
}

/// 3-component vector (positions, normals).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// 4-component homogeneous vector (clip-space positions).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W (homogeneous) component.
    pub w: f32,
}

impl Vec2 {
    /// Creates a vector.
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Linear interpolation `self + t * (other - self)`.
    pub fn lerp(self, other: Vec2, t: f32) -> Vec2 {
        self + (other - self) * t
    }

    /// Dot product.
    pub fn dot(self, o: Vec2) -> f32 {
        self.x * o.x + self.y * o.y
    }
}

impl Vec3 {
    /// Creates a vector.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit vector in the same direction; returns `self` unchanged if near zero.
    pub fn normalize(self) -> Vec3 {
        let l = self.length();
        if l <= f32::EPSILON {
            self
        } else {
            self * (1.0 / l)
        }
    }

    /// Extends to homogeneous coordinates with the given `w`.
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }
}

impl Vec4 {
    /// Creates a vector.
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// The `xyz` part.
    pub fn truncate(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Linear interpolation `self + t * (other - self)`.
    pub fn lerp(self, other: Vec4, t: f32) -> Vec4 {
        self + (other - self) * t
    }

    /// Dot product.
    pub fn dot(self, o: Vec4) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z + self.w * o.w
    }
}

macro_rules! impl_ops {
    ($t:ty { $($f:ident),+ }) => {
        impl Add for $t {
            type Output = $t;
            fn add(self, o: $t) -> $t { Self { $($f: self.$f + o.$f),+ } }
        }
        impl AddAssign for $t {
            fn add_assign(&mut self, o: $t) { $(self.$f += o.$f;)+ }
        }
        impl Sub for $t {
            type Output = $t;
            fn sub(self, o: $t) -> $t { Self { $($f: self.$f - o.$f),+ } }
        }
        impl Mul<f32> for $t {
            type Output = $t;
            fn mul(self, s: f32) -> $t { Self { $($f: self.$f * s),+ } }
        }
        impl Neg for $t {
            type Output = $t;
            fn neg(self) -> $t { Self { $($f: -self.$f),+ } }
        }
    };
}

impl_ops!(Vec2 { x, y });
impl_ops!(Vec3 { x, y, z });
impl_ops!(Vec4 { x, y, z, w });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_arithmetic_and_lerp() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, 6.0);
        assert_eq!(a + b, Vec2::new(4.0, 8.0));
        assert_eq!(b - a, Vec2::new(2.0, 4.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(a.lerp(b, 0.5), Vec2::new(2.0, 4.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        let c = a.cross(b);
        assert_eq!(c, Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(c.dot(a), 0.0);
        assert_eq!(c.dot(b), 0.0);
        // Anti-commutative.
        assert_eq!(b.cross(a), -c);
    }

    #[test]
    fn vec3_normalize() {
        let v = Vec3::new(3.0, 0.0, 4.0);
        let n = v.normalize();
        assert!((n.length() - 1.0).abs() < 1e-6);
        // Zero vector stays put instead of producing NaN.
        let z = Vec3::default().normalize();
        assert_eq!(z, Vec3::default());
    }

    #[test]
    fn vec4_truncate_extend_roundtrip() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.extend(4.0).truncate(), v);
    }

    #[test]
    fn vec4_lerp_midpoint() {
        let a = Vec4::new(0.0, 0.0, 0.0, 1.0);
        let b = Vec4::new(2.0, 4.0, 6.0, 1.0);
        assert_eq!(a.lerp(b, 0.5), Vec4::new(1.0, 2.0, 3.0, 1.0));
    }
}
