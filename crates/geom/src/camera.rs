//! Projection matrix builders (the "camera's point of view" of §II-A).

use crate::mat::Mat4;
use crate::vec::Vec4;

/// OpenGL-style perspective projection: visible points end up with
/// `-w ≤ x, y, z ≤ w` in clip space.
///
/// # Panics
/// Panics if `near`/`far`/`aspect` are not positive or `far ≤ near`.
pub fn perspective(fov_y_radians: f32, aspect: f32, near: f32, far: f32) -> Mat4 {
    assert!(near > 0.0 && far > near && aspect > 0.0, "invalid perspective parameters");
    let f = 1.0 / (fov_y_radians * 0.5).tan();
    let mut m = Mat4 { cols: [Vec4::default(); 4] };
    m.cols[0].x = f / aspect;
    m.cols[1].y = f;
    m.cols[2].z = (far + near) / (near - far);
    m.cols[2].w = -1.0;
    m.cols[3].z = 2.0 * far * near / (near - far);
    m
}

/// Orthographic projection of the box `[l,r]×[b,t]×[n,f]` onto clip space.
pub fn orthographic(l: f32, r: f32, b: f32, t: f32, n: f32, f: f32) -> Mat4 {
    let mut m = Mat4::IDENTITY;
    m.cols[0].x = 2.0 / (r - l);
    m.cols[1].y = 2.0 / (t - b);
    m.cols[2].z = -2.0 / (f - n);
    m.cols[3] = Vec4::new(-(r + l) / (r - l), -(t + b) / (t - b), -(f + n) / (f - n), 1.0);
    m
}

/// Pixel-space orthographic camera for 2-D scenes: object coordinates are screen
/// pixels `(0..width, 0..height)` and depth is `z ∈ [0, 1]` (0 = near). Unlike the
/// GL convention (which looks down −Z), depth here grows *into* the screen, so
/// `z = 0 → NDC −1` and `z = 1 → NDC +1`.
pub fn screen_ortho(width: u32, height: u32) -> Mat4 {
    // orthographic() maps with -2/(f-n); passing (n, f) = (0, -1) yields z_ndc = 2z-1.
    orthographic(0.0, width as f32, 0.0, height as f32, 0.0, -1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec::Vec3;

    #[test]
    fn perspective_center_point_projects_to_origin() {
        let m = perspective(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 100.0);
        // A point straight ahead at z=-1 (looking down -Z).
        let clip = m.transform_point(Vec3::new(0.0, 0.0, -1.0));
        let ndc_x = clip.x / clip.w;
        let ndc_y = clip.y / clip.w;
        assert!(ndc_x.abs() < 1e-6 && ndc_y.abs() < 1e-6);
        assert!(clip.w > 0.0);
    }

    #[test]
    fn perspective_maps_near_and_far_to_ndc_bounds() {
        let (n, f) = (0.5f32, 10.0f32);
        let m = perspective(1.0, 1.0, n, f);
        let near = m.transform_point(Vec3::new(0.0, 0.0, -n));
        let far = m.transform_point(Vec3::new(0.0, 0.0, -f));
        assert!((near.z / near.w + 1.0).abs() < 1e-5, "near plane -> -1");
        assert!((far.z / far.w - 1.0).abs() < 1e-4, "far plane -> +1");
    }

    #[test]
    #[should_panic(expected = "invalid perspective")]
    fn perspective_rejects_bad_planes() {
        let _ = perspective(1.0, 1.0, 1.0, 0.5);
    }

    #[test]
    fn screen_ortho_maps_corners() {
        let m = screen_ortho(960, 544);
        let bl = m.transform_point(Vec3::new(0.0, 0.0, 0.0));
        let tr = m.transform_point(Vec3::new(960.0, 544.0, 1.0));
        assert!((bl.x / bl.w + 1.0).abs() < 1e-6);
        assert!((bl.y / bl.w + 1.0).abs() < 1e-6);
        assert!((tr.x / tr.w - 1.0).abs() < 1e-6);
        assert!((tr.y / tr.w - 1.0).abs() < 1e-6);
        // Depth 0 -> NDC +1? No: GL ortho maps n->-1, f->+1 with the -2/(f-n) row.
        assert!((bl.z / bl.w + 1.0).abs() < 1e-6);
        assert!((tr.z / tr.w - 1.0).abs() < 1e-6);
    }

    #[test]
    fn screen_ortho_center_is_ndc_origin() {
        let m = screen_ortho(100, 100);
        let c = m.transform_point(Vec3::new(50.0, 50.0, 0.5));
        assert!((c.x / c.w).abs() < 1e-6 && (c.y / c.w).abs() < 1e-6);
    }
}
