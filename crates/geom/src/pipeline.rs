//! The Geometry Pipeline proper: vertex transform → primitive assembly → cull/clip →
//! viewport transform.
//!
//! This is the *functional* half of the pipeline (what gets computed); the *timing*
//! half (vertex-cache accesses, per-stage cycle costs) is applied by `tbr-sim`'s
//! geometry phase using the counters returned in [`GeomCounts`].

use crate::clip::{clip_triangle, ClipVertex};
use crate::scene::{BlendMode, FragmentShaderDesc, Scene, TextureDesc};
use tbr_common::config::ScreenConfig;
use tbr_common::ids::DrawCallId;

/// A vertex after the viewport transform: screen-space position (pixels), depth in
/// `[0, 1]` and texture coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScreenVertex {
    /// Screen X in pixels (0 = left edge).
    pub x: f32,
    /// Screen Y in pixels (0 = top edge).
    pub y: f32,
    /// Depth in `[0, 1]`; smaller is closer.
    pub z: f32,
    /// Texture U coordinate.
    pub u: f32,
    /// Texture V coordinate.
    pub v: f32,
}

/// A screen-space triangle ready for binning and rasterisation, still carrying its
/// draw-call state (texture, shader, blend mode) and program order (`seq`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenTriangle {
    /// The three vertices.
    pub v: [ScreenVertex; 3],
    /// Originating draw call.
    pub draw: DrawCallId,
    /// Bound texture.
    pub texture: TextureDesc,
    /// Fragment shader profile.
    pub shader: FragmentShaderDesc,
    /// Blend state.
    pub blend: BlendMode,
    /// Program-order sequence number across the whole frame (lower = earlier).
    pub seq: u32,
}

impl ScreenTriangle {
    /// Axis-aligned screen bounding box `(x0, y0, x1, y1)`, exclusive max, clamped to
    /// the screen.
    pub fn bounding_box(&self, screen: &ScreenConfig) -> (u32, u32, u32, u32) {
        bbox_from_lanes(self.v.map(|v| v.x), self.v.map(|v| v.y), screen)
    }

    /// Twice the signed area in pixels² (positive for counter-clockwise winding in a
    /// Y-down screen).
    pub fn double_area(&self) -> f32 {
        double_area_from_lanes(self.v.map(|v| v.x), self.v.map(|v| v.y))
    }
}

/// Axis-aligned screen bounding box from x/y lane arrays — the one body behind
/// [`ScreenTriangle::bounding_box`] and the SoA
/// [`crate::stream::TriangleStream::bounding_box`], so the two layouts cannot
/// diverge bit-wise.
#[inline]
pub fn bbox_from_lanes(xs: [f32; 3], ys: [f32; 3], screen: &ScreenConfig) -> (u32, u32, u32, u32) {
    let fmin = |a: [f32; 3]| a.iter().copied().fold(f32::INFINITY, f32::min);
    let fmax = |a: [f32; 3]| a.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let x0 = fmin(xs).floor().max(0.0) as u32;
    let y0 = fmin(ys).floor().max(0.0) as u32;
    let x1 = (fmax(xs).ceil() as u32).min(screen.width);
    let y1 = (fmax(ys).ceil() as u32).min(screen.height);
    (x0, y0, x1.max(x0), y1.max(y0))
}

/// Twice the signed triangle area from x/y lane arrays (shared by the AoS and
/// SoA representations, same arithmetic order).
#[inline]
pub fn double_area_from_lanes(xs: [f32; 3], ys: [f32; 3]) -> f32 {
    (xs[1] - xs[0]) * (ys[2] - ys[0]) - (ys[1] - ys[0]) * (xs[2] - xs[0])
}

/// Counters produced while processing a scene, consumed by the timing model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeomCounts {
    /// Vertex-array elements fetched (one per index).
    pub vertices_fetched: u64,
    /// Unique vertices transformed by the vertex shader.
    pub vertices_shaded: u64,
    /// Triangles assembled from index data.
    pub prims_assembled: u64,
    /// Triangles discarded by frustum culling or as degenerate.
    pub prims_culled: u64,
    /// Triangles that required clipping (were split).
    pub prims_clipped: u64,
    /// Screen-space triangles emitted to the Tiling Engine.
    pub prims_out: u64,
}

/// Minimum |2·area| (pixels²) below which a triangle is discarded as degenerate.
const MIN_DOUBLE_AREA: f32 = 1.0e-3;

/// Runs the whole geometry pipeline over a scene, producing AoS screen-space
/// primitives in program order (reference/export path; the simulator's hot
/// path is [`process_scene_stream`], which this delegates to).
pub fn process_scene(scene: &Scene, screen: &ScreenConfig) -> (Vec<ScreenTriangle>, GeomCounts) {
    let (stream, counts) = process_scene_stream(scene, screen);
    (stream.to_triangles(), counts)
}

/// Runs the whole geometry pipeline over a scene, producing the SoA
/// [`TriangleStream`](crate::stream::TriangleStream) that feeds the Tiling
/// Engine, in program order.
pub fn process_scene_stream(
    scene: &Scene,
    screen: &ScreenConfig,
) -> (crate::stream::TriangleStream, GeomCounts) {
    let mut out = crate::stream::TriangleStream::new();
    let mut counts = GeomCounts::default();
    let mut seq = 0u32;

    for draw in &scene.draws {
        counts.vertices_shaded += draw.vertices.len() as u64;
        counts.vertices_fetched += draw.indices.len() as u64;

        // Vertex shading: transform every unique vertex once (post-transform cache
        // assumed perfect within a draw, as in real hardware with indexed draws).
        let transformed: Vec<ClipVertex> = draw
            .vertices
            .iter()
            .map(|vtx| ClipVertex::new(draw.transform.transform_point(vtx.pos), vtx.uv))
            .collect();

        for tri_idx in draw.indices.chunks_exact(3) {
            counts.prims_assembled += 1;
            let tri = [
                transformed[tri_idx[0] as usize],
                transformed[tri_idx[1] as usize],
                transformed[tri_idx[2] as usize],
            ];
            let clipped = clip_triangle(tri);
            if clipped.is_empty() {
                counts.prims_culled += 1;
                continue;
            }
            if clipped.len() > 1 || clipped[0] != tri {
                counts.prims_clipped += 1;
            }
            for sub in clipped {
                let st = ScreenTriangle {
                    v: sub.map(|cv| viewport(cv, screen)),
                    draw: draw.id,
                    texture: draw.texture,
                    shader: draw.shader,
                    blend: draw.blend,
                    seq,
                };
                if st.double_area().abs() < MIN_DOUBLE_AREA {
                    counts.prims_culled += 1;
                    continue;
                }
                counts.prims_out += 1;
                out.push(&st);
                seq += 1;
            }
        }
    }
    (out, counts)
}

/// Perspective divide + viewport transform: NDC `[-1, 1]` → pixels, NDC depth
/// `[-1, 1]` → `[0, 1]`.
fn viewport(cv: ClipVertex, screen: &ScreenConfig) -> ScreenVertex {
    let w = if cv.pos.w.abs() <= f32::EPSILON { 1.0 } else { cv.pos.w };
    let inv_w = 1.0 / w;
    let ndc_x = cv.pos.x * inv_w;
    let ndc_y = cv.pos.y * inv_w;
    let ndc_z = cv.pos.z * inv_w;
    ScreenVertex {
        x: (ndc_x * 0.5 + 0.5) * screen.width as f32,
        y: (ndc_y * 0.5 + 0.5) * screen.height as f32,
        z: (ndc_z * 0.5 + 0.5).clamp(0.0, 1.0),
        u: cv.uv.x,
        v: cv.uv.y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::screen_ortho;
    use crate::scene::{DrawCall, Vertex};
    use crate::vec::{Vec2, Vec3};
    use tbr_common::ids::{DrawCallId, TextureId};

    fn quad_draw(x0: f32, y0: f32, x1: f32, y1: f32, screen: &ScreenConfig) -> DrawCall {
        DrawCall {
            id: DrawCallId(0),
            transform: screen_ortho(screen.width, screen.height),
            vertices: vec![
                Vertex::new(Vec3::new(x0, y0, 0.5), Vec2::new(0.0, 0.0)),
                Vertex::new(Vec3::new(x1, y0, 0.5), Vec2::new(1.0, 0.0)),
                Vertex::new(Vec3::new(x1, y1, 0.5), Vec2::new(1.0, 1.0)),
                Vertex::new(Vec3::new(x0, y1, 0.5), Vec2::new(0.0, 1.0)),
            ],
            indices: vec![0, 1, 2, 0, 2, 3],
            texture: TextureDesc::new(TextureId(0), 256),
            shader: FragmentShaderDesc::simple(),
            blend: BlendMode::Opaque,
            base_depth: 0.5,
        }
    }

    #[test]
    fn onscreen_quad_produces_two_triangles() {
        let screen = ScreenConfig::tiny();
        let scene = Scene { draws: vec![quad_draw(10.0, 10.0, 100.0, 50.0, &screen)] };
        let (tris, counts) = process_scene(&scene, &screen);
        assert_eq!(tris.len(), 2);
        assert_eq!(counts.prims_out, 2);
        assert_eq!(counts.prims_assembled, 2);
        assert_eq!(counts.prims_culled, 0);
        assert_eq!(counts.vertices_shaded, 4);
        assert_eq!(counts.vertices_fetched, 6);
        // Screen positions land where the ortho camera puts them.
        let bb = tris[0].bounding_box(&screen);
        assert!(bb.0 >= 9 && bb.2 <= 101, "{bb:?}");
    }

    #[test]
    fn offscreen_quad_is_culled_entirely() {
        let screen = ScreenConfig::tiny();
        let scene = Scene { draws: vec![quad_draw(-500.0, -500.0, -100.0, -100.0, &screen)] };
        let (tris, counts) = process_scene(&scene, &screen);
        assert!(tris.is_empty());
        assert_eq!(counts.prims_culled, 2);
        assert_eq!(counts.prims_out, 0);
    }

    #[test]
    fn partially_visible_quad_is_clipped_not_dropped() {
        let screen = ScreenConfig::tiny();
        // Hangs off the left edge.
        let scene = Scene { draws: vec![quad_draw(-50.0, 10.0, 60.0, 60.0, &screen)] };
        let (tris, counts) = process_scene(&scene, &screen);
        assert!(!tris.is_empty());
        assert!(counts.prims_clipped >= 1);
        for t in &tris {
            for v in t.v {
                assert!(v.x >= -0.01, "clipped geometry must not extend past x=0: {v:?}");
                assert!(v.x <= screen.width as f32 + 0.01);
            }
        }
    }

    #[test]
    fn degenerate_triangle_is_culled() {
        let screen = ScreenConfig::tiny();
        let mut dc = quad_draw(10.0, 10.0, 100.0, 50.0, &screen);
        dc.indices = vec![0, 0, 1]; // zero area
        let (tris, counts) = process_scene(&Scene { draws: vec![dc] }, &screen);
        assert!(tris.is_empty());
        assert_eq!(counts.prims_culled, 1);
    }

    #[test]
    fn program_order_is_preserved_in_seq() {
        let screen = ScreenConfig::tiny();
        let scene = Scene {
            draws: vec![
                quad_draw(0.0, 0.0, 50.0, 50.0, &screen),
                quad_draw(20.0, 20.0, 80.0, 80.0, &screen),
            ],
        };
        let (tris, _) = process_scene(&scene, &screen);
        let seqs: Vec<u32> = tris.iter().map(|t| t.seq).collect();
        assert!(
            seqs.windows(2).all(|w| w[0] <= w[1]),
            "output must be in program order: {seqs:?}"
        );
        assert_eq!(seqs.len(), 4);
    }

    #[test]
    fn depth_maps_into_unit_range() {
        let screen = ScreenConfig::tiny();
        let scene = Scene { draws: vec![quad_draw(10.0, 10.0, 100.0, 50.0, &screen)] };
        let (tris, _) = process_scene(&scene, &screen);
        for t in &tris {
            for v in t.v {
                assert!((0.0..=1.0).contains(&v.z), "z={} out of range", v.z);
            }
        }
    }
}
