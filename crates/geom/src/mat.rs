//! 4×4 column-major matrices for the vertex transform stage.

use crate::vec::{Vec3, Vec4};
use core::ops::Mul;

/// A 4×4 matrix, column-major (like OpenGL): `cols[c]` is the c-th column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// The four columns.
    pub cols: [Vec4; 4],
}

impl Mat4 {
    /// Identity matrix.
    pub const IDENTITY: Mat4 = Mat4 {
        cols: [
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        ],
    };

    /// Translation matrix.
    pub fn translate(t: Vec3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        m.cols[3] = Vec4::new(t.x, t.y, t.z, 1.0);
        m
    }

    /// Non-uniform scale matrix.
    pub fn scale(s: Vec3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        m.cols[0].x = s.x;
        m.cols[1].y = s.y;
        m.cols[2].z = s.z;
        m
    }

    /// Rotation about the Z axis by `angle` radians (counter-clockwise).
    pub fn rotate_z(angle: f32) -> Mat4 {
        let (s, c) = angle.sin_cos();
        let mut m = Mat4::IDENTITY;
        m.cols[0] = Vec4::new(c, s, 0.0, 0.0);
        m.cols[1] = Vec4::new(-s, c, 0.0, 0.0);
        m
    }

    /// Rotation about the Y axis by `angle` radians.
    pub fn rotate_y(angle: f32) -> Mat4 {
        let (s, c) = angle.sin_cos();
        let mut m = Mat4::IDENTITY;
        m.cols[0] = Vec4::new(c, 0.0, -s, 0.0);
        m.cols[2] = Vec4::new(s, 0.0, c, 0.0);
        m
    }

    /// Transforms a homogeneous vector.
    pub fn transform(&self, v: Vec4) -> Vec4 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z + self.cols[3] * v.w
    }

    /// Transforms a point (`w = 1`).
    pub fn transform_point(&self, p: Vec3) -> Vec4 {
        self.transform(p.extend(1.0))
    }
}

impl Mul for Mat4 {
    type Output = Mat4;

    fn mul(self, rhs: Mat4) -> Mat4 {
        Mat4 { cols: rhs.cols.map(|c| self.transform(c)) }
    }
}

impl Default for Mat4 {
    fn default() -> Self {
        Mat4::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: Vec4, b: Vec4) -> bool {
        (a.x - b.x).abs() < 1e-5
            && (a.y - b.y).abs() < 1e-5
            && (a.z - b.z).abs() < 1e-5
            && (a.w - b.w).abs() < 1e-5
    }

    #[test]
    fn identity_is_noop() {
        let v = Vec4::new(1.0, 2.0, 3.0, 1.0);
        assert_eq!(Mat4::IDENTITY.transform(v), v);
    }

    #[test]
    fn translate_moves_points_not_directions() {
        let m = Mat4::translate(Vec3::new(1.0, 2.0, 3.0));
        let p = m.transform_point(Vec3::new(0.0, 0.0, 0.0));
        assert!(approx(p, Vec4::new(1.0, 2.0, 3.0, 1.0)));
        // Directions (w = 0) are unaffected by translation.
        let d = m.transform(Vec4::new(1.0, 0.0, 0.0, 0.0));
        assert!(approx(d, Vec4::new(1.0, 0.0, 0.0, 0.0)));
    }

    #[test]
    fn rotate_z_quarter_turn() {
        let m = Mat4::rotate_z(std::f32::consts::FRAC_PI_2);
        let v = m.transform(Vec4::new(1.0, 0.0, 0.0, 1.0));
        assert!(approx(v, Vec4::new(0.0, 1.0, 0.0, 1.0)), "{v:?}");
    }

    #[test]
    fn rotate_y_quarter_turn() {
        let m = Mat4::rotate_y(std::f32::consts::FRAC_PI_2);
        let v = m.transform(Vec4::new(1.0, 0.0, 0.0, 1.0));
        assert!(approx(v, Vec4::new(0.0, 0.0, -1.0, 1.0)), "{v:?}");
    }

    #[test]
    fn composition_applies_right_to_left() {
        let t = Mat4::translate(Vec3::new(1.0, 0.0, 0.0));
        let s = Mat4::scale(Vec3::new(2.0, 2.0, 2.0));
        // (s * t) p == s(t(p))
        let p = Vec3::new(1.0, 0.0, 0.0);
        let a = (s * t).transform_point(p);
        let b = s.transform(t.transform_point(p));
        assert!(approx(a, b));
        assert!(approx(a, Vec4::new(4.0, 0.0, 0.0, 1.0)));
    }
}
