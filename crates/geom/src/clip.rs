//! Homogeneous clipping (Sutherland–Hodgman) against the view frustum.
//!
//! §II-A: "in case a triangle is partially visible, a Clipping operation is applied,
//! in which the primitive is split into smaller triangles and only those that entirely
//! fall inside this visible region are kept." We clip the triangle polygon against the
//! six frustum planes in clip space (`-w ≤ x, y, z ≤ w`, `w > 0`) and re-triangulate
//! the resulting convex polygon as a fan.

use crate::vec::{Vec2, Vec4};

/// A vertex flowing through the clipper: clip-space position + interpolated UV.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClipVertex {
    /// Clip-space position.
    pub pos: Vec4,
    /// Texture coordinate.
    pub uv: Vec2,
}

impl ClipVertex {
    /// Creates a clip vertex.
    pub fn new(pos: Vec4, uv: Vec2) -> Self {
        Self { pos, uv }
    }

    fn lerp(self, other: ClipVertex, t: f32) -> ClipVertex {
        ClipVertex { pos: self.pos.lerp(other.pos, t), uv: self.uv.lerp(other.uv, t) }
    }
}

/// The six frustum planes, expressed as signed distances that are ≥ 0 inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plane {
    Left,   // x + w >= 0
    Right,  // w - x >= 0
    Bottom, // y + w >= 0
    Top,    // w - y >= 0
    Near,   // z + w >= 0
    Far,    // w - z >= 0
}

const PLANES: [Plane; 6] =
    [Plane::Near, Plane::Far, Plane::Left, Plane::Right, Plane::Bottom, Plane::Top];

fn distance(p: Plane, v: Vec4) -> f32 {
    match p {
        Plane::Left => v.x + v.w,
        Plane::Right => v.w - v.x,
        Plane::Bottom => v.y + v.w,
        Plane::Top => v.w - v.y,
        Plane::Near => v.z + v.w,
        Plane::Far => v.w - v.z,
    }
}

/// Returns `true` when every vertex is outside the same frustum plane (trivially
/// rejected — the Culling stage of §II-A).
pub fn trivially_outside(verts: &[ClipVertex]) -> bool {
    PLANES.iter().any(|&p| verts.iter().all(|v| distance(p, v.pos) < 0.0))
}

/// Returns `true` when every vertex is inside all planes (no clipping needed).
pub fn fully_inside(verts: &[ClipVertex]) -> bool {
    verts.iter().all(|v| PLANES.iter().all(|&p| distance(p, v.pos) >= 0.0))
}

/// Clips a convex polygon against all six frustum planes. The result is empty when
/// the polygon is entirely outside.
pub fn clip_polygon(verts: &[ClipVertex]) -> Vec<ClipVertex> {
    let mut poly: Vec<ClipVertex> = verts.to_vec();
    for &plane in &PLANES {
        if poly.is_empty() {
            break;
        }
        let mut out = Vec::with_capacity(poly.len() + 1);
        for i in 0..poly.len() {
            let cur = poly[i];
            let next = poly[(i + 1) % poly.len()];
            let d_cur = distance(plane, cur.pos);
            let d_next = distance(plane, next.pos);
            if d_cur >= 0.0 {
                out.push(cur);
            }
            // The edge crosses the plane: emit the intersection point.
            if (d_cur >= 0.0) != (d_next >= 0.0) {
                let t = d_cur / (d_cur - d_next);
                out.push(cur.lerp(next, t));
            }
        }
        poly = out;
    }
    poly
}

/// Clips a triangle and re-triangulates the result as a fan. Returns 0, 1, or more
/// triangles.
pub fn clip_triangle(tri: [ClipVertex; 3]) -> Vec<[ClipVertex; 3]> {
    if trivially_outside(&tri) {
        return Vec::new();
    }
    if fully_inside(&tri) {
        return vec![tri];
    }
    let poly = clip_polygon(&tri);
    if poly.len() < 3 {
        return Vec::new();
    }
    (1..poly.len() - 1).map(|i| [poly[0], poly[i], poly[i + 1]]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cv(x: f32, y: f32, z: f32, w: f32) -> ClipVertex {
        ClipVertex::new(Vec4::new(x, y, z, w), Vec2::new(x, y))
    }

    #[test]
    fn fully_inside_triangle_passes_through() {
        let tri = [cv(0.0, 0.0, 0.0, 1.0), cv(0.5, 0.0, 0.0, 1.0), cv(0.0, 0.5, 0.0, 1.0)];
        let out = clip_triangle(tri);
        assert_eq!(out, vec![tri]);
    }

    #[test]
    fn fully_outside_triangle_is_culled() {
        let tri = [cv(2.0, 0.0, 0.0, 1.0), cv(3.0, 0.0, 0.0, 1.0), cv(2.0, 1.0, 0.0, 1.0)];
        assert!(trivially_outside(&tri));
        assert!(clip_triangle(tri).is_empty());
    }

    #[test]
    fn straddling_triangle_is_split() {
        // Crosses the right plane (x = w): part inside, part outside.
        let tri = [cv(0.0, -0.5, 0.0, 1.0), cv(2.0, 0.0, 0.0, 1.0), cv(0.0, 0.5, 0.0, 1.0)];
        let out = clip_triangle(tri);
        assert!(!out.is_empty());
        // Every output vertex obeys |x| <= w (with float tolerance).
        for t in &out {
            for v in t {
                assert!(v.pos.x <= v.pos.w + 1e-5, "x={} w={}", v.pos.x, v.pos.w);
            }
        }
        // Clipping a triangle against one plane yields a quad -> 2 triangles.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn clipped_uvs_are_interpolated() {
        // Edge from u=0 to u=2 crossing x=w at the midpoint: the new vertex must get
        // u = 1 (uv mirrors xy in `cv`).
        let tri = [cv(0.0, 0.0, 0.0, 1.0), cv(2.0, 0.0, 0.0, 1.0), cv(0.0, 1.0, 0.0, 1.0)];
        let poly = clip_polygon(&tri);
        let crossing = poly
            .iter()
            .find(|v| (v.pos.x - 1.0).abs() < 1e-5 && v.pos.y.abs() < 1e-5)
            .expect("crossing vertex on the bottom edge");
        assert!((crossing.uv.x - 1.0).abs() < 1e-5);
    }

    #[test]
    fn near_plane_clip_splits_w_crossing() {
        // One vertex behind the near plane (z < -w).
        let tri = [cv(0.0, 0.0, -2.0, 1.0), cv(0.5, 0.0, 0.0, 1.0), cv(0.0, 0.5, 0.0, 1.0)];
        let out = clip_triangle(tri);
        assert!(!out.is_empty());
        for t in &out {
            for v in t {
                assert!(v.pos.z + v.pos.w >= -1e-5, "vertex behind near plane survived");
            }
        }
    }

    #[test]
    fn polygon_clip_of_inside_square_is_identity() {
        let sq = [
            cv(-0.5, -0.5, 0.0, 1.0),
            cv(0.5, -0.5, 0.0, 1.0),
            cv(0.5, 0.5, 0.0, 1.0),
            cv(-0.5, 0.5, 0.0, 1.0),
        ];
        assert_eq!(clip_polygon(&sq), sq.to_vec());
    }
}
