//! Scene description: what an application submits to the GPU each frame.
//!
//! A [`Scene`] is an ordered list of [`DrawCall`]s (order matters: primitives must be
//! rendered in program order within each tile, §II-B). Each draw call carries its own
//! model-view-projection transform, vertex/index arrays, bound texture and a
//! [`FragmentShaderDesc`] describing the per-fragment work of its shader program.

use crate::mat::Mat4;
use crate::vec::{Vec2, Vec3};
use tbr_common::ids::{DrawCallId, TextureId};

/// An input vertex: object-space position + texture coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vertex {
    /// Object-space position.
    pub pos: Vec3,
    /// Texture coordinate in `[0, 1]` (values outside wrap).
    pub uv: Vec2,
}

impl Vertex {
    /// Creates a vertex.
    pub fn new(pos: Vec3, uv: Vec2) -> Self {
        Self { pos, uv }
    }
}

/// A bound texture: identity plus its (square, power-of-two) size in texels. The
/// raster pipeline turns UVs into memory addresses with this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TextureDesc {
    /// Texture identity (selects the address region).
    pub id: TextureId,
    /// Edge length in texels; must be a power of two.
    pub size_texels: u32,
}

impl TextureDesc {
    /// Creates a descriptor.
    ///
    /// # Panics
    /// Panics if `size_texels` is zero or not a power of two.
    pub fn new(id: TextureId, size_texels: u32) -> Self {
        assert!(
            size_texels.is_power_of_two(),
            "texture size must be a power of two, got {size_texels}"
        );
        Self { id, size_texels }
    }
}

/// Texture sampling filter. Bilinear filtering reads the 2×2 texel neighbourhood of
/// every sample, which multiplies texture-cache traffic — the reason mobile GPUs care
/// so much about texture locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FilterMode {
    /// Nearest-texel sampling: one texel (one potential cache line) per sample.
    #[default]
    Nearest,
    /// Bilinear sampling: the 2×2 texel neighbourhood (1–4 cache lines) per sample.
    Bilinear,
}

/// Static description of a fragment shader program's dynamic behaviour: the shader
/// executes `tex_samples` texture lookups, each preceded by `alu_per_sample` ALU
/// instructions, followed by `alu_tail` final ALU instructions (lighting math,
/// colour combination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragmentShaderDesc {
    /// Texture sample instructions per fragment.
    pub tex_samples: u32,
    /// ALU instructions before each texture sample (address math etc.).
    pub alu_per_sample: u32,
    /// ALU instructions after the last sample.
    pub alu_tail: u32,
    /// Texture sampling filter.
    pub filter: FilterMode,
    /// When `true` the shader modifies fragment depth, so Early-Z must be disabled
    /// and the visibility test runs after shading (the Late-Z stage, §II-A).
    pub late_z: bool,
}

impl FragmentShaderDesc {
    /// A minimal textured shader (1 sample, light ALU, nearest filtering).
    pub fn simple() -> Self {
        Self {
            tex_samples: 1,
            alu_per_sample: 2,
            alu_tail: 4,
            filter: FilterMode::Nearest,
            late_z: false,
        }
    }

    /// Returns a copy with bilinear filtering.
    pub fn with_bilinear(mut self) -> Self {
        self.filter = FilterMode::Bilinear;
        self
    }

    /// Returns a copy with Late-Z (depth-modifying shader).
    pub fn with_late_z(mut self) -> Self {
        self.late_z = true;
        self
    }

    /// Total instructions executed per fragment.
    pub fn instructions_per_fragment(&self) -> u32 {
        self.tex_samples * (self.alu_per_sample + 1) + self.alu_tail
    }
}

impl Default for FragmentShaderDesc {
    fn default() -> Self {
        Self::simple()
    }
}

/// How fragment colours combine with the colour buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlendMode {
    /// Overwrite (depth-tested); occluded fragments can be killed by Early-Z.
    #[default]
    Opaque,
    /// Alpha blending: fragments are depth-*tested* but do not write depth, and are
    /// never killed by previously drawn transparent geometry.
    AlphaBlend,
}

/// One draw call: a batch of indexed triangles with shared state.
#[derive(Debug, Clone, PartialEq)]
pub struct DrawCall {
    /// Identity (also selects the vertex-memory region).
    pub id: DrawCallId,
    /// Full model-view-projection transform into clip space.
    pub transform: Mat4,
    /// Vertex array.
    pub vertices: Vec<Vertex>,
    /// Index array; every 3 consecutive indices form a triangle.
    pub indices: Vec<u32>,
    /// Bound texture.
    pub texture: TextureDesc,
    /// Fragment shader profile.
    pub shader: FragmentShaderDesc,
    /// Blend state.
    pub blend: BlendMode,
    /// Depth in `[0,1)` assigned to this draw's fragments for 2-D layered scenes
    /// (smaller = closer). 3-D draws derive depth from geometry instead when the
    /// transform produces non-uniform `z`.
    pub base_depth: f32,
}

impl DrawCall {
    /// Number of triangles described by the index array.
    pub fn num_triangles(&self) -> usize {
        self.indices.len() / 3
    }
}

/// A frame's worth of draw calls, in submission (program) order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scene {
    /// Ordered draw calls.
    pub draws: Vec<DrawCall>,
}

impl Scene {
    /// Total triangles across all draw calls.
    pub fn num_triangles(&self) -> usize {
        self.draws.iter().map(DrawCall::num_triangles).sum()
    }

    /// Total vertices across all draw calls.
    pub fn num_vertices(&self) -> usize {
        self.draws.iter().map(|d| d.vertices.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shader_instruction_count() {
        let s = FragmentShaderDesc { tex_samples: 2, alu_per_sample: 3, alu_tail: 5, ..FragmentShaderDesc::simple() };
        // 2 * (3 + 1) + 5 = 13
        assert_eq!(s.instructions_per_fragment(), 13);
        assert_eq!(FragmentShaderDesc::simple().instructions_per_fragment(), 7);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_texture_rejected() {
        let _ = TextureDesc::new(TextureId(0), 100);
    }

    #[test]
    fn scene_counts() {
        let dc = DrawCall {
            id: DrawCallId(0),
            transform: Mat4::IDENTITY,
            vertices: vec![Vertex::default(); 4],
            indices: vec![0, 1, 2, 2, 1, 3],
            texture: TextureDesc::new(TextureId(0), 256),
            shader: FragmentShaderDesc::simple(),
            blend: BlendMode::Opaque,
            base_depth: 0.5,
        };
        assert_eq!(dc.num_triangles(), 2);
        let scene = Scene { draws: vec![dc.clone(), dc] };
        assert_eq!(scene.num_triangles(), 4);
        assert_eq!(scene.num_vertices(), 8);
    }
}
