//! # tbr-geom — math and Geometry Pipeline of the LIBRA TBR GPU simulator
//!
//! The Geometry Pipeline (Fig 3, left) performs all geometry-related operations over
//! the triangles that compose the scene:
//!
//! 1. the **Vertex Fetcher** reads vertices from memory (modelled in `tbr-sim` via the
//!    vertex cache; this crate supplies the addresses),
//! 2. the **Vertex Processors** transform them by a model-view-projection matrix
//!    ([`pipeline`]),
//! 3. **Primitive Assembly** builds triangles in program order,
//! 4. **Culling** discards triangles entirely outside the view frustum and degenerate
//!    (zero-area) ones,
//! 5. **Clipping** splits partially-visible triangles against the near plane and
//!    frustum sides (Sutherland–Hodgman in homogeneous coordinates, [`clip`]),
//! 6. the **viewport transform** produces screen-space primitives for the Tiling
//!    Engine.
//!
//! The crate also defines the scene vocabulary ([`scene::DrawCall`], [`scene::Scene`],
//! [`scene::FragmentShaderDesc`]) shared by the workload generators and the raster
//! pipeline, and small dense [`mod@vec`]/[`mat`] math types written from scratch (no
//! external math crates, per the reproduction brief).

#![warn(missing_docs)]

pub mod camera;
pub mod clip;
pub mod mat;
pub mod pipeline;
pub mod scene;
pub mod stream;
pub mod vec;

pub use mat::Mat4;
pub use pipeline::{process_scene, process_scene_stream, GeomCounts, ScreenTriangle, ScreenVertex};
pub use scene::{DrawCall, FragmentShaderDesc, Scene, Vertex};
pub use stream::{DrawState, TriangleStream};
pub use vec::{Vec2, Vec3, Vec4};
