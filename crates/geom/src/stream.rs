//! Structure-of-arrays triangle stream with draw-state interning — the
//! data-oriented form of the geometry→binning→raster hand-off.
//!
//! The AoS [`ScreenTriangle`] is 96 bytes of which the binning loop reads only
//! the 24 bytes of x/y lanes, and the raster front-end reads vertices and a
//! handful of interned state fields. [`TriangleStream`] splits the stream into
//! per-attribute lanes (three `f32` per triangle per lane) and replaces the
//! per-triangle draw-call state (texture, shader, blend) with a `u32` index
//! into a small interned [`DrawState`] table, so each inner loop touches only
//! the lanes it actually reads and the cache sees dense, homogeneous data.
//!
//! The stream is *exactly* equivalent to a `Vec<ScreenTriangle>`: lanes are
//! bit-copied `f32`s, [`TriangleStream::get`] reassembles the original struct,
//! and [`TriangleStream::from_triangles`]/[`TriangleStream::to_triangles`]
//! round-trip losslessly (pinned by the `data_layout_diff` suite).

use crate::pipeline::{bbox_from_lanes, double_area_from_lanes, ScreenTriangle, ScreenVertex};
use crate::scene::{BlendMode, FragmentShaderDesc, TextureDesc};
use std::collections::HashMap;
use tbr_common::config::ScreenConfig;
use tbr_common::ids::DrawCallId;

/// The per-draw-call state shared by every triangle of a draw, interned once
/// per distinct combination instead of carried inline per triangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DrawState {
    /// Originating draw call.
    pub draw: DrawCallId,
    /// Bound texture.
    pub texture: TextureDesc,
    /// Fragment shader profile.
    pub shader: FragmentShaderDesc,
    /// Blend state.
    pub blend: BlendMode,
}

/// A frame's screen-space triangles in structure-of-arrays form, in program
/// order. Lane `k` of triangle `i` lives at flat index `3 * i + k`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TriangleStream {
    /// Screen X per vertex (3 per triangle).
    pub xs: Vec<f32>,
    /// Screen Y per vertex (3 per triangle).
    pub ys: Vec<f32>,
    /// Depth per vertex (3 per triangle).
    pub zs: Vec<f32>,
    /// Texture U per vertex (3 per triangle).
    pub us: Vec<f32>,
    /// Texture V per vertex (3 per triangle).
    pub vs: Vec<f32>,
    /// Interned draw-state index per triangle (into [`TriangleStream::states`]).
    pub state: Vec<u32>,
    /// Program-order sequence number per triangle.
    pub seq: Vec<u32>,
    /// The interned draw-state table, in first-appearance order.
    pub states: Vec<DrawState>,
    /// Intern map from state to its table index (always derivable from
    /// `states`; kept so pushes intern in O(1)).
    intern: HashMap<DrawState, u32>,
}

impl TriangleStream {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triangles.
    #[inline]
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the stream holds no triangles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Interns a draw state, returning its stable table index.
    pub fn intern_state(&mut self, s: DrawState) -> u32 {
        if let Some(&i) = self.intern.get(&s) {
            return i;
        }
        let i = self.states.len() as u32;
        self.states.push(s);
        self.intern.insert(s, i);
        i
    }

    /// Appends one triangle, dissolving it into lanes.
    pub fn push(&mut self, tri: &ScreenTriangle) {
        let state = self.intern_state(DrawState {
            draw: tri.draw,
            texture: tri.texture,
            shader: tri.shader,
            blend: tri.blend,
        });
        for v in &tri.v {
            self.xs.push(v.x);
            self.ys.push(v.y);
            self.zs.push(v.z);
            self.us.push(v.u);
            self.vs.push(v.v);
        }
        self.state.push(state);
        self.seq.push(tri.seq);
    }

    /// The interned draw state of triangle `i`.
    #[inline]
    pub fn state_of(&self, i: usize) -> &DrawState {
        &self.states[self.state[i] as usize]
    }

    /// The x lanes of triangle `i`.
    #[inline]
    pub fn xs_of(&self, i: usize) -> [f32; 3] {
        let b = 3 * i;
        [self.xs[b], self.xs[b + 1], self.xs[b + 2]]
    }

    /// The y lanes of triangle `i`.
    #[inline]
    pub fn ys_of(&self, i: usize) -> [f32; 3] {
        let b = 3 * i;
        [self.ys[b], self.ys[b + 1], self.ys[b + 2]]
    }

    /// The three vertices of triangle `i`, reassembled.
    #[inline]
    pub fn vertices(&self, i: usize) -> [ScreenVertex; 3] {
        let b = 3 * i;
        let mut v = [ScreenVertex::default(); 3];
        for (k, out) in v.iter_mut().enumerate() {
            *out = ScreenVertex {
                x: self.xs[b + k],
                y: self.ys[b + k],
                z: self.zs[b + k],
                u: self.us[b + k],
                v: self.vs[b + k],
            };
        }
        v
    }

    /// Reassembles triangle `i` as the AoS struct (reference/export path).
    pub fn get(&self, i: usize) -> ScreenTriangle {
        let s = self.state_of(i);
        ScreenTriangle {
            v: self.vertices(i),
            draw: s.draw,
            texture: s.texture,
            shader: s.shader,
            blend: s.blend,
            seq: self.seq[i],
        }
    }

    /// Axis-aligned screen bounding box of triangle `i` — same arithmetic as
    /// [`ScreenTriangle::bounding_box`] (both go through [`bbox_from_lanes`]).
    #[inline]
    pub fn bounding_box(&self, i: usize, screen: &ScreenConfig) -> (u32, u32, u32, u32) {
        bbox_from_lanes(self.xs_of(i), self.ys_of(i), screen)
    }

    /// Twice the signed area of triangle `i` — same arithmetic as
    /// [`ScreenTriangle::double_area`].
    #[inline]
    pub fn double_area(&self, i: usize) -> f32 {
        double_area_from_lanes(self.xs_of(i), self.ys_of(i))
    }

    /// Builds a stream from AoS triangles (reference path; program order kept).
    pub fn from_triangles(tris: &[ScreenTriangle]) -> Self {
        let mut s = Self::new();
        s.xs.reserve(tris.len() * 3);
        s.ys.reserve(tris.len() * 3);
        s.zs.reserve(tris.len() * 3);
        s.us.reserve(tris.len() * 3);
        s.vs.reserve(tris.len() * 3);
        s.state.reserve(tris.len());
        s.seq.reserve(tris.len());
        for t in tris {
            s.push(t);
        }
        s
    }

    /// Expands the stream back to AoS triangles (reference/export path).
    pub fn to_triangles(&self) -> Vec<ScreenTriangle> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbr_common::ids::TextureId;

    fn tri(x: f32, seq: u32, draw: u32) -> ScreenTriangle {
        ScreenTriangle {
            v: [
                ScreenVertex { x, y: 1.0, z: 0.25, u: 0.0, v: 0.0 },
                ScreenVertex { x: x + 8.0, y: 1.0, z: 0.5, u: 1.0, v: 0.0 },
                ScreenVertex { x, y: 9.0, z: 0.75, u: 0.0, v: 1.0 },
            ],
            draw: DrawCallId(draw),
            texture: TextureDesc::new(TextureId(draw), 64),
            shader: FragmentShaderDesc::simple(),
            blend: BlendMode::Opaque,
            seq,
        }
    }

    #[test]
    fn round_trips_triangles_exactly() {
        let tris = vec![tri(0.0, 0, 0), tri(4.0, 1, 1), tri(8.0, 2, 0)];
        let s = TriangleStream::from_triangles(&tris);
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_triangles(), tris);
        for (i, t) in tris.iter().enumerate() {
            assert_eq!(s.get(i), *t);
        }
    }

    #[test]
    fn draw_state_is_interned_once_per_distinct_state() {
        let tris = vec![tri(0.0, 0, 0), tri(4.0, 1, 1), tri(8.0, 2, 0), tri(12.0, 3, 1)];
        let s = TriangleStream::from_triangles(&tris);
        assert_eq!(s.states.len(), 2, "two distinct draw states");
        assert_eq!(s.state, vec![0, 1, 0, 1]);
        assert_eq!(s.state_of(2).draw, DrawCallId(0));
    }

    #[test]
    fn geometry_queries_match_the_aos_struct() {
        let screen = ScreenConfig::tiny();
        let tris = vec![tri(0.0, 0, 0), tri(100.0, 1, 1)];
        let s = TriangleStream::from_triangles(&tris);
        for (i, t) in tris.iter().enumerate() {
            assert_eq!(s.bounding_box(i, &screen), t.bounding_box(&screen));
            assert_eq!(s.double_area(i).to_bits(), t.double_area().to_bits());
        }
    }
}
