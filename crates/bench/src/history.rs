//! Append-only bench history and baseline regression tracking.
//!
//! Wall-clock throughput numbers are never asserted on in tests (they depend
//! on the host), but they are still worth *watching*: a 2x slowdown of the
//! heap driver is a bug even if no differential contract catches it. This
//! module gives the trend a durable home:
//!
//! * every `libra-sim throughput` run appends one [`HistoryRecord`] line to
//!   `bench_results/history/sim_throughput.jsonl` (override with
//!   `LIBRA_BENCH_HISTORY`), stamped with host core count, git revision and
//!   UTC so later readers can tell apples from oranges;
//! * `libra-sim bench-compare` diffs the latest record against a committed
//!   baseline with a tolerance band, classifying each metric as OK /
//!   IMPROVED / REGRESSED / SKIPPED. The comparison is **report-only** in CI
//!   (exit code 0) unless `--strict` is passed — wall-clock on shared runners
//!   is too noisy to gate merges on.
//!
//! Ratio metrics (heap-over-scan, par-over-heap speedups) are compared across
//! any pair of hosts: both sides of the ratio moved through the same machine.
//! Absolute events/sec metrics are skipped when the recorded core counts
//! differ — comparing a laptop to a CI runner tells you about the hosts, not
//! the code. The par-over-heap ratio carries one extra precondition: it is
//! only meaningful when the host had at least as many cores as the widest
//! par-ladder rung (otherwise the "parallel" workers time-sliced each other),
//! so the row is SKIPPED when either record fails that check.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use tbr_common::json::{self, Value};
use tbr_sim::throughput::ThroughputReport;

/// Default append-only history file for the throughput bench.
pub const DEFAULT_HISTORY: &str = "bench_results/history/sim_throughput.jsonl";

/// Default committed baseline the compare mode diffs against.
pub const DEFAULT_BASELINE: &str = "bench_results/baseline/sim_throughput.json";

/// Schema tag stamped on every history line.
pub const HISTORY_SCHEMA: &str = "libra-bench-history-v1";

/// The history path, honouring the `LIBRA_BENCH_HISTORY` override.
pub fn history_path() -> String {
    std::env::var("LIBRA_BENCH_HISTORY").unwrap_or_else(|_| DEFAULT_HISTORY.to_string())
}

/// One appended throughput measurement: the durable subset of a
/// [`ThroughputReport`] plus the host stamp that makes it interpretable later.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// ISO-8601 UTC timestamp of the measurement.
    pub utc: String,
    /// Abbreviated git revision the workspace was at (or `unknown`).
    pub git_rev: String,
    /// Host logical core count — absolute throughput is only comparable
    /// between records with equal `cores`.
    pub cores: u64,
    /// Number of workloads in the measured slice.
    pub workloads: u64,
    /// Frames simulated per workload.
    pub frames: u64,
    /// Raster units in the measured configuration.
    pub raster_units: u64,
    /// Micro-events processed per driver pass (identical across drivers by
    /// the differential contract).
    pub events: u64,
    /// Linear-scan driver throughput, events/sec.
    pub scan_events_per_sec: f64,
    /// Indexed-heap driver throughput, events/sec.
    pub heap_events_per_sec: f64,
    /// Parallel-driver throughput at each recorded worker count, as
    /// `(threads, events_per_sec)`.
    pub par: Vec<(u64, f64)>,
    /// Heap-over-scan wall-clock speedup.
    pub speedup_heap_over_scan: f64,
    /// Par-over-heap wall-clock speedup at the highest worker count.
    pub speedup_par_over_heap: f64,
}

impl HistoryRecord {
    /// Distils a [`ThroughputReport`] into its durable history form.
    pub fn from_report(report: &ThroughputReport) -> Self {
        Self {
            utc: report.host.utc.clone(),
            git_rev: report.host.git_rev.clone(),
            cores: report.host.cores as u64,
            workloads: report.workloads.len() as u64,
            frames: report.frames as u64,
            raster_units: report.raster_units as u64,
            events: report.heap.events,
            scan_events_per_sec: report.scan.events_per_sec(),
            heap_events_per_sec: report.heap.events_per_sec(),
            par: report
                .par
                .iter()
                .map(|(t, r)| (*t as u64, r.events_per_sec()))
                .collect(),
            speedup_heap_over_scan: report.speedup(),
            speedup_par_over_heap: report.par_speedup(),
        }
    }

    /// Serialises to one newline-free JSON line (JSONL-friendly).
    pub fn to_json_line(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"schema\": \"{HISTORY_SCHEMA}\", \"bench\": \"sim_throughput\", \"utc\": \""
        ));
        json::escape_into(&mut s, &self.utc);
        s.push_str("\", \"git_rev\": \"");
        json::escape_into(&mut s, &self.git_rev);
        s.push_str(&format!(
            "\", \"cores\": {}, \"workloads\": {}, \"frames\": {}, \"raster_units\": {}, \
             \"events\": {}, \"scan_events_per_sec\": {:.1}, \"heap_events_per_sec\": {:.1}, ",
            self.cores, self.workloads, self.frames, self.raster_units, self.events,
            self.scan_events_per_sec, self.heap_events_per_sec,
        ));
        let par = self
            .par
            .iter()
            .map(|(t, e)| format!("{{\"threads\": {t}, \"events_per_sec\": {e:.1}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "\"par\": [{par}], \"speedup_heap_over_scan\": {:.3}, \
             \"speedup_par_over_heap\": {:.3}}}",
            self.speedup_heap_over_scan, self.speedup_par_over_heap,
        ));
        s
    }

    /// Whether this record's par-over-heap speedup measured real parallelism:
    /// true only when the host had at least as many cores as the widest
    /// recorded par rung (mirrors
    /// [`ThroughputReport::par_speedup_meaningful`]). Derived from the stamped
    /// core count, so it works for old history lines and baselines alike.
    pub fn par_speedup_meaningful(&self) -> bool {
        match self.par.last() {
            Some((threads, _)) => self.cores >= *threads,
            None => false,
        }
    }

    /// Parses one history line written by [`Self::to_json_line`].
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let doc = json::parse(line).map_err(|e| format!("invalid history line: {e}"))?;
        let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != HISTORY_SCHEMA {
            return Err(format!(
                "unexpected history schema `{schema}` (want `{HISTORY_SCHEMA}`)"
            ));
        }
        let str_of = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("history line missing string `{k}`"))
        };
        let num = |k: &str| -> Result<f64, String> {
            doc.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("history line missing number `{k}`"))
        };
        let par = doc
            .get("par")
            .and_then(Value::as_array)
            .ok_or("history line missing `par` array")?
            .iter()
            .map(|p| {
                let t = p.get("threads").and_then(Value::as_u64);
                let e = p.get("events_per_sec").and_then(Value::as_f64);
                match (t, e) {
                    (Some(t), Some(e)) => Ok((t, e)),
                    _ => Err("malformed `par` entry".to_string()),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            utc: str_of("utc")?,
            git_rev: str_of("git_rev")?,
            cores: num("cores")? as u64,
            workloads: num("workloads")? as u64,
            frames: num("frames")? as u64,
            raster_units: num("raster_units")? as u64,
            events: num("events")? as u64,
            scan_events_per_sec: num("scan_events_per_sec")?,
            heap_events_per_sec: num("heap_events_per_sec")?,
            par,
            speedup_heap_over_scan: num("speedup_heap_over_scan")?,
            speedup_par_over_heap: num("speedup_par_over_heap")?,
        })
    }

    /// Parses a full `BENCH_sim_throughput.json` document (the schema
    /// [`ThroughputReport::to_json`] writes) — the committed-baseline format.
    pub fn parse_bench_report(text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| format!("invalid baseline JSON: {e}"))?;
        if doc.get("bench").and_then(Value::as_str) != Some("sim_throughput") {
            return Err("baseline is not a sim_throughput record".into());
        }
        let host = doc.get("host");
        let host_str = |k: &str| {
            host.and_then(|h| h.get(k))
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string()
        };
        let num = |k: &str| -> Result<f64, String> {
            doc.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("baseline missing number `{k}`"))
        };
        let rec = |k: &str, field: &str| -> Result<f64, String> {
            doc.get(k)
                .and_then(|r| r.get(field))
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("baseline missing `{k}.{field}`"))
        };
        let par = doc
            .get("par")
            .and_then(Value::as_array)
            .ok_or("baseline missing `par` array")?
            .iter()
            .map(|p| {
                let t = p.get("threads").and_then(Value::as_u64);
                let e = p
                    .get("record")
                    .and_then(|r| r.get("events_per_sec"))
                    .and_then(Value::as_f64);
                match (t, e) {
                    (Some(t), Some(e)) => Ok((t, e)),
                    _ => Err("malformed baseline `par` entry".to_string()),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            utc: host_str("utc"),
            git_rev: host_str("git_rev"),
            cores: host
                .and_then(|h| h.get("cores"))
                .and_then(Value::as_u64)
                .unwrap_or(0),
            workloads: doc
                .get("workloads")
                .and_then(Value::as_array)
                .map_or(0, |w| w.len() as u64),
            frames: num("frames")? as u64,
            raster_units: num("raster_units")? as u64,
            events: rec("heap", "events")? as u64,
            scan_events_per_sec: rec("scan", "events_per_sec")?,
            heap_events_per_sec: rec("heap", "events_per_sec")?,
            par,
            speedup_heap_over_scan: num("speedup_heap_over_scan")?,
            speedup_par_over_heap: num("speedup_par_over_heap")?,
        })
    }
}

/// Appends one record to the history file at `path`, creating parent
/// directories as needed.
pub fn append(path: &str, record: &HistoryRecord) -> Result<(), String> {
    if let Some(dir) = Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("opening {path}: {e}"))?;
    writeln!(f, "{}", record.to_json_line()).map_err(|e| format!("appending to {path}: {e}"))
}

/// Loads every parseable record from a history file (blank lines skipped;
/// a malformed line is an error — history files are machine-written).
pub fn load(path: &str) -> Result<Vec<HistoryRecord>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(HistoryRecord::parse_line)
        .collect()
}

/// Loads the most recent record from a history file, if any.
pub fn load_last(path: &str) -> Result<Option<HistoryRecord>, String> {
    Ok(load(path)?.pop())
}

/// Loads a baseline: tries the committed `BENCH_sim_throughput.json` schema
/// first, then falls back to a single history line.
pub fn load_baseline(path: &str) -> Result<HistoryRecord, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    HistoryRecord::parse_bench_report(&text)
        .or_else(|report_err| {
            text.lines()
                .find(|l| !l.trim().is_empty())
                .ok_or_else(|| report_err.clone())
                .and_then(HistoryRecord::parse_line)
                .map_err(|line_err| format!("{path}: {report_err}; as history line: {line_err}"))
        })
}

/// The verdict on one compared metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareStatus {
    /// Within the tolerance band of the baseline.
    Ok,
    /// Better than the baseline by more than the tolerance.
    Improved,
    /// Worse than the baseline by more than the tolerance.
    Regressed,
    /// Not comparable (e.g. host core counts differ for an absolute metric).
    Skipped,
}

impl CompareStatus {
    /// Fixed-width label for the report table.
    pub fn label(self) -> &'static str {
        match self {
            CompareStatus::Ok => "OK",
            CompareStatus::Improved => "IMPROVED",
            CompareStatus::Regressed => "REGRESSED",
            CompareStatus::Skipped => "SKIPPED",
        }
    }
}

/// One compared metric (higher is better for every metric tracked here).
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed percentage change relative to the baseline.
    pub delta_pct: f64,
    /// The verdict.
    pub status: CompareStatus,
    /// Human-readable qualifier (why a row was skipped, etc.).
    pub note: String,
}

/// The full baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Tolerance band, in percent, inside which a change is `OK`.
    pub tolerance_pct: f64,
    /// One row per metric.
    pub rows: Vec<CompareRow>,
    /// Baseline host stamp, for the report header.
    pub baseline_stamp: String,
    /// Current host stamp, for the report header.
    pub current_stamp: String,
}

impl CompareReport {
    /// True if any metric regressed beyond the tolerance band.
    pub fn any_regressed(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.status == CompareStatus::Regressed)
    }

    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "bench-compare: tolerance ±{:.1}%\n  baseline: {}\n  current:  {}\n",
            self.tolerance_pct, self.baseline_stamp, self.current_stamp
        );
        s.push_str(&format!(
            "  {:<26} {:>14} {:>14} {:>9}  {:<9} {}\n",
            "metric", "baseline", "current", "delta", "status", "note"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "  {:<26} {:>14.3} {:>14.3} {:>+8.1}%  {:<9} {}\n",
                r.metric, r.baseline, r.current, r.delta_pct, r.status.label(), r.note
            ));
        }
        let regressed = self
            .rows
            .iter()
            .filter(|r| r.status == CompareStatus::Regressed)
            .count();
        if regressed > 0 {
            s.push_str(&format!(
                "  {regressed} metric(s) REGRESSED beyond the tolerance band\n"
            ));
        } else {
            s.push_str("  no regressions beyond the tolerance band\n");
        }
        s
    }
}

fn classify(baseline: f64, current: f64, tolerance_pct: f64) -> (f64, CompareStatus) {
    if baseline <= 0.0 {
        return (0.0, CompareStatus::Skipped);
    }
    let delta_pct = (current - baseline) / baseline * 100.0;
    let status = if delta_pct < -tolerance_pct {
        CompareStatus::Regressed
    } else if delta_pct > tolerance_pct {
        CompareStatus::Improved
    } else {
        CompareStatus::Ok
    };
    (delta_pct, status)
}

/// Compares `current` against `baseline` with a ±`tolerance_pct` band.
///
/// Speedup ratios are always compared (host-independent to first order);
/// absolute events/sec rows are skipped when the recorded core counts differ.
pub fn compare(
    baseline: &HistoryRecord,
    current: &HistoryRecord,
    tolerance_pct: f64,
) -> CompareReport {
    let mut rows = Vec::new();
    let mut ratio = |metric: &str, b: f64, c: f64| {
        let (delta_pct, status) = classify(b, c, tolerance_pct);
        rows.push(CompareRow {
            metric: metric.to_string(),
            baseline: b,
            current: c,
            delta_pct,
            status,
            note: String::new(),
        });
    };
    ratio(
        "speedup_heap_over_scan",
        baseline.speedup_heap_over_scan,
        current.speedup_heap_over_scan,
    );
    // Par-over-heap is a ratio, but it only means anything on hosts that could
    // genuinely run the widest rung in parallel; a 1-core container recording
    // "0.87x" is scheduler noise, not a regression.
    if baseline.par_speedup_meaningful() && current.par_speedup_meaningful() {
        ratio(
            "speedup_par_over_heap",
            baseline.speedup_par_over_heap,
            current.speedup_par_over_heap,
        );
    } else {
        let undersized = if current.par_speedup_meaningful() { baseline } else { current };
        rows.push(CompareRow {
            metric: "speedup_par_over_heap".to_string(),
            baseline: baseline.speedup_par_over_heap,
            current: current.speedup_par_over_heap,
            delta_pct: 0.0,
            status: CompareStatus::Skipped,
            note: format!(
                "par speedup not meaningful (host cores {} < {} threads)",
                undersized.cores,
                undersized.par.last().map_or(0, |(t, _)| *t),
            ),
        });
    }

    let same_host = baseline.cores == current.cores && baseline.cores > 0;
    let mut absolute = |metric: String, b: f64, c: f64| {
        let (delta_pct, status, note) = if same_host {
            let (d, s) = classify(b, c, tolerance_pct);
            (d, s, String::new())
        } else {
            (
                0.0,
                CompareStatus::Skipped,
                format!(
                    "host cores differ ({} vs {})",
                    baseline.cores, current.cores
                ),
            )
        };
        rows.push(CompareRow { metric, baseline: b, current: c, delta_pct, status, note });
    };
    absolute(
        "scan_events_per_sec".into(),
        baseline.scan_events_per_sec,
        current.scan_events_per_sec,
    );
    absolute(
        "heap_events_per_sec".into(),
        baseline.heap_events_per_sec,
        current.heap_events_per_sec,
    );
    for (threads, cur) in &current.par {
        if let Some((_, base)) = baseline.par.iter().find(|(t, _)| t == threads) {
            absolute(format!("par@{threads}_events_per_sec"), *base, *cur);
        }
    }

    CompareReport {
        tolerance_pct,
        rows,
        baseline_stamp: format!(
            "{} cores, rev {}, {}",
            baseline.cores, baseline.git_rev, baseline.utc
        ),
        current_stamp: format!(
            "{} cores, rev {}, {}",
            current.cores, current.git_rev, current.utc
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cores: u64, heap_eps: f64, speedup: f64) -> HistoryRecord {
        HistoryRecord {
            utc: "2026-08-08T00:00:00Z".into(),
            git_rev: "abc123def456".into(),
            cores,
            workloads: 32,
            frames: 1,
            raster_units: 64,
            events: 3_413_209,
            scan_events_per_sec: heap_eps / speedup,
            heap_events_per_sec: heap_eps,
            par: vec![(1, heap_eps * 0.9), (2, heap_eps * 1.05), (4, heap_eps)],
            speedup_heap_over_scan: speedup,
            speedup_par_over_heap: 1.0,
        }
    }

    #[test]
    fn history_line_round_trips() {
        let r = record(8, 880_000.0, 2.4);
        let line = r.to_json_line();
        assert!(!line.contains('\n'));
        assert!(line.contains(HISTORY_SCHEMA));
        let back = HistoryRecord::parse_line(&line).unwrap();
        assert_eq!(back.cores, 8);
        assert_eq!(back.git_rev, "abc123def456");
        assert_eq!(back.events, 3_413_209);
        assert_eq!(back.par.len(), 3);
        assert!((back.speedup_heap_over_scan - 2.4).abs() < 1e-9);
    }

    #[test]
    fn append_and_load_last_return_the_newest_record() {
        let dir = std::env::temp_dir().join(format!("libra_hist_{}", std::process::id()));
        let path = dir.join("h.jsonl");
        let path = path.to_str().unwrap();
        let _ = fs::remove_file(path);
        append(path, &record(8, 100.0, 2.0)).unwrap();
        append(path, &record(8, 200.0, 2.5)).unwrap();
        let all = load(path).unwrap();
        assert_eq!(all.len(), 2);
        let last = load_last(path).unwrap().unwrap();
        assert!((last.heap_events_per_sec - 200.0).abs() < 1e-9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_classifies_with_tolerance_band() {
        let base = record(8, 1000.0, 2.0);
        let mut cur = record(8, 1000.0, 2.0);
        cur.speedup_heap_over_scan = 1.0; // -50%: regression
        cur.heap_events_per_sec = 1300.0; // +30%: improvement
        cur.scan_events_per_sec = 475.0; // -5% of the derived 500.0: within ±25%
        let report = compare(&base, &cur, 25.0);
        let status = |m: &str| {
            report
                .rows
                .iter()
                .find(|r| r.metric == m)
                .map(|r| r.status)
                .unwrap()
        };
        assert_eq!(status("speedup_heap_over_scan"), CompareStatus::Regressed);
        assert_eq!(status("heap_events_per_sec"), CompareStatus::Improved);
        assert_eq!(status("scan_events_per_sec"), CompareStatus::Ok);
        assert!(report.any_regressed());
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn compare_skips_absolute_metrics_across_hosts() {
        let base = record(64, 1000.0, 2.0);
        let cur = record(8, 10.0, 2.0); // 100x slower, but on a different host
        let report = compare(&base, &cur, 25.0);
        assert!(!report.any_regressed());
        let heap = report
            .rows
            .iter()
            .find(|r| r.metric == "heap_events_per_sec")
            .unwrap();
        assert_eq!(heap.status, CompareStatus::Skipped);
        assert!(heap.note.contains("host cores differ"));
        // Ratios are still compared.
        let speedup = report
            .rows
            .iter()
            .find(|r| r.metric == "speedup_heap_over_scan")
            .unwrap();
        assert_eq!(speedup.status, CompareStatus::Ok);
    }

    #[test]
    fn par_speedup_row_is_skipped_on_undersized_hosts() {
        // A 1-core container "measuring" par@4 records time-slicing noise;
        // neither direction of comparison may call that a regression.
        let base = record(8, 1000.0, 2.0);
        let mut cur = record(1, 1000.0, 2.0);
        cur.speedup_par_over_heap = 0.869; // the misleading figure from a 1-core run
        for (b, c) in [(&base, &cur), (&cur, &base)] {
            let report = compare(b, c, 25.0);
            let row = report
                .rows
                .iter()
                .find(|r| r.metric == "speedup_par_over_heap")
                .unwrap();
            assert_eq!(row.status, CompareStatus::Skipped);
            assert!(
                row.note.contains("not meaningful") && row.note.contains("1 < 4"),
                "note should name the undersized host: {}",
                row.note
            );
            assert!(!report.any_regressed());
        }

        // Both hosts wide enough: the ratio is compared as before.
        let report = compare(&base, &record(8, 1000.0, 2.0), 25.0);
        let row = report
            .rows
            .iter()
            .find(|r| r.metric == "speedup_par_over_heap")
            .unwrap();
        assert_eq!(row.status, CompareStatus::Ok);
    }

    #[test]
    fn bench_report_schema_parses_as_baseline() {
        let text = r#"{
  "bench": "sim_throughput",
  "workloads": ["AAt", "CCS"],
  "frames": 1,
  "raster_units": 64,
  "host": {"cores": 8, "git_rev": "abc123def456", "utc": "2026-08-08T00:00:00Z"},
  "scan": {"wall_ms": 100.0, "events": 1000, "events_per_sec": 10000.0, "ns_per_event": 100.0, "cycles": 5},
  "heap": {"wall_ms": 50.0, "events": 1000, "events_per_sec": 20000.0, "ns_per_event": 50.0, "cycles": 5},
  "par": [{"threads": 2, "record": {"wall_ms": 40.0, "events": 1000, "events_per_sec": 25000.0, "ns_per_event": 40.0, "cycles": 5}}],
  "speedup_heap_over_scan": 2.000,
  "speedup_par_over_heap": 1.250
}"#;
        let r = HistoryRecord::parse_bench_report(text).unwrap();
        assert_eq!(r.cores, 8);
        assert_eq!(r.workloads, 2);
        assert_eq!(r.events, 1000);
        assert_eq!(r.par, vec![(2, 25000.0)]);
        assert!((r.speedup_heap_over_scan - 2.0).abs() < 1e-9);
    }
}
