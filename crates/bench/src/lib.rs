//! # libra-bench — shared infrastructure of the experiment harness
//!
//! Every `benches/figXX_*.rs` target regenerates one table or figure of the paper:
//! it runs the relevant configurations over the relevant workloads, prints the same
//! rows/series the paper reports (with the paper's own numbers alongside for
//! comparison), and writes a CSV under `bench_results/`.
//!
//! Environment knobs:
//!
//! * `LIBRA_FRAMES` — frames per sequence (default 8; the paper uses 25, which the
//!   full reproduction run in `EXPERIMENTS.md` also uses).
//! * `LIBRA_BENCHMARKS` — comma-separated abbreviations to restrict the workload set
//!   (e.g. `LIBRA_BENCHMARKS=CCS,SuS` for a quick look).
//! * `LIBRA_FHD=1` — run at full 1920×1088 instead of the default 960×544
//!   (see `DESIGN.md` §1 for the resolution substitution).

#![warn(missing_docs)]

pub mod harness;
pub mod history;

use std::fs;
use std::path::PathBuf;

use tbr_common::config::{GpuConfig, ScreenConfig};
use tbr_common::stats::SequenceStats;
use tbr_sim::{simulate_sequence, SchedulerKind};
use tbr_workloads::BenchmarkProfile;

/// Experiment environment (frames, screen, workload filter, output directory).
#[derive(Debug, Clone)]
pub struct Env {
    /// Frames simulated per sequence.
    pub frames: u32,
    /// Screen configuration.
    pub screen: ScreenConfig,
    /// Optional workload filter (abbreviations).
    pub filter: Option<Vec<String>>,
    /// Directory CSV results are written to.
    pub out_dir: PathBuf,
}

impl Env {
    /// Reads the environment knobs. `default_frames` applies when `LIBRA_FRAMES` is
    /// unset.
    pub fn from_env(default_frames: u32) -> Self {
        let frames = std::env::var("LIBRA_FRAMES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_frames);
        let screen = if std::env::var("LIBRA_FHD").is_ok_and(|v| v == "1") {
            ScreenConfig::fhd()
        } else {
            ScreenConfig::quarter_fhd()
        };
        let filter = std::env::var("LIBRA_BENCHMARKS")
            .ok()
            .map(|v| v.split(',').map(|s| s.trim().to_string()).collect());
        let out_dir = PathBuf::from("bench_results");
        Self { frames, screen, filter, out_dir }
    }

    /// Applies the `LIBRA_BENCHMARKS` filter to a workload list.
    pub fn select(&self, profiles: Vec<BenchmarkProfile>) -> Vec<BenchmarkProfile> {
        match &self.filter {
            None => profiles,
            Some(keep) => profiles
                .into_iter()
                .filter(|p| keep.iter().any(|k| k == p.abbrev))
                .collect(),
        }
    }

    /// Runs one (config, scheduler, workload) sequence.
    pub fn run(
        &self,
        cfg: &GpuConfig,
        kind: SchedulerKind,
        profile: &BenchmarkProfile,
    ) -> SequenceStats {
        simulate_sequence(cfg, kind, profile, self.frames)
    }

    /// Writes a CSV result file; failures are reported but non-fatal (benches must
    /// not fail because of a read-only filesystem).
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        let _ = fs::create_dir_all(&self.out_dir);
        let path = self.out_dir.join(format!("{name}.csv"));
        let mut body = String::from(header);
        body.push('\n');
        for r in rows {
            body.push_str(r);
            body.push('\n');
        }
        match fs::write(&path, body) {
            Ok(()) => println!("\n[csv] {}", path.display()),
            Err(e) => eprintln!("[csv] could not write {}: {e}", path.display()),
        }
    }
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, what: &str, paper: &str) {
    println!("================================================================");
    println!("{id} — {what}");
    println!("paper reference: {paper}");
    println!("================================================================");
}

/// Arithmetic mean.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Geometric mean (for speedups).
pub fn geomean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / v.len() as f64).exp()
}

/// The two GPU configurations of the main evaluation (Table I).
#[derive(Debug, Clone)]
pub struct MainConfigs {
    /// Baseline: 1 RU × 8 cores.
    pub baseline: GpuConfig,
    /// PTR/LIBRA: 2 RU × 4 cores.
    pub dual_ru: GpuConfig,
}

impl MainConfigs {
    /// Builds both from the environment's screen.
    pub fn new(env: &Env) -> Self {
        Self {
            baseline: GpuConfig::baseline(env.screen),
            dual_ru: GpuConfig::libra(env.screen, 2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn env_select_filters() {
        let env = Env {
            frames: 1,
            screen: ScreenConfig::tiny(),
            filter: Some(vec!["CCS".into()]),
            out_dir: PathBuf::from("/tmp"),
        };
        let sel = env.select(tbr_workloads::suite());
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].abbrev, "CCS");
    }
}

/// One workload's results across the three main configurations.
#[derive(Debug, Clone)]
pub struct MainRow {
    /// Workload abbreviation.
    pub abbrev: &'static str,
    /// Baseline GPU (1 RU × 8 cores, Z-order).
    pub base: SequenceStats,
    /// PTR alone (2 RU × 4 cores, interleaved Z-order).
    pub ptr: SequenceStats,
    /// Full LIBRA (2 RU × 4 cores, adaptive scheduler).
    pub libra: SequenceStats,
}

/// Runs the main evaluation matrix (baseline / PTR / LIBRA) over `profiles` —
/// shared by Figs 11, 12, 13, 14, 15 and 17.
pub fn run_main_matrix(env: &Env, profiles: &[BenchmarkProfile]) -> Vec<MainRow> {
    let cfgs = MainConfigs::new(env);
    profiles
        .iter()
        .map(|p| {
            let base = env.run(&cfgs.baseline, SchedulerKind::SingleZOrder, p);
            let ptr = env.run(&cfgs.dual_ru, SchedulerKind::InterleavedZOrder, p);
            let libra = env.run(&cfgs.dual_ru, SchedulerKind::Libra, p);
            MainRow { abbrev: p.abbrev, base, ptr, libra }
        })
        .collect()
}
