//! Minimal in-repo micro-benchmark harness (criterion replacement).
//!
//! The workspace builds hermetically offline, so the micro-benchmarks cannot pull
//! `criterion` from crates.io. This module provides the small subset the repo
//! actually needs: named wall-clock benchmarks with automatic iteration-count
//! calibration, per-iteration statistics (mean / min / max / stddev over samples),
//! aligned console output, and the same CSV-under-`bench_results/` convention every
//! other experiment target follows.
//!
//! ```no_run
//! use libra_bench::harness::{black_box, Harness};
//!
//! let mut h = Harness::new("micro_structures");
//! h.bench("sum_1k", || (0..1024u64).map(black_box).sum::<u64>());
//! h.finish();
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time of one measurement sample. Iteration counts are
/// calibrated so each sample runs roughly this long, which keeps timer overhead
/// (~20 ns per `Instant::now` pair) far below 0.1 % of the measurement.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// Statistics of one named benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (one row of the report).
    pub name: String,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: u32,
    /// Mean ns/iteration over all samples.
    pub mean_ns: f64,
    /// Fastest sample's ns/iteration (the least-perturbed estimate).
    pub min_ns: f64,
    /// Slowest sample's ns/iteration.
    pub max_ns: f64,
    /// Population standard deviation of the per-sample means, ns/iteration.
    pub stddev_ns: f64,
}

/// A named collection of micro-benchmarks: run each with [`Harness::bench`], then
/// [`Harness::finish`] prints the table and writes `bench_results/<id>.csv`.
#[derive(Debug)]
pub struct Harness {
    id: String,
    samples: u32,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Creates a harness whose CSV lands in `bench_results/<id>.csv`.
    ///
    /// `LIBRA_BENCH_SAMPLES` overrides the default of 20 samples per benchmark
    /// (e.g. `LIBRA_BENCH_SAMPLES=3` for a smoke run).
    pub fn new(id: &str) -> Self {
        let samples = std::env::var("LIBRA_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(20);
        println!("{:<34} {:>12} {:>12} {:>12} {:>10}", "benchmark", "mean", "min", "max", "stddev");
        Self { id: id.to_string(), samples, results: Vec::new() }
    }

    /// Runs one benchmark: calibrates an iteration count so a sample takes about
    /// `TARGET_SAMPLE`, then times `self.samples` samples of that many calls.
    ///
    /// The closure's return value is passed through [`black_box`] so the optimiser
    /// cannot delete the measured work.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Warm up and calibrate: double the batch until it costs >= ~1/8 of the
        // target, then scale linearly. Bounded to keep pathological cases finite.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let el = t.elapsed();
            if el >= TARGET_SAMPLE / 8 || iters >= 1 << 24 {
                break el.as_secs_f64() / iters as f64;
            }
            iters *= 2;
        };
        let iters_per_sample =
            ((TARGET_SAMPLE.as_secs_f64() / per_iter.max(1e-12)) as u64).clamp(1, 1 << 26);

        let mut sample_means = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            sample_means.push(t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }

        let n = sample_means.len() as f64;
        let mean = sample_means.iter().sum::<f64>() / n;
        let var = sample_means.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / n;
        let r = BenchResult {
            name: name.to_string(),
            iters_per_sample,
            samples: self.samples,
            mean_ns: mean,
            min_ns: sample_means.iter().cloned().fold(f64::INFINITY, f64::min),
            max_ns: sample_means.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            stddev_ns: var.sqrt(),
        };
        println!(
            "{:<34} {:>12} {:>12} {:>12} {:>10}",
            r.name,
            fmt_ns(r.mean_ns),
            fmt_ns(r.min_ns),
            fmt_ns(r.max_ns),
            fmt_ns(r.stddev_ns)
        );
        self.results.push(r);
    }

    /// Prints nothing further (rows were printed live) and writes the CSV.
    pub fn finish(self) -> Vec<BenchResult> {
        let rows: Vec<String> = self
            .results
            .iter()
            .map(|r| {
                format!(
                    "{},{:.2},{:.2},{:.2},{:.2},{},{}",
                    r.name, r.mean_ns, r.min_ns, r.max_ns, r.stddev_ns, r.iters_per_sample, r.samples
                )
            })
            .collect();
        crate::Env::from_env(1).write_csv(
            &self.id,
            "benchmark,mean_ns,min_ns,max_ns,stddev_ns,iters_per_sample,samples",
            &rows,
        );
        self.results
    }
}

/// Human-readable nanosecond quantity (`473ns`, `12.3µs`, `4.56ms`).
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}µs", ns / 1_000.0)
    } else {
        format!("{:.2}ms", ns / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_sane_stats() {
        std::env::set_var("LIBRA_BENCH_SAMPLES", "3");
        let mut h = Harness::new("harness_selftest");
        h.bench("noop_sum", || (0..64u64).sum::<u64>());
        std::env::remove_var("LIBRA_BENCH_SAMPLES");
        let r = &h.results[0];
        assert!(r.mean_ns > 0.0);
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
        assert!(r.iters_per_sample >= 1);
        assert_eq!(r.samples, 3);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(473.0), "473ns");
        assert_eq!(fmt_ns(12_300.0), "12.30µs");
        assert_eq!(fmt_ns(4_560_000.0), "4.56ms");
    }
}
