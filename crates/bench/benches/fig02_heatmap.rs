//! Fig 2: heatmap of per-tile DRAM accesses for one frame of Subway Surfers —
//! hot tiles (main character, HUD, coins) vs cold tiles (sky, background).
//!
//! Prints an ASCII heatmap (log scale) and writes the per-tile counts as CSV. The
//! `heatmap_ppm` example renders the same data as images.

use libra_bench::{banner, Env, MainConfigs};
use tbr_sim::SchedulerKind;
use tbr_workloads::suite;

fn main() {
    banner(
        "Fig 2",
        "per-tile DRAM-access heatmap (SuS, one frame, baseline GPU)",
        "hot clusters around characters/HUD on a cold background",
    );
    let env = Env::from_env(2);
    let cfgs = MainConfigs::new(&env);
    let p = suite().into_iter().find(|p| p.abbrev == "SuS").expect("SuS in suite");
    let s = env.run(&cfgs.baseline, SchedulerKind::SingleZOrder, &p);
    let frame = s.frames.last().expect("at least one frame");

    let tiles_x = env.screen.tiles_x() as usize;
    let max = frame.heatmap.tiles.iter().map(|t| t.dram_accesses).max().unwrap_or(1).max(1);
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    println!("tile grid {}x{}; max per-tile DRAM accesses = {max}", tiles_x, env.screen.tiles_y());
    let mut csv = Vec::new();
    for (i, t) in frame.heatmap.tiles.iter().enumerate() {
        if i % tiles_x == 0 {
            if i > 0 {
                println!();
            }
            print!("  ");
        }
        // Log scale: hot tiles are orders of magnitude above cold ones.
        let v = (t.dram_accesses as f64 + 1.0).ln() / (max as f64 + 1.0).ln();
        let idx = ((v * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1);
        print!("{}", shades[idx]);
        csv.push(format!("{},{},{}", i, t.dram_accesses, t.instructions));
    }
    println!();

    let mut sorted: Vec<u64> = frame.heatmap.tiles.iter().map(|t| t.dram_accesses).collect();
    sorted.sort_unstable();
    let pct = |q: f64| sorted[((sorted.len() - 1) as f64 * q) as usize];
    println!(
        "\nper-tile DRAM deciles: p10={} p50={} p90={} p99={} max={} (hot/cold contrast = p90/p50 = {:.1}x)",
        pct(0.10),
        pct(0.50),
        pct(0.90),
        pct(0.99),
        sorted[sorted.len() - 1],
        pct(0.90) as f64 / pct(0.50).max(1) as f64
    );
    env.write_csv("fig02_heatmap", "tile,dram_accesses,instructions", &csv);
}
