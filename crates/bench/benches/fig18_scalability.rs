//! Fig 18: speedup of LIBRA when increasing the number of Raster Units, against a
//! single-RU baseline with an equal total number of cores.
//!
//! Paper: +20.9 % (2 RU vs 8 cores), +31.3 % (3 RU vs 12 cores), +28.8 % (4 RU vs
//! 16 cores) — more RUs keep helping, with diminishing returns at 4.

use libra_bench::{banner, geomean, Env};
use tbr_common::config::GpuConfig;
use tbr_sim::SchedulerKind;
use tbr_workloads::suite::memory_intensive_suite;

fn main() {
    banner(
        "Fig 18",
        "LIBRA with 2/3/4 Raster Units vs equal-core single-RU baselines",
        "+20.9% / +31.3% / +28.8%",
    );
    let env = Env::from_env(6);
    let profiles = env.select(memory_intensive_suite());

    println!("{:<6} {:>9} {:>9} {:>9}", "bench", "2 RU", "3 RU", "4 RU");
    let mut per_n: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut csv = Vec::new();
    for p in &profiles {
        print!("{:<6}", p.abbrev);
        let mut row = vec![p.abbrev.to_string()];
        for (k, n) in [2usize, 3, 4].iter().enumerate() {
            let base = GpuConfig::single_ru(env.screen, n * 4);
            let libra = GpuConfig::libra(env.screen, *n);
            let sb = env.run(&base, SchedulerKind::SingleZOrder, p);
            let sl = env.run(&libra, SchedulerKind::Libra, p);
            let sp = sl.speedup_over(&sb);
            per_n[k].push(sp);
            print!(" {:>8.1}%", (sp - 1.0) * 100.0);
            row.push(format!("{sp:.4}"));
        }
        println!();
        csv.push(row.join(","));
    }
    println!(
        "\nAVG (geomean): 2RU {:+.1}%  3RU {:+.1}%  4RU {:+.1}%   (paper: +20.9% / +31.3% / +28.8%)",
        (geomean(&per_n[0]) - 1.0) * 100.0,
        (geomean(&per_n[1]) - 1.0) * 100.0,
        (geomean(&per_n[2]) - 1.0) * 100.0
    );
    env.write_csv("fig18_scalability", "bench,ru2,ru3,ru4", &csv);
}
