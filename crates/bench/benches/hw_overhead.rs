//! §III-E hardware-overhead analysis: temperature-table storage and ranking latency,
//! checked against the measured geometry-phase duration (the ranking must hide
//! under it).
//!
//! Paper: 510 entries × 64 b ≈ 4 KB (< 0.2 % of the 2 MB L2); ranking ≤ 13 761
//! cycles ≪ 270 000 geometry cycles per frame.

use libra::hw_cost;
use libra_bench::{banner, mean, Env, MainConfigs};
use tbr_sim::SchedulerKind;
use tbr_workloads::suite;

fn main() {
    banner(
        "HW overhead (§III-E)",
        "temperature-table storage + ranking latency vs geometry phase",
        "4 KB table (<0.2% of L2); 13761-cycle ranking hidden under ~270k geometry cycles",
    );
    let env = Env::from_env(2);
    let cfgs = MainConfigs::new(&env);

    // Storage: one entry per 2x2 supertile of an FHD frame.
    let n_fhd = 510usize;
    println!("table entries (FHD, 2x2 supertiles): {n_fhd}");
    println!("entry width:                          {} bits", hw_cost::ENTRY_BITS);
    println!("table storage:                        {} B (paper: ~4 KB)", hw_cost::table_bytes(n_fhd));
    println!(
        "fraction of 2MB L2:                   {:.3}% (paper: <0.2%)",
        hw_cost::l2_fraction(n_fhd, 2 << 20) * 100.0
    );
    println!(
        "ranking comparisons / cycles:         {} / {} (paper: 4587 / 13761)",
        hw_cost::ranking_comparisons(n_fhd),
        hw_cost::ranking_cycles(n_fhd)
    );

    // Measured geometry-phase cycles across the suite at the experiment resolution.
    let n_here = libra::supertile::SupertileGrid::new(&env.screen, 2).num_supertiles();
    let mut geo = Vec::new();
    for p in env.select(suite()) {
        let s = env.run(&cfgs.baseline, SchedulerKind::SingleZOrder, &p);
        geo.push(mean(&s.frames.iter().map(|f| f.geometry_cycles as f64).collect::<Vec<_>>()));
    }
    let avg_geo = mean(&geo);
    let rank_here = hw_cost::ranking_cycles(n_here);
    println!("\nat the experiment resolution ({} supertiles):", n_here);
    println!("ranking cycles:                       {rank_here}");
    println!("avg geometry-phase cycles (measured): {avg_geo:.0} (paper: ~270000 at FHD)");
    println!(
        "ranking hides under geometry:         {}",
        if hw_cost::ranking_hides_under_geometry(n_here, avg_geo as u64) { "YES" } else { "NO" }
    );
    env.write_csv(
        "hw_overhead",
        "metric,value",
        &[
            format!("table_bytes,{}", hw_cost::table_bytes(n_fhd)),
            format!("ranking_cycles_fhd,{}", hw_cost::ranking_cycles(n_fhd)),
            format!("ranking_cycles_here,{rank_here}"),
            format!("avg_geometry_cycles,{avg_geo:.0}"),
        ],
    );
}
