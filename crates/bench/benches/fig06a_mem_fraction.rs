//! Fig 6a: breakdown of the execution time between compute and memory phases,
//! measured the paper's way: simulate with an ideal memory system (all L1 hits) and
//! again with the realistic one; the difference is memory time.
//!
//! Paper: 16 of 32 benchmarks spend ≥ 25 % of their time on memory (the
//! "memory-intensive" class).

use libra_bench::{banner, Env, MainConfigs};
use tbr_common::stats::memory_time_fraction;
use tbr_sim::SchedulerKind;
use tbr_workloads::suite;

fn main() {
    banner(
        "Fig 6a",
        "compute vs memory execution-time breakdown (baseline GPU)",
        "16/32 benchmarks with ≥25% memory time",
    );
    let env = Env::from_env(4);
    let cfgs = MainConfigs::new(&env);
    let ideal_cfg = cfgs.baseline.clone().with_ideal_memory();

    println!("{:<6} {:>12} {:>12} {:>8} {:>10}", "bench", "real cyc", "ideal cyc", "mem%", "designed");
    let mut csv = Vec::new();
    let mut intensive = 0;
    let mut matches = 0;
    let profiles = env.select(suite());
    for p in &profiles {
        let real = env.run(&cfgs.baseline, SchedulerKind::SingleZOrder, p);
        let ideal = env.run(&ideal_cfg, SchedulerKind::SingleZOrder, p);
        let frac = memory_time_fraction(real.total_cycles(), ideal.total_cycles());
        let is_mem = frac >= 0.25;
        intensive += is_mem as usize;
        matches += (is_mem == p.memory_intensive) as usize;
        println!(
            "{:<6} {:>12} {:>12} {:>7.1}% {:>10}",
            p.abbrev,
            real.total_cycles(),
            ideal.total_cycles(),
            frac * 100.0,
            if p.memory_intensive { "memory" } else { "compute" }
        );
        csv.push(format!("{},{},{},{:.4}", p.abbrev, real.total_cycles(), ideal.total_cycles(), frac));
    }
    println!(
        "\n{} of {} benchmarks are memory-intensive (≥25%); {} match their designed class   (paper: 16/32)",
        intensive,
        profiles.len(),
        matches
    );
    env.write_csv("fig06a_mem_fraction", "bench,real_cycles,ideal_cycles,mem_fraction", &csv);
}
