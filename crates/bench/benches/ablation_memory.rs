//! Ablation (DESIGN.md §5): memory-controller design choices under the LIBRA
//! workloads — row-buffer page policy and refresh overhead.
//!
//! Quantifies the controller's sensitivity: how much the open-page row hits buy (or
//! cost, when many-bank streaming makes conflicts dominate), and the bounded price
//! of refresh.

use libra_bench::{banner, geomean, Env, MainConfigs};
use tbr_common::config::{GpuConfig, PagePolicy};
use tbr_sim::SchedulerKind;
use tbr_workloads::suite::memory_intensive_suite;

fn variant(base: &GpuConfig, f: impl FnOnce(&mut GpuConfig)) -> GpuConfig {
    let mut cfg = base.clone();
    f(&mut cfg);
    cfg
}

fn main() {
    banner(
        "Ablation: memory controller",
        "open vs closed page policy; refresh on vs off (baseline GPU)",
        "open-page + refresh is the modelled default",
    );
    let env = Env::from_env(4);
    let cfgs = MainConfigs::new(&env);
    let variants: Vec<(&str, GpuConfig)> = vec![
        ("open+refresh (default)", cfgs.baseline.clone()),
        ("closed page", variant(&cfgs.baseline, |c| c.dram.page_policy = PagePolicy::Closed)),
        ("no refresh", variant(&cfgs.baseline, |c| c.dram.refresh_interval = 0)),
        (
            "closed, no refresh",
            variant(&cfgs.baseline, |c| {
                c.dram.page_policy = PagePolicy::Closed;
                c.dram.refresh_interval = 0;
            }),
        ),
    ];

    let profiles = env.select(memory_intensive_suite());
    print!("{:<6}", "bench");
    for (name, _) in &variants {
        print!(" {name:>22}");
    }
    println!();

    let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    let mut csv = Vec::new();
    for p in &profiles {
        print!("{:<6}", p.abbrev);
        let mut row = vec![p.abbrev.to_string()];
        let reference = env.run(&variants[0].1, SchedulerKind::SingleZOrder, p);
        for (k, (_, cfg)) in variants.iter().enumerate() {
            let s = if k == 0 { reference.clone() } else { env.run(cfg, SchedulerKind::SingleZOrder, p) };
            let rel = s.total_cycles() as f64 / reference.total_cycles() as f64;
            per_variant[k].push(rel);
            print!(" {rel:>21.3}x");
            row.push(format!("{rel:.4}"));
        }
        println!();
        csv.push(row.join(","));
    }
    print!("\nAVG   ");
    for v in &per_variant {
        print!(" {:>21.3}x", geomean(v));
    }
    println!("\n(normalised cycles; > 1 means slower than the default controller)");
    env.write_csv("ablation_memory", "bench,default,closed,no_refresh,closed_no_refresh", &csv);
}
