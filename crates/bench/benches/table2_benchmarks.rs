//! Table II: the evaluated benchmark suite — category, designed class, and measured
//! per-frame characteristics (triangles, fragments, texture footprint).
//!
//! Paper: 32 commercial games across 2D/2.5D/3D, average memory footprint > 4 MB per
//! frame. Our suite substitutes synthetic look-alikes (DESIGN.md §1).

use libra_bench::{banner, Env, MainConfigs};
use tbr_sim::SchedulerKind;
use tbr_workloads::suite;

fn main() {
    banner(
        "Table II",
        "evaluated benchmarks: category + measured per-frame characteristics",
        "32 games (2D/2.5D/3D); average footprint > 4 MB/frame",
    );
    let env = Env::from_env(2);
    let cfgs = MainConfigs::new(&env);
    let px = (env.screen.width * env.screen.height) as u64;

    println!(
        "{:<6} {:<22} {:<5} {:<8} {:>8} {:>10} {:>12} {:>12}",
        "abbr", "name", "cat", "class", "tris/f", "frags/f", "est. foot", "dram B/f"
    );
    let mut csv = Vec::new();
    let mut foot_sum = 0u64;
    let profiles = env.select(suite());
    for p in &profiles {
        let s = env.run(&cfgs.baseline, SchedulerKind::SingleZOrder, p);
        let f = s.frames.last().unwrap();
        let foot = p.approx_footprint_bytes(px);
        foot_sum += foot;
        println!(
            "{:<6} {:<22} {:<5} {:<8} {:>8} {:>10} {:>9.1} MB {:>9.1} MB",
            p.abbrev,
            p.name,
            p.category.label(),
            if p.memory_intensive { "memory" } else { "compute" },
            f.primitives,
            f.fragments,
            foot as f64 / (1 << 20) as f64,
            f.dram.total_accesses() as f64 * 64.0 / (1 << 20) as f64,
        );
        csv.push(format!(
            "{},{},{},{},{},{},{}",
            p.abbrev,
            p.name,
            p.category.label(),
            p.memory_intensive,
            f.primitives,
            f.fragments,
            foot
        ));
    }
    println!(
        "\naverage estimated footprint: {:.1} MB/frame   (paper: >4 MB)",
        foot_sum as f64 / profiles.len() as f64 / (1 << 20) as f64
    );
    env.write_csv(
        "table2_benchmarks",
        "abbr,name,category,memory_intensive,triangles,fragments,footprint_bytes",
        &csv,
    );
}
