//! Fig 13: increase in overall texture-cache hit ratio w.r.t. the baseline, for PTR
//! and LIBRA, plus the texture-line replication reduction w.r.t. PTR.
//!
//! Paper: average hit-ratio increase 10.6 % (up to 40 %); block replication in the
//! texture L1s drops 32.5 % on average vs PTR alone.

use libra_bench::{banner, mean, run_main_matrix, Env};
use tbr_workloads::suite::memory_intensive_suite;

fn main() {
    banner(
        "Fig 13",
        "texture hit-ratio increase vs baseline + replication vs PTR",
        "avg hit-ratio +10.6% (up to +40%); replication -32.5% vs PTR",
    );
    let env = Env::from_env(8);
    let rows = run_main_matrix(&env, &env.select(memory_intensive_suite()));

    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "bench", "base%", "ptr%", "libra%", "ptr Δ", "libra Δ", "repl vs PTR"
    );
    let mut csv = Vec::new();
    let mut inc_ptr = Vec::new();
    let mut inc_libra = Vec::new();
    let mut repl = Vec::new();
    for r in &rows {
        let b = r.base.texture_hit_ratio() * 100.0;
        let p = r.ptr.texture_hit_ratio() * 100.0;
        let l = r.libra.texture_hit_ratio() * 100.0;
        // Relative increase, as the paper plots it.
        let dp = (p - b) / b * 100.0;
        let dl = (l - b) / b * 100.0;
        let dr = (1.0
            - (r.libra.avg_texture_replication() - 1.0).max(0.0)
                / (r.ptr.avg_texture_replication() - 1.0).max(1e-9))
            * 100.0;
        inc_ptr.push(dp);
        inc_libra.push(dl);
        repl.push(dr);
        println!(
            "{:<6} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>11.1}%",
            r.abbrev, b, p, l, dp, dl, dr
        );
        csv.push(format!("{},{:.3},{:.3},{:.3},{:.3}", r.abbrev, b, p, l, dr));
    }
    println!(
        "\nAVG: hit-ratio increase PTR {:+.1}%, LIBRA {:+.1}% (paper: +10.6%); excess replication vs PTR {:+.1}% (paper: -32.5%)",
        mean(&inc_ptr),
        mean(&inc_libra),
        -mean(&repl)
    );
    env.write_csv(
        "fig13_texture_hit_ratio",
        "bench,base_pct,ptr_pct,libra_pct,repl_reduction_pct",
        &csv,
    );
}
