//! Fig 19a: sensitivity of LIBRA's speedup to the supertile-resize threshold.
//!
//! Paper: 0.25 % is best (fast reaction); beyond ~15 % the size never changes and
//! the curve flattens at the fixed-size level.

use libra::adaptive::AdaptiveParams;
use libra_bench::{banner, geomean, Env, MainConfigs};
use tbr_sim::SchedulerKind;
use tbr_workloads::suite::memory_intensive_suite;

fn main() {
    banner(
        "Fig 19a",
        "LIBRA speedup vs baseline while sweeping the supertile-resize threshold",
        "best at 0.25%; flat (fixed-size behaviour) beyond 15%",
    );
    let env = Env::from_env(8);
    let cfgs = MainConfigs::new(&env);
    let profiles = env.select(memory_intensive_suite());
    let thresholds = [0.0, 0.0025, 0.01, 0.05, 0.15, 0.30];

    println!("{:>10} {:>14}", "threshold", "avg speedup");
    let mut csv = Vec::new();
    for t in thresholds {
        let params = AdaptiveParams { resize_threshold: t, ..AdaptiveParams::default() };
        let mut speedups = Vec::new();
        for p in &profiles {
            let base = env.run(&cfgs.baseline, SchedulerKind::SingleZOrder, p);
            let libra = env.run(&cfgs.dual_ru, SchedulerKind::LibraWithParams(params), p);
            speedups.push(libra.speedup_over(&base));
        }
        let avg = geomean(&speedups);
        println!("{:>9.2}% {:>13.1}%", t * 100.0, (avg - 1.0) * 100.0);
        csv.push(format!("{:.4},{:.4}", t, avg));
    }
    println!("\n(paper default: 0.25%)");
    env.write_csv("fig19a_resize_threshold", "threshold,avg_speedup", &csv);
}
