//! Simulator-throughput benchmark: the indexed event-queue core versus the
//! retired linear-scan loop it replaced, plus the intra-frame parallel driver
//! at each `throughput::PAR_THREADS` worker count, measured as host wall-clock
//! over the whole workload suite (`events/s` and `ns/event`).
//!
//! This measures the *simulator*, not the simulated GPU — the speedup is the
//! binding constraint for scaling studies like Fig 18, where the scan's
//! O(raster units) event selection dominates. The default configuration is
//! therefore the 64 RU x 8 core scaling point; at the paper's small default
//! (2 RU x 4 cores) the fixed functional cost per event dominates and the
//! speedup shrinks to near-unity (see EXPERIMENTS.md "simulation throughput").
//!
//! Record-only: numbers are written to `bench_results/sim_throughput.json`, and
//! the scan/heap/par equality of simulated cycles and event counts is asserted
//! by `tbr_sim::throughput::compare` itself (the parallel speedup is recorded,
//! never asserted). Override the configuration with `LIBRA_FRAMES`,
//! `LIBRA_TP_RUS`, `LIBRA_TP_CORES`.

use libra_bench::banner;

use tbr_common::config::{GpuConfig, ScreenConfig};
use tbr_sim::throughput;
use tbr_workloads::suite;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    banner(
        "sim_throughput",
        "host wall-clock of the heap and parallel event loops vs the scan oracle (record only)",
        "infrastructure — enables the Fig 18 scaling sweeps",
    );
    let frames = env_usize("LIBRA_FRAMES", 1) as u32;
    let rus = env_usize("LIBRA_TP_RUS", 64);
    let cores = env_usize("LIBRA_TP_CORES", 8);
    let mut cfg = GpuConfig::libra(ScreenConfig::tiny(), rus);
    cfg.cores_per_ru = cores;

    let profiles = suite();
    println!(
        "{} workloads x {frames} frames, {rus} RU x {cores} cores (scan first, then heap)\n",
        profiles.len()
    );
    let report = throughput::compare(
        &cfg,
        libra::scheduler::SchedulerKind::Libra,
        &profiles,
        frames,
    );
    print!("{}", report.render());

    let _ = std::fs::create_dir_all("bench_results");
    let path = "bench_results/sim_throughput.json";
    match std::fs::write(path, report.to_json()) {
        Ok(()) => println!("\n[json] {path}"),
        Err(e) => eprintln!("\n[json] FAILED writing {path}: {e}"),
    }
}
