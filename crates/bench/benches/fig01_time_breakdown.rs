//! Fig 1: distribution of the execution time in the GPU per frame between the
//! Geometry and Raster pipelines.
//!
//! Paper: on average 88 % of the time is spent on the raster process.

use libra_bench::{banner, mean, Env, MainConfigs};
use tbr_sim::SchedulerKind;
use tbr_workloads::suite;

fn main() {
    banner(
        "Fig 1",
        "per-frame execution time split: geometry vs raster (baseline GPU)",
        "raster ≈ 88% on average across the suite",
    );
    let env = Env::from_env(4);
    let cfgs = MainConfigs::new(&env);
    let mut csv = Vec::new();
    let mut fractions = Vec::new();
    println!("{:<6} {:>12} {:>12} {:>9}", "bench", "geom cyc/f", "raster cyc/f", "raster%");
    for p in env.select(suite()) {
        let s = env.run(&cfgs.baseline, SchedulerKind::SingleZOrder, &p);
        let geom: u64 = s.frames.iter().map(|f| f.geometry_cycles).sum();
        let rast: u64 = s.frames.iter().map(|f| f.raster_cycles).sum();
        let frac = rast as f64 / (geom + rast) as f64 * 100.0;
        fractions.push(frac);
        println!(
            "{:<6} {:>12.0} {:>12.0} {:>8.1}%",
            p.abbrev,
            geom as f64 / env.frames as f64,
            rast as f64 / env.frames as f64,
            frac
        );
        csv.push(format!("{},{},{},{:.2}", p.abbrev, geom, rast, frac));
    }
    println!("\nAVG raster fraction: {:.1}%   (paper: ≈88%)", mean(&fractions));
    env.write_csv("fig01_time_breakdown", "bench,geometry_cycles,raster_cycles,raster_pct", &csv);
}
