//! Fig 8: cumulative per-tile DRAM-access difference between consecutive frames,
//! averaged over the benchmark suite.
//!
//! Paper: more than 80 % of tiles differ by less than 20 % between consecutive
//! frames — the frame-to-frame coherence LIBRA's prediction relies on.

use libra_bench::{banner, mean, Env, MainConfigs};
use tbr_sim::SchedulerKind;
use tbr_workloads::suite;

fn main() {
    banner(
        "Fig 8",
        "CDF of per-tile DRAM-access change between consecutive frames",
        ">80% of tiles change by <20%",
    );
    let env = Env::from_env(6);
    let cfgs = MainConfigs::new(&env);
    let thresholds: Vec<f64> = (1..=10).map(|i| i as f64 * 0.10).collect();

    let mut per_threshold: Vec<Vec<f64>> = vec![Vec::new(); thresholds.len()];
    for p in env.select(suite()) {
        let s = env.run(&cfgs.baseline, SchedulerKind::SingleZOrder, &p);
        for w in s.frames.windows(2) {
            let cdf = w[1].heatmap.coherence_cdf(&w[0].heatmap, &thresholds);
            for (acc, v) in per_threshold.iter_mut().zip(cdf) {
                acc.push(v);
            }
        }
    }

    println!("{:>10} {:>16}", "Δ ≤", "fraction of tiles");
    let mut csv = Vec::new();
    for (t, vals) in thresholds.iter().zip(&per_threshold) {
        let frac = mean(vals);
        println!("{:>9.0}% {:>15.1}%", t * 100.0, frac * 100.0);
        csv.push(format!("{:.2},{:.4}", t, frac));
    }
    let at20 = mean(&per_threshold[1]);
    println!(
        "\nfraction of tiles with <20% change: {:.1}%   (paper: >80%)",
        at20 * 100.0
    );
    env.write_csv("fig08_frame_coherence", "threshold,fraction_below", &csv);
}
