//! Fig 15: total GPU energy decrease w.r.t. the baseline, split into the PTR
//! contribution and the adaptive scheduler's extra saving.
//!
//! Paper: average −9.2 % total (PTR −5.5 %, scheduler −3.7 %); peaks ≈ −20 %.

use libra_bench::{banner, mean, run_main_matrix, Env};
use tbr_energy::EnergyModel;
use tbr_workloads::suite::memory_intensive_suite;

fn main() {
    banner(
        "Fig 15",
        "total GPU energy decrease vs baseline (memory-intensive apps)",
        "avg -9.2% (PTR -5.5% + scheduler -3.7%); AAt -19.5%, CCS -20.5%",
    );
    let env = Env::from_env(8);
    let model = EnergyModel::default();
    let rows = run_main_matrix(&env, &env.select(memory_intensive_suite()));

    println!("{:<6} {:>12} {:>9} {:>11} {:>9}", "bench", "base (mJ)", "PTR", "+scheduler", "total");
    let mut csv = Vec::new();
    let mut dec_ptr = Vec::new();
    let mut dec_total = Vec::new();
    for r in &rows {
        let b = model.sequence_energy(&r.base).total();
        let p = model.sequence_energy(&r.ptr).total();
        let l = model.sequence_energy(&r.libra).total();
        let dp = (1.0 - p / b) * 100.0;
        let dl = (1.0 - l / b) * 100.0;
        dec_ptr.push(dp);
        dec_total.push(dl);
        println!(
            "{:<6} {:>12.2} {:>8.1}% {:>10.1}% {:>8.1}%",
            r.abbrev,
            b * 1e-6,
            dp,
            dl - dp,
            dl
        );
        csv.push(format!("{},{:.0},{:.0},{:.0}", r.abbrev, b, p, l));
    }
    println!(
        "\nAVG decrease: PTR {:+.1}%  scheduler {:+.1}%  total {:+.1}%   (paper: -5.5% / -3.7% / -9.2%)",
        mean(&dec_ptr),
        mean(&dec_total) - mean(&dec_ptr),
        mean(&dec_total)
    );
    env.write_csv("fig15_energy", "bench,base_nj,ptr_nj,libra_nj", &csv);
}
