//! Fig 12: decrease in texture access latency w.r.t. the baseline, for PTR alone and
//! for LIBRA, over the memory-intensive applications.
//!
//! Paper: LIBRA reduces average texture latency by 13.5 % (up to 40 %); PTR alone
//! *increases* latency for some benchmarks because it cannot face congestion periods.

use libra_bench::{banner, mean, run_main_matrix, Env};
use tbr_workloads::suite::memory_intensive_suite;

fn main() {
    banner(
        "Fig 12",
        "texture-latency decrease vs baseline (memory-intensive apps)",
        "LIBRA avg -13.5%, up to -40%; PTR alone increases latency on some apps",
    );
    let env = Env::from_env(8);
    let rows = run_main_matrix(&env, &env.select(memory_intensive_suite()));

    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "bench", "base lat", "ptr lat", "libra lat", "PTR", "LIBRA"
    );
    let mut csv = Vec::new();
    let mut dec_ptr = Vec::new();
    let mut dec_libra = Vec::new();
    for r in &rows {
        let b = r.base.avg_texture_latency();
        let p = r.ptr.avg_texture_latency();
        let l = r.libra.avg_texture_latency();
        let dp = (1.0 - p / b) * 100.0;
        let dl = (1.0 - l / b) * 100.0;
        dec_ptr.push(dp);
        dec_libra.push(dl);
        println!("{:<6} {:>10.1} {:>10.1} {:>10.1} {:>9.1}% {:>9.1}%", r.abbrev, b, p, l, dp, dl);
        csv.push(format!("{},{:.2},{:.2},{:.2}", r.abbrev, b, p, l));
    }
    println!(
        "\nAVG decrease: PTR {:+.1}%  LIBRA {:+.1}%   (paper: LIBRA -13.5%; LIBRA must beat PTR)",
        mean(&dec_ptr),
        mean(&dec_libra)
    );
    env.write_csv("fig12_texture_latency", "bench,base_lat,ptr_lat,libra_lat", &csv);
}
