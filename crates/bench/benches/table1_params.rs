//! Table I: GPU simulation parameters — prints the simulator's configuration next
//! to the paper's values and checks them programmatically.

use libra_bench::{banner, Env};
use tbr_common::config::{CacheConfig, DramConfig, GpuConfig, ScreenConfig};

fn row(name: &str, ours: String, paper: &str, ok: bool) {
    println!("{name:<28} {ours:<30} {paper:<26} {}", if ok { "✓" } else { "✗ DIFFERS" });
}

fn main() {
    banner("Table I", "GPU simulation parameters", "Table I of the paper");
    let env = Env::from_env(1);
    let cfg = GpuConfig::baseline(ScreenConfig::fhd());
    let libra = GpuConfig::libra(ScreenConfig::fhd(), 2);

    println!("{:<28} {:<30} {:<26}", "parameter", "this simulator", "paper");
    println!("{}", "-".repeat(90));
    row("frequency", format!("{} MHz", cfg.freq_mhz), "800 MHz, 1V, 22nm", cfg.freq_mhz == 800);
    row(
        "screen resolution",
        format!("{}x{} (FHD preset)", cfg.screen.width, cfg.screen.height),
        "1920x1080 (Full HD)",
        cfg.screen.width == 1920,
    );
    row(
        "tile size",
        format!("{0}x{0} px", cfg.screen.tile_size),
        "32x32 pixels",
        cfg.screen.tile_size == 32,
    );
    let d = DramConfig::lpddr4();
    row(
        "main memory latency",
        format!("{}-{} cycles", d.row_hit_latency, d.row_miss_latency),
        "LPDDR4, 50-100 cycles",
        d.row_hit_latency == 50 && d.row_miss_latency == 100,
    );
    let checks = [
        ("vertex cache", CacheConfig::vertex_l1(), 4 << 10, 2, 1),
        ("tile cache", CacheConfig::tile_l1(), 32 << 10, 4, 2),
        ("texture cache (per core)", CacheConfig::texture_l1(), 32 << 10, 4, 2),
        ("L2 cache (shared)", CacheConfig::shared_l2(), 2 << 20, 8, 18),
    ];
    for (name, c, size, assoc, lat) in checks {
        row(
            name,
            format!("{} KB, {}-way, {} B, {} cyc", c.size_bytes >> 10, c.assoc, c.line_bytes, c.latency),
            &format!("{} KB, {}-way, 64B, {} cyc", size >> 10, assoc, lat),
            c.size_bytes == size && c.assoc == assoc && c.latency == lat && c.line_bytes == 64,
        );
    }
    row(
        "baseline raster units/cores",
        format!("{} RU x {} cores", cfg.num_raster_units, cfg.cores_per_ru),
        "1 RU x 8 cores",
        cfg.num_raster_units == 1 && cfg.cores_per_ru == 8,
    );
    row(
        "LIBRA raster units/cores",
        format!("{} RU x {} cores", libra.num_raster_units, libra.cores_per_ru),
        "2 RU x 4 cores",
        libra.num_raster_units == 2 && libra.cores_per_ru == 4,
    );
    println!(
        "\nDefault experiment screen: {}x{} ({} tiles) — see DESIGN.md §1.",
        env.screen.width,
        env.screen.height,
        env.screen.num_tiles()
    );
    env.write_csv("table1_params", "parameter,value", &["see_console,see_console".into()]);
}
