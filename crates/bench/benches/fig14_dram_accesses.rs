//! Fig 14: main-memory accesses of LIBRA normalised to PTR alone.
//!
//! Paper: ≈ 1.0 on average — "the benefit from LIBRA's scheduler does not come from
//! locality improvement but from properly balancing main memory requests over time";
//! some apps see up to −20 % (CCS).

use libra_bench::{banner, mean, run_main_matrix, Env};
use tbr_workloads::suite::memory_intensive_suite;

fn main() {
    banner(
        "Fig 14",
        "DRAM accesses, LIBRA normalised to PTR (memory-intensive apps)",
        "≈1.0 on average (balance, not volume); up to -20% for CCS",
    );
    let env = Env::from_env(8);
    let rows = run_main_matrix(&env, &env.select(memory_intensive_suite()));

    println!("{:<6} {:>12} {:>13} {:>11}", "bench", "ptr dram/f", "libra dram/f", "normalised");
    let mut csv = Vec::new();
    let mut norm = Vec::new();
    for r in &rows {
        let p = r.ptr.total_dram_accesses() as f64 / env.frames as f64;
        let l = r.libra.total_dram_accesses() as f64 / env.frames as f64;
        let n = l / p;
        norm.push(n);
        println!("{:<6} {:>12.0} {:>13.0} {:>11.3}", r.abbrev, p, l, n);
        csv.push(format!("{},{:.0},{:.0},{:.4}", r.abbrev, p, l, n));
    }
    println!("\nAVG normalised accesses: {:.3}   (paper: ≈1.0)", mean(&norm));
    env.write_csv("fig14_dram_accesses", "bench,ptr_dram,libra_dram,normalised", &csv);
}
