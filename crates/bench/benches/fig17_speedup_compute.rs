//! Fig 17: speedup w.r.t. the baseline GPU for the *compute-intensive* applications.
//!
//! Paper: average +11.6 % (PTR +9.9 %, scheduler +1.7 %) — the scheduler contributes
//! little because these apps don't pressure memory, but it never hurts, and some
//! (e.g. GDL) still gain > 5 %.

use libra_bench::{banner, geomean, run_main_matrix, Env};
use tbr_workloads::suite::compute_intensive_suite;

fn main() {
    banner(
        "Fig 17",
        "speedup vs baseline for the compute-intensive applications",
        "avg +11.6% (PTR +9.9% + scheduler +1.7%)",
    );
    let env = Env::from_env(8);
    let rows = run_main_matrix(&env, &env.select(compute_intensive_suite()));

    println!("{:<6} {:>9} {:>11} {:>9}", "bench", "PTR", "+scheduler", "total");
    let mut csv = Vec::new();
    let mut ptr_s = Vec::new();
    let mut libra_s = Vec::new();
    for r in &rows {
        let sp = r.ptr.speedup_over(&r.base);
        let sl = r.libra.speedup_over(&r.base);
        ptr_s.push(sp);
        libra_s.push(sl);
        println!(
            "{:<6} {:>8.1}% {:>10.1}% {:>8.1}%",
            r.abbrev,
            (sp - 1.0) * 100.0,
            (sl - sp) * 100.0,
            (sl - 1.0) * 100.0
        );
        csv.push(format!("{},{:.4},{:.4}", r.abbrev, sp, sl));
    }
    let ap = geomean(&ptr_s);
    let al = geomean(&libra_s);
    println!(
        "\nAVG (geomean): PTR {:+.1}%  scheduler {:+.1}%  total {:+.1}%   (paper: +9.9% / +1.7% / +11.6%)",
        (ap - 1.0) * 100.0,
        (al - ap) * 100.0,
        (al - 1.0) * 100.0
    );
    env.write_csv("fig17_speedup_compute", "bench,ptr_speedup,libra_speedup", &csv);
}
