//! Fig 19b: sensitivity of LIBRA's speedup to the tile-ordering-switch threshold.
//!
//! Paper: 3 % is best; beyond ~4 % the ordering hardly ever switches and the system
//! settles on the temperature-based scheme, so the curve flattens.

use libra::adaptive::AdaptiveParams;
use libra_bench::{banner, geomean, Env, MainConfigs};
use tbr_sim::SchedulerKind;
use tbr_workloads::suite::memory_intensive_suite;

fn main() {
    banner(
        "Fig 19b",
        "LIBRA speedup vs baseline while sweeping the order-switch threshold",
        "best at 3%; flat beyond 4%",
    );
    let env = Env::from_env(8);
    let cfgs = MainConfigs::new(&env);
    let profiles = env.select(memory_intensive_suite());
    let thresholds = [0.01, 0.02, 0.03, 0.04, 0.06, 0.10];

    println!("{:>10} {:>14}", "threshold", "avg speedup");
    let mut csv = Vec::new();
    for t in thresholds {
        let params = AdaptiveParams { order_switch_threshold: t, ..AdaptiveParams::default() };
        let mut speedups = Vec::new();
        for p in &profiles {
            let base = env.run(&cfgs.baseline, SchedulerKind::SingleZOrder, p);
            let libra = env.run(&cfgs.dual_ru, SchedulerKind::LibraWithParams(params), p);
            speedups.push(libra.speedup_over(&base));
        }
        let avg = geomean(&speedups);
        println!("{:>9.0}% {:>13.1}%", t * 100.0, (avg - 1.0) * 100.0);
        csv.push(format!("{:.4},{:.4}", t, avg));
    }
    println!("\n(paper default: 3%)");
    env.write_csv("fig19b_order_threshold", "threshold,avg_speedup", &csv);
}
