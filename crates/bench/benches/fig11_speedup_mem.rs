//! Fig 11: speedup of LIBRA w.r.t. the baseline GPU for the memory-intensive
//! applications, split into the PTR contribution (blue) and the adaptive scheduler's
//! extra contribution (orange).
//!
//! Paper: PTR alone averages +13.2 %, the scheduler adds +7.7 %, total +20.9 %.

use libra_bench::{banner, geomean, run_main_matrix, Env};
use tbr_workloads::suite::memory_intensive_suite;

fn main() {
    banner(
        "Fig 11",
        "LIBRA speedup vs baseline (memory-intensive apps), PTR + scheduler split",
        "avg speedup 20.9% (PTR 13.2% + scheduler 7.7%); peaks: CCS 44.5%, GrT 39.9%",
    );
    let env = Env::from_env(8);
    let rows = run_main_matrix(&env, &env.select(memory_intensive_suite()));

    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>9} {:>11} {:>9}",
        "bench", "base cyc/f", "ptr cyc/f", "libra cyc/f", "PTR", "+scheduler", "total"
    );
    let mut csv = Vec::new();
    let mut ptr_s = Vec::new();
    let mut libra_s = Vec::new();
    for r in &rows {
        let sp_ptr = r.ptr.speedup_over(&r.base);
        let sp_libra = r.libra.speedup_over(&r.base);
        ptr_s.push(sp_ptr);
        libra_s.push(sp_libra);
        println!(
            "{:<6} {:>12.0} {:>12.0} {:>12.0} {:>8.1}% {:>10.1}% {:>8.1}%",
            r.abbrev,
            r.base.avg_frame_cycles(),
            r.ptr.avg_frame_cycles(),
            r.libra.avg_frame_cycles(),
            (sp_ptr - 1.0) * 100.0,
            (sp_libra - sp_ptr) * 100.0,
            (sp_libra - 1.0) * 100.0,
        );
        csv.push(format!(
            "{},{:.0},{:.0},{:.0},{:.4},{:.4}",
            r.abbrev,
            r.base.avg_frame_cycles(),
            r.ptr.avg_frame_cycles(),
            r.libra.avg_frame_cycles(),
            sp_ptr,
            sp_libra
        ));
    }
    let avg_ptr = geomean(&ptr_s);
    let avg_libra = geomean(&libra_s);
    println!(
        "\nAVG (geomean): PTR {:+.1}%  scheduler {:+.1}%  total {:+.1}%   (paper: +13.2% / +7.7% / +20.9%)",
        (avg_ptr - 1.0) * 100.0,
        (avg_libra - avg_ptr) * 100.0,
        (avg_libra - 1.0) * 100.0
    );
    env.write_csv(
        "fig11_speedup_mem",
        "bench,base_cyc,ptr_cyc,libra_cyc,ptr_speedup,libra_speedup",
        &csv,
    );
}
