//! Fig 6b: correlation between the PTR (2 RU) speedup over 1 RU and the fraction of
//! time spent on memory.
//!
//! Paper: strongly negative correlation — "the more memory-intensiveness the less
//! speedup, which confirms that memory is the main bottleneck to fully exploit
//! parallel tile rendering".

use libra_bench::{banner, Env, MainConfigs};
use tbr_common::stats::memory_time_fraction;
use tbr_sim::SchedulerKind;
use tbr_workloads::suite;

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
}

fn main() {
    banner(
        "Fig 6b",
        "PTR(2RU) speedup vs memory-time fraction",
        "strong negative correlation (memory-bound apps speed up least)",
    );
    let env = Env::from_env(4);
    let cfgs = MainConfigs::new(&env);
    let ideal_cfg = cfgs.baseline.clone().with_ideal_memory();

    println!("{:<6} {:>8} {:>9}", "bench", "mem%", "speedup");
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut csv = Vec::new();
    for p in env.select(suite()) {
        let real = env.run(&cfgs.baseline, SchedulerKind::SingleZOrder, &p);
        let ideal = env.run(&ideal_cfg, SchedulerKind::SingleZOrder, &p);
        let ptr = env.run(&cfgs.dual_ru, SchedulerKind::InterleavedZOrder, &p);
        let frac = memory_time_fraction(real.total_cycles(), ideal.total_cycles());
        let sp = ptr.speedup_over(&real);
        println!("{:<6} {:>7.1}% {:>8.3}x", p.abbrev, frac * 100.0, sp);
        xs.push(frac);
        ys.push(sp);
        csv.push(format!("{},{:.4},{:.4}", p.abbrev, frac, sp));
    }
    println!(
        "\nPearson correlation(memory fraction, PTR speedup) = {:.3}   (paper: strongly negative)",
        pearson(&xs, &ys)
    );
    env.write_csv("fig06b_ptr_correlation", "bench,mem_fraction,ptr_speedup", &csv);
}
