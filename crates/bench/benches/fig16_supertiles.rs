//! Fig 16: speedup over PTR alone of static supertile sizes (2×2 … 16×16) versus
//! LIBRA's dynamic supertile resizing + temperature order.
//!
//! Paper: statics yield 0.6 / 2.1 / 2.8 / 3.2 % average; LIBRA ≈ 7 %. Half of
//! LIBRA's scheduler benefit comes from the dynamic resize, half from the
//! temperature traversal.

use libra_bench::{banner, geomean, Env, MainConfigs};
use tbr_sim::SchedulerKind;
use tbr_workloads::suite::memory_intensive_suite;

fn main() {
    banner(
        "Fig 16",
        "static supertiles and LIBRA, speedup over PTR (memory-intensive apps)",
        "statics: +0.6/+2.1/+2.8/+3.2% (2x2..16x16); LIBRA ≈ +7%",
    );
    let env = Env::from_env(8);
    let cfgs = MainConfigs::new(&env);
    let profiles = env.select(memory_intensive_suite());

    let kinds: Vec<(String, SchedulerKind)> = vec![
        ("2x2".into(), SchedulerKind::StaticSupertile(2)),
        ("4x4".into(), SchedulerKind::StaticSupertile(4)),
        ("8x8".into(), SchedulerKind::StaticSupertile(8)),
        ("16x16".into(), SchedulerKind::StaticSupertile(16)),
        ("LIBRA".into(), SchedulerKind::Libra),
    ];

    print!("{:<6}", "bench");
    for (name, _) in &kinds {
        print!(" {name:>8}");
    }
    println!();

    let mut per_kind: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    let mut csv = Vec::new();
    for p in &profiles {
        let ptr = env.run(&cfgs.dual_ru, SchedulerKind::InterleavedZOrder, p);
        print!("{:<6}", p.abbrev);
        let mut row = vec![p.abbrev.to_string()];
        for (k, (_, kind)) in kinds.iter().enumerate() {
            let s = env.run(&cfgs.dual_ru, *kind, p);
            let sp = s.speedup_over(&ptr);
            per_kind[k].push(sp);
            print!(" {:>7.1}%", (sp - 1.0) * 100.0);
            row.push(format!("{sp:.4}"));
        }
        println!();
        csv.push(row.join(","));
    }
    print!("\nAVG   ");
    for (k, (_, _)) in kinds.iter().enumerate() {
        print!(" {:>7.1}%", (geomean(&per_kind[k]) - 1.0) * 100.0);
    }
    println!("\n(paper:   +0.6%    +2.1%    +2.8%    +3.2%    ~+7.0%)");
    env.write_csv("fig16_supertiles", "bench,st2,st4,st8,st16,libra", &csv);
}
