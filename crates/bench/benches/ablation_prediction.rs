//! Ablation (DESIGN.md §5): how good is LIBRA's frame-coherence *prediction*?
//!
//! Compares, over the memory-intensive suite:
//!
//! * **PTR** — no temperature information at all;
//! * **LIBRA** — schedules frame *n* from frame *n − 1*'s heatmap (buildable);
//! * **oracle** — schedules frame *n* from its *own* heatmap (perfect prediction,
//!   not buildable: requires rendering the frame twice).
//!
//! The LIBRA-to-oracle gap is the price of predicting across frames; Fig 8's high
//! coherence says it should be small.

use libra_bench::{banner, geomean, Env, MainConfigs};
use tbr_sim::gpu::simulate_sequence_oracle;
use tbr_sim::SchedulerKind;
use tbr_workloads::suite::memory_intensive_suite;

fn main() {
    banner(
        "Ablation: prediction quality",
        "PTR vs LIBRA (previous-frame heatmap) vs oracle (same-frame heatmap)",
        "frame coherence (Fig 8) implies LIBRA ≈ oracle",
    );
    let env = Env::from_env(6);
    let cfgs = MainConfigs::new(&env);

    println!("{:<6} {:>11} {:>11} {:>11} {:>9} {:>9}", "bench", "ptr cyc/f", "libra cyc/f", "oracle cyc/f", "libra", "oracle");
    let mut csv = Vec::new();
    let mut libra_s = Vec::new();
    let mut oracle_s = Vec::new();
    for p in env.select(memory_intensive_suite()) {
        let ptr = env.run(&cfgs.dual_ru, SchedulerKind::InterleavedZOrder, &p);
        let libra = env.run(&cfgs.dual_ru, SchedulerKind::Libra, &p);
        let oracle = simulate_sequence_oracle(&cfgs.dual_ru, &p, env.frames, 2);
        let sl = libra.speedup_over(&ptr);
        let so = oracle.speedup_over(&ptr);
        libra_s.push(sl);
        oracle_s.push(so);
        println!(
            "{:<6} {:>11.0} {:>11.0} {:>11.0} {:>8.1}% {:>8.1}%",
            p.abbrev,
            ptr.avg_frame_cycles(),
            libra.avg_frame_cycles(),
            oracle.avg_frame_cycles(),
            (sl - 1.0) * 100.0,
            (so - 1.0) * 100.0
        );
        csv.push(format!("{},{:.4},{:.4}", p.abbrev, sl, so));
    }
    println!(
        "\nAVG speedup over PTR: LIBRA {:+.1}%  oracle {:+.1}%  (gap = cost of prediction)",
        (geomean(&libra_s) - 1.0) * 100.0,
        (geomean(&oracle_s) - 1.0) * 100.0
    );
    env.write_csv("ablation_prediction", "bench,libra_vs_ptr,oracle_vs_ptr", &csv);
}
