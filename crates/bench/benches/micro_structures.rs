//! Micro-benchmarks of the core data structures — the ablation-level performance
//! checks for the design choices listed in DESIGN.md §5. Runs on the in-repo
//! harness (`libra_bench::harness`) so the workspace stays free of crates.io
//! dependencies.

use libra_bench::harness::{black_box, Harness};

use libra::scheduler::SchedulerKind;
use libra::supertile::{SupertileGrid, SupertileTally};
use libra::temperature::TemperatureTable;
use tbr_common::config::{CacheConfig, ScreenConfig};
use tbr_common::morton::{morton_encode, zorder_traversal};
use tbr_common::stats::TileHeatmap;
use tbr_mem::cache::Cache;
use tbr_raster::rasterizer::rasterize_in_rect;
use tbr_workloads::{suite, SceneGenerator};

fn bench_morton(h: &mut Harness) {
    h.bench("morton_encode", || {
        let mut acc = 0u64;
        for i in 0..1024u32 {
            acc ^= morton_encode(black_box(i), black_box(i * 7));
        }
        acc
    });
    h.bench("zorder_traversal_510_tiles", || zorder_traversal(black_box(30), black_box(17)));
}

fn bench_temperature(h: &mut Harness) {
    // The hardware-sized table: 510 supertiles (paper §III-E).
    let tallies: Vec<SupertileTally> = (0..510)
        .map(|i| SupertileTally {
            dram_accesses: (i * 37) % 4096,
            instructions: 1000 + (i * 97) % 65536,
        })
        .collect();
    h.bench("temperature_table_build_510", || TemperatureTable::from_tallies(black_box(&tallies)));
    let table = TemperatureTable::from_tallies(&tallies);
    h.bench("temperature_table_rank_510", || black_box(&table).rank());
}

fn bench_cache(h: &mut Harness) {
    h.bench("cache_access_stream_4k", || {
        let mut cache = Cache::new(CacheConfig::texture_l1());
        let mut hits = 0u64;
        for i in 0..4096u64 {
            hits += cache.access(black_box(i * 64 % (64 << 10))).is_hit() as u64;
        }
        hits
    });
}

fn bench_rasterizer(h: &mut Harness) {
    let screen = ScreenConfig::tiny();
    let p = suite().remove(0);
    let scene = SceneGenerator::new(&p, &screen).scene(0);
    let (tris, _) = tbr_geom::process_scene(&scene, &screen);
    h.bench("rasterize_scene_into_tile", || {
        let mut quads = 0usize;
        for t in &tris {
            quads += rasterize_in_rect(black_box(t), 0, 0, 32, 32).len();
        }
        quads
    });
}

fn bench_scheduler(h: &mut Harness) {
    let screen = ScreenConfig::quarter_fhd();
    let mut heatmap = TileHeatmap::new(screen.num_tiles());
    for (i, t) in heatmap.tiles.iter_mut().enumerate() {
        t.dram_accesses = (i as u64 * 31) % 2000;
        t.instructions = 1000 + (i as u64 * 7) % 9000;
    }
    let feedback = libra::feedback::FrameFeedback::new(heatmap, 500_000, 0.6);
    h.bench("libra_plan_frame_510_tiles", || {
        let mut sched = SchedulerKind::Libra.build();
        // Two plans: one cold (Z-order fallback), one informed.
        let _ = sched.plan_frame(black_box(&screen), None);
        sched.plan_frame(black_box(&screen), Some(black_box(&feedback)))
    });
    let grid = SupertileGrid::new(&screen, 2);
    h.bench("supertile_aggregate_2x2", || grid.aggregate(black_box(&feedback.heatmap)));
}

fn main() {
    let mut h = Harness::new("micro_structures");
    bench_morton(&mut h);
    bench_temperature(&mut h);
    bench_cache(&mut h);
    bench_rasterizer(&mut h);
    bench_scheduler(&mut h);
    h.finish();
}
