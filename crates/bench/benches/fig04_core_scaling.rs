//! Fig 4: speedup when doubling the number of cores in a single Raster Unit from 4
//! to 8.
//!
//! Paper: 16 of 32 benchmarks gain less than 1.5× (some below 1.10×) despite the
//! doubled compute — the motivation for parallel tile rendering.

use libra_bench::{banner, Env};
use tbr_common::config::GpuConfig;
use tbr_sim::SchedulerKind;
use tbr_workloads::suite;

fn main() {
    banner(
        "Fig 4",
        "speedup of 8 cores vs 4 cores in a single Raster Unit",
        "16/32 benchmarks below 1.5x; some (BlB, CCS) below 1.10x",
    );
    let env = Env::from_env(4);
    let cfg4 = GpuConfig::single_ru(env.screen, 4);
    let cfg8 = GpuConfig::single_ru(env.screen, 8);

    let mut results: Vec<(&str, f64)> = Vec::new();
    let mut csv = Vec::new();
    for p in env.select(suite()) {
        let s4 = env.run(&cfg4, SchedulerKind::SingleZOrder, &p);
        let s8 = env.run(&cfg8, SchedulerKind::SingleZOrder, &p);
        let sp = s8.speedup_over(&s4);
        results.push((p.abbrev, sp));
        csv.push(format!("{},{:.4}", p.abbrev, sp));
    }
    results.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("{:<6} {:>9}", "bench", "speedup");
    for (ab, sp) in &results {
        println!("{ab:<6} {sp:>8.3}x{}", if *sp < 1.5 { "   (< 1.5x)" } else { "" });
    }
    let below = results.iter().filter(|(_, s)| *s < 1.5).count();
    println!(
        "\n{} of {} benchmarks below 1.5x   (paper: 16 of 32)",
        below,
        results.len()
    );
    env.write_csv("fig04_core_scaling", "bench,speedup_8c_over_4c", &csv);
}
