//! Fig 7: number of main-memory requests during the execution of a frame of Candy
//! Crush (CCS) in intervals of 5 000 cycles.
//!
//! Paper: certain intervals are much more memory-intensive than others — the bursty
//! profile LIBRA's scheduler smooths. We print the histogram for the baseline, PTR
//! and LIBRA so the smoothing (lower coefficient of variation) is visible.

use libra_bench::{banner, Env, MainConfigs};
use tbr_common::stats::DramStats;
use tbr_sim::SchedulerKind;
use tbr_workloads::suite;

fn show(label: &str, d: &DramStats) -> String {
    let max = d.intervals.iter().copied().max().unwrap_or(1).max(1);
    let mut bar = String::new();
    for chunk in d.intervals.chunks(2) {
        let v: u64 = chunk.iter().sum::<u64>() / chunk.len() as u64;
        let shades = [' ', '.', ':', '-', '=', '+', '*', '#'];
        let idx = ((v as f64 / max as f64) * (shades.len() - 1) as f64).round() as usize;
        bar.push(shades[idx.min(shades.len() - 1)]);
    }
    println!(
        "{label:<10} peak={:>5} cv={:>5.2} |{bar}|",
        d.peak_interval(),
        d.interval_cv()
    );
    d.intervals.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
}

fn main() {
    banner(
        "Fig 7",
        "DRAM requests per 5000-cycle interval, one CCS frame",
        "bursty intervals under Z-order; LIBRA smooths the profile",
    );
    let env = Env::from_env(4);
    let cfgs = MainConfigs::new(&env);
    let p = suite().into_iter().find(|p| p.abbrev == "CCS").expect("CCS in suite");

    let base = env.run(&cfgs.baseline, SchedulerKind::SingleZOrder, &p);
    let ptr = env.run(&cfgs.dual_ru, SchedulerKind::InterleavedZOrder, &p);
    let libra = env.run(&cfgs.dual_ru, SchedulerKind::Libra, &p);

    let rows = vec![
        format!("baseline,{}", show("baseline", &base.frames.last().unwrap().dram)),
        format!("ptr,{}", show("PTR", &ptr.frames.last().unwrap().dram)),
        format!("libra,{}", show("LIBRA", &libra.frames.last().unwrap().dram)),
    ];
    println!("\n(one char ≈ 10k cycles; darker = more DRAM requests in the interval)");
    env.write_csv("fig07_dram_intervals", "config,requests_per_5k_cycle_interval...", &rows);
}
