//! Ablation (§II background): TBR vs Immediate-Mode Rendering on the same GPU.
//!
//! Antochi et al. (cited in §II): "TBR considerably reduces the total amount of
//! external data traffic compared to traditional architectures that are not
//! tile-based". This bench quantifies that on our simulator: same cores, caches and
//! DRAM; the only difference is where the Z/colour buffers live (on-chip tile SRAM
//! vs DRAM-backed surfaces).

use libra_bench::{banner, geomean, mean, Env, MainConfigs};
use tbr_sim::{simulate_sequence_imr, SchedulerKind};
use tbr_workloads::suite;

fn main() {
    banner(
        "Ablation: TBR vs IMR",
        "external (DRAM) traffic and performance of tile-based vs immediate-mode",
        "TBR considerably reduces external data traffic (Antochi et al., §II)",
    );
    let env = Env::from_env(3);
    let cfgs = MainConfigs::new(&env);

    println!(
        "{:<6} {:>12} {:>12} {:>9} {:>10}",
        "bench", "tbr dram/f", "imr dram/f", "traffic×", "tbr speedup"
    );
    let mut csv = Vec::new();
    let mut ratios = Vec::new();
    let mut speedups = Vec::new();
    // A representative slice keeps this ablation quick; set LIBRA_BENCHMARKS to
    // widen it.
    let default_slice = ["CCS", "SuS", "HCR", "GDL", "AnB", "RoK"];
    let profiles: Vec<_> = env
        .select(suite())
        .into_iter()
        .filter(|p| env.filter.is_some() || default_slice.contains(&p.abbrev))
        .collect();
    for p in &profiles {
        let tbr = env.run(&cfgs.baseline, SchedulerKind::SingleZOrder, p);
        let imr = simulate_sequence_imr(&cfgs.baseline, p, env.frames);
        let dt = tbr.total_dram_accesses() as f64 / env.frames as f64;
        let di = imr.total_dram_accesses() as f64 / env.frames as f64;
        let ratio = di / dt;
        let sp = tbr.speedup_over(&imr);
        ratios.push(ratio);
        speedups.push(sp);
        println!("{:<6} {:>12.0} {:>12.0} {:>8.2}x {:>9.2}x", p.abbrev, dt, di, ratio, sp);
        csv.push(format!("{},{:.0},{:.0},{:.3},{:.3}", p.abbrev, dt, di, ratio, sp));
    }
    println!(
        "\nAVG: IMR generates {:.2}x the DRAM traffic of TBR; TBR is {:.2}x faster",
        mean(&ratios),
        geomean(&speedups)
    );
    env.write_csv("ablation_imr", "bench,tbr_dram,imr_dram,traffic_ratio,tbr_speedup", &csv);
}
