//! Tile dispatchers: from the baseline Z-order Tile Fetcher to the full LIBRA
//! scheduler.
//!
//! A scheduler produces a [`FramePlan`] at the start of each frame: an ordered queue
//! of *dispatch groups* (single tiles, or whole supertiles) plus the dispatch
//! discipline. Raster Units pull the next group when they go idle, which is exactly
//! how the paper's Tile Fetcher feeds the RU FIFOs:
//!
//! * the **baseline / PTR interleaved** plan is one shared Z-ordered queue — "the
//!   Tile Fetcher fetches tiles in the predefined order which are dispatched to a
//!   Raster Unit in an alternating manner" (§III-A, self-balancing because an idle RU
//!   takes the next tile);
//! * the **LIBRA temperature plan** is the hottest→coldest ranking, with one RU
//!   pulling from the hot end and all the others from the cold end (§III-D, §V-D:
//!   "only one Raster Unit handles the hottest tiles at any given time").

use std::collections::VecDeque;

use crate::adaptive::{AdaptiveController, AdaptiveParams, TileOrderKind};
use crate::feedback::FrameFeedback;
use crate::hw_cost;
use crate::supertile::SupertileGrid;
use crate::temperature::TemperatureTable;
use tbr_common::config::ScreenConfig;
use tbr_common::ids::{RasterUnitId, TileId};
use tbr_common::metrics::MetricsRegistry;
use tbr_common::morton::{scanline_traversal, zorder_traversal};
use tbr_common::Cycle;

/// The per-frame dispatch plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FramePlan {
    /// Which traversal produced this plan.
    pub order: TileOrderKind,
    /// Supertile edge used (1 = individual tiles).
    pub supertile_size: u32,
    /// When `true`, RU 0 pulls groups from the hot (front) end and every other RU
    /// pulls from the cold (back) end.
    pub hot_cold: bool,
    /// Cycles the ranking operation cost in hardware (hidden under the Geometry
    /// phase; reported for the overhead analysis).
    pub ranking_cycles: Cycle,
    groups: VecDeque<Vec<TileId>>,
}

impl FramePlan {
    /// Total tiles remaining in the plan.
    pub fn remaining_tiles(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Whether all groups have been dispatched.
    pub fn is_exhausted(&self) -> bool {
        self.groups.is_empty()
    }

    /// Hands the next dispatch group to a Raster Unit (hot end for RU 0, cold end
    /// for the rest when `hot_cold` is set).
    pub fn next_group(&mut self, ru: RasterUnitId) -> Option<Vec<TileId>> {
        if self.hot_cold && ru.0 != 0 {
            self.groups.pop_back()
        } else {
            self.groups.pop_front()
        }
    }

    /// Drops every tile for which `keep` returns `false` from the plan and
    /// returns how many were removed. Groups that become empty are removed so
    /// `next_group` never hands an RU an empty dispatch; relative tile order
    /// within and across the surviving groups is untouched.
    ///
    /// This is the Rendering Elimination early-discard hook: eliminated tiles
    /// leave the plan *before* the raster phase starts, so every event-loop
    /// driver sees the identical filtered plan.
    pub fn retain_tiles(&mut self, mut keep: impl FnMut(TileId) -> bool) -> usize {
        let before = self.remaining_tiles();
        for group in self.groups.iter_mut() {
            group.retain(|&t| keep(t));
        }
        self.groups.retain(|g| !g.is_empty());
        before - self.remaining_tiles()
    }

    /// Publishes the plan's shape into `reg` under the given labels: the chosen
    /// order, supertile edge, group count and ranking-hardware cost.
    pub fn publish_metrics(&self, reg: &mut MetricsRegistry, labels: &[(&str, &str)]) {
        reg.set_gauge("plan_supertile_size", labels, self.supertile_size as f64);
        reg.set_gauge(
            "plan_order_temperature",
            labels,
            if self.order == TileOrderKind::Temperature { 1.0 } else { 0.0 },
        );
        reg.set_gauge("plan_hot_cold", labels, if self.hot_cold { 1.0 } else { 0.0 });
        reg.add_counter("plan_groups", labels, self.groups.len() as u64);
        reg.add_counter("plan_ranking_cycles", labels, self.ranking_cycles);
    }
}

/// A tile scheduler: one [`FramePlan`] per frame, optionally informed by the previous
/// frame's profile.
pub trait TileScheduler {
    /// Produces the dispatch plan for the upcoming frame. `feedback` is `None` for
    /// the first frame of a sequence.
    fn plan_frame(&mut self, screen: &ScreenConfig, feedback: Option<&FrameFeedback>)
        -> FramePlan;

    /// Human-readable scheduler name (for reports).
    fn name(&self) -> &'static str;
}

/// Factory enumeration of every scheduler evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// The baseline GPU's tile fetcher (also the PTR interleaved dispatcher when the
    /// GPU has more than one RU).
    SingleZOrder,
    /// Explicit alias for the PTR configuration (identical plan; reads better in the
    /// experiment code).
    InterleavedZOrder,
    /// Scanline traversal (ablation).
    Scanline,
    /// Hilbert-curve traversal (ablation; the DTexL-style locality order).
    Hilbert,
    /// PTR with a fixed supertile size and Z-ordered supertiles (Fig 16's statics).
    StaticSupertile(u32),
    /// The full LIBRA scheduler with the paper's thresholds.
    Libra,
    /// LIBRA with custom thresholds (Fig 19 sweeps).
    LibraWithParams(AdaptiveParams),
}

impl SchedulerKind {
    /// Instantiates the scheduler.
    pub fn build(&self) -> Box<dyn TileScheduler> {
        match *self {
            SchedulerKind::SingleZOrder | SchedulerKind::InterleavedZOrder => {
                Box::new(ZOrderScheduler)
            }
            SchedulerKind::Scanline => Box::new(ScanlineScheduler),
            SchedulerKind::Hilbert => Box::new(HilbertScheduler),
            SchedulerKind::StaticSupertile(size) => Box::new(StaticSupertileScheduler { size }),
            SchedulerKind::Libra => {
                Box::new(LibraScheduler::new(AdaptiveParams::default()))
            }
            SchedulerKind::LibraWithParams(p) => Box::new(LibraScheduler::new(p)),
        }
    }
}

fn single_tile_groups(tiles: impl IntoIterator<Item = TileId>) -> VecDeque<Vec<TileId>> {
    tiles.into_iter().map(|t| vec![t]).collect()
}

fn zorder_tiles(screen: &ScreenConfig) -> Vec<TileId> {
    zorder_traversal(screen.tiles_x(), screen.tiles_y())
        .into_iter()
        .map(|c| screen.tile_id(c))
        .collect()
}

/// Builds the hottest→coldest temperature plan from a per-tile heatmap at the given
/// supertile granularity. Used by [`LibraScheduler`] with the *previous* frame's
/// heatmap, and by the oracle ablation (`tbr-sim`) with the *current* frame's.
pub fn temperature_plan(
    screen: &ScreenConfig,
    heatmap: &tbr_common::stats::TileHeatmap,
    supertile_size: u32,
) -> FramePlan {
    let grid = SupertileGrid::new(screen, supertile_size);
    let tallies = grid.aggregate(heatmap);
    let table = TemperatureTable::from_tallies(&tallies);
    let groups: VecDeque<Vec<TileId>> =
        table.rank().into_iter().map(|st| grid.tiles_of(st)).collect();
    FramePlan {
        order: TileOrderKind::Temperature,
        supertile_size,
        hot_cold: true,
        ranking_cycles: hw_cost::ranking_cycles(table.len()),
        groups,
    }
}

fn zorder_plan(screen: &ScreenConfig) -> FramePlan {
    FramePlan {
        order: TileOrderKind::ZOrder,
        supertile_size: 1,
        hot_cold: false,
        ranking_cycles: 0,
        groups: single_tile_groups(zorder_tiles(screen)),
    }
}

/// Baseline/PTR: shared Z-ordered queue of individual tiles.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZOrderScheduler;

impl TileScheduler for ZOrderScheduler {
    fn plan_frame(&mut self, screen: &ScreenConfig, _: Option<&FrameFeedback>) -> FramePlan {
        zorder_plan(screen)
    }

    fn name(&self) -> &'static str {
        "z-order"
    }
}

/// Scanline traversal (row-major), for ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanlineScheduler;

impl TileScheduler for ScanlineScheduler {
    fn plan_frame(&mut self, screen: &ScreenConfig, _: Option<&FrameFeedback>) -> FramePlan {
        let tiles = scanline_traversal(screen.tiles_x(), screen.tiles_y())
            .into_iter()
            .map(|c| screen.tile_id(c));
        FramePlan {
            order: TileOrderKind::ZOrder,
            supertile_size: 1,
            hot_cold: false,
            ranking_cycles: 0,
            groups: single_tile_groups(tiles),
        }
    }

    fn name(&self) -> &'static str {
        "scanline"
    }
}

/// Hilbert-curve traversal (ablation): consecutive tiles are always 4-neighbours,
/// maximising traversal locality without any temperature information.
#[derive(Debug, Clone, Copy, Default)]
pub struct HilbertScheduler;

impl TileScheduler for HilbertScheduler {
    fn plan_frame(&mut self, screen: &ScreenConfig, _: Option<&FrameFeedback>) -> FramePlan {
        let tiles = tbr_common::hilbert::hilbert_traversal(screen.tiles_x(), screen.tiles_y())
            .into_iter()
            .map(|c| screen.tile_id(c));
        FramePlan {
            order: TileOrderKind::ZOrder,
            supertile_size: 1,
            hot_cold: false,
            ranking_cycles: 0,
            groups: single_tile_groups(tiles),
        }
    }

    fn name(&self) -> &'static str {
        "hilbert"
    }
}

/// PTR with fixed-size supertiles traversed in Z-order (Fig 16's static
/// configurations): keeps locality inside each RU without any temperature data.
#[derive(Debug, Clone, Copy)]
pub struct StaticSupertileScheduler {
    /// Supertile edge in tiles.
    pub size: u32,
}

impl TileScheduler for StaticSupertileScheduler {
    fn plan_frame(&mut self, screen: &ScreenConfig, _: Option<&FrameFeedback>) -> FramePlan {
        let grid = SupertileGrid::new(screen, self.size);
        let groups: VecDeque<Vec<TileId>> =
            grid.zorder_supertiles().into_iter().map(|st| grid.tiles_of(st)).collect();
        FramePlan {
            order: TileOrderKind::ZOrder,
            supertile_size: self.size,
            hot_cold: false,
            ranking_cycles: 0,
            groups,
        }
    }

    fn name(&self) -> &'static str {
        "static-supertile"
    }
}

/// The full LIBRA scheduler: adaptive order + adaptive supertile size + hot/cold
/// dispatch from the temperature ranking.
#[derive(Debug, Clone)]
pub struct LibraScheduler {
    controller: AdaptiveController,
}

impl LibraScheduler {
    /// Builds the scheduler with the given adaptive thresholds.
    pub fn new(params: AdaptiveParams) -> Self {
        Self { controller: AdaptiveController::new(params) }
    }

    /// Read access to the adaptive state (tests/experiments).
    pub fn controller(&self) -> &AdaptiveController {
        &self.controller
    }
}

impl TileScheduler for LibraScheduler {
    fn plan_frame(
        &mut self,
        screen: &ScreenConfig,
        feedback: Option<&FrameFeedback>,
    ) -> FramePlan {
        let Some(fb) = feedback else {
            // No profile yet: behave like the PTR baseline.
            return zorder_plan(screen);
        };
        let decision = self.controller.decide(fb);
        match decision.order {
            TileOrderKind::ZOrder => zorder_plan(screen),
            TileOrderKind::Temperature => {
                temperature_plan(screen, &fb.heatmap, decision.supertile_size)
            }
        }
    }

    fn name(&self) -> &'static str {
        "libra"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tbr_common::stats::TileHeatmap;

    fn screen() -> ScreenConfig {
        ScreenConfig::quarter_fhd()
    }

    fn drain_all(plan: &mut FramePlan, rus: u8) -> Vec<TileId> {
        let mut out = Vec::new();
        let mut ru = 0u8;
        while let Some(g) = plan.next_group(RasterUnitId(ru)) {
            out.extend(g);
            ru = (ru + 1) % rus;
        }
        out
    }

    fn assert_full_coverage(tiles: &[TileId], screen: &ScreenConfig) {
        let set: HashSet<_> = tiles.iter().copied().collect();
        assert_eq!(tiles.len(), screen.num_tiles(), "every tile exactly once");
        assert_eq!(set.len(), screen.num_tiles());
    }

    #[test]
    fn every_scheduler_covers_all_tiles_exactly_once() {
        let s = screen();
        for kind in [
            SchedulerKind::SingleZOrder,
            SchedulerKind::InterleavedZOrder,
            SchedulerKind::Scanline,
            SchedulerKind::Hilbert,
            SchedulerKind::StaticSupertile(2),
            SchedulerKind::StaticSupertile(16),
            SchedulerKind::Libra,
        ] {
            let mut sched = kind.build();
            let mut plan = sched.plan_frame(&s, None);
            let tiles = drain_all(&mut plan, 2);
            assert_full_coverage(&tiles, &s);
        }
    }

    #[test]
    fn libra_with_feedback_still_covers_all_tiles() {
        let s = screen();
        let mut sched = SchedulerKind::Libra.build();
        let mut hm = TileHeatmap::new(s.num_tiles());
        for (i, t) in hm.tiles.iter_mut().enumerate() {
            t.dram_accesses = (i % 37) as u64;
            t.instructions = 100 + (i % 11) as u64;
        }
        let fb = FrameFeedback::new(hm, 100_000, 0.5);
        let mut plan = sched.plan_frame(&s, Some(&fb));
        assert_eq!(plan.order, TileOrderKind::Temperature);
        assert!(plan.hot_cold);
        assert!(plan.ranking_cycles > 0);
        let tiles = drain_all(&mut plan, 2);
        assert_full_coverage(&tiles, &s);
    }

    #[test]
    fn libra_first_frame_falls_back_to_zorder() {
        let s = screen();
        let mut sched = SchedulerKind::Libra.build();
        let plan = sched.plan_frame(&s, None);
        assert_eq!(plan.order, TileOrderKind::ZOrder);
        assert!(!plan.hot_cold);
    }

    #[test]
    fn hot_cold_dispatch_serves_opposite_ends() {
        let s = screen();
        let mut sched = SchedulerKind::Libra.build();
        // Make tile 0's supertile blazing hot, everything else cold.
        let mut hm = TileHeatmap::new(s.num_tiles());
        hm.tiles[0].dram_accesses = 10_000;
        hm.tiles[0].instructions = 100;
        for t in hm.tiles.iter_mut().skip(1) {
            t.instructions = 10_000;
            t.dram_accesses = 1;
        }
        let fb = FrameFeedback::new(hm, 100_000, 0.5);
        let mut plan = sched.plan_frame(&s, Some(&fb));
        // RU0 gets the hot end: its first group must contain tile 0.
        let hot_group = plan.next_group(RasterUnitId(0)).unwrap();
        assert!(hot_group.contains(&TileId(0)), "hot RU must get the hottest supertile");
        // RU1 pulls from the cold end: its group must not contain tile 0.
        let cold_group = plan.next_group(RasterUnitId(1)).unwrap();
        assert!(!cold_group.contains(&TileId(0)));
    }

    #[test]
    fn static_supertile_groups_have_the_requested_size() {
        let s = screen();
        let mut sched = SchedulerKind::StaticSupertile(4).build();
        let mut plan = sched.plan_frame(&s, None);
        let first = plan.next_group(RasterUnitId(0)).unwrap();
        assert_eq!(first.len(), 16, "interior 4x4 supertile has 16 tiles");
        // Tiles of a group are spatially contiguous (within a 4x4 block).
        let coords: Vec<_> = first.iter().map(|&t| s.tile_coord(t)).collect();
        let max_dist = coords
            .iter()
            .flat_map(|a| coords.iter().map(move |b| a.chebyshev_distance(*b)))
            .max()
            .unwrap();
        assert!(max_dist < 4);
    }

    #[test]
    fn remaining_tiles_decreases_as_groups_dispatch() {
        let s = screen();
        let mut plan = ZOrderScheduler.plan_frame(&s, None);
        let n0 = plan.remaining_tiles();
        plan.next_group(RasterUnitId(0));
        assert_eq!(plan.remaining_tiles(), n0 - 1);
        assert!(!plan.is_exhausted());
    }

    #[test]
    fn plan_publishes_its_shape() {
        let s = screen();
        let plan = ZOrderScheduler.plan_frame(&s, None);
        let mut reg = MetricsRegistry::new();
        plan.publish_metrics(&mut reg, &[("frame", "0")]);
        assert_eq!(
            reg.counter_value("plan_groups", &[("frame", "0")]),
            Some(s.num_tiles() as u64)
        );
        assert_eq!(reg.gauge_value("plan_order_temperature", &[("frame", "0")]), Some(0.0));
    }

    #[test]
    fn adaptive_decisions_show_up_on_the_scheduler_track() {
        use tbr_common::trace::{self, Track};
        let s = screen();
        let mut sched = SchedulerKind::Libra.build();
        let mut hm = TileHeatmap::new(s.num_tiles());
        for (i, t) in hm.tiles.iter_mut().enumerate() {
            t.dram_accesses = (i % 37) as u64;
        }
        trace::start();
        // Low hit ratio -> first decision switches to Temperature: one feedback
        // instant plus one order-switch instant.
        let _ = sched.plan_frame(&s, Some(&FrameFeedback::new(hm, 100_000, 0.5)));
        let t = trace::finish().unwrap();
        let on_sched: Vec<_> = t.on_track(Track::Scheduler).collect();
        assert!(on_sched.iter().any(|e| e.name == "libra feedback"));
        assert!(on_sched.iter().any(|e| e.name == "order switch"));
    }

    #[test]
    fn scheduler_names_are_distinct() {
        let names: HashSet<&str> = [
            SchedulerKind::SingleZOrder.build().name(),
            SchedulerKind::Scanline.build().name(),
            SchedulerKind::StaticSupertile(2).build().name(),
            SchedulerKind::Libra.build().name(),
        ]
        .into_iter()
        .collect();
        assert_eq!(names.len(), 4);
    }
}
