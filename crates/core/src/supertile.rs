//! Supertiles: S×S groups of adjacent tiles (§III-C).
//!
//! "We propose to assemble tiles in squared groups of tiles, which we refer to as
//! *supertiles*. […] The Tile Fetcher assigns a particular supertile to a Raster
//! Unit, so its corresponding tiles will be scheduled to that Raster Unit one after
//! another." Tiles inside a supertile are always traversed in Z-order (§III-D).

use tbr_common::config::ScreenConfig;
use tbr_common::ids::{SupertileId, TileCoord, TileId};
use tbr_common::morton::zorder_traversal;
use tbr_common::stats::TileHeatmap;

/// Aggregated per-supertile counters (the values the temperature table stores).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupertileTally {
    /// DRAM accesses of all member tiles.
    pub dram_accesses: u64,
    /// Instructions of all member tiles.
    pub instructions: u64,
}

/// The supertile decomposition of a screen for a given supertile edge (in tiles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupertileGrid {
    tiles_x: u32,
    tiles_y: u32,
    /// Supertile edge in tiles (1, 2, 4, 8 or 16).
    pub size: u32,
    sts_x: u32,
    sts_y: u32,
}

impl SupertileGrid {
    /// Builds the decomposition. `size = 1` degenerates to single tiles (used by the
    /// plain Z-order schedulers).
    ///
    /// # Panics
    /// Panics if `size` is zero or not a power of two.
    pub fn new(screen: &ScreenConfig, size: u32) -> Self {
        assert!(size > 0 && size.is_power_of_two(), "supertile size must be a power of two");
        let tiles_x = screen.tiles_x();
        let tiles_y = screen.tiles_y();
        Self {
            tiles_x,
            tiles_y,
            size,
            sts_x: tiles_x.div_ceil(size),
            sts_y: tiles_y.div_ceil(size),
        }
    }

    /// Number of supertiles covering the screen.
    pub fn num_supertiles(&self) -> usize {
        (self.sts_x * self.sts_y) as usize
    }

    /// Supertile containing a tile.
    pub fn supertile_of(&self, tile: TileCoord) -> SupertileId {
        let sx = tile.x / self.size;
        let sy = tile.y / self.size;
        SupertileId(sy * self.sts_x + sx)
    }

    /// Member tiles of a supertile, in Z-order (§III-D: "tiles within a supertile are
    /// always traversed in Z-order"). Edge supertiles may be partial.
    pub fn tiles_of(&self, st: SupertileId) -> Vec<TileId> {
        let sx = st.0 % self.sts_x;
        let sy = st.0 / self.sts_x;
        let x0 = sx * self.size;
        let y0 = sy * self.size;
        zorder_traversal(self.size, self.size)
            .into_iter()
            .filter_map(|c| {
                let tx = x0 + c.x;
                let ty = y0 + c.y;
                (tx < self.tiles_x && ty < self.tiles_y).then(|| TileId(ty * self.tiles_x + tx))
            })
            .collect()
    }

    /// All supertiles in Z-order of their own grid (the traversal the static
    /// supertile scheduler uses).
    pub fn zorder_supertiles(&self) -> Vec<SupertileId> {
        zorder_traversal(self.sts_x, self.sts_y)
            .into_iter()
            .map(|c| SupertileId(c.y * self.sts_x + c.x))
            .collect()
    }

    /// Aggregates a per-tile heatmap at supertile granularity (§III-D: "the per-tile
    /// memory accesses and instruction count metrics of the previous frame are first
    /// aggregated at the chosen supertile granularity").
    pub fn aggregate(&self, heatmap: &TileHeatmap) -> Vec<SupertileTally> {
        let mut out = vec![SupertileTally::default(); self.num_supertiles()];
        for (idx, tally) in heatmap.tiles.iter().enumerate() {
            let coord = TileCoord::new(idx as u32 % self.tiles_x, idx as u32 / self.tiles_x);
            let st = self.supertile_of(coord);
            out[st.index()].dram_accesses += tally.dram_accesses;
            out[st.index()].instructions += tally.instructions;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn screen() -> ScreenConfig {
        ScreenConfig::quarter_fhd() // 30x17 tiles
    }

    #[test]
    fn quarter_fhd_2x2_supertile_count_matches_paper() {
        // Paper §III-E: 510 2x2 supertiles cover FHD; at quarter-FHD the same grid has
        // 15x9 = 135 supertiles of 2x2 (with partial edges).
        let g = SupertileGrid::new(&screen(), 2);
        assert_eq!(g.num_supertiles(), 15 * 9);
        // At FHD the paper's number appears exactly:
        let fhd = SupertileGrid::new(&ScreenConfig::fhd(), 2);
        assert_eq!(fhd.num_supertiles(), 510);
    }

    #[test]
    fn every_tile_belongs_to_exactly_one_supertile() {
        for size in [1u32, 2, 4, 8, 16] {
            let g = SupertileGrid::new(&screen(), size);
            let mut seen: HashSet<TileId> = HashSet::new();
            for st in 0..g.num_supertiles() as u32 {
                for t in g.tiles_of(SupertileId(st)) {
                    assert!(seen.insert(t), "tile {t} in two supertiles (size {size})");
                }
            }
            assert_eq!(seen.len(), screen().num_tiles(), "size {size} lost tiles");
        }
    }

    #[test]
    fn supertile_of_is_consistent_with_tiles_of() {
        let g = SupertileGrid::new(&screen(), 4);
        for st in 0..g.num_supertiles() as u32 {
            for t in g.tiles_of(SupertileId(st)) {
                let c = screen().tile_coord(t);
                assert_eq!(g.supertile_of(c), SupertileId(st));
            }
        }
    }

    #[test]
    fn tiles_within_supertile_are_z_ordered() {
        let g = SupertileGrid::new(&screen(), 2);
        let tiles = g.tiles_of(SupertileId(0));
        let coords: Vec<(u32, u32)> =
            tiles.iter().map(|&t| { let c = screen().tile_coord(t); (c.x, c.y) }).collect();
        assert_eq!(coords, [(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn partial_edge_supertiles_are_smaller() {
        // 30x17 tiles with 4x4 supertiles: last column covers 2 tiles horizontally,
        // last row 1 tile vertically.
        let g = SupertileGrid::new(&screen(), 4);
        let last = SupertileId(g.num_supertiles() as u32 - 1);
        let tiles = g.tiles_of(last);
        assert_eq!(tiles.len(), 2);
    }

    #[test]
    fn aggregate_sums_member_tiles() {
        let s = screen();
        let g = SupertileGrid::new(&s, 2);
        let mut hm = TileHeatmap::new(s.num_tiles());
        // Put 10 accesses & 100 instructions in each tile of supertile 0.
        for t in g.tiles_of(SupertileId(0)) {
            hm.tiles[t.index()].dram_accesses = 10;
            hm.tiles[t.index()].instructions = 100;
        }
        let agg = g.aggregate(&hm);
        assert_eq!(agg[0], SupertileTally { dram_accesses: 40, instructions: 400 });
        assert_eq!(agg[1], SupertileTally::default());
    }

    #[test]
    fn zorder_supertiles_is_a_permutation() {
        let g = SupertileGrid::new(&screen(), 8);
        let order = g.zorder_supertiles();
        let set: HashSet<_> = order.iter().collect();
        assert_eq!(order.len(), g.num_supertiles());
        assert_eq!(set.len(), g.num_supertiles());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_size_rejected() {
        let _ = SupertileGrid::new(&screen(), 3);
    }
}
