//! Rendering Elimination's frame-coherence cache (arXiv 1807.09449).
//!
//! The hardware keeps one 64-bit signature per tile from the previous frame.
//! When the Tiling Engine finishes binning frame *n*, every tile's fresh
//! signature is compared against the stored one: a match means the tile's
//! whole raster-pipeline input is (with hash-collision probability 2⁻⁶⁴)
//! identical to frame *n − 1*, so its raster/shade/flush work is discarded and
//! the framebuffer contents from the previous frame are kept.
//!
//! This module is deliberately independent of the tiling crate: it consumes
//! plain signature arrays (produced by `tbr_tiling::signature`) so the cache
//! logic stays a pure, simulator-free hardware model like the rest of this
//! crate. The decision it emits is applied to the frame's
//! [`FramePlan`](crate::scheduler::FramePlan) via
//! [`FramePlan::retain_tiles`](crate::scheduler::FramePlan::retain_tiles).
//!
//! In oracle mode the raw hashed word streams ride along so a signature match
//! can be verified against true input equality; a match with unequal inputs is
//! a hash collision that would have produced a visibly wrong frame — counted
//! as a *false negative* (the `--re-oracle` differential mode renders
//! everything anyway, so the run's outputs stay correct while the counter
//! measures the real collision rate).

/// Per-frame outcome of the signature comparison.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReFrameDecision {
    /// Per tile (by `TileId::index()`): did the signature match the previous
    /// frame? Matching tiles are the discard set. All-false on the first
    /// frame (nothing to compare against).
    pub matched: Vec<bool>,
    /// Tiles compared against a stored signature (0 on the first frame).
    pub checked: u64,
    /// Tiles whose signature matched — what RE discards.
    pub discarded: u64,
    /// Oracle only: signature matches whose raw input words actually differed
    /// (hash collisions). Always 0 outside oracle mode.
    pub false_negatives: u64,
}

/// The per-tile signature cache carried frame to frame.
#[derive(Debug, Clone, Default)]
pub struct ReCache {
    prev_sigs: Vec<u64>,
    prev_words: Option<Vec<Vec<u64>>>,
}

impl ReCache {
    /// An empty cache: the first observed frame can discard nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compares a frame's signatures against the stored previous frame and
    /// replaces the store. `words` must be `Some` in oracle mode (and is then
    /// used to detect collisions) and `None` otherwise.
    ///
    /// # Panics
    /// Panics if the tile count changes between frames (the screen geometry
    /// is fixed for a sequence).
    pub fn observe(&mut self, sigs: Vec<u64>, words: Option<Vec<Vec<u64>>>) -> ReFrameDecision {
        let mut d = ReFrameDecision {
            matched: vec![false; sigs.len()],
            ..ReFrameDecision::default()
        };
        if !self.prev_sigs.is_empty() {
            assert_eq!(
                self.prev_sigs.len(),
                sigs.len(),
                "tile count changed mid-sequence"
            );
            d.checked = sigs.len() as u64;
            for (t, (&new, &old)) in sigs.iter().zip(&self.prev_sigs).enumerate() {
                if new == old {
                    d.matched[t] = true;
                    d.discarded += 1;
                    if let (Some(new_w), Some(old_w)) = (&words, &self.prev_words) {
                        if new_w[t] != old_w[t] {
                            d.false_negatives += 1;
                        }
                    }
                }
            }
        }
        self.prev_sigs = sigs;
        self.prev_words = words;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_frame_discards_nothing() {
        let mut c = ReCache::new();
        let d = c.observe(vec![1, 2, 3], None);
        assert_eq!((d.checked, d.discarded), (0, 0));
        assert!(d.matched.iter().all(|&m| !m));
    }

    #[test]
    fn repeated_frame_discards_every_tile_and_changes_are_kept() {
        let mut c = ReCache::new();
        c.observe(vec![1, 2, 3], None);
        let d = c.observe(vec![1, 2, 3], None);
        assert_eq!((d.checked, d.discarded), (3, 3));
        let d = c.observe(vec![1, 9, 3], None);
        assert_eq!(d.discarded, 2);
        assert_eq!(d.matched, vec![true, false, true]);
        assert_eq!(d.false_negatives, 0);
    }

    #[test]
    fn oracle_counts_collisions_as_false_negatives() {
        let mut c = ReCache::new();
        c.observe(vec![7, 8], Some(vec![vec![10], vec![20]]));
        // Tile 0: same signature, different words — a manufactured collision.
        let d = c.observe(vec![7, 8], Some(vec![vec![11], vec![20]]));
        assert_eq!(d.discarded, 2);
        assert_eq!(d.false_negatives, 1);
    }

    #[test]
    #[should_panic(expected = "tile count changed")]
    fn tile_count_must_stay_fixed() {
        let mut c = ReCache::new();
        c.observe(vec![1], None);
        c.observe(vec![1, 2], None);
    }
}
