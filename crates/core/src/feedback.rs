//! Per-frame profiling data LIBRA's hardware gathers (§III-B, §III-D).
//!
//! "It counts the number of DRAM accesses and instructions in each tile of a frame
//! and use this information to predict the hot and cold tiles in the next frame."
//! The controller additionally keeps the raster-pipeline cycle count and the texture
//! caches' hit ratio of the previous frames (four counters, §III-E).

use tbr_common::stats::TileHeatmap;
use tbr_common::Cycle;

/// What one rendered frame reports back to the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameFeedback {
    /// Per-tile DRAM-access and instruction tallies.
    pub heatmap: TileHeatmap,
    /// Cycles the Raster Pipeline spent on the frame.
    pub raster_cycles: Cycle,
    /// Aggregate hit ratio of the texture caches in `[0, 1]`.
    pub texture_hit_ratio: f64,
}

impl FrameFeedback {
    /// Convenience constructor.
    pub fn new(heatmap: TileHeatmap, raster_cycles: Cycle, texture_hit_ratio: f64) -> Self {
        Self { heatmap, raster_cycles, texture_hit_ratio }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_stores_fields() {
        let fb = FrameFeedback::new(TileHeatmap::new(4), 1000, 0.9);
        assert_eq!(fb.raster_cycles, 1000);
        assert_eq!(fb.heatmap.tiles.len(), 4);
        assert!((fb.texture_hit_ratio - 0.9).abs() < 1e-12);
    }
}
