//! The per-frame adaptive controller (Fig 10 + the supertile resize policy, §III-D).
//!
//! Two decisions are taken at every frame boundary, from the previous frame's
//! profile:
//!
//! 1. **Tile traversal order** — Z-order vs temperature-aware. A high texture hit
//!    ratio (> 80 %) means memory congestion is unlikely, so Z-order is preferred;
//!    decisions to *switch* are only taken when a significant (> 3 %) performance
//!    variation is detected; and when **both** the hit ratio and performance degrade,
//!    the alternative ordering is tried (the escape rule of §III-D).
//! 2. **Supertile size** — grows while performance keeps improving, shrinks when it
//!    degrades, within 2×2…16×16, with a 0.25 % significance threshold to avoid
//!    flapping.
//!
//! All thresholds are parameters ([`AdaptiveParams`]) because the paper sweeps them
//! in Fig 19.

use crate::feedback::FrameFeedback;
use tbr_common::trace::{self, Track};
use tbr_common::Cycle;

/// Which frame-level tile traversal the scheduler uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TileOrderKind {
    /// The baseline Morton traversal.
    #[default]
    ZOrder,
    /// LIBRA's hottest/coldest ranked traversal.
    Temperature,
}

impl TileOrderKind {
    /// The other scheme.
    pub fn flipped(self) -> Self {
        match self {
            TileOrderKind::ZOrder => TileOrderKind::Temperature,
            TileOrderKind::Temperature => TileOrderKind::ZOrder,
        }
    }
}

/// Thresholds and bounds of the adaptive policy (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveParams {
    /// Texture hit ratio above which Z-order is preferred (0.80 in §III-D).
    pub hit_ratio_threshold: f64,
    /// Relative raster-cycle change considered significant for order switching
    /// (0.03 in §III-D, swept in Fig 19b).
    pub order_switch_threshold: f64,
    /// Relative raster-cycle change considered significant for supertile resizing
    /// (0.0025 in §III-D, swept in Fig 19a).
    pub resize_threshold: f64,
    /// Supertile edge used before any feedback exists.
    pub initial_supertile_size: u32,
    /// Smallest supertile edge (2 in §III-C).
    pub min_supertile_size: u32,
    /// Largest supertile edge (16 in §III-C).
    pub max_supertile_size: u32,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        Self {
            hit_ratio_threshold: 0.80,
            order_switch_threshold: 0.03,
            resize_threshold: 0.0025,
            initial_supertile_size: 4,
            min_supertile_size: 2,
            max_supertile_size: 16,
        }
    }
}

/// The decision produced for the upcoming frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Tile traversal order to use.
    pub order: TileOrderKind,
    /// Supertile edge to use (meaningful when `order` is temperature-aware).
    pub supertile_size: u32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Summary {
    cycles: Cycle,
    hit_ratio: f64,
}

/// The small FSM of §III-E ("four counters to store the number of cycles and the
/// texture caches hit ratio of the last two frames").
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveController {
    params: AdaptiveParams,
    order: TileOrderKind,
    size: u32,
    growing: bool,
    prev: Option<Summary>,
}

impl AdaptiveController {
    /// Builds a controller with the given thresholds.
    pub fn new(params: AdaptiveParams) -> Self {
        Self {
            order: TileOrderKind::ZOrder,
            size: params
                .initial_supertile_size
                .clamp(params.min_supertile_size, params.max_supertile_size),
            growing: true,
            prev: None,
            params,
        }
    }

    /// The currently selected order (what the next frame will use).
    pub fn order(&self) -> TileOrderKind {
        self.order
    }

    /// The currently selected supertile size.
    pub fn supertile_size(&self) -> u32 {
        self.size
    }

    /// Consumes one frame's feedback and decides the next frame's order and
    /// supertile size.
    pub fn decide(&mut self, feedback: &FrameFeedback) -> Decision {
        let cur = Summary { cycles: feedback.raster_cycles, hit_ratio: feedback.texture_hit_ratio };
        let (order_before, size_before) = (self.order, self.size);

        match self.prev {
            None => {
                // First frame with data: pick by hit ratio alone.
                self.order = if cur.hit_ratio >= self.params.hit_ratio_threshold {
                    TileOrderKind::ZOrder
                } else {
                    TileOrderKind::Temperature
                };
            }
            Some(prev) => {
                let perf_delta = if prev.cycles == 0 {
                    0.0
                } else {
                    (cur.cycles as f64 - prev.cycles as f64) / prev.cycles as f64
                };
                let hit_delta = cur.hit_ratio - prev.hit_ratio;
                let significant = perf_delta.abs() > self.params.order_switch_threshold;

                // Order decision (Fig 10): only act on significant variations.
                if significant {
                    let both_degrade = perf_delta > 0.0 && hit_delta < 0.0;
                    if both_degrade {
                        // Escape rule: current scheme is failing on both metrics.
                        self.order = self.order.flipped();
                    } else if cur.hit_ratio >= self.params.hit_ratio_threshold {
                        self.order = TileOrderKind::ZOrder;
                    } else {
                        self.order = TileOrderKind::Temperature;
                    }
                }

                // Supertile resize: grow while improving, shrink when degrading.
                if perf_delta < -self.params.resize_threshold {
                    self.step_size();
                } else if perf_delta > self.params.resize_threshold {
                    self.growing = !self.growing;
                    self.step_size();
                }
            }
        }

        self.prev = Some(cur);
        // Observation only: surface the feedback and any state change on the
        // scheduler track (phase-local time 0 = the frame boundary).
        if trace::is_enabled() {
            trace::instant_args(
                Track::Scheduler,
                "libra feedback",
                0,
                vec![
                    ("raster_cycles", cur.cycles.to_string()),
                    ("texture_hit_ratio", format!("{:.4}", cur.hit_ratio)),
                ],
            );
            if self.order != order_before {
                trace::instant_args(
                    Track::Scheduler,
                    "order switch",
                    0,
                    vec![("from", format!("{order_before:?}")), ("to", format!("{:?}", self.order))],
                );
            }
            if self.size != size_before {
                trace::instant_args(
                    Track::Scheduler,
                    "supertile resize",
                    0,
                    vec![("from", size_before.to_string()), ("to", self.size.to_string())],
                );
            }
        }
        Decision { order: self.order, supertile_size: self.size }
    }

    fn step_size(&mut self) {
        // Saturating step: at a bound the step is a no-op, and only a performance
        // degradation (which flips `growing`) moves the size off the bound again.
        if self.growing {
            self.size = (self.size * 2).min(self.params.max_supertile_size);
        } else {
            self.size = (self.size / 2).max(self.params.min_supertile_size);
        }
    }
}

impl Default for AdaptiveController {
    fn default() -> Self {
        Self::new(AdaptiveParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbr_common::stats::TileHeatmap;

    fn fb(cycles: Cycle, hit: f64) -> FrameFeedback {
        FrameFeedback::new(TileHeatmap::new(0), cycles, hit)
    }

    #[test]
    fn first_decision_uses_hit_ratio_alone() {
        let mut c = AdaptiveController::default();
        assert_eq!(c.decide(&fb(1000, 0.95)).order, TileOrderKind::ZOrder);
        let mut c2 = AdaptiveController::default();
        assert_eq!(c2.decide(&fb(1000, 0.5)).order, TileOrderKind::Temperature);
    }

    #[test]
    fn insignificant_variation_keeps_current_order() {
        let mut c = AdaptiveController::default();
        c.decide(&fb(1000, 0.5)); // -> Temperature
        // +1% change: below the 3% threshold, no switch even though hit is high now.
        let d = c.decide(&fb(1010, 0.95));
        assert_eq!(d.order, TileOrderKind::Temperature);
    }

    #[test]
    fn significant_improvement_with_high_hit_ratio_selects_zorder() {
        let mut c = AdaptiveController::default();
        c.decide(&fb(1000, 0.5)); // Temperature
        let d = c.decide(&fb(500, 0.9)); // -50% cycles, high hit
        assert_eq!(d.order, TileOrderKind::ZOrder);
    }

    #[test]
    fn both_degrading_flips_the_scheme() {
        let mut c = AdaptiveController::default();
        c.decide(&fb(1000, 0.9)); // ZOrder
        // Performance -10% worse AND hit ratio down: escape to Temperature even
        // though the hit ratio is still above the threshold.
        let d = c.decide(&fb(1100, 0.85));
        assert_eq!(d.order, TileOrderKind::Temperature);
    }

    #[test]
    fn supertile_grows_while_improving_then_flips_on_degradation() {
        let mut c = AdaptiveController::default();
        assert_eq!(c.supertile_size(), 4);
        c.decide(&fb(1000, 0.5));
        // Improving run: 4 -> 8 -> 16 (clamped).
        c.decide(&fb(900, 0.5));
        assert_eq!(c.supertile_size(), 8);
        c.decide(&fb(800, 0.5));
        assert_eq!(c.supertile_size(), 16);
        c.decide(&fb(700, 0.5));
        assert_eq!(c.supertile_size(), 16, "clamped at max");
        // Degradation: direction flips, size shrinks.
        c.decide(&fb(900, 0.5));
        assert_eq!(c.supertile_size(), 8);
    }

    #[test]
    fn supertile_respects_min_bound() {
        let mut c = AdaptiveController::default();
        c.decide(&fb(1000, 0.5));
        // Alternate degradations drive the size down to the 2x2 floor.
        let mut cycles = 1000;
        for _ in 0..10 {
            cycles += cycles / 5;
            c.decide(&fb(cycles, 0.5));
            assert!(c.supertile_size() >= 2);
        }
    }

    #[test]
    fn tiny_resize_threshold_reacts_huge_threshold_freezes() {
        let frozen = AdaptiveParams { resize_threshold: 0.15, ..AdaptiveParams::default() };
        let mut c = AdaptiveController::new(frozen);
        c.decide(&fb(1000, 0.5));
        c.decide(&fb(950, 0.5)); // -5% — below 15% threshold
        assert_eq!(c.supertile_size(), 4, "15% threshold behaves like a fixed size");
    }

    #[test]
    fn flipped_is_involutive() {
        assert_eq!(TileOrderKind::ZOrder.flipped().flipped(), TileOrderKind::ZOrder);
    }
}
