//! # libra — the paper's contribution: LIBRA, a Locality-aware Intelligent Balance
//! Rendering Architecture (MICRO 2024)
//!
//! LIBRA renders multiple tiles in parallel (one per Raster Unit) and schedules which
//! tile goes where using a *temperature-aware*, *locality-aware*, per-frame-adaptive
//! policy:
//!
//! * [`feedback`] — what the hardware profiles each frame: per-tile DRAM accesses and
//!   instruction counts (§III-B), raster-phase cycles and texture-cache hit ratio.
//! * [`supertile`] — tiles grouped into S×S *supertiles* (§III-C) so that the
//!   temperature order does not destroy the texture locality of nearby tiles.
//! * [`temperature`] — the hardware temperature table (§III-E: 16-bit access count,
//!   24-bit instruction count, 15-bit fixed-point accesses/instruction, 9-bit id =
//!   64 bits/entry) and the hottest→coldest ranking.
//! * [`adaptive`] — the per-frame controller of Fig 10: choose Z-order vs temperature
//!   order from last frame's hit ratio (80 % threshold) and performance delta (3 %
//!   threshold), and resize supertiles 2×2 ↔ 16×16 (0.25 % threshold).
//! * [`scheduler`] — the tile dispatchers: the baseline single-RU Z-order fetcher, the
//!   interleaved Z-order PTR dispatcher, static-supertile PTR, and the full LIBRA
//!   scheduler (hot supertiles to one RU, cold to the others).
//! * [`hw_cost`] — the hardware-overhead model (§III-E): table storage, ranking
//!   latency (3 cycles per comparison, `n·⌈log₂ n⌉` comparisons), and the check that
//!   ranking hides under the Geometry phase.
//! * [`elimination`] — the Rendering Elimination frame-coherence cache
//!   (arXiv 1807.09449): per-tile signatures compared frame-over-frame, with
//!   the oracle-mode collision check behind the `re_false_negatives` counter.
//!
//! The crate is deliberately independent of the simulator: it consumes
//! [`feedback::FrameFeedback`] and produces [`scheduler::FramePlan`]s, exactly like
//! the hardware block would.

#![warn(missing_docs)]

pub mod adaptive;
pub mod elimination;
pub mod feedback;
pub mod hw_cost;
pub mod scheduler;
pub mod supertile;
pub mod temperature;

pub use adaptive::{AdaptiveController, AdaptiveParams, TileOrderKind};
pub use elimination::{ReCache, ReFrameDecision};
pub use feedback::FrameFeedback;
pub use scheduler::{FramePlan, SchedulerKind, TileScheduler};
pub use supertile::SupertileGrid;
pub use temperature::TemperatureTable;
