//! The hardware temperature table and the hottest→coldest ranking (§III-B, §III-E).
//!
//! "We define the temperature of a tile (a proxy for memory intensity) as the ratio
//! of DRAM accesses over the number of instructions, and arrange the tiles from
//! highest to lowest temperature."
//!
//! The table is modelled with the paper's exact bit budget: 16 bits for the memory
//! access count, 24 bits for the instruction count, 15 bits for the fixed-point
//! accesses-per-instruction and 9 bits for the supertile ID — 64 bits per entry,
//! at most 510 entries (one per 2×2 supertile of an FHD frame) ≈ 4 KB.

use crate::supertile::SupertileTally;
use tbr_common::ids::SupertileId;

/// Saturation bound of the 16-bit access counter.
pub const MAX_ACCESSES: u64 = (1 << 16) - 1;
/// Saturation bound of the 24-bit instruction counter.
pub const MAX_INSTRUCTIONS: u64 = (1 << 24) - 1;
/// Fixed-point fractional bits of the accesses-per-instruction field.
pub const API_FRAC_BITS: u32 = 12;
/// Saturation bound of the 15-bit fixed-point accesses-per-instruction field.
pub const MAX_API: u32 = (1 << 15) - 1;

/// One 64-bit table entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemperatureEntry {
    /// 9-bit supertile id.
    pub supertile: SupertileId,
    /// 16-bit saturating DRAM access count.
    pub accesses: u16,
    /// 24-bit saturating instruction count (stored in a u32).
    pub instructions: u32,
    /// 15-bit fixed point accesses/instruction, [`API_FRAC_BITS`] fractional bits.
    pub api_fixed: u16,
}

impl TemperatureEntry {
    /// The temperature as a float (for analysis; hardware compares `api_fixed`).
    pub fn temperature(&self) -> f64 {
        self.api_fixed as f64 / (1u32 << API_FRAC_BITS) as f64
    }
}

/// The on-chip buffer of per-supertile statistics plus the ranking operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TemperatureTable {
    entries: Vec<TemperatureEntry>,
}

impl TemperatureTable {
    /// Builds the table from the previous frame's aggregated supertile tallies,
    /// applying the hardware counters' saturation.
    pub fn from_tallies(tallies: &[SupertileTally]) -> Self {
        let entries = tallies
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let accesses = t.dram_accesses.min(MAX_ACCESSES) as u16;
                let instructions = t.instructions.min(MAX_INSTRUCTIONS) as u32;
                // Fixed-point divide, as the hardware's divisor unit would produce.
                let api = if instructions == 0 {
                    // No instructions but accesses -> treat as maximally hot; fully
                    // idle supertiles are coldest.
                    if accesses > 0 {
                        MAX_API
                    } else {
                        0
                    }
                } else {
                    let q = ((accesses as u64) << API_FRAC_BITS) / instructions as u64;
                    q.min(MAX_API as u64) as u32
                };
                TemperatureEntry {
                    supertile: SupertileId(i as u32),
                    accesses,
                    instructions,
                    api_fixed: api as u16,
                }
            })
            .collect();
        Self { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Table entries (analysis/tests).
    pub fn entries(&self) -> &[TemperatureEntry] {
        &self.entries
    }

    /// Ranks supertiles hottest → coldest (by the fixed-point temperature field, ties
    /// broken by supertile id for determinism, matching a stable hardware sort).
    pub fn rank(&self) -> Vec<SupertileId> {
        let mut order: Vec<&TemperatureEntry> = self.entries.iter().collect();
        order.sort_by(|a, b| {
            b.api_fixed.cmp(&a.api_fixed).then_with(|| a.supertile.0.cmp(&b.supertile.0))
        });
        order.into_iter().map(|e| e.supertile).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tally(dram: u64, instr: u64) -> SupertileTally {
        SupertileTally { dram_accesses: dram, instructions: instr }
    }

    #[test]
    fn temperature_is_accesses_per_instruction() {
        let t = TemperatureTable::from_tallies(&[tally(100, 1000), tally(10, 1000)]);
        let e = t.entries();
        assert!((e[0].temperature() - 0.1).abs() < 1e-3);
        assert!((e[1].temperature() - 0.01).abs() < 1e-3);
    }

    #[test]
    fn rank_orders_hottest_first() {
        // Same instruction count, increasing accesses -> rank = reverse id order.
        let t = TemperatureTable::from_tallies(&[
            tally(10, 1000),
            tally(30, 1000),
            tally(20, 1000),
        ]);
        let r = t.rank();
        assert_eq!(r, vec![SupertileId(1), SupertileId(2), SupertileId(0)]);
    }

    #[test]
    fn high_accesses_low_instructions_is_hotter_than_raw_count() {
        // 50 accesses / 100 instr (0.5) must outrank 200 accesses / 10000 instr
        // (0.02): temperature is a *ratio*, not a raw count (design choice §III-B).
        let t = TemperatureTable::from_tallies(&[tally(200, 10_000), tally(50, 100)]);
        assert_eq!(t.rank()[0], SupertileId(1));
    }

    #[test]
    fn counters_saturate_at_hardware_widths() {
        let t = TemperatureTable::from_tallies(&[tally(1 << 20, 1 << 30)]);
        let e = t.entries()[0];
        assert_eq!(e.accesses as u64, MAX_ACCESSES);
        assert_eq!(e.instructions as u64, MAX_INSTRUCTIONS);
    }

    #[test]
    fn api_saturates_at_15_bits() {
        // Enormous ratio: 65535 accesses / 1 instruction.
        let t = TemperatureTable::from_tallies(&[tally(65_535, 1)]);
        assert_eq!(t.entries()[0].api_fixed as u32, MAX_API);
    }

    #[test]
    fn zero_instruction_supertiles() {
        let t = TemperatureTable::from_tallies(&[tally(0, 0), tally(5, 0)]);
        // Idle supertile is coldest; accesses-without-instructions is hottest.
        assert_eq!(t.entries()[0].api_fixed, 0);
        assert_eq!(t.entries()[1].api_fixed as u32, MAX_API);
        assert_eq!(t.rank(), vec![SupertileId(1), SupertileId(0)]);
    }

    #[test]
    fn ties_break_by_id_for_determinism() {
        let t = TemperatureTable::from_tallies(&[tally(10, 100), tally(10, 100)]);
        assert_eq!(t.rank(), vec![SupertileId(0), SupertileId(1)]);
    }

    #[test]
    fn entry_is_64_bits_of_architectural_state() {
        // 16 + 24 + 15 + 9 = 64 (paper §III-E).
        assert_eq!(16 + 24 + 15 + 9, 64);
    }
}
