//! Hardware overhead model (§III-E).
//!
//! LIBRA's storage is one 64-bit entry per supertile (≤ 510 for an FHD frame at 2×2
//! granularity ≈ 4 KB, < 0.2 % of the 2 MB L2's area) plus four counters for the
//! adaptive FSM. The ranking unit sequentially compares pairs of entries: each of the
//! `n·⌈log₂ n⌉` comparisons costs a conservative 3 cycles (two reads, one compare,
//! potential writes overlap), giving an upper bound that must hide under the Geometry
//! phase (≈ 270 000 cycles per frame on the paper's benchmarks).

/// Architectural bits per temperature-table entry (16 + 24 + 15 + 9).
pub const ENTRY_BITS: u64 = 64;
/// Cycles charged per ranking comparison (two reads, compare, potential writes —
/// conservative, §III-E).
pub const CYCLES_PER_COMPARISON: u64 = 3;

/// Table storage in bytes for `n` supertile entries.
pub fn table_bytes(n: usize) -> u64 {
    n as u64 * ENTRY_BITS / 8
}

/// Fraction of a `l2_bytes` L2's capacity the table occupies (the paper quotes area,
/// which tracks SRAM capacity to first order).
pub fn l2_fraction(n: usize, l2_bytes: u64) -> f64 {
    table_bytes(n) as f64 / l2_bytes as f64
}

/// Comparisons of the O(n log n) ranking pass: `n · ⌈log₂ n⌉`.
pub fn ranking_comparisons(n: usize) -> u64 {
    if n < 2 {
        return 0;
    }
    let log2_ceil = (usize::BITS - (n - 1).leading_zeros()) as u64;
    n as u64 * log2_ceil
}

/// Upper-bound cycles to rank `n` entries.
pub fn ranking_cycles(n: usize) -> u64 {
    CYCLES_PER_COMPARISON * ranking_comparisons(n)
}

/// Whether the ranking operation hides entirely under a geometry phase of
/// `geometry_cycles` (the paper's claim: 13 761 ≪ 270 000).
pub fn ranking_hides_under_geometry(n: usize, geometry_cycles: u64) -> bool {
    ranking_cycles(n) <= geometry_cycles
}

/// Bytes the Rendering Elimination signature unit consumes per cycle. The
/// unit sits next to the Polygon List Builder and hashes the parameter-buffer
/// word stream as it is written, two 64-bit words per cycle.
pub const SIGNATURE_BYTES_PER_CYCLE: u64 = 16;

/// Cycles the RE signature unit needs to hash `bytes` of per-tile input
/// stream. Like ranking, this runs concurrently with binning and is expected
/// to hide under the Geometry phase (folded in via `max`, not added).
pub fn signature_cycles(bytes: u64) -> u64 {
    bytes.div_ceil(SIGNATURE_BYTES_PER_CYCLE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_size_checks_out() {
        // 510 entries x 64 bits = 4080 B ≈ 4 KB; < 0.2% of a 2 MB L2.
        assert_eq!(table_bytes(510), 4080);
        assert!(l2_fraction(510, 2 << 20) < 0.002);
    }

    #[test]
    fn paper_ranking_bound_checks_out() {
        // n = 510: ceil(log2 510) = 9 -> 4590 comparisons, 13770 cycles — the paper
        // quotes 4587/13761 with the same O(n log n) model; we match within 0.1%.
        let comps = ranking_comparisons(510);
        assert!((4500..=4700).contains(&comps), "{comps}");
        let cycles = ranking_cycles(510);
        assert!((13_500..=14_100).contains(&cycles), "{cycles}");
        assert!(ranking_hides_under_geometry(510, 270_000));
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(ranking_comparisons(0), 0);
        assert_eq!(ranking_comparisons(1), 0);
        assert_eq!(ranking_cycles(1), 0);
        assert_eq!(table_bytes(0), 0);
    }

    #[test]
    fn larger_tables_cost_more() {
        assert!(ranking_cycles(510) > ranking_cycles(128));
        assert!(table_bytes(510) > table_bytes(128));
    }
}
