//! # tbr-mem — memory hierarchy of the LIBRA TBR GPU simulator
//!
//! Implements the memory system of Fig 3 in the paper:
//!
//! * [`cache::Cache`] — a set-associative, LRU, tag-only cache model used for the
//!   vertex cache, per-RU tile caches, per-core texture caches and the shared L2.
//! * [`dram::DramModel`] — a banked LPDDR4-like main memory with open-row policy,
//!   per-bank and per-channel-bus reservation, so the *effective* latency of a request
//!   grows with offered load. This queueing behaviour is the premise of the whole
//!   paper ("the response time of memory increases asymptotically as the utilization
//!   factor of the memory bandwidth approaches 100%", §I).
//! * [`hierarchy::MemoryHierarchy`] — the shared L2 + DRAM pair behind all L1s, and
//!   [`hierarchy::L1Cache`] — the private first-level caches that miss into it.
//!
//! Timing is modelled by *resource reservation*: every contended unit keeps a
//! `next_free` cycle and a request arriving at `t` starts no earlier than
//! `max(t, next_free)`. Requests must therefore be issued in (approximately)
//! non-decreasing time order, which the event-driven simulator in `tbr-sim`
//! guarantees.
//!
//! ```
//! use tbr_common::config::{CacheConfig, DramConfig};
//! use tbr_common::addr::AccessKind;
//! use tbr_mem::hierarchy::{L1Cache, MemoryHierarchy};
//!
//! let mut hier = MemoryHierarchy::new(CacheConfig::shared_l2(), DramConfig::lpddr4(), 5000);
//! let mut l1 = L1Cache::new(CacheConfig::texture_l1());
//! let cold = l1.access(0x4000_0000, 0, AccessKind::TextureRead, &mut hier);
//! assert!(!cold.hit);
//! let warm = l1.access(0x4000_0000, cold.completion, AccessKind::TextureRead, &mut hier);
//! assert!(warm.hit);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod channels;
pub mod dram;
pub mod hierarchy;

pub use cache::{Cache, Lookup};
pub use dram::DramModel;
pub use hierarchy::{L1Cache, L1Outcome, MemoryHierarchy};
