//! Channel-partitioned DRAM event handling.
//!
//! The parallel raster driver shards its event core by Raster Unit; the memory
//! side of every epoch is sharded the same way by *DRAM channel*. A
//! [`ChannelQueues`] holds one deterministic sub-queue per channel and is used
//! as the cross-shard exchange ledger: when the coordinator commits a shared
//! event whose warp goes to sleep on a miss, the wake-up (the MSHR fill /
//! DRAM response completion) is enqueued under the channel that serves the
//! missed line, and the entries at or below the current epoch horizon are
//! drained at each barrier. Because the sub-queues are [`EventQueue`]s, the
//! merged drain order is the canonical `(ready_cycle, stable key)` order — the
//! same order a single flat queue over all channels would produce.

use tbr_common::event_queue::EventQueue;
use tbr_common::Cycle;

/// Per-DRAM-channel event queues with a canonical merged drain order.
///
/// Keys follow the same contract as [`EventQueue`]: stable identities (e.g.
/// global Raster-Unit indices), globally unique so the merged `(time, key)`
/// order is total.
#[derive(Debug, Clone, Default)]
pub struct ChannelQueues<K> {
    channels: Vec<EventQueue<K>>,
    pushed: u64,
    drained: u64,
}

impl<K: Copy + Ord> ChannelQueues<K> {
    /// Empty queues for `channels` DRAM channels (at least one).
    pub fn new(channels: usize) -> Self {
        Self {
            channels: (0..channels.max(1)).map(|_| EventQueue::new()).collect(),
            pushed: 0,
            drained: 0,
        }
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Entries currently queued across all channels.
    pub fn len(&self) -> usize {
        self.channels.iter().map(EventQueue::len).sum()
    }

    /// Whether every channel queue is empty.
    pub fn is_empty(&self) -> bool {
        self.channels.iter().all(EventQueue::is_empty)
    }

    /// Total events ever pushed (the cross-epoch exchange volume).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events ever drained at barriers.
    pub fn total_drained(&self) -> u64 {
        self.drained
    }

    /// Enqueues `key` at `time` on `channel`.
    ///
    /// # Panics
    /// Panics if `channel` is out of range.
    pub fn push(&mut self, channel: usize, time: Cycle, key: K) {
        self.channels[channel].push(time, key);
        self.pushed += 1;
    }

    /// The earliest entry across all channels (merged `(time, key)` minimum).
    pub fn peek_min(&self) -> Option<(Cycle, K)> {
        let mut best: Option<(Cycle, K)> = None;
        for q in &self.channels {
            if let Some(head) = q.peek() {
                if best.is_none_or(|b| head < b) {
                    best = Some(head);
                }
            }
        }
        best
    }

    /// Removes and returns the earliest entry across all channels — the same
    /// entry a flat [`EventQueue`] over the union would pop next. Counts as a
    /// drain (a barrier commit of one cross-shard event).
    pub fn pop_min(&mut self) -> Option<(usize, Cycle, K)> {
        let mut best: Option<(usize, (Cycle, K))> = None;
        for (c, q) in self.channels.iter().enumerate() {
            if let Some(head) = q.peek() {
                if best.is_none_or(|(_, b)| head < b) {
                    best = Some((c, head));
                }
            }
        }
        let (c, _) = best?;
        let (t, k) = self.channels[c].pop().expect("peeked head exists");
        self.drained += 1;
        Some((c, t, k))
    }

    /// Drains every entry with `time <= horizon`, in merged canonical order,
    /// calling `f(channel, time, key)` for each. Entries beyond the horizon
    /// stay queued for a later epoch.
    pub fn drain_until(&mut self, horizon: Cycle, mut f: impl FnMut(usize, Cycle, K)) {
        loop {
            let mut best: Option<(usize, (Cycle, K))> = None;
            for (c, q) in self.channels.iter().enumerate() {
                if let Some(head) = q.peek() {
                    if head.0 <= horizon && best.is_none_or(|(_, b)| head < b) {
                        best = Some((c, head));
                    }
                }
            }
            let Some((c, _)) = best else { break };
            let (t, k) = self.channels[c].pop().expect("peeked head exists");
            self.drained += 1;
            f(c, t, k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_is_merged_canonical_order() {
        let mut q = ChannelQueues::new(3);
        // Same events flat-pushed for the oracle.
        let mut flat = EventQueue::new();
        for (c, t, k) in [
            (0usize, 9u64, 1u32),
            (1, 3, 2),
            (2, 3, 0),
            (0, 1, 5),
            (1, 9, 4),
        ] {
            q.push(c, t, k);
            flat.push(t, k);
        }
        let mut got = Vec::new();
        q.drain_until(u64::MAX, |_, t, k| got.push((t, k)));
        let mut want = Vec::new();
        while let Some(e) = flat.pop() {
            want.push(e);
        }
        assert_eq!(got, want);
        assert_eq!(q.total_drained(), 5);
    }

    #[test]
    fn drain_until_respects_the_horizon() {
        let mut q = ChannelQueues::new(2);
        q.push(0, 2, 0u32);
        q.push(1, 5, 1);
        q.push(0, 8, 2);
        let mut got = Vec::new();
        q.drain_until(5, |c, t, k| got.push((c, t, k)));
        assert_eq!(
            got,
            vec![(0, 2, 0), (1, 5, 1)],
            "t=8 must not cross the barrier"
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_min(), Some((8, 2)));
        assert_eq!(q.total_pushed(), 3);
        assert_eq!(q.total_drained(), 2);
    }

    #[test]
    fn at_least_one_channel_always_exists() {
        let q: ChannelQueues<u32> = ChannelQueues::new(0);
        assert_eq!(q.num_channels(), 1);
        assert!(q.is_empty());
        assert_eq!(q.peek_min(), None);
    }
}
