//! Set-associative, LRU, tag-only cache model.
//!
//! The simulator never stores data behind addresses, so the cache tracks *tags only*:
//! enough to decide hit/miss, drive replacement, and count the statistics the paper
//! reports (hit ratios for Fig 13, miss traffic feeding the DRAM model).

use tbr_common::config::CacheConfig;
use tbr_common::stats::CacheStats;

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line was resident.
    Hit,
    /// The line was not resident and has been filled; if a valid line had to be
    /// evicted to make room, its line-aligned address is reported.
    Miss {
        /// Address of the evicted line, if any.
        evicted: Option<u64>,
    },
}

impl Lookup {
    /// `true` for [`Lookup::Hit`].
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, Lookup::Hit)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    last_use: u64,
}

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    ways: Vec<Way>, // sets * assoc, row-major by set
    stats: CacheStats,
    use_clock: u64,
    line_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Builds a cache from its geometry.
    ///
    /// # Panics
    /// Panics if the geometry is invalid (use [`CacheConfig::validate`] first for a
    /// recoverable check).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate("cache").expect("invalid cache geometry");
        let sets = cfg.num_sets();
        Self {
            ways: vec![Way::default(); (sets * cfg.assoc) as usize],
            stats: CacheStats::default(),
            use_clock: 0,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            cfg,
        }
    }

    /// The configured geometry.
    #[inline]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Line-aligned address of `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    #[inline]
    fn set_of(&self, addr: u64) -> u64 {
        (addr >> self.line_shift) & self.set_mask
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift >> self.set_mask.count_ones()
    }

    /// Checks residency without updating replacement state or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr) as usize;
        let tag = self.tag_of(addr);
        let base = set * self.cfg.assoc as usize;
        self.ways[base..base + self.cfg.assoc as usize].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Performs an access: updates LRU on hit, fills (evicting LRU) on miss, and
    /// records statistics.
    pub fn access(&mut self, addr: u64) -> Lookup {
        self.use_clock += 1;
        self.stats.accesses += 1;
        let set = self.set_of(addr) as usize;
        let tag = self.tag_of(addr);
        let assoc = self.cfg.assoc as usize;
        let base = set * assoc;
        let ways = &mut self.ways[base..base + assoc];

        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.last_use = self.use_clock;
            self.stats.hits += 1;
            return Lookup::Hit;
        }

        self.stats.misses += 1;
        // Victim: an invalid way if possible, else true LRU.
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { (1, w.last_use) } else { (0, 0) })
            .expect("assoc > 0");
        let evicted = if victim.valid {
            self.stats.evictions += 1;
            // Reconstruct the evicted line address from tag + set.
            Some(
                (victim.tag << self.set_mask.count_ones() | set as u64) << self.line_shift,
            )
        } else {
            None
        };
        victim.tag = tag;
        victim.valid = true;
        victim.last_use = self.use_clock;
        Lookup::Miss { evicted }
    }

    /// Current counters.
    #[inline]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the counters (contents are kept — e.g. across frame boundaries, where
    /// caches stay warm but statistics are per-frame).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates every line (used between independent experiment runs).
    pub fn invalidate_all(&mut self) {
        for w in &mut self.ways {
            w.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways x 64 B lines = 256 B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            assoc: 2,
            latency: 1,
            port_occupancy: 1,
            mshrs: 0,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x1000).is_hit());
        assert!(c.access(0x1000).is_hit());
        assert!(c.access(0x103f).is_hit(), "same 64B line");
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn set_mapping_separates_lines() {
        let c = small();
        // 2 sets: bit 6 selects the set.
        assert_ne!(c.set_of(0x0), c.set_of(0x40));
        assert_eq!(c.set_of(0x0), c.set_of(0x80));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Three distinct lines mapping to set 0 (stride 128 with 2 sets).
        let (a, b, d) = (0x000, 0x080, 0x100);
        c.access(a); // fill a
        c.access(b); // fill b (set full)
        c.access(a); // touch a -> b becomes LRU
        match c.access(d) {
            Lookup::Miss { evicted: Some(e) } => assert_eq!(e, b),
            other => panic!("expected eviction of b, got {other:?}"),
        }
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = small();
        c.access(0x000);
        c.access(0x080);
        // Probing `a` must NOT refresh its LRU position.
        assert!(c.probe(0x000));
        match c.access(0x100) {
            Lookup::Miss { evicted: Some(e) } => assert_eq!(e, 0x000),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats().accesses, 3, "probe not counted");
    }

    #[test]
    fn evicted_address_reconstruction_roundtrips() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 32 << 10,
            line_bytes: 64,
            assoc: 4,
            latency: 2,
            port_occupancy: 1,
            mshrs: 0,
        });
        // Fill way beyond capacity with a strided pattern and check that every
        // evicted address was indeed previously inserted, line-aligned.
        let mut inserted = std::collections::HashSet::new();
        for i in 0..4096u64 {
            let addr = 0x4000_0000 + i * 64;
            inserted.insert(addr);
            if let Lookup::Miss { evicted: Some(e) } = c.access(addr) {
                assert_eq!(e % 64, 0);
                assert!(inserted.contains(&e), "evicted {e:#x} never inserted");
            }
        }
    }

    #[test]
    fn capacity_working_set_fits() {
        let mut c = Cache::new(CacheConfig::texture_l1()); // 32 KB
        let lines = 32 * 1024 / 64;
        for i in 0..lines {
            c.access(i as u64 * 64);
        }
        // Second pass over the same working set: all hits.
        for i in 0..lines {
            assert!(c.access(i as u64 * 64).is_hit(), "line {i} should be resident");
        }
    }

    #[test]
    fn invalidate_all_and_reset_stats() {
        let mut c = small();
        c.access(0x0);
        c.invalidate_all();
        assert!(!c.probe(0x0));
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn line_addr_alignment() {
        let c = small();
        assert_eq!(c.line_addr(0x1234), 0x1200);
        assert_eq!(c.line_addr(0x1240), 0x1240);
    }
}
