//! The shared part of the memory system (L2 + DRAM) and the private L1s in front of
//! it.
//!
//! All Raster Units and shader cores share one [`MemoryHierarchy`]; each keeps its own
//! [`L1Cache`] (texture caches per core, tile cache per RU, one vertex cache). An L1
//! miss turns into an L2 access; an L2 miss turns into a DRAM request. Framebuffer
//! flush writes bypass the L2 (TBR colour buffers stream straight to main memory,
//! §II-C).
//!
//! The hierarchy supports an *ideal memory* mode in which every L1 access hits — the
//! configuration the paper uses to separate compute time from memory time (Fig 6a).

use crate::cache::Cache;
use crate::dram::DramModel;
use tbr_common::addr::AccessKind;
use tbr_common::config::{CacheConfig, DramConfig};
use tbr_common::event_queue::EventQueue;
use tbr_common::metrics::MetricsRegistry;
use tbr_common::stats::{CacheStats, DramStats};
use tbr_common::Cycle;

/// Tracks outstanding misses against an MSHR budget. A new miss at `now` returns the
/// cycle it may actually issue (stalling for the earliest outstanding fill when all
/// MSHRs are busy).
#[derive(Debug, Clone, Default)]
struct MshrFile {
    capacity: u64,
    outstanding: EventQueue<()>,
}

impl MshrFile {
    fn new(capacity: u64) -> Self {
        Self {
            capacity,
            outstanding: EventQueue::new(),
        }
    }

    /// Reserves an MSHR for a miss issued at `now`; returns the possibly-delayed
    /// issue time. `record_fill` must be called with the fill completion afterwards.
    fn acquire(&mut self, now: Cycle) -> Cycle {
        if self.capacity == 0 {
            return now;
        }
        while let Some((done, ())) = self.outstanding.peek() {
            if done <= now {
                self.outstanding.pop();
            } else {
                break;
            }
        }
        if self.outstanding.len() as u64 >= self.capacity {
            let (earliest, ()) = self.outstanding.pop().expect("non-empty");
            now.max(earliest)
        } else {
            now
        }
    }

    fn record_fill(&mut self, completion: Cycle) {
        if self.capacity > 0 {
            self.outstanding.push(completion, ());
        }
    }

    fn clear(&mut self) {
        self.outstanding.clear();
    }
}

/// Result of an access that reached the shared hierarchy (L2/DRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Outcome {
    /// Cycle at which the requested data is available (or the write retired).
    pub completion: Cycle,
    /// Whether the L2 served the request (false = DRAM was involved or bypassed).
    pub l2_hit: bool,
    /// Number of DRAM requests this access generated (0 or 1).
    pub dram_accesses: u8,
}

/// Shared L2 cache + DRAM, with port reservation for L2 bandwidth.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l2: Cache,
    l2_port_free: Cycle,
    l2_mshrs: MshrFile,
    dram: DramModel,
    /// When `true`, the hierarchy (and the L1s in front of it) never miss: every
    /// access costs only the hit latency. Used for Fig 6a's compute/memory split.
    pub ideal: bool,
}

impl MemoryHierarchy {
    /// Builds the shared hierarchy. `interval_width` is the DRAM histogram bucket
    /// size in cycles (5 000 for Fig 7).
    pub fn new(l2_cfg: CacheConfig, dram_cfg: DramConfig, interval_width: Cycle) -> Self {
        Self {
            l2: Cache::new(l2_cfg),
            l2_port_free: 0,
            l2_mshrs: MshrFile::new(l2_cfg.mshrs),
            dram: DramModel::new(dram_cfg, interval_width),
            ideal: false,
        }
    }

    /// Services a request from an L1 miss (or a direct Parameter-Buffer/framebuffer
    /// access) arriving at `now`.
    pub fn access(&mut self, addr: u64, now: Cycle, kind: AccessKind) -> L2Outcome {
        if self.ideal {
            return L2Outcome {
                completion: now + self.l2.config().latency,
                l2_hit: true,
                dram_accesses: 0,
            };
        }
        if matches!(kind, AccessKind::FramebufferWrite) {
            // Colour-buffer flush streams past the L2 straight to DRAM.
            let completion = self.dram.request(addr, now, true);
            return L2Outcome {
                completion,
                l2_hit: false,
                dram_accesses: 1,
            };
        }

        let start = now.max(self.l2_port_free);
        self.l2_port_free = start + self.l2.config().port_occupancy;
        let l2_done = start + self.l2.config().latency;
        if self.l2.access(addr).is_hit() {
            L2Outcome {
                completion: l2_done,
                l2_hit: true,
                dram_accesses: 0,
            }
        } else {
            let issue = self.l2_mshrs.acquire(l2_done);
            let completion = self.dram.request(addr, issue, kind.is_write());
            self.l2_mshrs.record_fill(completion);
            L2Outcome {
                completion,
                l2_hit: false,
                dram_accesses: 1,
            }
        }
    }

    /// L2 counters.
    #[inline]
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// DRAM counters.
    #[inline]
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    /// Number of DRAM channels behind the L2.
    #[inline]
    pub fn dram_channels(&self) -> usize {
        self.dram.config().channels as usize
    }

    /// The DRAM channel `addr` maps to (line-interleaved, like the DRAM model).
    #[inline]
    pub fn dram_channel_of(&self, addr: u64) -> usize {
        self.dram.channel_of(addr)
    }

    /// Ends a frame: returns `(l2, dram)` counters and resets them along with all
    /// timing reservations; cache contents and open rows stay warm (frame-to-frame
    /// locality is real in TBR GPUs).
    pub fn end_frame(&mut self) -> (CacheStats, DramStats) {
        let l2 = *self.l2.stats();
        self.l2.reset_stats();
        self.l2_port_free = 0;
        self.l2_mshrs.clear();
        let dram = self.dram.take_stats();
        self.dram.reset_state();
        (l2, dram)
    }

    /// Publishes the hierarchy's *live* (since the last `end_frame`) counters into
    /// `reg` under the given labels: the shared L2 as `cache=l2` plus the `dram_*`
    /// family and the refresh count.
    pub fn publish_metrics(&self, reg: &mut MetricsRegistry, labels: &[(&str, &str)]) {
        let mut l2_labels: Vec<(&str, &str)> = labels.to_vec();
        l2_labels.push(("cache", "l2"));
        self.l2.stats().publish(reg, &l2_labels);
        self.dram.stats().publish(reg, labels);
        reg.add_counter("dram_refreshes", labels, self.dram.refreshes());
    }

    /// Invalidates the L2 and closes all DRAM rows (between independent runs).
    pub fn cold_reset(&mut self) {
        self.l2.invalidate_all();
        self.l2.reset_stats();
        self.l2_port_free = 0;
        self.l2_mshrs.clear();
        self.dram.reset_state();
        let _ = self.dram.take_stats();
    }
}

/// Result of an L1 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Outcome {
    /// Cycle at which the data is available to the requester.
    pub completion: Cycle,
    /// Whether the L1 served the request.
    pub hit: bool,
    /// DRAM requests generated further down (0 or 1).
    pub dram_accesses: u8,
    /// The line address filled into this L1 on a miss (for replication tracking).
    pub filled_line: Option<u64>,
}

/// A private first-level cache (texture, tile or vertex cache) with a single access
/// port, missing into a shared [`MemoryHierarchy`].
#[derive(Debug, Clone)]
pub struct L1Cache {
    cache: Cache,
    port_free: Cycle,
    mshrs: MshrFile,
}

impl L1Cache {
    /// Builds an L1 from its geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        Self {
            cache: Cache::new(cfg),
            port_free: 0,
            mshrs: MshrFile::new(cfg.mshrs),
        }
    }

    /// Performs an access arriving at `now`. On a miss the line is fetched through
    /// `hier` and filled. In ideal-memory mode ([`MemoryHierarchy::ideal`]) every
    /// access hits.
    pub fn access(
        &mut self,
        addr: u64,
        now: Cycle,
        kind: AccessKind,
        hier: &mut MemoryHierarchy,
    ) -> L1Outcome {
        let ideal = hier.ideal;
        self.access_inner(addr, now, kind, Some(hier), ideal)
    }

    /// Whether `addr`'s line is resident right now, without disturbing LRU state
    /// or counters. When this holds (or in ideal mode), an access is guaranteed
    /// to be served entirely by this L1 — the shared hierarchy is untouched —
    /// which is what lets the parallel raster driver execute the access on a
    /// worker thread via [`L1Cache::access_resident`].
    #[inline]
    pub fn is_resident(&self, addr: u64) -> bool {
        self.cache.probe(addr)
    }

    /// Performs an access that the caller has proven local: `addr` is resident
    /// ([`L1Cache::is_resident`]) or `ideal` is set. State updates (port
    /// reservation, LRU, counters) are exactly those of [`L1Cache::access`] on
    /// its hit/ideal path — the two share one implementation.
    ///
    /// # Panics
    /// Panics if the access would actually miss (a misclassified event — a bug
    /// in the caller's residency check, never a data-dependent condition).
    pub fn access_resident(
        &mut self,
        addr: u64,
        now: Cycle,
        kind: AccessKind,
        ideal: bool,
    ) -> L1Outcome {
        self.access_inner(addr, now, kind, None, ideal)
    }

    /// The one body behind [`L1Cache::access`] and [`L1Cache::access_resident`]:
    /// `hier` is `None` exactly when the caller guarantees the hit/ideal path.
    fn access_inner(
        &mut self,
        addr: u64,
        now: Cycle,
        kind: AccessKind,
        hier: Option<&mut MemoryHierarchy>,
        ideal: bool,
    ) -> L1Outcome {
        let start = now.max(self.port_free);
        self.port_free = start + self.cache.config().port_occupancy;
        let l1_done = start + self.cache.config().latency;

        if ideal {
            // Count as a hit for bookkeeping; no state disturbance needed beyond LRU.
            let _ = self.cache.access(addr);
            // Force the counters toward all-hit semantics: re-classify the access.
            // (Simplest correct model: in ideal mode hit ratios are reported as 1.0
            // by construction downstream, so raw counters are not used.)
            return L1Outcome {
                completion: l1_done,
                hit: true,
                dram_accesses: 0,
                filled_line: None,
            };
        }

        if self.cache.access(addr).is_hit() {
            L1Outcome {
                completion: l1_done,
                hit: true,
                dram_accesses: 0,
                filled_line: None,
            }
        } else {
            let hier = hier.expect("access_resident called on a non-resident line");
            let line = self.cache.line_addr(addr);
            let issue = self.mshrs.acquire(l1_done);
            let down = hier.access(line, issue, kind);
            self.mshrs.record_fill(down.completion);
            L1Outcome {
                completion: down.completion + 1, // fill-forward cycle
                hit: false,
                dram_accesses: down.dram_accesses,
                filled_line: Some(line),
            }
        }
    }

    /// Counters of this L1.
    #[inline]
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Ends a frame: returns the counters and resets them and the port reservation;
    /// contents stay warm.
    pub fn end_frame(&mut self) -> CacheStats {
        let s = *self.cache.stats();
        self.cache.reset_stats();
        self.port_free = 0;
        self.mshrs.clear();
        s
    }

    /// Invalidates contents and counters (between independent runs).
    pub fn cold_reset(&mut self) {
        self.cache.invalidate_all();
        self.cache.reset_stats();
        self.port_free = 0;
        self.mshrs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(CacheConfig::shared_l2(), DramConfig::lpddr4(), 5000)
    }

    #[test]
    fn l1_miss_goes_through_l2_to_dram_then_hits() {
        let mut h = hier();
        let mut l1 = L1Cache::new(CacheConfig::texture_l1());
        let a = l1.access(0x4000_0000, 0, AccessKind::TextureRead, &mut h);
        assert!(!a.hit);
        assert_eq!(a.dram_accesses, 1);
        assert!(
            a.completion > 100,
            "cold miss must pay DRAM latency, got {}",
            a.completion
        );
        let b = l1.access(0x4000_0000, a.completion, AccessKind::TextureRead, &mut h);
        assert!(b.hit);
        assert_eq!(
            b.completion - a.completion,
            CacheConfig::texture_l1().latency
        );
    }

    #[test]
    fn l2_absorbs_misses_from_sibling_l1s() {
        let mut h = hier();
        let mut l1a = L1Cache::new(CacheConfig::texture_l1());
        let mut l1b = L1Cache::new(CacheConfig::texture_l1());
        let a = l1a.access(0x4000_0000, 0, AccessKind::TextureRead, &mut h);
        // Second core misses its own L1 but hits the shared L2: no second DRAM trip.
        let b = l1b.access(0x4000_0000, a.completion, AccessKind::TextureRead, &mut h);
        assert!(!b.hit);
        assert_eq!(b.dram_accesses, 0);
        assert_eq!(h.dram_stats().total_accesses(), 1);
        assert!(
            b.completion - a.completion < 50,
            "L2 hit must be much cheaper than DRAM"
        );
    }

    #[test]
    fn framebuffer_writes_bypass_l2() {
        let mut h = hier();
        let before = h.l2_stats().accesses;
        let out = h.access(0x8000_0000, 0, AccessKind::FramebufferWrite);
        assert_eq!(h.l2_stats().accesses, before, "no L2 access for FB flush");
        assert_eq!(out.dram_accesses, 1);
        assert_eq!(h.dram_stats().writes, 1);
    }

    #[test]
    fn ideal_mode_makes_every_access_an_l1_hit() {
        let mut h = hier();
        h.ideal = true;
        let mut l1 = L1Cache::new(CacheConfig::texture_l1());
        for i in 0..1000u64 {
            let o = l1.access(0x4000_0000 + i * 4096, i, AccessKind::TextureRead, &mut h);
            assert!(o.hit);
            assert_eq!(o.dram_accesses, 0);
        }
        assert_eq!(h.dram_stats().total_accesses(), 0);
    }

    #[test]
    fn end_frame_resets_counters_but_keeps_contents() {
        let mut h = hier();
        let mut l1 = L1Cache::new(CacheConfig::texture_l1());
        l1.access(0x4000_0000, 0, AccessKind::TextureRead, &mut h);
        let (l2s, ds) = h.end_frame();
        assert_eq!(l2s.accesses, 1);
        assert_eq!(ds.total_accesses(), 1);
        let s = l1.end_frame();
        assert_eq!(s.accesses, 1);
        // Warm across the frame boundary:
        let o = l1.access(0x4000_0000, 0, AccessKind::TextureRead, &mut h);
        assert!(o.hit, "L1 contents must survive end_frame");
        assert_eq!(h.dram_stats().total_accesses(), 0);
    }

    #[test]
    fn cold_reset_invalidates() {
        let mut h = hier();
        let mut l1 = L1Cache::new(CacheConfig::texture_l1());
        l1.access(0x4000_0000, 0, AccessKind::TextureRead, &mut h);
        h.cold_reset();
        l1.cold_reset();
        let o = l1.access(0x4000_0000, 0, AccessKind::TextureRead, &mut h);
        assert!(!o.hit);
        assert_eq!(o.dram_accesses, 1);
    }

    #[test]
    fn l2_port_serialises_back_to_back_misses() {
        let mut h = hier();
        // Two different-line accesses at the same cycle: the second's L2 access must
        // start after the first's port occupancy.
        let a = h.access(0x4000_0000, 0, AccessKind::TextureRead);
        let b = h.access(0x4000_1000, 0, AccessKind::TextureRead);
        assert!(b.completion >= a.completion.min(b.completion));
        assert!(h.l2_stats().accesses == 2);
    }

    #[test]
    fn publish_metrics_exports_live_counters() {
        let mut h = hier();
        let mut l1 = L1Cache::new(CacheConfig::texture_l1());
        l1.access(0x4000_0000, 0, AccessKind::TextureRead, &mut h);
        let mut reg = MetricsRegistry::new();
        h.publish_metrics(&mut reg, &[("scope", "test")]);
        assert_eq!(
            reg.counter_value("cache_accesses", &[("scope", "test"), ("cache", "l2")]),
            Some(1)
        );
        assert_eq!(
            reg.counter_value("dram_reads", &[("scope", "test")]),
            Some(1)
        );
        assert!(reg
            .get("dram_requests_per_interval", &[("scope", "test")])
            .is_some());
    }

    #[test]
    fn param_write_goes_through_l2() {
        let mut h = hier();
        let out = h.access(0x2000_0000, 0, AccessKind::ParamWrite);
        assert_eq!(h.l2_stats().accesses, 1);
        assert_eq!(out.dram_accesses, 1, "cold write-allocate reaches DRAM");
        // Subsequent read of the same line hits in L2.
        let rd = h.access(0x2000_0000, out.completion, AccessKind::ParamRead);
        assert!(rd.l2_hit);
    }
}
