//! Banked LPDDR4-like DRAM timing model.
//!
//! The model captures the three effects the paper's mechanism depends on:
//!
//! 1. **Row-buffer locality** — a request to the bank's open row costs
//!    `row_hit_latency`; any other row pays `row_miss_latency` (precharge + activate).
//! 2. **Bank-level parallelism** — each bank can only service one request per
//!    `bank_occupancy` cycles, so same-bank bursts queue up.
//! 3. **Channel-bus serialisation** — every 64 B transfer occupies the channel's data
//!    bus for `burst_cycles`, which caps sustained bandwidth and makes latency grow
//!    super-linearly as utilisation approaches 100 % (Fig 7's congestion peaks).
//!
//! Per-interval request counters reproduce Fig 7's "DRAM requests per 5 000 cycles".

use tbr_common::config::{DramConfig, PagePolicy};
use tbr_common::stats::DramStats;
use tbr_common::trace::{self, Track};
use tbr_common::Cycle;

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    next_free: Cycle,
    open_row: Option<u64>,
    next_refresh: Cycle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RefreshCatchup {
    next_free: Cycle,
    next_refresh: Cycle,
    refreshes: u64,
}

/// Closed form for the refresh catch-up recurrence
/// `nf ← max(nr, nf) + latency; nr ← nr + interval` applied while `now >= nr`.
///
/// With `k` elapsed refreshes, `nf_k = max_i(nr0 + i·interval + (k - i)·latency)`
/// over `i ∈ 0..k`, plus the `nf0 + k·latency` chain; the max over `i` is attained
/// at an endpoint because the expression is affine in `i`. Requires
/// `now >= next_refresh` and `interval > 0`.
fn refresh_catchup(
    now: Cycle,
    next_refresh: Cycle,
    next_free: Cycle,
    interval: Cycle,
    latency: Cycle,
) -> RefreshCatchup {
    debug_assert!(interval > 0 && now >= next_refresh);
    let k = (now - next_refresh) / interval + 1;
    let chained = next_free.max(next_refresh) + k * latency;
    let last_alone = next_refresh + (k - 1) * interval + latency;
    RefreshCatchup {
        next_free: chained.max(last_alone),
        next_refresh: next_refresh + k * interval,
        refreshes: k,
    }
}

/// The DRAM device array + memory controller front.
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
    banks: Vec<Bank>, // channels * banks_per_channel
    channel_bus_free: Vec<Cycle>,
    stats: DramStats,
    stats_refreshes: u64,
}

impl DramModel {
    /// Builds the model. `interval_width` sets the Fig 7 histogram bucket size.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (validate with
    /// [`DramConfig::validate`] first for a recoverable check).
    pub fn new(cfg: DramConfig, interval_width: Cycle) -> Self {
        cfg.validate().expect("invalid DRAM config");
        Self {
            banks: vec![Bank::default(); (cfg.channels * cfg.banks_per_channel) as usize],
            channel_bus_free: vec![0; cfg.channels as usize],
            stats: DramStats::new(interval_width),
            stats_refreshes: 0,
            cfg,
        }
    }

    /// Refresh operations performed so far.
    pub fn refreshes(&self) -> u64 {
        self.stats_refreshes
    }

    /// The configured timing parameters.
    #[inline]
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Channel, bank-within-channel and row of an address. Channels interleave at
    /// 64 B line granularity; banks interleave at row granularity within a channel.
    fn map(&self, addr: u64) -> (usize, usize, u64) {
        let line = addr >> 6;
        let channel = (line % self.cfg.channels) as usize;
        let chan_addr = (line / self.cfg.channels) << 6;
        let row = chan_addr / self.cfg.row_bytes;
        let bank = (row % self.cfg.banks_per_channel) as usize;
        (channel, bank, row)
    }

    /// The channel `addr` maps to — the partition key for channel-sharded event
    /// handling (e.g. [`crate::channels::ChannelQueues`]).
    #[inline]
    pub fn channel_of(&self, addr: u64) -> usize {
        self.map(addr).0
    }

    /// Services one 64 B request arriving at `now`; returns the cycle at which the
    /// data transfer completes. Also records latency/interval statistics.
    pub fn request(&mut self, addr: u64, now: Cycle, is_write: bool) -> Cycle {
        let (channel, bank_in_chan, row) = self.map(addr);
        let bank_idx = channel * self.cfg.banks_per_channel as usize + bank_in_chan;
        let bank = &mut self.banks[bank_idx];

        // Periodic refresh: when due, the bank is blocked for tRFC and its row
        // buffer is closed. Deterministic (refresh is tied to the cycle counter).
        if self.cfg.refresh_interval > 0 {
            if bank.next_refresh == 0 {
                bank.next_refresh = self.cfg.refresh_interval * (1 + bank_idx as u64 % 8) / 8;
            }
            if now >= bank.next_refresh {
                if trace::is_enabled() {
                    // Tracing needs one span per elapsed refresh, so replay them.
                    while now >= bank.next_refresh {
                        let refresh_start = bank.next_refresh.max(bank.next_free);
                        bank.next_free = refresh_start + self.cfg.refresh_latency;
                        bank.open_row = None;
                        bank.next_refresh += self.cfg.refresh_interval;
                        self.stats_refreshes += 1;
                        trace::span(
                            Track::DramBank {
                                channel: channel as u8,
                                bank: bank_in_chan as u8,
                            },
                            "refresh",
                            refresh_start,
                            refresh_start + self.cfg.refresh_latency,
                        );
                    }
                } else {
                    let catchup = refresh_catchup(
                        now,
                        bank.next_refresh,
                        bank.next_free,
                        self.cfg.refresh_interval,
                        self.cfg.refresh_latency,
                    );
                    bank.next_free = catchup.next_free;
                    bank.next_refresh = catchup.next_refresh;
                    bank.open_row = None;
                    self.stats_refreshes += catchup.refreshes;
                }
            }
        }

        let start = now.max(bank.next_free);
        let row_hit = match self.cfg.page_policy {
            PagePolicy::Open => bank.open_row == Some(row),
            PagePolicy::Closed => false,
        };
        let access_latency = match (self.cfg.page_policy, row_hit) {
            (_, true) => self.cfg.row_hit_latency,
            // Closed policy never pays the precharge-on-conflict part; approximate
            // activate + CAS as the midpoint of the Table I band.
            (PagePolicy::Closed, false) => {
                (self.cfg.row_hit_latency + self.cfg.row_miss_latency) / 2
            }
            (PagePolicy::Open, false) => self.cfg.row_miss_latency,
        };
        bank.open_row = match self.cfg.page_policy {
            PagePolicy::Open => Some(row),
            PagePolicy::Closed => None,
        };
        bank.next_free = start + self.cfg.bank_occupancy.max(1);

        // The data burst needs the channel bus once the array access is done.
        let data_ready = start + access_latency;
        let bus = &mut self.channel_bus_free[channel];
        let bus_start = data_ready.saturating_sub(self.cfg.burst_cycles).max(*bus);
        let completion = bus_start + self.cfg.burst_cycles;
        *bus = completion;

        // Statistics.
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        let latency = completion - now;
        self.stats.latency_sum += latency;
        self.stats.max_latency = self.stats.max_latency.max(latency);
        self.stats.record_interval(now);

        // Observation only: the per-bank busy interval and the channel-bus burst.
        if trace::is_enabled() {
            trace::span_args(
                Track::DramBank {
                    channel: channel as u8,
                    bank: bank_in_chan as u8,
                },
                if row_hit { "row hit" } else { "row miss" },
                start,
                start + self.cfg.bank_occupancy.max(1),
                vec![
                    ("row", row.to_string()),
                    ("write", is_write.to_string()),
                    ("latency", latency.to_string()),
                ],
            );
            trace::span(
                Track::DramBus(channel as u8),
                "burst",
                bus_start,
                completion,
            );
        }

        completion
    }

    /// Current counters.
    #[inline]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Takes the counters out, leaving a fresh set (used at frame boundaries).
    pub fn take_stats(&mut self) -> DramStats {
        let width = self.stats.interval_width;
        std::mem::replace(&mut self.stats, DramStats::new(width))
    }

    /// Forgets all open rows and reservations (between independent runs).
    pub fn reset_state(&mut self) {
        for b in &mut self.banks {
            *b = Bank::default();
        }
        self.stats_refreshes = 0;
        for c in &mut self.channel_bus_free {
            *c = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DramModel {
        DramModel::new(DramConfig::lpddr4(), 5000)
    }

    #[test]
    fn first_access_pays_row_miss() {
        let mut d = model();
        let done = d.request(0x0, 0, false);
        // Row miss latency 100 + burst is folded into the tail; total >= 100.
        assert!(done >= 100, "got {done}");
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn same_row_hits_after_activation() {
        let mut d = model();
        let t1 = d.request(0x0, 0, false);
        // Next line in the same channel stripe: +128 with 2 channels means the next
        // same-channel line is addr + 128, which is still within the 2 KB row.
        let t2 = d.request(0x80, t1, false);
        assert_eq!(d.stats().row_hits, 1);
        assert!(
            t2 - t1 <= DramConfig::lpddr4().row_hit_latency + DramConfig::lpddr4().burst_cycles
        );
    }

    #[test]
    fn different_rows_same_bank_conflict() {
        let mut d = model();
        let cfg = DramConfig::lpddr4();
        // Two addresses in the same channel, same bank, different row: stride =
        // row_bytes * channels * banks_per_channel.
        let stride = cfg.row_bytes * cfg.channels * cfg.banks_per_channel;
        d.request(0x0, 0, false);
        d.request(stride, 0, false);
        assert_eq!(d.stats().row_misses, 2);
    }

    #[test]
    fn latency_grows_with_offered_load() {
        // The paper's premise: response time rises as utilisation approaches 100%.
        // Issue N requests all at cycle 0 and observe average latency grow with N.
        let avg_lat = |n: u64| -> f64 {
            let mut d = model();
            for i in 0..n {
                d.request(i * 64, 0, false);
            }
            d.stats().avg_latency()
        };
        let light = avg_lat(4);
        let heavy = avg_lat(256);
        assert!(
            heavy > light * 2.0,
            "queueing should inflate latency: light={light}, heavy={heavy}"
        );
    }

    #[test]
    fn channel_interleaving_spreads_consecutive_lines() {
        let d = model();
        let (c0, _, _) = d.map(0x0);
        let (c1, _, _) = d.map(0x40);
        assert_ne!(c0, c1, "adjacent lines should hit different channels");
    }

    #[test]
    fn bandwidth_is_capped_by_burst_cycles() {
        let mut d = model();
        let cfg = DramConfig::lpddr4();
        let n = 1000u64;
        let mut last = 0;
        for i in 0..n {
            last = last.max(d.request(i * 64, 0, false));
        }
        // n requests over `channels` buses, each occupying burst_cycles:
        let min_time = n * cfg.burst_cycles / cfg.channels;
        assert!(last >= min_time, "finished at {last}, bus floor {min_time}");
    }

    #[test]
    fn interval_histogram_records_arrivals() {
        let mut d = model();
        d.request(0x0, 0, false);
        d.request(0x40, 4999, false);
        d.request(0x80, 5001, true);
        assert_eq!(d.stats().intervals, vec![2, 1]);
        assert_eq!(d.stats().reads, 2);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn take_stats_resets_counters_but_keeps_width() {
        let mut d = model();
        d.request(0x0, 0, false);
        let s = d.take_stats();
        assert_eq!(s.total_accesses(), 1);
        assert_eq!(d.stats().total_accesses(), 0);
        assert_eq!(d.stats().interval_width, 5000);
    }

    #[test]
    fn tracing_emits_bank_and_bus_spans_without_changing_timing() {
        let mut plain = model();
        let mut traced = model();
        let addrs: Vec<u64> = (0..32).map(|i| i * 64).collect();
        let untraced: Vec<Cycle> = addrs.iter().map(|&a| plain.request(a, 0, false)).collect();
        trace::start();
        let with_trace: Vec<Cycle> = addrs.iter().map(|&a| traced.request(a, 0, false)).collect();
        let t = trace::finish().unwrap();
        assert_eq!(untraced, with_trace, "tracing must not perturb timing");
        let bank_spans = t
            .events
            .iter()
            .filter(|e| matches!(e.track, Track::DramBank { .. }))
            .count();
        let bus_spans = t
            .events
            .iter()
            .filter(|e| matches!(e.track, Track::DramBus(_)))
            .count();
        assert_eq!(bank_spans, addrs.len(), "one bank span per request");
        assert_eq!(bus_spans, addrs.len(), "one bus span per request");
    }

    #[test]
    fn reset_state_closes_rows() {
        let mut d = model();
        d.request(0x0, 0, false);
        d.reset_state();
        d.request(0x0, 10_000, false);
        assert_eq!(
            d.stats().row_misses,
            2,
            "row must be re-activated after reset"
        );
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use tbr_common::config::PagePolicy;

    #[test]
    fn closed_policy_never_row_hits() {
        let mut cfg = DramConfig::lpddr4();
        cfg.page_policy = PagePolicy::Closed;
        let mut d = DramModel::new(cfg, 5000);
        let mut t = 0;
        for i in 0..10u64 {
            t = d.request(i * 128, t, false); // same row under open policy
        }
        assert_eq!(d.stats().row_hits, 0);
        assert_eq!(d.stats().row_misses, 10);
    }

    #[test]
    fn open_policy_beats_closed_for_streaming() {
        let run = |policy: PagePolicy| -> Cycle {
            let mut cfg = DramConfig::lpddr4();
            cfg.page_policy = policy;
            cfg.refresh_interval = 0;
            let mut d = DramModel::new(cfg, 5000);
            let mut t = 0;
            for i in 0..64u64 {
                t = d.request(i * 128, t, false); // streams one row
            }
            t
        };
        assert!(run(PagePolicy::Open) < run(PagePolicy::Closed));
    }

    #[test]
    fn refresh_blocks_banks_and_closes_rows() {
        let mut cfg = DramConfig::lpddr4();
        cfg.refresh_interval = 1000;
        cfg.refresh_latency = 200;
        let mut d = DramModel::new(cfg, 5000);
        d.request(0x0, 0, false);
        // Far in the future: several refreshes have elapsed, and the row is closed
        // again (row miss even though the same row is accessed).
        d.request(0x80, 10_000, false);
        assert!(d.refreshes() > 0, "refresh must have fired");
        assert_eq!(d.stats().row_hits, 0, "refresh closes the open row");
    }

    #[test]
    fn refresh_disabled_when_interval_zero() {
        let mut cfg = DramConfig::lpddr4();
        cfg.refresh_interval = 0;
        let mut d = DramModel::new(cfg, 5000);
        d.request(0x0, 0, false);
        d.request(0x80, 1_000_000, false);
        assert_eq!(d.refreshes(), 0);
        assert_eq!(d.stats().row_hits, 1, "row stays open without refresh");
    }

    #[test]
    fn refresh_catchup_matches_reference_loop() {
        // Reference: the literal per-refresh recurrence the traced path still runs.
        fn reference(
            now: Cycle,
            mut nr: Cycle,
            mut nf: Cycle,
            i: Cycle,
            l: Cycle,
        ) -> RefreshCatchup {
            let mut refreshes = 0;
            while now >= nr {
                nf = nr.max(nf) + l;
                nr += i;
                refreshes += 1;
            }
            RefreshCatchup {
                next_free: nf,
                next_refresh: nr,
                refreshes,
            }
        }
        let mut rng = tbr_common::rng::Xoshiro256pp::seed_from_u64(0x00D7_A311);
        for _ in 0..5000 {
            let interval = 1 + rng.next_u64() % 4000;
            let latency = rng.next_u64() % 600; // covers latency 0, < interval, >= interval
            let nr = rng.next_u64() % 5000;
            let nf = rng.next_u64() % 10_000;
            let now = nr + rng.next_u64() % 50_000;
            let fast = refresh_catchup(now, nr, nf, interval, latency);
            let slow = reference(now, nr, nf, interval, latency);
            assert_eq!(
                fast, slow,
                "now={now} nr={nr} nf={nf} interval={interval} latency={latency}"
            );
        }
    }

    #[test]
    fn traced_and_untraced_refresh_timing_agree() {
        let mut cfg = DramConfig::lpddr4();
        cfg.refresh_interval = 700;
        cfg.refresh_latency = 90;
        let mut plain = DramModel::new(cfg, 5000);
        let mut traced = DramModel::new(cfg, 5000);
        let times: Vec<Cycle> = (0..40).map(|i| i * i * 37).collect();
        let untraced: Vec<Cycle> = times
            .iter()
            .map(|&t| plain.request(t % 7 * 64, t, false))
            .collect();
        trace::start();
        let with_trace: Vec<Cycle> = times
            .iter()
            .map(|&t| traced.request(t % 7 * 64, t, false))
            .collect();
        let _ = trace::finish();
        assert_eq!(untraced, with_trace);
        assert_eq!(plain.refreshes(), traced.refreshes());
    }

    #[test]
    fn refreshes_are_deterministic() {
        let mut a = DramModel::new(DramConfig::lpddr4(), 5000);
        let mut b = DramModel::new(DramConfig::lpddr4(), 5000);
        for i in 0..500u64 {
            assert_eq!(
                a.request(i * 64, i * 13, false),
                b.request(i * 64, i * 13, false)
            );
        }
        assert_eq!(a.refreshes(), b.refreshes());
    }
}
