//! # tbr-common — shared vocabulary of the LIBRA TBR GPU simulator
//!
//! This crate holds the types every other crate in the workspace speaks:
//!
//! * [`ids`] — strongly-typed identifiers for tiles, supertiles, frames, raster units,
//!   shader cores, textures and draw calls ([`ids::TileId`], [`ids::TileCoord`], …).
//! * [`config`] — the full simulated-GPU configuration ([`config::GpuConfig`]) with
//!   presets matching Table I of the paper (baseline 1 RU × 8 cores, LIBRA N RU × 4
//!   cores, LPDDR4-like DRAM, the cache hierarchy of an ARM-Valhall-class mobile GPU).
//! * [`stats`] — per-frame and per-sequence measurement containers (cache hit ratios,
//!   DRAM interval counters for Fig 7, per-tile heatmaps for Fig 2, texture latency
//!   accumulators for Fig 12, …).
//! * [`morton`] — the Morton (Z-order) codec and grid traversals used by the baseline
//!   tile fetcher and inside LIBRA supertiles.
//! * [`addr`] — the simulated physical address map (vertex data, parameter buffer,
//!   textures, framebuffer) and [`addr::AccessKind`].
//! * [`rng`] — the vendored deterministic PRNG (SplitMix64-seeded xoshiro256++)
//!   behind scene synthesis, property-test generation and campaign job seeding,
//!   keeping the workspace free of crates.io dependencies.
//! * [`trace`] — the runtime-gated cycle-level event tracer (spans + instants in
//!   simulated time) with a hand-rolled Chrome trace-event JSON writer for
//!   Perfetto / `chrome://tracing`.
//! * [`metrics`] — the typed metrics registry ([`metrics::MetricsRegistry`]) the
//!   GPU model, memory hierarchy and scheduler publish into; JSON/CSV output.
//! * [`json`] — a minimal validating JSON parser backing the trace-export smoke
//!   checks (no serde anywhere in the workspace).
//! * [`mechanism`] — the `--mechanism` axis ([`mechanism::MechanismSpec`]):
//!   which optional mechanisms (Rendering Elimination, WaSP) are layered on
//!   top of the scheduler for a run.
//! * [`arena`] — per-frame bump arenas ([`arena::Arena`]/[`arena::Span`]): the
//!   raster phase's scratch allocations become index spans into one backing
//!   vector, reset wholesale between frames.
//! * [`binio`] — endian-pinned (little-endian) binary encode/decode helpers
//!   behind the `libra-ckpt-bin-v1` and `libra-metrics-bin-v1` sidecars.
//! * [`hostprof`] — the host wall-clock twin of [`trace`]: a runtime-gated
//!   profiler the parallel event-loop driver publishes per-phase epoch/stall
//!   telemetry into (barrier waits, commit serialization, shard imbalance).
//! * [`wire`] — length-sane newline framing for the `libra-wire-v1` campaign
//!   service protocol (atomic frame writes, capped frame reads).
//!
//! Nothing in here performs simulation; it is pure data and arithmetic, which keeps
//! the dependency DAG of the workspace acyclic.
//!
//! ```
//! use tbr_common::config::{GpuConfig, ScreenConfig};
//!
//! let screen = ScreenConfig::quarter_fhd();
//! assert_eq!(screen.num_tiles(), 510); // same count as FHD 2x2 supertiles (§III-E)
//! let cfg = GpuConfig::baseline(screen);
//! assert_eq!(cfg.total_cores(), 8);
//! ```

#![deny(missing_docs)]

pub mod addr;
pub mod arena;
pub mod binio;
pub mod config;
pub mod error;
pub mod event_queue;
pub mod fasthash;
pub mod hilbert;
pub mod hostprof;
pub mod ids;
pub mod json;
pub mod mechanism;
pub mod metrics;
pub mod morton;
pub mod rng;
pub mod stats;
pub mod trace;
pub mod wire;

/// Simulation time, in GPU core cycles (800 MHz in the paper's Table I).
pub type Cycle = u64;
