//! Hilbert-curve codec and grid traversal.
//!
//! The related work DTexL (Joseph et al., MICRO 2022 — cited as \[35\] in the LIBRA
//! paper) uses a *Hilbert* tile traversal for texture locality: unlike Morton order,
//! consecutive Hilbert positions are always 4-neighbours, so it never takes the
//! diagonal jumps the Z-curve takes between quadrants. This module provides the codec
//! for the ablation comparing Z-order, scanline and Hilbert traversals.

use crate::ids::TileCoord;

/// Converts a distance `d` along the Hilbert curve of order `n` (an `n`×`n` grid,
/// `n` a power of two) to its `(x, y)` coordinate.
///
/// # Panics
/// Panics if `n` is not a power of two.
pub fn hilbert_d2xy(n: u32, d: u64) -> (u32, u32) {
    assert!(n.is_power_of_two(), "Hilbert order must be a power of two");
    let (mut x, mut y) = (0u32, 0u32);
    let mut t = d;
    let mut s = 1u32;
    while s < n {
        let rx = 1 & (t / 2) as u32;
        let ry = 1 & ((t as u32) ^ rx);
        rot(s, &mut x, &mut y, rx, ry);
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

/// Converts an `(x, y)` coordinate to its distance along the Hilbert curve of order
/// `n`. Inverse of [`hilbert_d2xy`].
///
/// # Panics
/// Panics if `n` is not a power of two or the coordinate is out of range.
pub fn hilbert_xy2d(n: u32, mut x: u32, mut y: u32) -> u64 {
    assert!(n.is_power_of_two(), "Hilbert order must be a power of two");
    assert!(x < n && y < n, "coordinate out of range");
    let mut d = 0u64;
    let mut s = n / 2;
    while s > 0 {
        let rx = u32::from(x & s > 0);
        let ry = u32::from(y & s > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        rot(s, &mut x, &mut y, rx, ry);
        s /= 2;
    }
    d
}

fn rot(s: u32, x: &mut u32, y: &mut u32, rx: u32, ry: u32) {
    if ry == 0 {
        if rx == 1 {
            *x = s.wrapping_sub(1).wrapping_sub(*x);
            *y = s.wrapping_sub(1).wrapping_sub(*y);
        }
        core::mem::swap(x, y);
    }
}

/// Produces the coordinates of a `tiles_x` × `tiles_y` grid in Hilbert order
/// (walking the curve of the covering power-of-two square and skipping off-grid
/// positions).
pub fn hilbert_traversal(tiles_x: u32, tiles_y: u32) -> Vec<TileCoord> {
    let n = tiles_x.max(tiles_y).max(1).next_power_of_two();
    let mut out = Vec::with_capacity((tiles_x * tiles_y) as usize);
    for d in 0..(n as u64) * (n as u64) {
        let (x, y) = hilbert_d2xy(n, d);
        if x < tiles_x && y < tiles_y {
            out.push(TileCoord::new(x, y));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn d2xy_and_xy2d_are_inverse() {
        for n in [2u32, 4, 8, 16, 32] {
            for d in 0..(n as u64) * (n as u64) {
                let (x, y) = hilbert_d2xy(n, d);
                assert!(x < n && y < n);
                assert_eq!(hilbert_xy2d(n, x, y), d, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn consecutive_positions_are_4_neighbours() {
        // The Hilbert property Morton lacks: every step moves exactly 1 in x or y.
        let n = 16u32;
        let mut prev = hilbert_d2xy(n, 0);
        for d in 1..(n as u64) * (n as u64) {
            let cur = hilbert_d2xy(n, d);
            let dist = prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1);
            assert_eq!(dist, 1, "step {d}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn traversal_covers_non_square_grids_exactly_once() {
        let order = hilbert_traversal(30, 17);
        assert_eq!(order.len(), 510);
        let set: HashSet<_> = order.iter().copied().collect();
        assert_eq!(set.len(), 510);
        for c in &order {
            assert!(c.x < 30 && c.y < 17);
        }
    }

    #[test]
    fn hilbert_has_no_diagonal_jumps_on_full_squares() {
        // Average Chebyshev step distance is exactly 1 on a full square grid —
        // strictly better than Z-order, which jumps across quadrant boundaries.
        let h = hilbert_traversal(16, 16);
        let max_step =
            h.windows(2).map(|w| w[0].chebyshev_distance(w[1])).max().unwrap();
        assert_eq!(max_step, 1);
        let z = crate::morton::zorder_traversal(16, 16);
        let z_max = z.windows(2).map(|w| w[0].chebyshev_distance(w[1])).max().unwrap();
        assert!(z_max > 1, "Z-order does jump: {z_max}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_order_rejected() {
        let _ = hilbert_d2xy(12, 0);
    }
}
