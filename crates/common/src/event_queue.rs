//! Deterministic indexed event queue for the cycle-level simulators.
//!
//! The simulation cores (raster phase, and the MSHR files of the memory
//! hierarchy) repeatedly need "the micro-event with the earliest timestamp".
//! Scanning every candidate per event is O(candidates) *per event* — the hottest
//! loop in the repo before this module existed. [`EventQueue`] replaces those
//! scans with a hand-rolled binary min-heap over `(Cycle, K)` pairs.
//!
//! ## Deterministic tie-break contract
//!
//! Entries are ordered **lexicographically by `(time, key)`**: earlier cycles
//! first, and among equal cycles the smallest key first. The key must therefore
//! be a *stable* identity (a Raster-Unit index, an in-flight warp slot, a bank
//! id …) so that pop order is a pure function of the pushed set — never of heap
//! internals, insertion order, or pointer values. This is what lets the indexed
//! raster-phase loop reproduce the legacy linear scan *bit-identically*: the
//! scan picks the first minimum in iteration order, which is exactly the
//! lexicographic `(time, index)` minimum.
//!
//! ## Lazy invalidation
//!
//! The queue deliberately has no `decrease_key`/`remove`. Simulation events get
//! rescheduled all the time (a warp that steps acquires a new ready time); the
//! cheap way out is to push a fresh entry and let the stale one *lazily
//! invalidate*: [`EventQueue::peek_valid`] / [`EventQueue::pop_valid`] take a
//! caller-supplied predicate that decides whether an entry still describes
//! reality, and silently discard the ones that do not. Validity must be
//! checkable from the entry alone (time + key vs. current simulator state).
//!
//! Duplicates of a *currently valid* entry are harmless by construction: they
//! describe the same candidate, and processing the candidate changes its time,
//! which invalidates the leftovers.

use crate::Cycle;

/// A deterministic binary min-heap of `(time, key)` events with lazy
/// invalidation. See the module docs for the ordering and validity contract.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<K> {
    heap: Vec<(Cycle, K)>,
}

impl<K: Copy + Ord> EventQueue<K> {
    /// An empty queue.
    pub fn new() -> Self {
        Self { heap: Vec::new() }
    }

    /// An empty queue with room for `cap` entries before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: Vec::with_capacity(cap),
        }
    }

    /// Number of entries currently stored (including stale ones).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no entries at all (stale or live).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Schedules `key` at `time`. O(log n).
    pub fn push(&mut self, time: Cycle, key: K) {
        self.heap.push((time, key));
        self.sift_up(self.heap.len() - 1);
    }

    /// The earliest entry (lexicographic `(time, key)` minimum), if any.
    pub fn peek(&self) -> Option<(Cycle, K)> {
        self.heap.first().copied()
    }

    /// Removes and returns the earliest entry.
    pub fn pop(&mut self) -> Option<(Cycle, K)> {
        let n = self.heap.len();
        match n {
            0 => None,
            1 => self.heap.pop(),
            _ => {
                self.heap.swap(0, n - 1);
                let min = self.heap.pop();
                self.sift_down(0);
                min
            }
        }
    }

    /// The earliest entry for which `valid(time, key)` holds; entries rejected by
    /// the predicate are discarded on the way (lazy invalidation). The returned
    /// entry itself stays in the queue.
    pub fn peek_valid(&mut self, mut valid: impl FnMut(Cycle, K) -> bool) -> Option<(Cycle, K)> {
        while let Some((t, k)) = self.peek() {
            if valid(t, k) {
                return Some((t, k));
            }
            self.pop();
        }
        None
    }

    /// Removes and returns the earliest entry for which `valid(time, key)` holds,
    /// discarding stale entries on the way.
    pub fn pop_valid(&mut self, mut valid: impl FnMut(Cycle, K) -> bool) -> Option<(Cycle, K)> {
        while let Some((t, k)) = self.pop() {
            if valid(t, k) {
                return Some((t, k));
            }
        }
        None
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i] < self.heap[parent] {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.heap[l] < self.heap[smallest] {
                smallest = l;
            }
            if r < n && self.heap[r] < self.heap[smallest] {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

/// An [`EventQueue`] partitioned into per-shard sub-queues with an epoch API.
///
/// The intra-frame parallel raster driver shards its event set by Raster Unit
/// (and the memory system by DRAM channel): each shard's sub-queue can be
/// advanced independently by a worker, while barrier-synchronisation decisions
/// are made from the *merged* view. Two operations define the epoch protocol:
///
/// * [`ShardedEventQueue::horizon`] — the lexicographic `(time, key)` minimum
///   across every shard head. No shard may process an event beyond another
///   shard's horizon without coordination, so this is the conservative epoch
///   bound a barrier is placed at.
/// * [`ShardedEventQueue::pop_min_valid`] — removes the merged-order minimum
///   (the canonical `(ready_cycle, stable key)` order), which is exactly the
///   order a single flat [`EventQueue`] over the union would pop in. This is
///   what makes the sharded and flat organisations bit-identical.
///
/// Sub-queues can be detached with [`ShardedEventQueue::into_shards`] (handed
/// to worker threads for a drain phase) and re-attached with
/// [`ShardedEventQueue::from_shards`] at the barrier.
///
/// Keys must be globally unique across shards (e.g. global RU indices) for the
/// merged tie-break to be total; validity predicates work exactly as on
/// [`EventQueue`].
#[derive(Debug, Clone, Default)]
pub struct ShardedEventQueue<K> {
    shards: Vec<EventQueue<K>>,
    /// Lifetime push count — exchange-volume telemetry for `hostprof`, same
    /// contract as `ChannelQueues::total_pushed` in `tbr-mem`.
    pushed: u64,
    /// Lifetime count of entries handed back by the popping APIs (stale
    /// entries discarded by lazy invalidation are not "drained").
    drained: u64,
}

impl<K: Copy + Ord> ShardedEventQueue<K> {
    /// `num_shards` empty sub-queues.
    pub fn new(num_shards: usize) -> Self {
        Self {
            shards: (0..num_shards).map(|_| EventQueue::new()).collect(),
            pushed: 0,
            drained: 0,
        }
    }

    /// Reassembles a queue from detached sub-queues (the barrier direction of
    /// [`ShardedEventQueue::into_shards`]). The lifetime counters restart at
    /// zero — a detach/re-attach cycle hands ownership to workers, whose local
    /// activity is accounted on their side.
    pub fn from_shards(shards: Vec<EventQueue<K>>) -> Self {
        Self { shards, pushed: 0, drained: 0 }
    }

    /// Detaches the sub-queues so each can be moved to a worker.
    pub fn into_shards(self) -> Vec<EventQueue<K>> {
        self.shards
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Entries across all shards (including stale ones).
    pub fn len(&self) -> usize {
        self.shards.iter().map(EventQueue::len).sum()
    }

    /// Whether no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(EventQueue::is_empty)
    }

    /// Direct access to one sub-queue.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard_mut(&mut self, shard: usize) -> &mut EventQueue<K> {
        &mut self.shards[shard]
    }

    /// Schedules `key` at `time` on `shard`.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn push(&mut self, shard: usize, time: Cycle, key: K) {
        self.pushed += 1;
        self.shards[shard].push(time, key);
    }

    /// Lifetime number of entries pushed through [`ShardedEventQueue::push`]
    /// (direct `shard_mut` pushes are not counted).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Lifetime number of valid entries returned by
    /// [`ShardedEventQueue::pop_min_valid`] / [`ShardedEventQueue::pop_shard_until`].
    pub fn total_drained(&self) -> u64 {
        self.drained
    }

    /// The valid head of one shard (stale entries are discarded on the way).
    pub fn peek_shard_valid(
        &mut self,
        shard: usize,
        valid: impl FnMut(Cycle, K) -> bool,
    ) -> Option<(Cycle, K)> {
        self.shards[shard].peek_valid(valid)
    }

    /// The epoch horizon: the lexicographic `(time, key)` minimum over all
    /// shard heads, after lazy invalidation. `None` when every shard is empty
    /// of valid entries.
    pub fn horizon(&mut self, mut valid: impl FnMut(Cycle, K) -> bool) -> Option<(Cycle, K)> {
        let mut best: Option<(Cycle, K)> = None;
        for q in &mut self.shards {
            if let Some(head) = q.peek_valid(&mut valid) {
                if best.is_none_or(|b| head < b) {
                    best = Some(head);
                }
            }
        }
        best
    }

    /// Removes and returns the merged-order minimum `(shard, time, key)` —
    /// the same entry a flat [`EventQueue`] over the union would pop next.
    pub fn pop_min_valid(
        &mut self,
        mut valid: impl FnMut(Cycle, K) -> bool,
    ) -> Option<(usize, Cycle, K)> {
        let mut best: Option<(usize, (Cycle, K))> = None;
        for (s, q) in self.shards.iter_mut().enumerate() {
            if let Some(head) = q.peek_valid(&mut valid) {
                if best.is_none_or(|(_, b)| head < b) {
                    best = Some((s, head));
                }
            }
        }
        let (s, _) = best?;
        let (t, k) = self.shards[s].pop().expect("peeked head exists");
        self.drained += 1;
        Some((s, t, k))
    }

    /// Drains one shard up to (and including) `horizon`: pops valid entries
    /// while the shard head's time is `<= horizon`. Events beyond the horizon
    /// stay queued — the "no event crosses an epoch barrier" discipline.
    pub fn pop_shard_until(
        &mut self,
        shard: usize,
        horizon: Cycle,
        mut valid: impl FnMut(Cycle, K) -> bool,
        mut f: impl FnMut(Cycle, K),
    ) {
        while let Some((t, k)) = self.shards[shard].peek_valid(&mut valid) {
            if t > horizon {
                break;
            }
            self.shards[shard].pop();
            self.drained += 1;
            f(t, k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (t, k) in [(5u64, 0u32), (1, 1), (9, 2), (3, 3), (1, 4)] {
            q.push(t, k);
        }
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![(1, 1), (1, 4), (3, 3), (5, 0), (9, 2)]);
    }

    #[test]
    fn equal_times_break_ties_by_key() {
        let mut q = EventQueue::new();
        for k in [3u32, 0, 2, 1] {
            q.push(7, k);
        }
        assert_eq!(q.pop(), Some((7, 0)));
        assert_eq!(q.pop(), Some((7, 1)));
        assert_eq!(q.pop(), Some((7, 2)));
        assert_eq!(q.pop(), Some((7, 3)));
    }

    #[test]
    fn peek_valid_discards_stale_entries() {
        let mut q = EventQueue::new();
        q.push(1, 10u32);
        q.push(2, 20);
        q.push(3, 30);
        // Entries with key < 15 are stale.
        assert_eq!(q.peek_valid(|_, k| k >= 15), Some((2, 20)));
        assert_eq!(q.len(), 2, "stale entry must be dropped, valid ones kept");
        assert_eq!(q.pop(), Some((2, 20)));
    }

    #[test]
    fn pop_valid_consumes_the_entry() {
        let mut q = EventQueue::new();
        q.push(4, 1u32);
        q.push(5, 2);
        assert_eq!(q.pop_valid(|_, _| true), Some((4, 1)));
        assert_eq!(q.peek(), Some((5, 2)));
    }

    #[test]
    fn duplicates_are_preserved() {
        let mut q = EventQueue::new();
        q.push(2, 7u8);
        q.push(2, 7);
        assert_eq!(q.pop(), Some((2, 7)));
        assert_eq!(q.pop(), Some((2, 7)));
        assert!(q.is_empty());
    }

    #[test]
    fn unit_key_works_as_plain_time_heap() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(9, ());
        q.push(4, ());
        assert_eq!(q.pop(), Some((4, ())));
        assert_eq!(q.peek(), Some((9, ())));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut q = EventQueue::with_capacity(8);
        q.push(1, 1u32);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn sharded_merged_pop_matches_flat_queue() {
        // The canonical-merge contract: pop_min_valid over shards reproduces a
        // flat queue's pop order exactly, for any distribution of events.
        let events = [(5u64, 7u32), (1, 3), (5, 2), (9, 0), (1, 8), (3, 5), (3, 4)];
        let mut flat = EventQueue::new();
        let mut sharded = ShardedEventQueue::new(3);
        for &(t, k) in &events {
            flat.push(t, k);
            sharded.push(k as usize % 3, t, k);
        }
        while let Some((t, k)) = flat.pop() {
            let (s, st, sk) = sharded.pop_min_valid(|_, _| true).expect("same population");
            assert_eq!((st, sk), (t, k));
            assert_eq!(s, k as usize % 3, "entry popped from its home shard");
        }
        assert!(sharded.pop_min_valid(|_, _| true).is_none());
        assert!(sharded.is_empty());
    }

    #[test]
    fn sharded_horizon_is_min_over_shard_heads() {
        let mut q = ShardedEventQueue::new(2);
        assert_eq!(q.horizon(|_, _| true), None);
        q.push(0, 10, 1u32);
        q.push(1, 4, 2);
        assert_eq!(q.horizon(|_, _| true), Some((4, 2)));
        // Stale entries are invisible to the horizon.
        assert_eq!(q.horizon(|_, k| k != 2), Some((10, 1)));
    }

    #[test]
    fn sharded_pop_until_respects_the_horizon() {
        let mut q = ShardedEventQueue::new(2);
        for (t, k) in [(1u64, 0u32), (3, 2), (7, 4)] {
            q.push(0, t, k);
        }
        q.push(1, 5, 1);
        let mut drained = Vec::new();
        q.pop_shard_until(0, 5, |_, _| true, |t, k| drained.push((t, k)));
        assert_eq!(
            drained,
            vec![(1, 0), (3, 2)],
            "the event at t=7 must not cross t=5"
        );
        assert_eq!(q.shard_mut(0).peek(), Some((7, 4)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn sharded_counters_track_pushes_and_valid_drains() {
        let mut q = ShardedEventQueue::new(2);
        assert_eq!((q.total_pushed(), q.total_drained()), (0, 0));
        q.push(0, 1, 1u32);
        q.push(0, 2, 9); // will be invalidated, never drained
        q.push(1, 3, 2);
        assert_eq!(q.total_pushed(), 3);
        assert_eq!(q.pop_min_valid(|_, k| k < 5), Some((0, 1, 1)));
        let mut seen = Vec::new();
        q.pop_shard_until(1, 10, |_, k| k < 5, |t, k| seen.push((t, k)));
        q.pop_shard_until(0, 10, |_, k| k < 5, |t, k| seen.push((t, k)));
        assert_eq!(seen, vec![(3, 2)]);
        assert_eq!(q.total_drained(), 2, "stale entries are not drained");
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_detach_and_reattach_round_trips() {
        let mut q = ShardedEventQueue::new(2);
        q.push(0, 2, 10u32);
        q.push(1, 1, 11);
        let shards = q.into_shards();
        assert_eq!(shards.len(), 2);
        let mut q = ShardedEventQueue::from_shards(shards);
        assert_eq!(q.num_shards(), 2);
        assert_eq!(q.pop_min_valid(|_, _| true), Some((1, 1, 11)));
        assert_eq!(q.pop_min_valid(|_, _| true), Some((0, 2, 10)));
    }
}
