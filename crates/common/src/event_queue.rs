//! Deterministic indexed event queue for the cycle-level simulators.
//!
//! The simulation cores (raster phase, and the MSHR files of the memory
//! hierarchy) repeatedly need "the micro-event with the earliest timestamp".
//! Scanning every candidate per event is O(candidates) *per event* — the hottest
//! loop in the repo before this module existed. [`EventQueue`] replaces those
//! scans with a hand-rolled binary min-heap over `(Cycle, K)` pairs.
//!
//! ## Deterministic tie-break contract
//!
//! Entries are ordered **lexicographically by `(time, key)`**: earlier cycles
//! first, and among equal cycles the smallest key first. The key must therefore
//! be a *stable* identity (a Raster-Unit index, an in-flight warp slot, a bank
//! id …) so that pop order is a pure function of the pushed set — never of heap
//! internals, insertion order, or pointer values. This is what lets the indexed
//! raster-phase loop reproduce the legacy linear scan *bit-identically*: the
//! scan picks the first minimum in iteration order, which is exactly the
//! lexicographic `(time, index)` minimum.
//!
//! ## Lazy invalidation
//!
//! The queue deliberately has no `decrease_key`/`remove`. Simulation events get
//! rescheduled all the time (a warp that steps acquires a new ready time); the
//! cheap way out is to push a fresh entry and let the stale one *lazily
//! invalidate*: [`EventQueue::peek_valid`] / [`EventQueue::pop_valid`] take a
//! caller-supplied predicate that decides whether an entry still describes
//! reality, and silently discard the ones that do not. Validity must be
//! checkable from the entry alone (time + key vs. current simulator state).
//!
//! Duplicates of a *currently valid* entry are harmless by construction: they
//! describe the same candidate, and processing the candidate changes its time,
//! which invalidates the leftovers.

use crate::Cycle;

/// A deterministic binary min-heap of `(time, key)` events with lazy
/// invalidation. See the module docs for the ordering and validity contract.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<K> {
    heap: Vec<(Cycle, K)>,
}

impl<K: Copy + Ord> EventQueue<K> {
    /// An empty queue.
    pub fn new() -> Self {
        Self { heap: Vec::new() }
    }

    /// An empty queue with room for `cap` entries before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Self { heap: Vec::with_capacity(cap) }
    }

    /// Number of entries currently stored (including stale ones).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no entries at all (stale or live).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Schedules `key` at `time`. O(log n).
    pub fn push(&mut self, time: Cycle, key: K) {
        self.heap.push((time, key));
        self.sift_up(self.heap.len() - 1);
    }

    /// The earliest entry (lexicographic `(time, key)` minimum), if any.
    pub fn peek(&self) -> Option<(Cycle, K)> {
        self.heap.first().copied()
    }

    /// Removes and returns the earliest entry.
    pub fn pop(&mut self) -> Option<(Cycle, K)> {
        let n = self.heap.len();
        match n {
            0 => None,
            1 => self.heap.pop(),
            _ => {
                self.heap.swap(0, n - 1);
                let min = self.heap.pop();
                self.sift_down(0);
                min
            }
        }
    }

    /// The earliest entry for which `valid(time, key)` holds; entries rejected by
    /// the predicate are discarded on the way (lazy invalidation). The returned
    /// entry itself stays in the queue.
    pub fn peek_valid(&mut self, mut valid: impl FnMut(Cycle, K) -> bool) -> Option<(Cycle, K)> {
        while let Some((t, k)) = self.peek() {
            if valid(t, k) {
                return Some((t, k));
            }
            self.pop();
        }
        None
    }

    /// Removes and returns the earliest entry for which `valid(time, key)` holds,
    /// discarding stale entries on the way.
    pub fn pop_valid(&mut self, mut valid: impl FnMut(Cycle, K) -> bool) -> Option<(Cycle, K)> {
        while let Some((t, k)) = self.pop() {
            if valid(t, k) {
                return Some((t, k));
            }
        }
        None
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i] < self.heap[parent] {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.heap[l] < self.heap[smallest] {
                smallest = l;
            }
            if r < n && self.heap[r] < self.heap[smallest] {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (t, k) in [(5u64, 0u32), (1, 1), (9, 2), (3, 3), (1, 4)] {
            q.push(t, k);
        }
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![(1, 1), (1, 4), (3, 3), (5, 0), (9, 2)]);
    }

    #[test]
    fn equal_times_break_ties_by_key() {
        let mut q = EventQueue::new();
        for k in [3u32, 0, 2, 1] {
            q.push(7, k);
        }
        assert_eq!(q.pop(), Some((7, 0)));
        assert_eq!(q.pop(), Some((7, 1)));
        assert_eq!(q.pop(), Some((7, 2)));
        assert_eq!(q.pop(), Some((7, 3)));
    }

    #[test]
    fn peek_valid_discards_stale_entries() {
        let mut q = EventQueue::new();
        q.push(1, 10u32);
        q.push(2, 20);
        q.push(3, 30);
        // Entries with key < 15 are stale.
        assert_eq!(q.peek_valid(|_, k| k >= 15), Some((2, 20)));
        assert_eq!(q.len(), 2, "stale entry must be dropped, valid ones kept");
        assert_eq!(q.pop(), Some((2, 20)));
    }

    #[test]
    fn pop_valid_consumes_the_entry() {
        let mut q = EventQueue::new();
        q.push(4, 1u32);
        q.push(5, 2);
        assert_eq!(q.pop_valid(|_, _| true), Some((4, 1)));
        assert_eq!(q.peek(), Some((5, 2)));
    }

    #[test]
    fn duplicates_are_preserved() {
        let mut q = EventQueue::new();
        q.push(2, 7u8);
        q.push(2, 7);
        assert_eq!(q.pop(), Some((2, 7)));
        assert_eq!(q.pop(), Some((2, 7)));
        assert!(q.is_empty());
    }

    #[test]
    fn unit_key_works_as_plain_time_heap() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(9, ());
        q.push(4, ());
        assert_eq!(q.pop(), Some((4, ())));
        assert_eq!(q.peek(), Some((9, ())));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut q = EventQueue::with_capacity(8);
        q.push(1, 1u32);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
