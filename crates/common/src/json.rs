//! Minimal validating JSON parser — zero dependencies, used by the trace-export
//! smoke check (`libra-sim trace-check`) and the observability tests to prove
//! that the hand-rolled writers in [`crate::trace`] and [`crate::metrics`] emit
//! well-formed documents.
//!
//! This is a *validator first*: it parses the full grammar (RFC 8259) into a
//! small [`Value`] tree but makes no attempt at speed or streaming. A depth
//! limit guards against stack exhaustion on pathological inputs.

use std::collections::BTreeMap;

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys ordered for deterministic comparison.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Member lookup, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact `u64`, if this is a non-negative integer small
    /// enough (≤ 2⁵³) that its `f64` representation is lossless. Counters in the
    /// checkpoint/metrics formats stay far below that bound; anything larger is
    /// rejected rather than silently rounded.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n)
                if n.is_finite() && *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 =>
            {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is `true` or `false`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object's member map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Escapes `s` into `out` as JSON string *contents* (no surrounding quotes).
/// Shared by the hand-rolled writers in [`crate::metrics`], [`crate::trace`] and
/// the campaign checkpoint format.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            map.insert(key, v);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}` in object"));
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]` in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be followed by
                        // `\uXXXX` holding the low half.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired high surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"))
                }
                Some(c) => {
                    // Re-assemble multi-byte UTF-8 sequences from the raw bytes;
                    // the input is a &str so the bytes are valid UTF-8.
                    let len = utf8_len(c);
                    let start = self.pos - 1;
                    self.pos = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.bump() {
            Some(b'0') => {}
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("invalid number"));
            }
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Number(-350.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::String("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"x"},null],"c":true}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn resolves_unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""é""#).unwrap(), Value::String("é".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "01", "1.", "1e", "tru", "\"x",
            "{\"a\":1} extra", "[1 2]", "\"\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_rejects_pathological_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + "1" + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn as_u64_accepts_exact_integers_only() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        // 2^53 round-trips exactly; anything above is rejected, not rounded.
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(parse("9007199254740994").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("\"7\"").unwrap().as_u64(), None);
    }

    #[test]
    fn bool_and_object_accessors() {
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
        assert_eq!(parse("1").unwrap().as_bool(), None);
        let v = parse(r#"{"a":1}"#).unwrap();
        assert_eq!(v.as_object().unwrap().len(), 1);
        assert!(parse("[]").unwrap().as_object().is_none());
    }

    #[test]
    fn escape_into_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let mut doc = String::from("\"");
        escape_into(&mut doc, nasty);
        doc.push('"');
        assert_eq!(parse(&doc).unwrap(), Value::String(nasty.into()));
    }

    #[test]
    fn accepts_writer_output() {
        let mut r = crate::metrics::MetricsRegistry::new();
        r.add_counter("c", &[("k", "v \"quoted\"")], 3);
        r.set_gauge("g", &[], 1.25);
        r.set_histogram("h", &[], 10, vec![1, 2, 3]);
        let v = parse(&r.to_json()).expect("metrics JSON must parse");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("libra-metrics-v1"));
        assert_eq!(v.get("metrics").unwrap().as_array().unwrap().len(), 3);
    }
}
