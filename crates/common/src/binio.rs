//! Endian-pinned binary encoding helpers for the sidecar file formats.
//!
//! Every multi-byte value is **little-endian**, regardless of host: the
//! checkpoint (`libra-ckpt-bin-v1`) and metrics (`libra-metrics-bin-v1`)
//! sidecars must be byte-identical across machines, because CI `cmp`s resumed
//! reports against references and the bench harness diffs recorded artifacts.
//! Floats are carried as their IEEE-754 bit patterns (`f64::to_bits`), so the
//! round trip is bit-exact — no text formatting, no parsing.
//!
//! [`ByteReader`] is the decoding twin: every read is bounds-checked and
//! returns `Err` with a description instead of panicking, so a truncated or
//! corrupt sidecar degrades into a clear load error (mirroring the JSONL
//! loaders' behaviour).
//!
//! ```
//! use tbr_common::binio::{ByteReader, ByteWriter};
//!
//! let mut w = ByteWriter::new();
//! w.u32(7);
//! w.str16("hello");
//! w.f64_bits(1.5);
//! let bytes = w.into_bytes();
//! let mut r = ByteReader::new(&bytes);
//! assert_eq!(r.u32("n").unwrap(), 7);
//! assert_eq!(r.str16("s").unwrap(), "hello");
//! assert_eq!(r.f64_bits("f").unwrap(), 1.5);
//! assert!(r.is_empty());
//! ```

/// Little-endian binary encoder (append-only byte buffer).
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes verbatim.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a string as `u16` byte length + UTF-8 bytes.
    ///
    /// # Panics
    /// Panics if the string is longer than 65535 bytes (format identifiers and
    /// short labels only; panic payloads are truncated by callers).
    pub fn str16(&mut self, s: &str) {
        let b = s.as_bytes();
        assert!(b.len() <= u16::MAX as usize, "str16 overflow: {} bytes", b.len());
        self.u16(b.len() as u16);
        self.bytes(b);
    }

    /// Appends a string as `u32` byte length + UTF-8 bytes (long payloads).
    pub fn str32(&mut self, s: &str) {
        let b = s.as_bytes();
        assert!(b.len() <= u32::MAX as usize, "str32 overflow");
        self.u32(b.len() as u32);
        self.bytes(b);
    }

    /// Appends a `u64` slice as `u32` count + elements, little-endian.
    pub fn u64_slice(&mut self, v: &[u64]) {
        assert!(v.len() <= u32::MAX as usize, "slice overflow");
        self.u32(v.len() as u32);
        for &x in v {
            self.u64(x);
        }
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset (for error reporting).
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated: reading {what} needs {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads raw bytes.
    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        self.take(n, what)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, what: &str) -> Result<u16, String> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64_bits(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a `u16`-length-prefixed UTF-8 string.
    pub fn str16(&mut self, what: &str) -> Result<String, String> {
        let n = self.u16(what)? as usize;
        let b = self.take(n, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| format!("{what}: invalid UTF-8"))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str32(&mut self, what: &str) -> Result<String, String> {
        let n = self.u32(what)? as usize;
        let b = self.take(n, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| format!("{what}: invalid UTF-8"))
    }

    /// Reads a `u32`-count-prefixed `u64` vector.
    pub fn u64_vec(&mut self, what: &str) -> Result<Vec<u64>, String> {
        let n = self.u32(what)? as usize;
        // Guard against a corrupt count asking for more data than exists
        // before allocating.
        if self.remaining() < n.saturating_mul(8) {
            return Err(format!(
                "truncated: {what} claims {n} elements but only {} bytes remain",
                self.remaining()
            ));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64(what)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_type() {
        let mut w = ByteWriter::new();
        w.u8(0xAB);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64_bits(-0.0);
        w.f64_bits(f64::NAN);
        w.str16("");
        w.str32("héllo");
        w.u64_slice(&[1, u64::MAX]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 0xAB);
        assert_eq!(r.u16("b").unwrap(), 0xBEEF);
        assert_eq!(r.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("d").unwrap(), u64::MAX - 3);
        assert_eq!(r.f64_bits("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64_bits("f").unwrap().is_nan());
        assert_eq!(r.str16("g").unwrap(), "");
        assert_eq!(r.str32("h").unwrap(), "héllo");
        assert_eq!(r.u64_vec("i").unwrap(), vec![1, u64::MAX]);
        assert!(r.is_empty());
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut w = ByteWriter::new();
        w.u32(1);
        assert_eq!(w.into_bytes(), vec![1, 0, 0, 0]);
        let mut w = ByteWriter::new();
        w.u64(0x0102_0304_0506_0708);
        assert_eq!(w.into_bytes(), vec![8, 7, 6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut r = ByteReader::new(&[1, 2]);
        let err = r.u32("field").unwrap_err();
        assert!(err.contains("truncated") && err.contains("field"), "{err}");
        // A corrupt length prefix must not trigger a huge allocation.
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let err = ByteReader::new(&bytes).u64_vec("v").unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut w = ByteWriter::new();
        w.u16(2);
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let err = ByteReader::new(&bytes).str16("s").unwrap_err();
        assert!(err.contains("UTF-8"), "{err}");
    }
}
