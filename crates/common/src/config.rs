//! Simulated-GPU configuration.
//!
//! The defaults mirror Table I of the paper: an 800 MHz mobile GPU rendering a
//! Full-HD screen split into 32×32-pixel tiles, with per-core 32 KB texture caches, a
//! 4 KB vertex cache, a 32 KB tile cache, a shared 2 MB L2 and LPDDR4 main memory with
//! a 50–100-cycle latency range. The *baseline* GPU has a single Raster Unit with
//! eight shader cores; *LIBRA* distributes the same cores across multiple Raster Units
//! (two RUs × four cores in the paper's main evaluation).

use crate::error::ConfigError;
use crate::ids::{TileCoord, TileId};
use crate::Cycle;

/// Screen geometry: resolution and tile size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScreenConfig {
    /// Horizontal resolution in pixels.
    pub width: u32,
    /// Vertical resolution in pixels.
    pub height: u32,
    /// Edge of the square tile in pixels (32 in Table I).
    pub tile_size: u32,
}

impl ScreenConfig {
    /// Full HD (1920×1080), the resolution used in the paper. 60×34 tiles = 2040
    /// tiles = 510 2×2 supertiles (§III-E). Note 1080 is not a multiple of 32; like
    /// real hardware the bottom row of tiles is clipped to 24 pixels, which this model
    /// handles by rounding the grid up.
    pub fn fhd() -> Self {
        Self { width: 1920, height: 1088, tile_size: 32 }
    }

    /// Quarter-FHD (960×544): exactly 30×17 = 510 tiles of 32×32 pixels — the same
    /// tile count as the paper's 510 2×2 supertiles at FHD. This is the default
    /// experiment resolution (see `DESIGN.md` §1 for the substitution rationale).
    pub fn quarter_fhd() -> Self {
        Self { width: 960, height: 544, tile_size: 32 }
    }

    /// A small 256×128 screen (8×4 tiles) for fast unit and property tests.
    pub fn tiny() -> Self {
        Self { width: 256, height: 128, tile_size: 32 }
    }

    /// Number of tile columns.
    #[inline]
    pub fn tiles_x(&self) -> u32 {
        self.width.div_ceil(self.tile_size)
    }

    /// Number of tile rows.
    #[inline]
    pub fn tiles_y(&self) -> u32 {
        self.height.div_ceil(self.tile_size)
    }

    /// Total number of tiles in a frame.
    #[inline]
    pub fn num_tiles(&self) -> usize {
        (self.tiles_x() * self.tiles_y()) as usize
    }

    /// Converts a linear tile id to its 2-D grid coordinate.
    ///
    /// # Panics
    /// Panics if `id` is out of range for this screen.
    #[inline]
    pub fn tile_coord(&self, id: TileId) -> TileCoord {
        let tx = self.tiles_x();
        assert!(id.0 < tx * self.tiles_y(), "tile id {id} out of range");
        TileCoord::new(id.0 % tx, id.0 / tx)
    }

    /// Converts a 2-D grid coordinate to its linear tile id.
    ///
    /// # Panics
    /// Panics if the coordinate is outside the grid.
    #[inline]
    pub fn tile_id(&self, coord: TileCoord) -> TileId {
        assert!(
            coord.x < self.tiles_x() && coord.y < self.tiles_y(),
            "tile coord {coord} out of range"
        );
        TileId(coord.y * self.tiles_x() + coord.x)
    }

    /// The pixel rectangle `(x0, y0, x1, y1)` covered by a tile (exclusive max,
    /// clipped to the screen).
    pub fn tile_rect(&self, id: TileId) -> (u32, u32, u32, u32) {
        let c = self.tile_coord(id);
        let x0 = c.x * self.tile_size;
        let y0 = c.y * self.tile_size;
        (x0, y0, (x0 + self.tile_size).min(self.width), (y0 + self.tile_size).min(self.height))
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`ConfigError`] if the tile size is zero or not a power of two, or the
    /// resolution is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.tile_size == 0 {
            return Err(ConfigError::Zero { field: "tile_size" });
        }
        if !self.tile_size.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "tile_size",
                value: self.tile_size as u64,
            });
        }
        if self.width == 0 {
            return Err(ConfigError::Zero { field: "width" });
        }
        if self.height == 0 {
            return Err(ConfigError::Zero { field: "height" });
        }
        Ok(())
    }
}

impl Default for ScreenConfig {
    fn default() -> Self {
        Self::quarter_fhd()
    }
}

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line (block) size in bytes — 64 B everywhere in Table I.
    pub line_bytes: u64,
    /// Associativity (number of ways).
    pub assoc: u64,
    /// Access (hit) latency in GPU cycles.
    pub latency: Cycle,
    /// Cycles the access port is occupied per request (throughput limit).
    pub port_occupancy: Cycle,
    /// Miss Status Holding Registers: maximum outstanding misses. A miss that finds
    /// all MSHRs busy stalls until the earliest outstanding fill returns. This is
    /// what bounds a cache's memory-level parallelism and makes DRAM latency (and
    /// congestion) visible to the pipeline. `0` = unlimited.
    pub mshrs: u64,
}

impl CacheConfig {
    /// Table I vertex cache: 4 KB, 2-way, 64 B lines, 1-cycle.
    pub fn vertex_l1() -> Self {
        Self { size_bytes: 4 << 10, line_bytes: 64, assoc: 2, latency: 1, port_occupancy: 1, mshrs: 4 }
    }

    /// Table I tile cache: 32 KB, 4-way, 64 B lines, 2-cycle.
    pub fn tile_l1() -> Self {
        Self { size_bytes: 32 << 10, line_bytes: 64, assoc: 4, latency: 2, port_occupancy: 1, mshrs: 8 }
    }

    /// Table I per-core texture cache: 32 KB, 4-way, 64 B lines, 2-cycle.
    pub fn texture_l1() -> Self {
        Self { size_bytes: 32 << 10, line_bytes: 64, assoc: 4, latency: 2, port_occupancy: 1, mshrs: 12 }
    }

    /// Table I shared L2: 2 MB, 8-way, 64 B lines, 18-cycle.
    pub fn shared_l2() -> Self {
        Self { size_bytes: 2 << 20, line_bytes: 64, assoc: 8, latency: 18, port_occupancy: 1, mshrs: 48 }
    }

    /// Number of sets implied by the geometry.
    #[inline]
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.assoc)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    /// Returns [`ConfigError`] when any field is zero, the line size is not a power of
    /// two, or the capacity is not divisible into whole sets.
    pub fn validate(&self, name: &'static str) -> Result<(), ConfigError> {
        if self.size_bytes == 0 || self.line_bytes == 0 || self.assoc == 0 {
            return Err(ConfigError::Zero { field: name });
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo { field: "line_bytes", value: self.line_bytes });
        }
        if !self.size_bytes.is_multiple_of(self.line_bytes * self.assoc)
            || !self.num_sets().is_power_of_two()
        {
            return Err(ConfigError::CacheGeometry {
                cache: name,
                size_bytes: self.size_bytes,
                line_bytes: self.line_bytes,
                assoc: self.assoc,
            });
        }
        Ok(())
    }
}

/// Row-buffer management policy of the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PagePolicy {
    /// Leave the row open after an access (best for streaming; the default, and what
    /// the row-hit/row-miss latencies of Table I imply).
    #[default]
    Open,
    /// Auto-precharge after every access: every access pays the full
    /// activate-plus-CAS latency, but never a precharge-on-conflict.
    Closed,
}

/// LPDDR4-like main-memory timing (all values in GPU cycles at 800 MHz).
///
/// Contention is modelled by reservation: each bank and each channel data bus keeps a
/// `next_free` cycle, so the *effective* latency of a request grows with offered load —
/// the queueing behaviour the paper's whole premise rests on ("the response time of
/// memory increases asymptotically as the utilization factor approaches 100%").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Independent channels (each with its own data bus).
    pub channels: u64,
    /// Banks per channel (row buffers that can be open simultaneously).
    pub banks_per_channel: u64,
    /// Bytes covered by one open row (row-buffer size).
    pub row_bytes: u64,
    /// Latency of a read that hits the open row (Table I lower bound: 50 cycles).
    pub row_hit_latency: Cycle,
    /// Latency of a read that must precharge + activate (Table I upper bound: 100).
    pub row_miss_latency: Cycle,
    /// Data-bus occupancy per 64 B burst, per channel.
    pub burst_cycles: Cycle,
    /// Bank busy time per serviced request (rate limit per bank).
    pub bank_occupancy: Cycle,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Cycles between per-bank refreshes (tREFI; 0 disables refresh).
    pub refresh_interval: Cycle,
    /// Cycles a bank is blocked per refresh (tRFC).
    pub refresh_latency: Cycle,
}

impl DramConfig {
    /// Table I LPDDR4 @1.2 GHz seen from an 800 MHz GPU: 50–100-cycle latency,
    /// 2 channels × 8 banks, 2 KB rows, ~12 B/GPU-cycle per channel.
    pub fn lpddr4() -> Self {
        Self {
            channels: 2,
            banks_per_channel: 8,
            row_bytes: 2048,
            row_hit_latency: 50,
            row_miss_latency: 100,
            burst_cycles: 5,
            bank_occupancy: 10,
            page_policy: PagePolicy::Open,
            // LPDDR4 tREFI ~= 3.9 us, tRFC ~= 130 ns, in 800 MHz GPU cycles.
            refresh_interval: 3120,
            refresh_latency: 104,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`ConfigError`] when a structural field is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, v) in [
            ("channels", self.channels),
            ("banks_per_channel", self.banks_per_channel),
            ("row_bytes", self.row_bytes),
        ] {
            if v == 0 {
                return Err(ConfigError::Zero { field });
            }
        }
        if !self.row_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo { field: "row_bytes", value: self.row_bytes });
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::lpddr4()
    }
}

/// Fixed-function pipeline costs (cycles), used by the analytically-timed geometry
/// phase and the raster front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineCosts {
    /// Vertex-shader cycles per vertex (user program, ALU dominated).
    pub vertex_shade_cycles: Cycle,
    /// Primitive assembly + cull/clip test cycles per primitive.
    pub prim_assembly_cycles: Cycle,
    /// Polygon-list-builder cycles per (primitive, tile) binning insertion.
    pub bin_insert_cycles: Cycle,
    /// Rasteriser setup cycles per primitive entering a tile.
    pub raster_setup_cycles: Cycle,
    /// Rasteriser throughput: quads (2×2 fragments) emitted per cycle.
    pub raster_quads_per_cycle: Cycle,
    /// Early-Z test cycles per quad (0 = pipelined behind the rasteriser).
    pub earlyz_cycles_per_quad: Cycle,
    /// Blend cycles per quad on the front-end (0 = the Blending Unit runs in
    /// parallel with rasterisation, as in real hardware).
    pub blend_cycles_per_quad: Cycle,
    /// Colour-buffer flush: cycles of RU front-end occupancy per 64 B line written to
    /// the framebuffer (the DRAM write itself is timed by the memory model).
    pub flush_cycles_per_line: Cycle,
}

impl Default for PipelineCosts {
    fn default() -> Self {
        Self {
            vertex_shade_cycles: 12,
            prim_assembly_cycles: 4,
            bin_insert_cycles: 2,
            raster_setup_cycles: 2,
            raster_quads_per_cycle: 4,
            earlyz_cycles_per_quad: 0,
            blend_cycles_per_quad: 0,
            flush_cycles_per_line: 1,
        }
    }
}

/// Complete configuration of the simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Screen geometry.
    pub screen: ScreenConfig,
    /// Number of Raster Units (1 = conventional TBR GPU; ≥2 = PTR/LIBRA).
    pub num_raster_units: usize,
    /// Shader cores per Raster Unit.
    pub cores_per_ru: usize,
    /// Threads per warp (32, i.e. 8 quads).
    pub warp_size: u32,
    /// Maximum resident warps per shader core (multithreading depth).
    pub max_warps_per_core: usize,
    /// Vertex cache (geometry pipeline L1).
    pub vertex_cache: CacheConfig,
    /// Tile cache (parameter-buffer L1, one per Raster Unit).
    pub tile_cache: CacheConfig,
    /// Texture cache (one per shader core).
    pub texture_cache: CacheConfig,
    /// Shared L2.
    pub l2_cache: CacheConfig,
    /// Main-memory model.
    pub dram: DramConfig,
    /// Fixed-function stage costs.
    pub costs: PipelineCosts,
    /// When `true`, every L1 access hits (perfect memory) — used to measure the
    /// memory-boundedness of a workload (Fig 6a).
    pub ideal_memory: bool,
    /// Core clock in MHz (800 in Table I); used only to convert cycles to FPS.
    pub freq_mhz: u64,
    /// DRAM-request histogram bucket width in cycles (5000 in Fig 7).
    pub dram_interval_cycles: Cycle,
}

impl GpuConfig {
    /// The paper's baseline GPU: one Raster Unit with eight shader cores.
    pub fn baseline(screen: ScreenConfig) -> Self {
        Self::single_ru(screen, 8)
    }

    /// A conventional single-RU GPU with `cores` shader cores (Fig 4 uses 4 and 8).
    pub fn single_ru(screen: ScreenConfig, cores: usize) -> Self {
        Self {
            screen,
            num_raster_units: 1,
            cores_per_ru: cores,
            warp_size: 32,
            max_warps_per_core: 16,
            vertex_cache: CacheConfig::vertex_l1(),
            tile_cache: CacheConfig::tile_l1(),
            texture_cache: CacheConfig::texture_l1(),
            l2_cache: CacheConfig::shared_l2(),
            dram: DramConfig::lpddr4(),
            costs: PipelineCosts::default(),
            ideal_memory: false,
            freq_mhz: 800,
            dram_interval_cycles: 5000,
        }
    }

    /// The PTR/LIBRA organisation: `num_raster_units` Raster Units with four cores
    /// each (Table I: LIBRA = 2 RUs × 4 cores vs baseline 1 RU × 8 cores).
    pub fn libra(screen: ScreenConfig, num_raster_units: usize) -> Self {
        let mut cfg = Self::single_ru(screen, 4);
        cfg.num_raster_units = num_raster_units;
        cfg
    }

    /// Total shader cores across all Raster Units.
    #[inline]
    pub fn total_cores(&self) -> usize {
        self.num_raster_units * self.cores_per_ru
    }

    /// Quads per warp (`warp_size / 4`).
    #[inline]
    pub fn quads_per_warp(&self) -> u32 {
        self.warp_size / 4
    }

    /// Returns a copy with ideal (always-hit) memory, for Fig 6a's compute/memory
    /// breakdown.
    pub fn with_ideal_memory(mut self) -> Self {
        self.ideal_memory = true;
        self
    }

    /// Frames per second achieved when every frame costs `cycles_per_frame` cycles.
    pub fn fps(&self, cycles_per_frame: f64) -> f64 {
        if cycles_per_frame <= 0.0 {
            return 0.0;
        }
        (self.freq_mhz as f64) * 1.0e6 / cycles_per_frame
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    /// Returns the first [`ConfigError`] found in the screen, cache, or DRAM
    /// sub-configurations, or in the top-level structural fields.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.screen.validate()?;
        if self.num_raster_units == 0 {
            return Err(ConfigError::Zero { field: "num_raster_units" });
        }
        if self.cores_per_ru == 0 {
            return Err(ConfigError::Zero { field: "cores_per_ru" });
        }
        if self.warp_size == 0 || !self.warp_size.is_multiple_of(4) {
            return Err(ConfigError::Zero { field: "warp_size" });
        }
        if self.max_warps_per_core == 0 {
            return Err(ConfigError::Zero { field: "max_warps_per_core" });
        }
        self.vertex_cache.validate("vertex_cache")?;
        self.tile_cache.validate("tile_cache")?;
        self.texture_cache.validate("texture_cache")?;
        self.l2_cache.validate("l2_cache")?;
        self.dram.validate()?;
        Ok(())
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::baseline(ScreenConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarter_fhd_has_510_tiles() {
        let s = ScreenConfig::quarter_fhd();
        assert_eq!((s.tiles_x(), s.tiles_y()), (30, 17));
        assert_eq!(s.num_tiles(), 510);
    }

    #[test]
    fn fhd_has_2040_tiles_matching_510_2x2_supertiles() {
        let s = ScreenConfig::fhd();
        assert_eq!(s.num_tiles(), 2040);
        assert_eq!(s.num_tiles() / 4, 510);
    }

    #[test]
    fn tile_id_coord_roundtrip() {
        let s = ScreenConfig::quarter_fhd();
        for i in 0..s.num_tiles() as u32 {
            let id = TileId(i);
            assert_eq!(s.tile_id(s.tile_coord(id)), id);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tile_coord_out_of_range_panics() {
        let s = ScreenConfig::tiny();
        let _ = s.tile_coord(TileId(s.num_tiles() as u32));
    }

    #[test]
    fn tile_rect_clips_to_screen() {
        let s = ScreenConfig { width: 100, height: 50, tile_size: 32 };
        // Last tile column/row only partially covered.
        let last = s.tile_id(TileCoord::new(s.tiles_x() - 1, s.tiles_y() - 1));
        let (x0, y0, x1, y1) = s.tile_rect(last);
        assert_eq!((x1, y1), (100, 50));
        assert!(x0 < x1 && y0 < y1);
    }

    #[test]
    fn table1_cache_presets() {
        assert_eq!(CacheConfig::vertex_l1().size_bytes, 4096);
        assert_eq!(CacheConfig::vertex_l1().assoc, 2);
        assert_eq!(CacheConfig::tile_l1().size_bytes, 32 << 10);
        assert_eq!(CacheConfig::texture_l1().latency, 2);
        assert_eq!(CacheConfig::shared_l2().size_bytes, 2 << 20);
        assert_eq!(CacheConfig::shared_l2().assoc, 8);
        assert_eq!(CacheConfig::shared_l2().latency, 18);
        for (name, c) in [
            ("vertex", CacheConfig::vertex_l1()),
            ("tile", CacheConfig::tile_l1()),
            ("texture", CacheConfig::texture_l1()),
            ("l2", CacheConfig::shared_l2()),
        ] {
            c.validate(name).unwrap();
            assert!(c.num_sets().is_power_of_two());
        }
    }

    #[test]
    fn dram_preset_matches_table1_latency_band() {
        let d = DramConfig::lpddr4();
        assert_eq!(d.row_hit_latency, 50);
        assert_eq!(d.row_miss_latency, 100);
        d.validate().unwrap();
    }

    #[test]
    fn baseline_and_libra_have_equal_total_cores() {
        let s = ScreenConfig::quarter_fhd();
        let base = GpuConfig::baseline(s);
        let libra = GpuConfig::libra(s, 2);
        assert_eq!(base.total_cores(), 8);
        assert_eq!(libra.total_cores(), 8);
        assert_eq!(libra.num_raster_units, 2);
        base.validate().unwrap();
        libra.validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = GpuConfig { num_raster_units: 0, ..GpuConfig::default() };
        assert!(matches!(c.validate(), Err(ConfigError::Zero { field: "num_raster_units" })));

        // warp_size 30: not a multiple of 4.
        let c = GpuConfig { warp_size: 30, ..GpuConfig::default() };
        assert!(c.validate().is_err());

        let mut c = GpuConfig::default();
        c.l2_cache.size_bytes = 1000;
        assert!(matches!(c.validate(), Err(ConfigError::CacheGeometry { cache: "l2_cache", .. })));

        let bad_screen = ScreenConfig { width: 0, height: 10, tile_size: 32 };
        assert!(bad_screen.validate().is_err());
        let bad_tile = ScreenConfig { width: 64, height: 64, tile_size: 33 };
        assert!(matches!(bad_tile.validate(), Err(ConfigError::NotPowerOfTwo { .. })));
    }

    #[test]
    fn fps_conversion() {
        let cfg = GpuConfig::default();
        // 800 MHz, 8 M cycles/frame -> 100 FPS.
        assert!((cfg.fps(8.0e6) - 100.0).abs() < 1e-9);
        assert_eq!(cfg.fps(0.0), 0.0);
    }

    #[test]
    fn ideal_memory_builder() {
        let cfg = GpuConfig::default().with_ideal_memory();
        assert!(cfg.ideal_memory);
    }
}
