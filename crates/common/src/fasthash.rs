//! A fast, deterministic hasher for integer keys.
//!
//! The simulator keys hash sets by line-aligned addresses (`u64`) on hot paths —
//! most notably the frame-wide unique-texture-line set, which absorbs one insert
//! per L1 fill. The standard library's default SipHash is keyed per-process and
//! an order of magnitude slower than needed for trusted integer keys; this
//! module provides a [`splitmix64_mix`]-based [`Hasher`] that is deterministic
//! across runs (so simulation results cannot depend on hasher seeding) and a
//! couple of cycles per key.
//!
//! Only a measurement optimisation: a `HashSet` holds the same elements under
//! any hasher, so swapping this in cannot change simulation statistics.
//!
//! [`splitmix64_mix`]: crate::rng::splitmix64_mix

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

use crate::rng::splitmix64_mix;

/// Hashes integer keys with one round of the SplitMix64 finaliser.
///
/// Intended for `u64`/`u32` keys (one `write_*` call per key); arbitrary byte
/// streams are folded 8 bytes at a time through the same mix.
#[derive(Debug, Clone, Copy, Default)]
pub struct SplitMix64Hasher(u64);

impl Hasher for SplitMix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.0 = splitmix64_mix(self.0 ^ u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = splitmix64_mix(self.0 ^ i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// A `HashSet<u64>` using [`SplitMix64Hasher`] — drop-in for hot integer sets.
pub type U64Set = HashSet<u64, BuildHasherDefault<SplitMix64Hasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics_match_std() {
        let mut rng = crate::rng::Xoshiro256pp::seed_from_u64(7);
        let keys: Vec<u64> = (0..4096).map(|_| rng.next_u64() % 1024).collect();
        let fast: U64Set = keys.iter().copied().collect();
        let std: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(fast.len(), std.len());
        for k in &std {
            assert!(fast.contains(k));
        }
    }

    #[test]
    fn byte_stream_fold_matches_u64_write_for_exact_words() {
        let mut a = SplitMix64Hasher::default();
        let mut b = SplitMix64Hasher::default();
        a.write_u64(0xDEAD_BEEF_0BAD_CAFE);
        b.write(&0xDEAD_BEEF_0BAD_CAFEu64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_keys_hash_distinctly() {
        // Not a cryptographic property — just a sanity check that the mix
        // spreads consecutive keys (the common address pattern).
        let mut seen = HashSet::new();
        for k in 0..10_000u64 {
            let mut h = SplitMix64Hasher::default();
            h.write_u64(k * 64);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }
}
