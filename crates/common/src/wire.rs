//! Length-sane line framing for the `libra-wire-v1` campaign-service protocol.
//!
//! The campaign service (`tbr-sim`'s `service` module) speaks newline-delimited
//! JSON over `std::net::TcpStream` sockets and child-process pipes. This module
//! owns the *framing* half of that protocol — the message vocabulary lives with
//! the simulator — and enforces the two properties every endpoint relies on:
//!
//! * **One frame, one write.** [`write_frame`] appends the terminating `\n` and
//!   hands the whole line to a single `write_all` + flush, so a frame is never
//!   interleaved with another writer's bytes (the same atomic-append discipline
//!   as the campaign checkpoint).
//! * **Length-sane reads.** [`FrameReader`] scans for the newline through the
//!   `BufRead` buffer and aborts as soon as the accumulated frame exceeds its
//!   limit — a malicious or corrupt peer cannot make an endpoint buffer an
//!   unbounded line before the length check runs. EOF in the middle of a frame
//!   is a structured "truncated frame" error, mirroring how a checkpoint with a
//!   missing trailing newline is rejected as torn.
//!
//! Timeouts are the transport's business: endpoints set `set_read_timeout` on
//! their sockets, and a timed-out read surfaces here as an ordinary I/O error
//! naming the peer. Pipes (worker stdio) have no portable read timeout; the
//! coordinator instead detects worker death as EOF.

use std::io::{BufRead, Write};

/// Default per-frame byte limit. Reports for a full-suite campaign are a few
/// megabytes of metrics JSON; 64 MiB leaves generous headroom while still
/// rejecting a runaway or hostile line long before memory pressure.
pub const DEFAULT_MAX_FRAME: usize = 64 << 20;

/// Writes one `\n`-terminated frame as a single `write_all` + flush.
///
/// `line` must not itself contain a newline (frames are the unit of the
/// protocol); embedded newlines are a caller bug and are rejected rather than
/// silently splitting one message into two.
pub fn write_frame(w: &mut impl Write, line: &str, peer: &str) -> Result<(), String> {
    if line.as_bytes().contains(&b'\n') {
        return Err(format!("wire: refusing to send a frame with an embedded newline to {peer}"));
    }
    let mut bytes = Vec::with_capacity(line.len() + 1);
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    w.write_all(&bytes)
        .and_then(|()| w.flush())
        .map_err(|e| format!("wire: writing frame to {peer}: {e}"))
}

/// Reads `\n`-delimited frames off a `BufRead` transport with a hard length cap.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    max_frame: usize,
}

impl<R: BufRead> FrameReader<R> {
    /// A reader with the [`DEFAULT_MAX_FRAME`] limit.
    pub fn new(inner: R) -> Self {
        Self::with_limit(inner, DEFAULT_MAX_FRAME)
    }

    /// A reader with an explicit per-frame byte limit (tests use small caps).
    pub fn with_limit(inner: R, max_frame: usize) -> Self {
        Self { inner, max_frame }
    }

    /// Reads the next frame (without its `\n`).
    ///
    /// Returns `Ok(None)` on a clean EOF at a frame boundary. Errors on: an
    /// oversized frame (checked incrementally, before the line is buffered
    /// whole), EOF mid-frame (the peer died or the stream was truncated), a
    /// non-UTF-8 frame, or a transport error — including a read timeout, which
    /// the transport surfaces as an ordinary I/O error.
    pub fn read_frame(&mut self, peer: &str) -> Result<Option<String>, String> {
        let mut buf: Vec<u8> = Vec::new();
        loop {
            let chunk = self
                .inner
                .fill_buf()
                .map_err(|e| format!("wire: reading frame from {peer}: {e}"))?;
            if chunk.is_empty() {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(format!(
                    "wire: truncated frame from {peer}: stream ended after {} byte(s) with no \
                     newline (peer crashed mid-write?)",
                    buf.len()
                ));
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    if buf.len() + nl > self.max_frame {
                        return Err(self.oversized(peer, buf.len() + nl));
                    }
                    buf.extend_from_slice(&chunk[..nl]);
                    self.inner.consume(nl + 1);
                    return String::from_utf8(buf)
                        .map(Some)
                        .map_err(|_| format!("wire: non-UTF-8 frame from {peer}"));
                }
                None => {
                    let len = chunk.len();
                    if buf.len() + len > self.max_frame {
                        return Err(self.oversized(peer, buf.len() + len));
                    }
                    buf.extend_from_slice(chunk);
                    self.inner.consume(len);
                }
            }
        }
    }

    fn oversized(&self, peer: &str, at_least: usize) -> String {
        format!(
            "wire: oversized frame from {peer}: at least {at_least} bytes exceeds the \
             {}-byte limit",
            self.max_frame
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn reader(bytes: &[u8], cap: usize) -> FrameReader<Cursor<Vec<u8>>> {
        FrameReader::with_limit(Cursor::new(bytes.to_vec()), cap)
    }

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut out = Vec::new();
        write_frame(&mut out, "alpha", "test").unwrap();
        write_frame(&mut out, "", "test").unwrap();
        write_frame(&mut out, "gamma δ", "test").unwrap();
        let mut r = reader(&out, 1024);
        assert_eq!(r.read_frame("test").unwrap().as_deref(), Some("alpha"));
        assert_eq!(r.read_frame("test").unwrap().as_deref(), Some(""));
        assert_eq!(r.read_frame("test").unwrap().as_deref(), Some("gamma δ"));
        assert_eq!(r.read_frame("test").unwrap(), None);
        assert_eq!(r.read_frame("test").unwrap(), None, "EOF is sticky and clean");
    }

    #[test]
    fn embedded_newline_is_a_caller_error() {
        let mut out = Vec::new();
        let e = write_frame(&mut out, "two\nlines", "test").unwrap_err();
        assert!(e.contains("embedded newline"), "{e}");
        assert!(out.is_empty(), "nothing may reach the stream");
    }

    #[test]
    fn eof_mid_frame_is_truncation() {
        let mut r = reader(b"complete\npart", 1024);
        assert_eq!(r.read_frame("test").unwrap().as_deref(), Some("complete"));
        let e = r.read_frame("test").unwrap_err();
        assert!(e.contains("truncated frame"), "{e}");
    }

    #[test]
    fn oversized_frames_are_rejected_before_buffering() {
        // The line is 100 bytes with the newline far past the cap: the reader
        // must fail on accumulation, not after swallowing the whole line.
        let mut bytes = vec![b'x'; 100];
        bytes.push(b'\n');
        let e = reader(&bytes, 16).read_frame("test").unwrap_err();
        assert!(e.contains("oversized frame"), "{e}");
        // A frame exactly at the cap still passes.
        let mut ok = vec![b'y'; 16];
        ok.push(b'\n');
        assert_eq!(reader(&ok, 16).read_frame("test").unwrap().as_deref(), Some("yyyyyyyyyyyyyyyy"));
    }

    #[test]
    fn non_utf8_frames_are_rejected() {
        let e = reader(b"\xff\xfe\n", 1024).read_frame("test").unwrap_err();
        assert!(e.contains("non-UTF-8"), "{e}");
    }
}
