//! Strongly-typed identifiers used across the simulator.
//!
//! Newtypes keep tile indices, supertile indices, frame numbers, raster-unit and core
//! indices from being mixed up (`C-NEWTYPE`). All of them are cheap `Copy` types.

use core::fmt;

/// Linear index of a tile inside a frame, in row-major order
/// (`id = y * tiles_x + x`). The mapping to/from 2-D coordinates depends on the
/// screen configuration, see [`crate::config::ScreenConfig::tile_coord`].
///
/// ```
/// use tbr_common::ids::TileId;
/// let t = TileId(7);
/// assert_eq!(t.index(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TileId(pub u32);

impl TileId {
    /// The raw linear index as a `usize`, for indexing per-tile vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Linear index of a supertile (an SxS square group of tiles, §III-C of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SupertileId(pub u32);

impl SupertileId {
    /// The raw linear index as a `usize`, for indexing per-supertile vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SupertileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ST{}", self.0)
    }
}

/// 2-D tile coordinate inside the frame's tile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TileCoord {
    /// Horizontal tile position, `0 ..= tiles_x - 1`.
    pub x: u32,
    /// Vertical tile position, `0 ..= tiles_y - 1`.
    pub y: u32,
}

impl TileCoord {
    /// Creates a coordinate.
    #[inline]
    pub fn new(x: u32, y: u32) -> Self {
        Self { x, y }
    }

    /// Chebyshev (chessboard) distance to another tile — used in locality tests.
    pub fn chebyshev_distance(self, other: TileCoord) -> u32 {
        let dx = self.x.abs_diff(other.x);
        let dy = self.y.abs_diff(other.y);
        dx.max(dy)
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Frame number inside a rendered sequence (animated applications render a stream of
/// frames; LIBRA exploits frame-to-frame coherence between consecutive ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FrameId(pub u32);

impl FrameId {
    /// The next frame in the sequence.
    #[inline]
    pub fn next(self) -> FrameId {
        FrameId(self.0 + 1)
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// Index of a Raster Unit (the paper's PTR architecture has 1..=4 of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RasterUnitId(pub u8);

impl RasterUnitId {
    /// The raw index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RasterUnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RU{}", self.0)
    }
}

/// Global index of a shader core (cores are grouped under raster units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u16);

impl CoreId {
    /// The raw index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Identifier of a texture image bound by a draw call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TextureId(pub u32);

impl fmt::Display for TextureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tex{}", self.0)
    }
}

/// Identifier of a draw call (a batch of primitives submitted together).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DrawCallId(pub u32);

impl fmt::Display for DrawCallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DC{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_id_roundtrip_and_ordering() {
        let a = TileId(3);
        let b = TileId(9);
        assert!(a < b);
        assert_eq!(a.index(), 3);
        assert_eq!(format!("{a}"), "T3");
    }

    #[test]
    fn chebyshev_distance_is_symmetric_and_zero_on_self() {
        let a = TileCoord::new(2, 5);
        let b = TileCoord::new(7, 3);
        assert_eq!(a.chebyshev_distance(b), b.chebyshev_distance(a));
        assert_eq!(a.chebyshev_distance(a), 0);
        assert_eq!(a.chebyshev_distance(b), 5);
    }

    #[test]
    fn frame_id_next_increments() {
        assert_eq!(FrameId(4).next(), FrameId(5));
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(format!("{}", SupertileId(2)), "ST2");
        assert_eq!(format!("{}", RasterUnitId(1)), "RU1");
        assert_eq!(format!("{}", CoreId(12)), "C12");
        assert_eq!(format!("{}", TextureId(0)), "Tex0");
        assert_eq!(format!("{}", DrawCallId(8)), "DC8");
        assert_eq!(format!("{}", TileCoord::new(1, 2)), "(1,2)");
    }
}
