//! Error types for configuration validation.

use core::fmt;

/// Error returned when a [`crate::config::GpuConfig`] (or one of its components) is
/// internally inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A field that must be a power of two is not.
    NotPowerOfTwo {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// A field that must be non-zero is zero.
    Zero {
        /// Name of the offending field.
        field: &'static str,
    },
    /// A cache's size is not divisible by `line_bytes * associativity`, so it cannot
    /// be organised into an integral number of sets.
    CacheGeometry {
        /// Name of the offending cache.
        cache: &'static str,
        /// Total capacity in bytes.
        size_bytes: u64,
        /// Line size in bytes.
        line_bytes: u64,
        /// Associativity (ways).
        assoc: u64,
    },
    /// The screen dimensions are not multiples of the tile size.
    ScreenNotTileAligned {
        /// Screen width in pixels.
        width: u32,
        /// Screen height in pixels.
        height: u32,
        /// Tile edge in pixels.
        tile_size: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { field, value } => {
                write!(f, "field `{field}` must be a power of two, got {value}")
            }
            ConfigError::Zero { field } => write!(f, "field `{field}` must be non-zero"),
            ConfigError::CacheGeometry { cache, size_bytes, line_bytes, assoc } => write!(
                f,
                "cache `{cache}` geometry invalid: {size_bytes} B is not divisible by \
                 line {line_bytes} B x {assoc} ways"
            ),
            ConfigError::ScreenNotTileAligned { width, height, tile_size } => write!(
                f,
                "screen {width}x{height} is not aligned to the {tile_size}-pixel tile grid"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ConfigError::NotPowerOfTwo { field: "tile_size", value: 33 };
        let msg = format!("{e}");
        assert!(msg.contains("tile_size") && msg.contains("33"));
        let e = ConfigError::Zero { field: "channels" };
        assert!(format!("{e}").contains("channels"));
        let e = ConfigError::CacheGeometry {
            cache: "l2",
            size_bytes: 100,
            line_bytes: 64,
            assoc: 8,
        };
        assert!(format!("{e}").contains("l2"));
        let e = ConfigError::ScreenNotTileAligned { width: 100, height: 100, tile_size: 32 };
        assert!(format!("{e}").contains("100x100"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<ConfigError>();
    }
}
