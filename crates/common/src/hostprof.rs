//! Host wall-clock profiler for the intra-frame parallel event core.
//!
//! The [`trace`](crate::trace) module and the metrics registry measure
//! *simulated cycles* — deterministic, host-independent, bit-identical at any
//! thread count. The parallel driver's losses live on the other clock: barrier
//! waits, coordinator serialization and shard imbalance cost *host
//! nanoseconds* and leave no mark on any simulated counter. This module is the
//! host-time twin of the tracer: a thread-local, runtime-gated collector the
//! parallel raster driver publishes one [`PhaseProfile`] into per raster
//! phase, recording per-worker epoch timelines (busy/wait spans, Local-run
//! lengths), coordinator commit/barrier time, per-RU shard occupancy and the
//! Local-vs-Shared classification split.
//!
//! # Zero overhead when disabled
//!
//! Exactly the [`trace`](crate::trace) design: a thread-local flag checked by
//! [`is_enabled`], a collector installed by [`start`] and drained by
//! [`finish`]. Instrumentation sites guard every `Instant::now()` call and
//! every span allocation behind one branch on the flag (hoisted to a bool per
//! phase in the hot loops), so the disabled path costs a single thread-local
//! load per phase — never per event. Profiling is observation only: it reads
//! the host clock and private counters, never simulated state, so enabling it
//! cannot change any simulated statistic, golden snapshot or trace byte (the
//! observability tests pin this).
//!
//! ```
//! use tbr_common::hostprof::{self, PhaseProfile};
//!
//! assert!(!hostprof::is_enabled());
//! hostprof::start();
//! assert!(hostprof::is_enabled());
//! hostprof::record_phase(PhaseProfile::new("raster", 2, 4));
//! let p = hostprof::finish().expect("collector was installed");
//! assert_eq!(p.phases.len(), 1);
//! assert!(!hostprof::is_enabled());
//! ```

use std::cell::{Cell, RefCell};
use std::path::Path;
use std::time::Instant;

use crate::json::escape_into as json_escape_into;
use crate::metrics::MetricValue;
use crate::trace::{EventKind, TraceEvent, Track};

/// Spans kept per lane before coalescing into counters only (memory guard for
/// long campaigns; dropped spans are still counted in `dropped_spans`).
pub const MAX_LANE_SPANS: usize = 2048;

/// Buckets of the Local-run-length histogram (width 1, last bucket overflow).
pub const RUN_LENGTH_BUCKETS: usize = 65;

/// One host-time interval on a worker or coordinator lane, in nanoseconds
/// since the profile origin ([`start`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostSpan {
    /// Static span label ("epoch" for a drain interval).
    pub name: &'static str,
    /// Start, ns since the profile origin.
    pub start_ns: u64,
    /// End, ns since the profile origin.
    pub end_ns: u64,
}

/// The host-time timeline of one thread of the parallel driver across one
/// raster phase: the coordinator's own drain lane, or one worker's lane.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerLane {
    /// Thread slot (0 = coordinator, workers from 1).
    pub worker: usize,
    /// Parallel epochs this lane drained a chunk in.
    pub epochs: u64,
    /// Nanoseconds spent draining Local runs.
    pub busy_ns: u64,
    /// Nanoseconds parked at the epoch start barrier (workers only).
    pub wait_ns: u64,
    /// Local micro-events this lane processed over the whole phase.
    pub local_events: u64,
    /// Per-epoch busy spans (capped at [`MAX_LANE_SPANS`]).
    pub spans: Vec<HostSpan>,
    /// Spans beyond the cap, counted instead of stored.
    pub dropped_spans: u64,
}

impl WorkerLane {
    /// A fresh lane for thread slot `worker`.
    pub fn new(worker: usize) -> Self {
        Self {
            worker,
            ..Self::default()
        }
    }

    /// Records one busy span, coalescing into `dropped_spans` past the cap.
    pub fn push_span(&mut self, name: &'static str, start_ns: u64, end_ns: u64) {
        if self.spans.len() < MAX_LANE_SPANS {
            self.spans.push(HostSpan {
                name,
                start_ns,
                end_ns,
            });
        } else {
            self.dropped_spans += 1;
        }
    }
}

/// The host-time record of one raster phase under the parallel driver.
///
/// The coordinator-lane intervals (`commit_ns`, `coord_drain_ns`,
/// `barrier_ns`) are *disjoint* sub-intervals of `wall_ns` measured on the
/// same monotonic clock, so their fractions are each in `[0, 1]` and sum to
/// at most 1 — the invariant the attribution report builds on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseProfile {
    /// Phase label ("raster"; the collector numbers repeats on rendering).
    pub label: String,
    /// Thread slots the phase ran with (1 = fully inline).
    pub threads: usize,
    /// Phase start, ns since the profile origin.
    pub start_ns: u64,
    /// Phase wall-clock, ns.
    pub wall_ns: u64,
    /// Coordinator ns inside serial Shared commits (`PhaseCtx::process`).
    pub commit_ns: u64,
    /// Coordinator ns draining its own Local chunks (parallelizable work).
    pub coord_drain_ns: u64,
    /// Coordinator ns waiting at epoch barriers for its workers.
    pub barrier_ns: u64,
    /// Epoch-drain invocations (serial and parallel).
    pub epochs: u64,
    /// Epochs with two or more Local RUs (fanned over the thread slots).
    pub parallel_epochs: u64,
    /// Micro-events classified Local and run on worker/coordinator lanes.
    pub local_events: u64,
    /// Micro-events classified Shared and committed serially.
    pub shared_commits: u64,
    /// Shared commits merged from the DRAM-channel ledger.
    pub chan_commits: u64,
    /// Shared commits merged from the RU-shard ledger.
    pub ru_ledger_commits: u64,
    /// Events ever pushed into the channel ledger (exchange volume).
    pub chan_pushed: u64,
    /// Events ever drained from the channel ledger.
    pub chan_drained: u64,
    /// Events ever pushed into the RU-shard ledger.
    pub ru_pushed: u64,
    /// Events ever drained from the RU-shard ledger.
    pub ru_drained: u64,
    /// Micro-events processed per RU shard (Local + Shared) — the occupancy
    /// distribution behind the imbalance statistic.
    pub ru_events: Vec<u64>,
    /// Histogram of Local-run lengths: width-1 buckets, last bucket counting
    /// runs of [`RUN_LENGTH_BUCKETS`]` - 1` events or more.
    pub run_lengths: Vec<u64>,
    /// Worker lanes (empty when the phase ran inline).
    pub workers: Vec<WorkerLane>,
    /// The coordinator's own drain lane.
    pub coord: WorkerLane,
}

impl PhaseProfile {
    /// An empty profile shell for `label` under `threads` slots and
    /// `raster_units` shards.
    pub fn new(label: &str, threads: usize, raster_units: usize) -> Self {
        Self {
            label: label.to_string(),
            threads,
            ru_events: vec![0; raster_units],
            run_lengths: vec![0; RUN_LENGTH_BUCKETS],
            ..Self::default()
        }
    }

    fn frac(&self, ns: u64) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        (ns as f64 / self.wall_ns as f64).clamp(0.0, 1.0)
    }

    /// Fraction of the phase wall spent in serial Shared commits.
    pub fn serial_fraction(&self) -> f64 {
        self.frac(self.commit_ns)
    }

    /// Fraction of the phase wall the coordinator spent on parallelizable
    /// Local drains.
    pub fn parallel_fraction(&self) -> f64 {
        self.frac(self.coord_drain_ns)
    }

    /// Fraction of the phase wall the coordinator spent at epoch barriers.
    pub fn barrier_fraction(&self) -> f64 {
        self.frac(self.barrier_ns)
    }

    /// The unattributed remainder (classification, parking, ledger merges).
    pub fn other_fraction(&self) -> f64 {
        (1.0 - self.serial_fraction() - self.parallel_fraction() - self.barrier_fraction())
            .clamp(0.0, 1.0)
    }

    /// Max-over-mean per-RU event occupancy (1.0 = perfectly balanced shards;
    /// 0.0 when no events were recorded).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.ru_events.iter().sum();
        if total == 0 || self.ru_events.is_empty() {
            return 0.0;
        }
        let mean = total as f64 / self.ru_events.len() as f64;
        let max = *self.ru_events.iter().max().expect("non-empty") as f64;
        max / mean
    }
}

/// A finished host-time recording: one [`PhaseProfile`] per raster phase run
/// while the collector was installed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostProfile {
    /// Phases in execution order.
    pub phases: Vec<PhaseProfile>,
}

/// Phase totals summed over a [`HostProfile`] (and mergeable across jobs —
/// the campaign driver aggregates one of these over its whole sweep).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostTotals {
    /// Phases aggregated.
    pub phases: u64,
    /// Summed phase wall-clock, ns.
    pub wall_ns: u64,
    /// Summed serial Shared-commit ns.
    pub commit_ns: u64,
    /// Summed coordinator Local-drain ns.
    pub coord_drain_ns: u64,
    /// Summed coordinator barrier-wait ns.
    pub barrier_ns: u64,
    /// Summed worker busy ns (all worker lanes).
    pub worker_busy_ns: u64,
    /// Summed worker start-barrier wait ns.
    pub worker_wait_ns: u64,
    /// Summed epochs.
    pub epochs: u64,
    /// Summed parallel (fanned-out) epochs.
    pub parallel_epochs: u64,
    /// Summed Local events.
    pub local_events: u64,
    /// Summed Shared commits.
    pub shared_commits: u64,
    /// Summed channel-ledger pushes.
    pub chan_pushed: u64,
    /// Summed RU-ledger pushes.
    pub ru_pushed: u64,
    /// Merged Local-run-length histogram (width-1 buckets).
    pub run_lengths: Vec<u64>,
    /// Host metadata of every machine that contributed work, one entry per
    /// contributing worker in worker order. A single-process campaign stamps
    /// exactly one entry (the local host); the campaign service stamps one per
    /// worker process, so a multi-host report never silently attributes all
    /// work to the coordinator's core count.
    pub hosts: Vec<HostMeta>,
}

impl HostTotals {
    /// Folds another totals record into this one (all sums; host stamps
    /// concatenate, preserving one entry per contributing worker).
    pub fn merge(&mut self, other: &HostTotals) {
        self.hosts.extend(other.hosts.iter().cloned());
        self.phases += other.phases;
        self.wall_ns += other.wall_ns;
        self.commit_ns += other.commit_ns;
        self.coord_drain_ns += other.coord_drain_ns;
        self.barrier_ns += other.barrier_ns;
        self.worker_busy_ns += other.worker_busy_ns;
        self.worker_wait_ns += other.worker_wait_ns;
        self.epochs += other.epochs;
        self.parallel_epochs += other.parallel_epochs;
        self.local_events += other.local_events;
        self.shared_commits += other.shared_commits;
        self.chan_pushed += other.chan_pushed;
        self.ru_pushed += other.ru_pushed;
        if self.run_lengths.len() < other.run_lengths.len() {
            self.run_lengths.resize(other.run_lengths.len(), 0);
        }
        for (dst, src) in self.run_lengths.iter_mut().zip(&other.run_lengths) {
            *dst += src;
        }
    }

    fn frac(&self, ns: u64) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        (ns as f64 / self.wall_ns as f64).clamp(0.0, 1.0)
    }

    /// Fraction of summed phase wall spent in serial Shared commits.
    pub fn serial_fraction(&self) -> f64 {
        self.frac(self.commit_ns)
    }

    /// Fraction spent on coordinator-lane parallelizable drains.
    pub fn parallel_fraction(&self) -> f64 {
        self.frac(self.coord_drain_ns)
    }

    /// Fraction spent waiting at epoch barriers.
    pub fn barrier_fraction(&self) -> f64 {
        self.frac(self.barrier_ns)
    }

    /// The unattributed remainder, clamped to `[0, 1]`.
    pub fn other_fraction(&self) -> f64 {
        (1.0 - self.serial_fraction() - self.parallel_fraction() - self.barrier_fraction())
            .clamp(0.0, 1.0)
    }

    /// Share of micro-events classified Local (0 when nothing was recorded).
    pub fn local_share(&self) -> f64 {
        let total = self.local_events + self.shared_commits;
        if total == 0 {
            return 0.0;
        }
        self.local_events as f64 / total as f64
    }

    /// The merged Local-run-length distribution as a metrics histogram
    /// (width 1), for the percentile accessors.
    pub fn run_length_histogram(&self) -> MetricValue {
        MetricValue::Histogram {
            width: 1,
            buckets: self.run_lengths.clone(),
        }
    }

    /// Hand-written JSON object (no trailing newline), schema-free — embedded
    /// by the campaign hostprof report.
    pub fn to_json(&self) -> String {
        let hist = self
            .run_lengths
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let hosts = self
            .hosts
            .iter()
            .map(HostMeta::json_object)
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"phases\": {}, \"wall_ns\": {}, \"commit_ns\": {}, \"coord_drain_ns\": {}, \
             \"barrier_ns\": {}, \"worker_busy_ns\": {}, \"worker_wait_ns\": {}, \
             \"epochs\": {}, \"parallel_epochs\": {}, \"local_events\": {}, \
             \"shared_commits\": {}, \"chan_pushed\": {}, \"ru_pushed\": {}, \
             \"serial_fraction\": {:.6}, \"parallel_fraction\": {:.6}, \
             \"barrier_fraction\": {:.6}, \"other_fraction\": {:.6}, \
             \"local_share\": {:.6}, \"run_lengths\": [{}], \"hosts\": [{}]}}",
            self.phases,
            self.wall_ns,
            self.commit_ns,
            self.coord_drain_ns,
            self.barrier_ns,
            self.worker_busy_ns,
            self.worker_wait_ns,
            self.epochs,
            self.parallel_epochs,
            self.local_events,
            self.shared_commits,
            self.chan_pushed,
            self.ru_pushed,
            self.serial_fraction(),
            self.parallel_fraction(),
            self.barrier_fraction(),
            self.other_fraction(),
            self.local_share(),
            hist,
            hosts,
        )
    }

    /// One-paragraph human summary.
    pub fn render(&self) -> String {
        if self.phases == 0 {
            return "hostprof: no parallel-core phases recorded \
                    (requires the `par` event-loop driver)\n"
                .to_string();
        }
        let h = self.run_length_histogram();
        let p = |q: f64| h.quantile(q).unwrap_or(0.0);
        format!(
            "hostprof: {} phase(s), {:.2} ms wall — serial {:.1}% | parallel {:.1}% | \
             barrier {:.1}% | other {:.1}%\n  {} epochs ({} parallel), local share {:.1}% \
             ({} local / {} shared), run-length p50/p95/p99 = {:.0}/{:.0}/{:.0}\n",
            self.phases,
            self.wall_ns as f64 / 1e6,
            self.serial_fraction() * 100.0,
            self.parallel_fraction() * 100.0,
            self.barrier_fraction() * 100.0,
            self.other_fraction() * 100.0,
            self.epochs,
            self.parallel_epochs,
            self.local_share() * 100.0,
            self.local_events,
            self.shared_commits,
            p(0.50),
            p(0.95),
            p(0.99),
        )
    }
}

impl HostProfile {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Sums every phase (and its lanes) into one [`HostTotals`].
    pub fn totals(&self) -> HostTotals {
        let mut t = HostTotals {
            run_lengths: vec![0; RUN_LENGTH_BUCKETS],
            ..HostTotals::default()
        };
        for p in &self.phases {
            t.phases += 1;
            t.wall_ns += p.wall_ns;
            t.commit_ns += p.commit_ns;
            t.coord_drain_ns += p.coord_drain_ns;
            t.barrier_ns += p.barrier_ns;
            t.epochs += p.epochs;
            t.parallel_epochs += p.parallel_epochs;
            t.local_events += p.local_events;
            t.shared_commits += p.shared_commits;
            t.chan_pushed += p.chan_pushed;
            t.ru_pushed += p.ru_pushed;
            for w in &p.workers {
                t.worker_busy_ns += w.busy_ns;
                t.worker_wait_ns += w.wait_ns;
            }
            if t.run_lengths.len() < p.run_lengths.len() {
                t.run_lengths.resize(p.run_lengths.len(), 0);
            }
            for (dst, src) in t.run_lengths.iter_mut().zip(&p.run_lengths) {
                *dst += src;
            }
        }
        t
    }

    /// Per-RU event occupancy summed over all phases.
    pub fn ru_occupancy(&self) -> Vec<u64> {
        let n = self.phases.iter().map(|p| p.ru_events.len()).max().unwrap_or(0);
        let mut occ = vec![0u64; n];
        for p in &self.phases {
            for (dst, src) in occ.iter_mut().zip(&p.ru_events) {
                *dst += src;
            }
        }
        occ
    }

    /// The host-clock lanes as Chrome trace events (microsecond timestamps on
    /// the [`Track::HostCoordinator`] / [`Track::HostWorker`] rows), appended
    /// to a simulated-cycle trace as separate host-time tracks.
    pub fn chrome_events(&self) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        let us = |ns: u64| ns / 1_000;
        for (k, p) in self.phases.iter().enumerate() {
            events.push(TraceEvent {
                track: Track::HostCoordinator,
                name: format!("{} #{k} ({} threads)", p.label, p.threads),
                kind: EventKind::Span {
                    dur: us(p.wall_ns),
                },
                ts: us(p.start_ns),
                args: vec![
                    ("commit_ns", p.commit_ns.to_string()),
                    ("barrier_ns", p.barrier_ns.to_string()),
                    ("epochs", p.epochs.to_string()),
                    ("shared_commits", p.shared_commits.to_string()),
                ],
            });
            let mut lane = |track: Track, w: &WorkerLane| {
                for s in &w.spans {
                    events.push(TraceEvent {
                        track,
                        name: s.name.to_string(),
                        kind: EventKind::Span {
                            dur: us(s.end_ns.saturating_sub(s.start_ns)),
                        },
                        ts: us(s.start_ns),
                        args: Vec::new(),
                    });
                }
            };
            lane(Track::HostCoordinator, &p.coord);
            for w in &p.workers {
                lane(Track::HostWorker(w.worker.min(255) as u8), w);
            }
        }
        events
    }

    /// Hand-written JSON: `{"schema":"libra-hostprof-v1","phases":[...],
    /// "totals":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\": \"libra-hostprof-v1\", \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let ru = p
                .ru_events
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{{\"label\": \"{}\", \"threads\": {}, \"wall_ns\": {}, \"commit_ns\": {}, \
                 \"coord_drain_ns\": {}, \"barrier_ns\": {}, \"epochs\": {}, \
                 \"parallel_epochs\": {}, \"local_events\": {}, \"shared_commits\": {}, \
                 \"chan_commits\": {}, \"ru_ledger_commits\": {}, \"imbalance\": {:.4}, \
                 \"ru_events\": [{}]}}",
                {
                    let mut l = String::new();
                    json_escape_into(&mut l, &p.label);
                    l
                },
                p.threads,
                p.wall_ns,
                p.commit_ns,
                p.coord_drain_ns,
                p.barrier_ns,
                p.epochs,
                p.parallel_epochs,
                p.local_events,
                p.shared_commits,
                p.chan_commits,
                p.ru_ledger_commits,
                p.imbalance(),
                ru,
            ));
        }
        out.push_str("], \"totals\": ");
        out.push_str(&self.totals().to_json());
        out.push_str("}\n");
        out
    }

    /// Multi-line human table (one row per phase plus the totals paragraph).
    pub fn render(&self) -> String {
        let t = self.totals();
        if self.phases.is_empty() {
            return t.render();
        }
        let mut s = String::from(
            "hostprof — host-time decomposition of the parallel event core\n  \
             phase        thr   wall_ms  commit%  drain%  barr%  other%    epochs  par-ep  imbal\n",
        );
        for (k, p) in self.phases.iter().enumerate() {
            s.push_str(&format!(
                "  {:<10} {:>4} {:>9.3} {:>8.1} {:>7.1} {:>6.1} {:>7.1} {:>9} {:>7} {:>6.2}\n",
                format!("{} #{k}", p.label),
                p.threads,
                p.wall_ns as f64 / 1e6,
                p.serial_fraction() * 100.0,
                p.parallel_fraction() * 100.0,
                p.barrier_fraction() * 100.0,
                p.other_fraction() * 100.0,
                p.epochs,
                p.parallel_epochs,
                p.imbalance(),
            ));
        }
        s.push_str(&t.render());
        s
    }
}

#[derive(Debug)]
struct Collector {
    origin: Instant,
    phases: Vec<PhaseProfile>,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Installs a fresh collector on the current thread; the profile origin (the
/// zero of every recorded timestamp) is *now*.
pub fn start() {
    COLLECTOR.with(|c| {
        *c.borrow_mut() = Some(Collector {
            origin: Instant::now(),
            phases: Vec::new(),
        })
    });
    ENABLED.with(|e| e.set(true));
}

/// Whether a collector is installed on the current thread. Instrumentation
/// sites hoist this into a per-phase bool so the disabled hot path costs one
/// branch per phase.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Whether the `LIBRA_HOSTPROF` environment toggle requests profiling
/// (`1`, `true` or `on`, case-insensitive).
pub fn env_enabled() -> bool {
    std::env::var("LIBRA_HOSTPROF").is_ok_and(|v| {
        let v = v.trim();
        v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
    })
}

/// The collector's origin instant (for sharing with worker threads so all
/// lanes use one time base). `None` when disabled.
pub fn origin() -> Option<Instant> {
    if !is_enabled() {
        return None;
    }
    COLLECTOR.with(|c| c.borrow().as_ref().map(|col| col.origin))
}

/// Appends one phase profile to the current thread's collector (no-op when
/// disabled).
pub fn record_phase(phase: PhaseProfile) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.phases.push(phase);
        }
    });
}

/// Uninstalls the collector and returns the recorded profile (`None` if
/// [`start`] was never called on this thread).
pub fn finish() -> Option<HostProfile> {
    ENABLED.with(|e| e.set(false));
    COLLECTOR.with(|c| c.borrow_mut().take()).map(|c| HostProfile { phases: c.phases })
}

// ---------------------------------------------------------------------------
// Host metadata stamp
// ---------------------------------------------------------------------------

/// Host metadata stamped onto bench records so wall-clock numbers are
/// interpretable later: core count, git revision and a UTC timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostMeta {
    /// `std::thread::available_parallelism()` at capture time.
    pub cores: usize,
    /// Short git revision (`LIBRA_GIT_REV` override, else read from `.git`,
    /// else `"unknown"`).
    pub git_rev: String,
    /// ISO-8601 UTC timestamp (`LIBRA_BENCH_UTC` override — the harness passes
    /// it in — else derived from the system clock).
    pub utc: String,
}

impl HostMeta {
    /// Captures the current host's metadata.
    pub fn capture() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let git_rev = std::env::var("LIBRA_GIT_REV")
            .ok()
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty())
            .unwrap_or_else(git_rev_from_disk);
        let utc = std::env::var("LIBRA_BENCH_UTC")
            .ok()
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty())
            .unwrap_or_else(utc_now);
        Self {
            cores,
            git_rev,
            utc,
        }
    }

    /// Parses a [`json_object`](HostMeta::json_object) back (exact inverse);
    /// the campaign service decodes worker host stamps off the wire with this.
    pub fn from_value(v: &crate::json::Value, what: &str) -> Result<Self, String> {
        let cores = v
            .get("cores")
            .and_then(|c| c.as_u64())
            .ok_or_else(|| format!("{what}.cores: expected an exact integer"))?;
        let field = |key: &str| {
            v.get(key)
                .and_then(|s| s.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("{what}.{key}: expected a string"))
        };
        Ok(Self { cores: cores as usize, git_rev: field("git_rev")?, utc: field("utc")? })
    }

    /// The `{"cores": .., "git_rev": "..", "utc": ".."}` JSON object.
    pub fn json_object(&self) -> String {
        let mut rev = String::new();
        json_escape_into(&mut rev, &self.git_rev);
        let mut utc = String::new();
        json_escape_into(&mut utc, &self.utc);
        format!(
            "{{\"cores\": {}, \"git_rev\": \"{rev}\", \"utc\": \"{utc}\"}}",
            self.cores
        )
    }
}

fn short_rev(h: &str) -> String {
    h.chars().take(12).collect()
}

fn read_git_head(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(r) = head.strip_prefix("ref: ") else {
        return Some(short_rev(head)); // detached HEAD: the hash itself
    };
    if let Ok(h) = std::fs::read_to_string(git.join(r)) {
        return Some(short_rev(h.trim()));
    }
    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
    for line in packed.lines() {
        if let Some((hash, name)) = line.split_once(' ') {
            if name.trim() == r {
                return Some(short_rev(hash.trim()));
            }
        }
    }
    None
}

/// Walks up from the working directory looking for a `.git` directory and
/// resolves HEAD by hand (the workspace has no git dependency).
fn git_rev_from_disk() -> String {
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        let git = d.join(".git");
        if git.is_dir() {
            return read_git_head(&git).unwrap_or_else(|| "unknown".into());
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    "unknown".into()
}

/// `days` since 1970-01-01 to civil `(year, month, day)` — the standard
/// era-based algorithm, valid far beyond any plausible clock reading.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Formats seconds-since-epoch as `YYYY-MM-DDThh:mm:ssZ`.
pub fn format_utc(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (y, m, d) = civil_from_days(days);
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        rem / 3_600,
        (rem % 3_600) / 60,
        rem % 60
    )
}

fn utc_now() -> String {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| format_utc(d.as_secs()))
        .unwrap_or_else(|_| "unknown".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_no_op() {
        assert!(!is_enabled());
        record_phase(PhaseProfile::new("raster", 1, 2));
        assert!(finish().is_none());
        assert!(origin().is_none());
    }

    #[test]
    fn start_record_finish_round_trip() {
        start();
        assert!(origin().is_some());
        let mut p = PhaseProfile::new("raster", 2, 4);
        p.wall_ns = 1_000;
        p.commit_ns = 400;
        p.coord_drain_ns = 300;
        p.barrier_ns = 100;
        record_phase(p);
        let prof = finish().expect("collector installed");
        assert!(!is_enabled());
        assert_eq!(prof.phases.len(), 1);
        let t = prof.totals();
        assert_eq!(t.phases, 1);
        assert!((t.serial_fraction() - 0.4).abs() < 1e-12);
        assert!((t.parallel_fraction() - 0.3).abs() < 1e-12);
        assert!((t.barrier_fraction() - 0.1).abs() < 1e-12);
        assert!((t.other_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fractions_are_bounded_even_for_inconsistent_inputs() {
        // Timer pathologies (a sub-interval over-measuring the wall) must not
        // escape [0, 1].
        let mut p = PhaseProfile::new("raster", 1, 1);
        p.wall_ns = 100;
        p.commit_ns = 250;
        assert_eq!(p.serial_fraction(), 1.0);
        assert_eq!(p.other_fraction(), 0.0);
        let empty = PhaseProfile::new("raster", 1, 1);
        assert_eq!(empty.serial_fraction(), 0.0);
        assert_eq!(empty.imbalance(), 0.0);
    }

    #[test]
    fn lane_spans_cap_and_count_drops() {
        let mut lane = WorkerLane::new(1);
        for i in 0..(MAX_LANE_SPANS as u64 + 10) {
            lane.push_span("epoch", i, i + 1);
        }
        assert_eq!(lane.spans.len(), MAX_LANE_SPANS);
        assert_eq!(lane.dropped_spans, 10);
    }

    #[test]
    fn totals_merge_is_additive() {
        let mut a = HostTotals {
            phases: 1,
            wall_ns: 100,
            commit_ns: 10,
            run_lengths: vec![1, 2],
            ..HostTotals::default()
        };
        let b = HostTotals {
            phases: 2,
            wall_ns: 300,
            commit_ns: 30,
            run_lengths: vec![0, 1, 5],
            ..HostTotals::default()
        };
        a.merge(&b);
        assert_eq!(a.phases, 3);
        assert_eq!(a.wall_ns, 400);
        assert_eq!(a.commit_ns, 40);
        assert_eq!(a.run_lengths, vec![1, 3, 5]);
    }

    #[test]
    fn totals_merge_keeps_one_host_stamp_per_worker() {
        // Regression for the multi-host attribution bug: an aggregated profile
        // must carry every contributing worker's host stamp, not silently
        // describe all work with the coordinator's core count.
        let meta = |cores: usize, rev: &str| HostMeta {
            cores,
            git_rev: rev.into(),
            utc: "2026-08-08T00:00:00Z".into(),
        };
        let mut a = HostTotals { hosts: vec![meta(1, "coord")], ..HostTotals::default() };
        let b = HostTotals { hosts: vec![meta(8, "w0")], ..HostTotals::default() };
        let c = HostTotals { hosts: vec![meta(16, "w1")], ..HostTotals::default() };
        a.merge(&b);
        a.merge(&c);
        assert_eq!(a.hosts.len(), 3, "one stamp per contributing worker");
        assert_eq!(
            a.hosts.iter().map(|h| h.cores).collect::<Vec<_>>(),
            vec![1, 8, 16],
            "worker order is preserved"
        );
        let doc = crate::json::parse(&a.to_json()).expect("totals JSON parses");
        let hosts = doc.get("hosts").and_then(|v| v.as_array()).expect("hosts array");
        assert_eq!(hosts.len(), 3);
        assert_eq!(hosts[1].get("git_rev").and_then(|v| v.as_str()), Some("w0"));
        // And the stamp round-trips through the wire decoder.
        let back = HostMeta::from_value(&hosts[2], "hosts[2]").unwrap();
        assert_eq!(back, meta(16, "w1"));
    }

    #[test]
    fn chrome_events_land_on_host_tracks_in_microseconds() {
        let mut p = PhaseProfile::new("raster", 2, 2);
        p.start_ns = 5_000;
        p.wall_ns = 20_000;
        p.coord.push_span("epoch", 6_000, 9_000);
        let mut w = WorkerLane::new(1);
        w.push_span("epoch", 7_000, 8_000);
        p.workers.push(w);
        let prof = HostProfile { phases: vec![p] };
        let events = prof.chrome_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].track, Track::HostCoordinator);
        assert_eq!(events[0].ts, 5); // 5 000 ns = 5 µs
        assert_eq!(events[0].kind, EventKind::Span { dur: 20 });
        assert_eq!(events[2].track, Track::HostWorker(1));
        assert_eq!(events[2].ts, 7);
    }

    #[test]
    fn json_parses_and_carries_the_schema() {
        let mut p = PhaseProfile::new("raster", 2, 2);
        p.wall_ns = 1_000;
        p.ru_events = vec![3, 9];
        let prof = HostProfile { phases: vec![p] };
        let doc = crate::json::parse(&prof.to_json()).expect("hostprof JSON parses");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("libra-hostprof-v1")
        );
        let phases = doc.get("phases").and_then(|v| v.as_array()).expect("phases");
        assert_eq!(phases.len(), 1);
        assert_eq!(
            phases[0].get("imbalance").and_then(|v| v.as_f64()),
            Some(1.5)
        );
        assert!(doc.get("totals").is_some());
        assert!(prof.render().contains("hostprof"));
    }

    #[test]
    fn format_utc_matches_known_dates() {
        assert_eq!(format_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(format_utc(86_400), "1970-01-02T00:00:00Z");
        // 2026-08-08T00:00:00Z
        assert_eq!(format_utc(1_786_147_200), "2026-08-08T00:00:00Z");
        assert_eq!(format_utc(951_827_696), "2000-02-29T12:34:56Z");
    }

    #[test]
    fn host_meta_json_is_well_formed() {
        let m = HostMeta {
            cores: 8,
            git_rev: "abc123".into(),
            utc: "2026-08-08T00:00:00Z".into(),
        };
        let doc = crate::json::parse(&m.json_object()).expect("host meta parses");
        assert_eq!(doc.get("cores").and_then(|v| v.as_f64()), Some(8.0));
        assert_eq!(doc.get("git_rev").and_then(|v| v.as_str()), Some("abc123"));
    }
}
