//! Typed metrics registry: `Counter` / `Gauge` / `Histogram` values with labels,
//! serialisable to JSON and CSV.
//!
//! The GPU model, memory hierarchy and scheduler publish their per-frame counters
//! into one [`MetricsRegistry`], replacing ad-hoc "pick fields out of
//! `FrameStats`" plumbing with a uniform, enumerable namespace. Keys are ordered
//! (`BTreeMap`), so serialisation order is deterministic and diffs between two
//! reports are meaningful.
//!
//! ```
//! use tbr_common::metrics::{MetricsRegistry, MetricValue};
//!
//! let mut reg = MetricsRegistry::new();
//! reg.add_counter("dram_reads", &[("frame", "0")], 42);
//! reg.add_counter("dram_reads", &[("frame", "0")], 8); // accumulates
//! reg.set_gauge("texture_hit_ratio", &[("frame", "0")], 0.87);
//! assert_eq!(reg.counter_value("dram_reads", &[("frame", "0")]), Some(50));
//! assert!(reg.to_json().contains("\"dram_reads\""));
//! assert!(reg.to_csv().starts_with("name,labels,type,value\n"));
//! ```

use std::collections::BTreeMap;

use crate::binio::{ByteReader, ByteWriter};
use crate::json::escape_into as json_escape_into;

/// Magic bytes opening a binary metrics sidecar (`libra-metrics-bin-v1`).
pub const BIN_MAGIC: &[u8; 8] = b"LIBRAMET";

/// Format version of the binary metrics sidecar.
pub const BIN_VERSION: u32 = 1;

/// One metric's identity: name plus a label set (sorted for a canonical order).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (snake_case by convention).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key with canonically sorted labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        Self { name: name.to_string(), labels }
    }

    /// The `k=v,k2=v2` rendering of the label set (empty string when unlabelled).
    pub fn labels_string(&self) -> String {
        let parts: Vec<String> =
            self.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        parts.join(",")
    }
}

/// The value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically accumulated integer (merges by addition).
    Counter(u64),
    /// Point-in-time float (merges by last-write-wins).
    Gauge(f64),
    /// Bucketed distribution with a fixed bucket width in cycles.
    Histogram {
        /// Bucket width (e.g. cycles per DRAM interval).
        width: u64,
        /// Per-bucket counts.
        buckets: Vec<u64>,
    },
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram { .. } => "histogram",
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) of a histogram, linearly
    /// interpolated inside its fixed-width bucket: bucket `b` is read as the
    /// half-open value range `[b·width, (b+1)·width)`. Returns `None` for
    /// non-histogram values and for empty histograms (all buckets zero), so a
    /// missing distribution is distinguishable from a zero-valued one.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let MetricValue::Histogram { width, buckets } = self else {
            return None;
        };
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return None;
        }
        let width = (*width).max(1) as f64;
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (b, &count) in buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let next = cum + count;
            if next as f64 >= rank {
                let into = ((rank - cum as f64) / count as f64).clamp(0.0, 1.0);
                return Some((b as f64 + into) * width);
            }
            cum = next;
        }
        // Unreachable for consistent inputs (rank ≤ total); cover it anyway.
        Some(buckets.len() as f64 * width)
    }

    /// The median ([`Self::quantile`] at 0.50).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// The 95th percentile ([`Self::quantile`] at 0.95).
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// The 99th percentile ([`Self::quantile`] at 0.99).
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// An ordered collection of labelled metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: BTreeMap<MetricKey, MetricValue>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &MetricValue)> {
        self.entries.iter()
    }

    /// Adds to a counter, creating it at 0 first if needed.
    ///
    /// # Panics
    /// Panics if the key already holds a non-counter value (a type confusion bug
    /// at the publishing site).
    pub fn add_counter(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        let key = MetricKey::new(name, labels);
        match self.entries.entry(key).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(c) => *c += v,
            other => panic!("metric `{name}` is a {}, not a counter", other.type_name()),
        }
    }

    /// Sets a gauge (last write wins).
    ///
    /// # Panics
    /// Panics if the key already holds a non-gauge value.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = MetricKey::new(name, labels);
        match self.entries.entry(key).or_insert(MetricValue::Gauge(0.0)) {
            MetricValue::Gauge(g) => *g = v,
            other => panic!("metric `{name}` is a {}, not a gauge", other.type_name()),
        }
    }

    /// Installs (or replaces) a histogram.
    pub fn set_histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        width: u64,
        buckets: Vec<u64>,
    ) {
        let key = MetricKey::new(name, labels);
        self.entries.insert(key, MetricValue::Histogram { width, buckets });
    }

    /// Looks up a metric.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.entries.get(&MetricKey::new(name, labels))
    }

    /// Convenience: the value of a counter, if present and a counter.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.get(name, labels) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Convenience: the value of a gauge, if present and a gauge.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.get(name, labels) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Merges another registry into this one: counters add, gauges take the
    /// other's value, histograms add bucket-wise when widths match (and are
    /// replaced otherwise).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (key, value) in &other.entries {
            match (self.entries.get_mut(key), value) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (
                    Some(MetricValue::Histogram { width: wa, buckets: ba }),
                    MetricValue::Histogram { width: wb, buckets: bb },
                ) if wa == wb => {
                    if ba.len() < bb.len() {
                        ba.resize(bb.len(), 0);
                    }
                    for (dst, src) in ba.iter_mut().zip(bb) {
                        *dst += src;
                    }
                }
                (slot, v) => {
                    let v = v.clone();
                    match slot {
                        Some(s) => *s = v,
                        None => {
                            self.entries.insert(key.clone(), v);
                        }
                    }
                }
            }
        }
    }

    /// Serialises the registry as a JSON document:
    /// `{"schema":"libra-metrics-v1","metrics":[{...}, ...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.entries.len() * 96);
        out.push_str("{\"schema\":\"libra-metrics-v1\",\"metrics\":[");
        for (i, (key, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            json_escape_into(&mut out, &key.name);
            out.push_str("\",\"labels\":{");
            for (j, (k, v)) in key.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape_into(&mut out, k);
                out.push_str("\":\"");
                json_escape_into(&mut out, v);
                out.push('"');
            }
            out.push_str("},\"type\":\"");
            out.push_str(value.type_name());
            out.push_str("\",");
            match value {
                MetricValue::Counter(c) => out.push_str(&format!("\"value\":{c}")),
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("\"value\":{}", finite_json_number(*g)))
                }
                MetricValue::Histogram { width, buckets } => {
                    out.push_str(&format!("\"width\":{width},\"buckets\":["));
                    for (j, b) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&b.to_string());
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Serialises the registry to the endian-pinned binary sidecar format
    /// (`libra-metrics-bin-v1`). All integers are little-endian; gauges are
    /// carried as IEEE-754 bit patterns, so [`MetricsRegistry::from_binary`]
    /// round-trips bit-exactly (unlike the JSON export, which formats floats
    /// as text). Layout:
    ///
    /// ```text
    /// magic    [u8; 8]  = "LIBRAMET"
    /// version  u32      = 1
    /// count    u32      — number of metrics, in canonical (sorted) key order
    /// per metric:
    ///   name     str16  — u16 byte length + UTF-8 bytes
    ///   labels   u16    — pair count, then (key str16, value str16) pairs
    ///   tag      u8     — 0 counter, 1 gauge, 2 histogram
    ///   payload         — counter: u64; gauge: f64 bits as u64;
    ///                     histogram: width u64, then u32 count + u64 buckets
    /// ```
    pub fn to_binary(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(BIN_MAGIC);
        w.u32(BIN_VERSION);
        w.u32(self.entries.len() as u32);
        for (key, value) in &self.entries {
            w.str16(&key.name);
            w.u16(key.labels.len() as u16);
            for (k, v) in &key.labels {
                w.str16(k);
                w.str16(v);
            }
            match value {
                MetricValue::Counter(c) => {
                    w.u8(0);
                    w.u64(*c);
                }
                MetricValue::Gauge(g) => {
                    w.u8(1);
                    w.f64_bits(*g);
                }
                MetricValue::Histogram { width, buckets } => {
                    w.u8(2);
                    w.u64(*width);
                    w.u64_slice(buckets);
                }
            }
        }
        w.into_bytes()
    }

    /// Decodes a `libra-metrics-bin-v1` sidecar written by
    /// [`MetricsRegistry::to_binary`]. Rejects wrong magic, unknown versions,
    /// truncated payloads and trailing garbage with a descriptive error.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, String> {
        let mut r = ByteReader::new(bytes);
        let magic = r.bytes(8, "metrics magic")?;
        if magic != BIN_MAGIC {
            return Err(format!(
                "not a binary metrics sidecar: magic {magic:?} is not {BIN_MAGIC:?}"
            ));
        }
        let version = r.u32("metrics version")?;
        if version != BIN_VERSION {
            return Err(format!(
                "binary metrics version {version} is not the supported {BIN_VERSION}"
            ));
        }
        let count = r.u32("metric count")?;
        let mut entries = BTreeMap::new();
        for i in 0..count {
            let what = format!("metric {i}");
            let name = r.str16(&what)?;
            let pairs = r.u16(&what)?;
            let mut labels = Vec::with_capacity(pairs as usize);
            for _ in 0..pairs {
                let k = r.str16(&what)?;
                let v = r.str16(&what)?;
                labels.push((k, v));
            }
            let value = match r.u8(&what)? {
                0 => MetricValue::Counter(r.u64(&what)?),
                1 => MetricValue::Gauge(r.f64_bits(&what)?),
                2 => {
                    let width = r.u64(&what)?;
                    let buckets = r.u64_vec(&what)?;
                    MetricValue::Histogram { width, buckets }
                }
                tag => return Err(format!("{what}: unknown value tag {tag}")),
            };
            entries.insert(MetricKey { name, labels }, value);
        }
        if !r.is_empty() {
            return Err(format!(
                "binary metrics sidecar has {} trailing bytes after {count} metrics",
                r.remaining()
            ));
        }
        Ok(Self { entries })
    }

    /// Serialises the registry as CSV (`name,labels,type,value`); histograms
    /// render their buckets as a `;`-separated list.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,labels,type,value\n");
        for (key, value) in &self.entries {
            let rendered = match value {
                MetricValue::Counter(c) => c.to_string(),
                MetricValue::Gauge(g) => finite_json_number(*g),
                MetricValue::Histogram { width, buckets } => {
                    let b: Vec<String> = buckets.iter().map(u64::to_string).collect();
                    format!("w{width}:{}", b.join(";"))
                }
            };
            out.push_str(&format!(
                "{},\"{}\",{},{}\n",
                key.name,
                key.labels_string(),
                value.type_name(),
                rendered
            ));
        }
        out
    }
}

/// Renders a float as a valid JSON number (non-finite values degrade to 0).
fn finite_json_number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on f64 never prints exponents for ordinary magnitudes; it also
        // prints integers without a dot, which is still valid JSON.
        s
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.add_counter("hits", &[("cache", "l2")], 3);
        r.add_counter("hits", &[("cache", "l2")], 4);
        r.set_gauge("ratio", &[], 0.5);
        r.set_gauge("ratio", &[], 0.75);
        assert_eq!(r.counter_value("hits", &[("cache", "l2")]), Some(7));
        assert_eq!(r.gauge_value("ratio", &[]), Some(0.75));
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut r = MetricsRegistry::new();
        r.add_counter("x", &[("a", "1"), ("b", "2")], 1);
        r.add_counter("x", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.counter_value("x", &[("b", "2"), ("a", "1")]), Some(2));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("x", &[], 1.0);
        r.add_counter("x", &[], 1);
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        a.add_counter("c", &[], 1);
        a.set_histogram("h", &[], 10, vec![1, 2]);
        let mut b = MetricsRegistry::new();
        b.add_counter("c", &[], 2);
        b.add_counter("only_b", &[], 5);
        b.set_histogram("h", &[], 10, vec![0, 1, 9]);
        b.set_gauge("g", &[], 3.5);
        a.merge(&b);
        assert_eq!(a.counter_value("c", &[]), Some(3));
        assert_eq!(a.counter_value("only_b", &[]), Some(5));
        assert_eq!(a.gauge_value("g", &[]), Some(3.5));
        assert_eq!(
            a.get("h", &[]),
            Some(&MetricValue::Histogram { width: 10, buckets: vec![1, 3, 9] })
        );
    }

    #[test]
    fn json_and_csv_render_all_types() {
        let mut r = MetricsRegistry::new();
        r.add_counter("reads", &[("frame", "0")], 7);
        r.set_gauge("ratio", &[], 0.25);
        r.set_histogram("intervals", &[], 5000, vec![3, 0, 1]);
        let j = r.to_json();
        assert!(j.contains("\"schema\":\"libra-metrics-v1\""));
        assert!(j.contains("\"value\":7"));
        assert!(j.contains("\"value\":0.25"));
        assert!(j.contains("\"width\":5000,\"buckets\":[3,0,1]"));
        let c = r.to_csv();
        assert!(c.contains("reads,\"frame=0\",counter,7"));
        assert!(c.contains("intervals,\"\",histogram,w5000:3;0;1"));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 10 samples spread as [4, 4, 2] over width-5 buckets.
        let h = MetricValue::Histogram { width: 5, buckets: vec![4, 4, 2] };
        // p50 → rank 5, one sample into the second bucket: (1 + 1/4) * 5.
        assert_eq!(h.p50(), Some(6.25));
        // p95 → rank 9.5, 1.5 samples into the third bucket: (2 + 1.5/2) * 5.
        assert_eq!(h.p95(), Some(13.75));
        assert_eq!(h.p99(), Some(14.75));
        // Extremes stay within the populated value range.
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(15.0));
        // Out-of-range q clamps instead of extrapolating.
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
    }

    #[test]
    fn quantiles_skip_leading_empty_buckets() {
        let h = MetricValue::Histogram { width: 2, buckets: vec![0, 0, 10] };
        assert_eq!(h.quantile(0.0), Some(4.0));
        assert_eq!(h.p50(), Some(5.0));
        // A degenerate zero width is treated as width 1.
        let d = MetricValue::Histogram { width: 0, buckets: vec![0, 10] };
        assert_eq!(d.p50(), Some(1.5));
    }

    #[test]
    fn quantiles_are_none_for_empty_or_non_histograms() {
        assert_eq!(MetricValue::Counter(7).p50(), None);
        assert_eq!(MetricValue::Gauge(1.0).p95(), None);
        let empty = MetricValue::Histogram { width: 10, buckets: vec![0, 0] };
        assert_eq!(empty.p99(), None);
        let none = MetricValue::Histogram { width: 10, buckets: Vec::new() };
        assert_eq!(none.quantile(0.5), None);
    }

    #[test]
    fn binary_round_trip_is_bit_exact() {
        let mut r = MetricsRegistry::new();
        r.add_counter("reads", &[("frame", "0"), ("ru", "3")], u64::MAX - 1);
        r.set_gauge("ratio", &[], 0.1 + 0.2); // not exactly representable in text
        r.set_gauge("neg_zero", &[], -0.0);
        r.set_histogram("intervals", &[("kind", "dram")], 5000, vec![3, 0, 1]);
        let bytes = r.to_binary();
        assert_eq!(&bytes[..8], BIN_MAGIC);
        let back = MetricsRegistry::from_binary(&bytes).unwrap();
        assert_eq!(back, r);
        // Bit-exact, including the sign of -0.0 (PartialEq would accept +0.0).
        let g = back.gauge_value("neg_zero", &[]).unwrap();
        assert_eq!(g.to_bits(), (-0.0f64).to_bits());
        // Deterministic: the same registry always encodes to the same bytes.
        assert_eq!(bytes, back.to_binary());
    }

    #[test]
    fn binary_decoder_rejects_corruption() {
        let mut r = MetricsRegistry::new();
        r.add_counter("c", &[], 7);
        let bytes = r.to_binary();

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        let err = MetricsRegistry::from_binary(&wrong_magic).unwrap_err();
        assert!(err.contains("magic"), "{err}");

        let mut wrong_version = bytes.clone();
        wrong_version[8] = 9;
        let err = MetricsRegistry::from_binary(&wrong_version).unwrap_err();
        assert!(err.contains("version"), "{err}");

        let err = MetricsRegistry::from_binary(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(err.contains("truncated"), "{err}");

        let mut trailing = bytes.clone();
        trailing.push(0);
        let err = MetricsRegistry::from_binary(&trailing).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn non_finite_gauges_degrade_to_zero() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("bad", &[], f64::NAN);
        assert!(r.to_json().contains("\"value\":0"));
    }

    #[test]
    fn serialisation_order_is_deterministic() {
        let mut a = MetricsRegistry::new();
        a.add_counter("z", &[], 1);
        a.add_counter("a", &[], 1);
        let mut b = MetricsRegistry::new();
        b.add_counter("a", &[], 1);
        b.add_counter("z", &[], 1);
        assert_eq!(a.to_json(), b.to_json());
        let ja = a.to_json();
        assert!(ja.find("\"a\"").unwrap() < ja.find("\"z\"").unwrap());
    }
}
