//! Per-frame bump arenas: allocation-free scratch storage for hot loops.
//!
//! The raster phase creates thousands of short-lived buffers per frame (the
//! texture sample-line lists of every warp, for one). Heap-allocating each is
//! cache-hostile and serialises on the allocator; an [`Arena`] instead hands
//! out [`Span`]s of one growing backing vector and is reset **wholesale**
//! between frames — allocation becomes a bounds check plus an extend, and
//! deallocation becomes free.
//!
//! # Lifetime rules
//!
//! * A [`Span`] is a plain `(start, len)` index pair — `Copy`, no borrow on
//!   the arena. It stays valid until the arena it came from is [`reset`].
//! * [`reset`] invalidates *every* span at once (it does not shrink the
//!   backing storage, so a warmed-up arena allocates nothing in steady state).
//!   Callers must not hold spans across a reset; the owning structure (e.g. a
//!   Raster Unit) resets only at frame boundaries, when no warp is in flight.
//! * Arenas are not thread-safe; each Raster Unit owns its own, and the
//!   parallel event-loop driver already guarantees exclusive RU access
//!   (shared events commit serially, workers own disjoint RUs per epoch).
//!
//! [`reset`]: Arena::reset
//!
//! ```
//! use tbr_common::arena::Arena;
//!
//! let mut a: Arena<u64> = Arena::new();
//! let s = a.alloc_extend([1, 2, 3]);
//! assert_eq!(a.get(s), &[1, 2, 3]);
//! a.reset();
//! assert!(a.is_empty());
//! ```

/// A contiguous allocation inside an [`Arena`]: `(start, len)` indices into
/// the backing storage. `Copy`, borrow-free, invalidated by [`Arena::reset`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Span {
    /// First element index in the arena's backing storage.
    pub start: u32,
    /// Number of elements.
    pub len: u32,
}

impl Span {
    /// An empty span (valid against any arena).
    pub const EMPTY: Span = Span { start: 0, len: 0 };

    /// Whether the span holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The half-open element range of the span.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }
}

/// A typed bump arena: allocations are appended to one backing vector and
/// freed all at once by [`Arena::reset`].
#[derive(Debug, Clone, Default)]
pub struct Arena<T> {
    data: Vec<T>,
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Elements currently allocated.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing is allocated.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drops every allocation at once, keeping the backing capacity (the
    /// per-frame "reset wholesale" operation).
    pub fn reset(&mut self) {
        self.data.clear();
    }

    /// Allocates a span holding `items`, in order.
    pub fn alloc_extend<I: IntoIterator<Item = T>>(&mut self, items: I) -> Span {
        let start = self.data.len();
        self.data.extend(items);
        Self::span_of(start, self.data.len())
    }

    /// Resolves a span to its element slice.
    ///
    /// # Panics
    /// Panics if the span is out of bounds (a span used after [`Arena::reset`],
    /// or against the wrong arena).
    pub fn get(&self, span: Span) -> &[T] {
        &self.data[span.range()]
    }

    /// The current high-water position — pass to [`Arena::span_since`] to
    /// capture everything pushed after this point as one span.
    pub fn mark(&self) -> usize {
        self.data.len()
    }

    /// The span covering everything allocated since `mark`.
    pub fn span_since(&self, mark: usize) -> Span {
        Self::span_of(mark, self.data.len())
    }

    /// Appends one element (part of an open allocation between
    /// [`Arena::mark`] and [`Arena::span_since`]).
    pub fn push(&mut self, item: T) {
        self.data.push(item);
    }

    fn span_of(start: usize, end: usize) -> Span {
        let len = end - start;
        assert!(
            end <= u32::MAX as usize,
            "arena overflow: {end} elements exceed the u32 span domain"
        );
        Span {
            start: start as u32,
            len: len as u32,
        }
    }
}

impl<T: Copy> Arena<T> {
    /// Allocates a span holding a copy of `items`.
    pub fn alloc_slice(&mut self, items: &[T]) -> Span {
        let start = self.data.len();
        self.data.extend_from_slice(items);
        Self::span_of(start, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_resolve_to_their_contents() {
        let mut a: Arena<u32> = Arena::new();
        let s1 = a.alloc_slice(&[1, 2, 3]);
        let s2 = a.alloc_extend(4..7);
        let empty = a.alloc_slice(&[]);
        assert_eq!(a.get(s1), &[1, 2, 3]);
        assert_eq!(a.get(s2), &[4, 5, 6]);
        assert_eq!(a.get(empty), &[] as &[u32]);
        assert!(empty.is_empty());
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn mark_and_span_since_capture_open_allocations() {
        let mut a: Arena<u64> = Arena::new();
        a.alloc_slice(&[9, 9]);
        let m = a.mark();
        a.push(1);
        a.push(2);
        let s = a.span_since(m);
        assert_eq!(a.get(s), &[1, 2]);
    }

    #[test]
    fn reset_invalidates_everything_but_keeps_capacity() {
        let mut a: Arena<u8> = Arena::new();
        a.alloc_slice(&[1; 100]);
        let cap = a.data.capacity();
        a.reset();
        assert!(a.is_empty());
        assert_eq!(a.data.capacity(), cap, "reset must keep the warm capacity");
        let s = a.alloc_slice(&[7]);
        assert_eq!(a.get(s), &[7]);
    }

    #[test]
    #[should_panic]
    fn stale_spans_panic_after_reset() {
        let mut a: Arena<u8> = Arena::new();
        let s = a.alloc_slice(&[1, 2]);
        a.reset();
        let _ = a.get(s);
    }
}
