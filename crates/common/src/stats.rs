//! Measurement containers filled by the simulator and consumed by the experiment
//! harness (and by LIBRA's own feedback loop).

use crate::binio::{ByteReader, ByteWriter};
use crate::ids::{FrameId, TileId};
use crate::json::{self, Value};
use crate::metrics::MetricsRegistry;
use crate::Cycle;

/// Hit/miss counters of one cache (or one aggregated group of caches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses served by this level.
    pub hits: u64,
    /// Accesses that missed to the next level.
    pub misses: u64,
    /// Lines evicted to make room for fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; `1.0` for an untouched cache (no evidence of misses).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }

    /// Publishes this counter set into `reg` as `cache_*` counters plus a
    /// `cache_hit_ratio` gauge, labelled with the given label pairs.
    pub fn publish(&self, reg: &mut MetricsRegistry, labels: &[(&str, &str)]) {
        reg.add_counter("cache_accesses", labels, self.accesses);
        reg.add_counter("cache_hits", labels, self.hits);
        reg.add_counter("cache_misses", labels, self.misses);
        reg.add_counter("cache_evictions", labels, self.evictions);
        reg.set_gauge("cache_hit_ratio", labels, self.hit_ratio());
    }
}

/// DRAM traffic and timing counters, including the per-interval request histogram the
/// paper plots in Fig 7 (5 000-cycle buckets by default).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DramStats {
    /// Read requests serviced.
    pub reads: u64,
    /// Write requests serviced.
    pub writes: u64,
    /// Requests that hit an open row buffer.
    pub row_hits: u64,
    /// Requests that required precharge + activate.
    pub row_misses: u64,
    /// Sum of request latencies (arrival → data), in cycles.
    pub latency_sum: u64,
    /// Largest single-request latency observed.
    pub max_latency: Cycle,
    /// Requests per interval of [`DramStats::interval_width`] cycles.
    pub intervals: Vec<u64>,
    /// Width of each histogram bucket in cycles.
    pub interval_width: Cycle,
}

impl DramStats {
    /// Creates an empty counter set with the given histogram bucket width.
    pub fn new(interval_width: Cycle) -> Self {
        Self { interval_width: interval_width.max(1), ..Self::default() }
    }

    /// Total requests (reads + writes).
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean request latency in cycles (0 if no requests).
    pub fn avg_latency(&self) -> f64 {
        let n = self.total_accesses();
        if n == 0 {
            0.0
        } else {
            self.latency_sum as f64 / n as f64
        }
    }

    /// Records one request into the histogram.
    pub fn record_interval(&mut self, at: Cycle) {
        let bucket = (at / self.interval_width.max(1)) as usize;
        if bucket >= self.intervals.len() {
            self.intervals.resize(bucket + 1, 0);
        }
        self.intervals[bucket] += 1;
    }

    /// Peak requests observed in a single interval.
    pub fn peak_interval(&self) -> u64 {
        self.intervals.iter().copied().max().unwrap_or(0)
    }

    /// Coefficient of variation (σ/μ) of the interval histogram — the paper's notion
    /// of memory-bandwidth balance. A perfectly smooth request stream scores 0.
    pub fn interval_cv(&self) -> f64 {
        if self.intervals.len() < 2 {
            return 0.0;
        }
        let n = self.intervals.len() as f64;
        let mean = self.intervals.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .intervals
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }

    /// Merges another counter set.
    ///
    /// Histogram handling depends on the bucket widths:
    /// * merging into a `Default` instance (width 0, no samples) adopts the
    ///   other side's width,
    /// * equal widths add bucket-wise,
    /// * a width that is an exact multiple of the other re-buckets the finer
    ///   histogram into the coarser one (the merged histogram keeps the coarser
    ///   width, so counts stay exact),
    /// * anything else is a programming error and panics — the old behaviour of
    ///   silently adding bucket `i` of a 5 000-cycle histogram to bucket `i` of
    ///   a 1 000-cycle one produced meaningless Fig-7 curves.
    ///
    /// # Panics
    /// Panics when both histograms carry samples at incommensurable widths.
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.latency_sum += other.latency_sum;
        self.max_latency = self.max_latency.max(other.max_latency);
        // Effective widths: `record_interval` clamps a width of 0 (the `Default`
        // instance) to 1; a histogram with no samples is width-agnostic (0 here).
        let self_w = if self.intervals.is_empty() { 0 } else { self.interval_width.max(1) };
        let other_w = if other.intervals.is_empty() { 0 } else { other.interval_width.max(1) };
        match (self_w, other_w) {
            (_, 0) => {
                // Other has no samples; still adopt its width if we are a bare
                // `Default` accumulator so later merges use it.
                if self.interval_width == 0 {
                    self.interval_width = other.interval_width;
                }
            }
            (0, w) => {
                // We have no samples yet: take the other histogram wholesale.
                self.interval_width = w;
                self.intervals = other.intervals.clone();
            }
            (a, b) if a == b => {
                if self.intervals.len() < other.intervals.len() {
                    self.intervals.resize(other.intervals.len(), 0);
                }
                for (dst, src) in self.intervals.iter_mut().zip(&other.intervals) {
                    *dst += src;
                }
            }
            (a, b) if a.is_multiple_of(b) => {
                // Other is finer: fold its buckets into our coarser ones.
                for (i, &count) in other.intervals.iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    let ci = (i as u64 * b / a) as usize;
                    if ci >= self.intervals.len() {
                        self.intervals.resize(ci + 1, 0);
                    }
                    self.intervals[ci] += count;
                }
            }
            (a, b) if b.is_multiple_of(a) => {
                // We are finer: coarsen ourselves to the other's width, then add.
                let mut coarse: Vec<u64> = Vec::new();
                for (i, &count) in self.intervals.iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    let ci = (i as u64 * a / b) as usize;
                    if ci >= coarse.len() {
                        coarse.resize(ci + 1, 0);
                    }
                    coarse[ci] += count;
                }
                self.interval_width = b;
                self.intervals = coarse;
                if self.intervals.len() < other.intervals.len() {
                    self.intervals.resize(other.intervals.len(), 0);
                }
                for (dst, src) in self.intervals.iter_mut().zip(&other.intervals) {
                    *dst += src;
                }
            }
            (a, b) => panic!(
                "DramStats::merge: incommensurable interval widths {a} and {b} \
                 (one must divide the other)"
            ),
        }
    }

    /// Publishes these counters into `reg` as `dram_*` metrics (counters, latency
    /// gauges and the Fig-7 interval histogram), labelled with the given pairs.
    pub fn publish(&self, reg: &mut MetricsRegistry, labels: &[(&str, &str)]) {
        reg.add_counter("dram_reads", labels, self.reads);
        reg.add_counter("dram_writes", labels, self.writes);
        reg.add_counter("dram_row_hits", labels, self.row_hits);
        reg.add_counter("dram_row_misses", labels, self.row_misses);
        reg.set_gauge("dram_avg_latency_cycles", labels, self.avg_latency());
        reg.set_gauge("dram_max_latency_cycles", labels, self.max_latency as f64);
        reg.set_gauge("dram_interval_cv", labels, self.interval_cv());
        reg.set_histogram(
            "dram_requests_per_interval",
            labels,
            self.interval_width,
            self.intervals.clone(),
        );
    }
}

/// Per-tile tallies of the quantities LIBRA's hardware counts (§III-B): DRAM accesses
/// and executed instructions — plus fragment/warp counts for analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileTally {
    /// DRAM accesses attributed to this tile's rendering.
    pub dram_accesses: u64,
    /// Shader instructions executed for this tile.
    pub instructions: u64,
    /// Fragments shaded in this tile.
    pub fragments: u64,
    /// Warps launched for this tile.
    pub warps: u64,
}

/// Per-tile statistics of a whole frame (the heatmap of Fig 2, and LIBRA's feedback).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TileHeatmap {
    /// Tally per tile, indexed by [`TileId::index`].
    pub tiles: Vec<TileTally>,
}

impl TileHeatmap {
    /// An all-zero heatmap for `num_tiles` tiles.
    pub fn new(num_tiles: usize) -> Self {
        Self { tiles: vec![TileTally::default(); num_tiles] }
    }

    /// Mutable tally of a tile.
    ///
    /// # Panics
    /// Panics if `tile` is out of range.
    #[inline]
    pub fn tally_mut(&mut self, tile: TileId) -> &mut TileTally {
        &mut self.tiles[tile.index()]
    }

    /// Tally of a tile.
    ///
    /// # Panics
    /// Panics if `tile` is out of range.
    #[inline]
    pub fn tally(&self, tile: TileId) -> &TileTally {
        &self.tiles[tile.index()]
    }

    /// Total DRAM accesses across all tiles.
    pub fn total_dram_accesses(&self) -> u64 {
        self.tiles.iter().map(|t| t.dram_accesses).sum()
    }

    /// Cumulative distribution of the relative per-tile DRAM-access difference against
    /// `previous` — the frame-coherence metric of Fig 8. Returns, for each threshold
    /// in `thresholds` (fractions, e.g. 0.2 = 20 %), the fraction of tiles whose
    /// relative difference is below it. Tiles with zero accesses in both frames count
    /// as perfectly coherent.
    pub fn coherence_cdf(&self, previous: &TileHeatmap, thresholds: &[f64]) -> Vec<f64> {
        assert_eq!(self.tiles.len(), previous.tiles.len(), "heatmap sizes differ");
        if self.tiles.is_empty() {
            return thresholds.iter().map(|_| 1.0).collect();
        }
        let diffs: Vec<f64> = self
            .tiles
            .iter()
            .zip(&previous.tiles)
            .map(|(cur, prev)| {
                let a = cur.dram_accesses as f64;
                let b = prev.dram_accesses as f64;
                let denom = a.max(b);
                if denom == 0.0 {
                    0.0
                } else {
                    (a - b).abs() / denom
                }
            })
            .collect();
        thresholds
            .iter()
            .map(|&t| diffs.iter().filter(|&&d| d <= t).count() as f64 / diffs.len() as f64)
            .collect()
    }
}

/// Everything measured while rendering one frame.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameStats {
    /// Which frame of the sequence this is.
    pub frame: FrameId,
    /// Cycles spent in the geometry pipeline + tiling engine (sort-middle phase).
    pub geometry_cycles: Cycle,
    /// Cycles spent in the raster pipeline (tile rendering), the dominant phase.
    pub raster_cycles: Cycle,
    /// Vertex-cache counters.
    pub vertex_cache: CacheStats,
    /// Tile-cache counters (aggregated over Raster Units).
    pub tile_cache: CacheStats,
    /// Texture-cache counters (aggregated over all shader cores).
    pub texture_cache: CacheStats,
    /// Shared-L2 counters.
    pub l2_cache: CacheStats,
    /// DRAM counters and interval histogram.
    pub dram: DramStats,
    /// Per-tile heatmap (Fig 2) and LIBRA feedback source.
    pub heatmap: TileHeatmap,
    /// Vertices processed by the geometry pipeline.
    pub vertices: u64,
    /// Primitives that survived culling/clipping and were binned.
    pub primitives: u64,
    /// Fragments shaded.
    pub fragments: u64,
    /// Warps executed.
    pub warps: u64,
    /// Shader instructions executed (ALU + texture).
    pub instructions: u64,
    /// Texture requests issued by warps (line-granular).
    pub texture_requests: u64,
    /// Sum of texture request latencies in cycles (for Fig 12's average latency).
    pub texture_latency_sum: u64,
    /// Texture lines filled into L1 texture caches (counting duplicates across cores).
    pub texture_fill_lines: u64,
    /// Distinct texture lines touched frame-wide (replication = fills / unique).
    pub texture_unique_lines: u64,
    /// Simulator micro-events processed for this frame (geometry fetch/bin events
    /// plus raster event-loop decisions). A *simulator*-side measure — the basis
    /// of the events/sec throughput benchmark — not a property of the GPU.
    pub micro_events: u64,
}

impl FrameStats {
    /// Total frame time in cycles (geometry phase + raster phase; sort-middle TBR
    /// renders them back to back).
    pub fn total_cycles(&self) -> Cycle {
        self.geometry_cycles + self.raster_cycles
    }

    /// Mean texture-request latency in cycles.
    pub fn avg_texture_latency(&self) -> f64 {
        if self.texture_requests == 0 {
            0.0
        } else {
            self.texture_latency_sum as f64 / self.texture_requests as f64
        }
    }

    /// Texture-line replication factor across L1s (≥ 1; 1 = no line fetched by more
    /// than one core). Fig 13's companion metric.
    pub fn texture_replication(&self) -> f64 {
        if self.texture_unique_lines == 0 {
            1.0
        } else {
            self.texture_fill_lines as f64 / self.texture_unique_lines as f64
        }
    }

    /// Fraction of the frame spent in the raster phase (Fig 1; paper average ≈ 88 %).
    pub fn raster_fraction(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.raster_cycles as f64 / total as f64
        }
    }

    /// Publishes every counter of this frame into `reg`, labelled with the given
    /// pairs (callers typically add a `frame` label). Caches publish under a
    /// `cache` label; DRAM under `dram_*`.
    pub fn publish(&self, reg: &mut MetricsRegistry, labels: &[(&str, &str)]) {
        let with = |extra: (&'static str, &str), labels: &[(&str, &str)]| -> Vec<(String, String)> {
            let mut v: Vec<(String, String)> =
                labels.iter().map(|(k, val)| (k.to_string(), val.to_string())).collect();
            v.push((extra.0.to_string(), extra.1.to_string()));
            v
        };
        for (name, cache) in [
            ("vertex", &self.vertex_cache),
            ("tile", &self.tile_cache),
            ("texture", &self.texture_cache),
            ("l2", &self.l2_cache),
        ] {
            let owned = with(("cache", name), labels);
            let borrowed: Vec<(&str, &str)> =
                owned.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            cache.publish(reg, &borrowed);
        }
        self.dram.publish(reg, labels);
        reg.add_counter("geometry_cycles", labels, self.geometry_cycles);
        reg.add_counter("raster_cycles", labels, self.raster_cycles);
        reg.add_counter("vertices", labels, self.vertices);
        reg.add_counter("primitives", labels, self.primitives);
        reg.add_counter("fragments", labels, self.fragments);
        reg.add_counter("warps", labels, self.warps);
        reg.add_counter("instructions", labels, self.instructions);
        reg.add_counter("texture_requests", labels, self.texture_requests);
        reg.add_counter("micro_events", labels, self.micro_events);
        reg.set_gauge("texture_avg_latency_cycles", labels, self.avg_texture_latency());
        reg.set_gauge("texture_replication", labels, self.texture_replication());
        reg.set_gauge("raster_fraction", labels, self.raster_fraction());
    }
}

/// Statistics of a rendered frame sequence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SequenceStats {
    /// Per-frame statistics, in render order.
    pub frames: Vec<FrameStats>,
}

impl SequenceStats {
    /// Sum of all frame times in cycles.
    pub fn total_cycles(&self) -> Cycle {
        self.frames.iter().map(FrameStats::total_cycles).sum()
    }

    /// Sum of raster-phase cycles only.
    pub fn raster_cycles(&self) -> Cycle {
        self.frames.iter().map(|f| f.raster_cycles).sum()
    }

    /// Mean frame time in cycles.
    pub fn avg_frame_cycles(&self) -> f64 {
        if self.frames.is_empty() {
            0.0
        } else {
            self.total_cycles() as f64 / self.frames.len() as f64
        }
    }

    /// Speedup of `self` relative to `other` (> 1 means `self` is faster).
    pub fn speedup_over(&self, other: &SequenceStats) -> f64 {
        let mine = self.total_cycles();
        if mine == 0 {
            return 0.0;
        }
        other.total_cycles() as f64 / mine as f64
    }

    /// Aggregate texture hit ratio over the sequence.
    pub fn texture_hit_ratio(&self) -> f64 {
        let mut agg = CacheStats::default();
        for f in &self.frames {
            agg.merge(&f.texture_cache);
        }
        agg.hit_ratio()
    }

    /// Aggregate shared-L2 hit ratio over the sequence.
    pub fn l2_hit_ratio(&self) -> f64 {
        let mut agg = CacheStats::default();
        for f in &self.frames {
            agg.merge(&f.l2_cache);
        }
        agg.hit_ratio()
    }

    /// Aggregate tile-cache (colour/depth buffer) hit ratio over the sequence.
    pub fn tile_hit_ratio(&self) -> f64 {
        let mut agg = CacheStats::default();
        for f in &self.frames {
            agg.merge(&f.tile_cache);
        }
        agg.hit_ratio()
    }

    /// Mean texture latency over the sequence, in cycles.
    pub fn avg_texture_latency(&self) -> f64 {
        let reqs: u64 = self.frames.iter().map(|f| f.texture_requests).sum();
        let lat: u64 = self.frames.iter().map(|f| f.texture_latency_sum).sum();
        if reqs == 0 {
            0.0
        } else {
            lat as f64 / reqs as f64
        }
    }

    /// Total DRAM accesses over the sequence.
    pub fn total_dram_accesses(&self) -> u64 {
        self.frames.iter().map(|f| f.dram.total_accesses()).sum()
    }

    /// Mean texture-line replication factor over the sequence.
    pub fn avg_texture_replication(&self) -> f64 {
        if self.frames.is_empty() {
            return 1.0;
        }
        self.frames.iter().map(FrameStats::texture_replication).sum::<f64>()
            / self.frames.len() as f64
    }
}

// ---------------------------------------------------------------------------
// Exact JSON round-trip (campaign checkpoints).
//
// Every field of `SequenceStats` is an unsigned integer, so the JSON round-trip
// is *bit-exact*: a job result reloaded from a campaign checkpoint compares
// equal (`PartialEq`) to the in-memory result of running the job. Values are
// read back through `json::Value::as_u64`, which rejects anything that would
// not survive the `f64` number representation (> 2^53) instead of rounding.
// ---------------------------------------------------------------------------

/// Writes `items` as a JSON array of integers.
fn u64_array_into(out: &mut String, items: impl Iterator<Item = u64>) {
    out.push('[');
    for (i, v) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

/// Reads a JSON array of exact integers.
fn u64_array(v: &Value, what: &str) -> Result<Vec<u64>, String> {
    let arr = v.as_array().ok_or_else(|| format!("{what}: expected an array"))?;
    arr.iter()
        .enumerate()
        .map(|(i, e)| e.as_u64().ok_or_else(|| format!("{what}[{i}]: expected an exact integer")))
        .collect()
}

/// Member lookup that names the missing field in its error.
fn field<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("{what}: missing field `{key}`"))
}

/// Exact-integer member lookup.
fn field_u64(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    field(v, key, what)?
        .as_u64()
        .ok_or_else(|| format!("{what}.{key}: expected an exact integer"))
}

impl CacheStats {
    /// Writes this counter set as the compact array `[accesses,hits,misses,evictions]`.
    pub fn to_json_into(&self, out: &mut String) {
        u64_array_into(out, [self.accesses, self.hits, self.misses, self.evictions].into_iter());
    }

    /// Parses the array form written by [`CacheStats::to_json_into`].
    pub fn from_value(v: &Value, what: &str) -> Result<Self, String> {
        let a = u64_array(v, what)?;
        if a.len() != 4 {
            return Err(format!("{what}: expected 4 cache counters, got {}", a.len()));
        }
        Ok(Self { accesses: a[0], hits: a[1], misses: a[2], evictions: a[3] })
    }
}

impl DramStats {
    /// Writes these counters as a JSON object (interval histogram included).
    pub fn to_json_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"reads\":{},\"writes\":{},\"row_hits\":{},\"row_misses\":{},\
             \"latency_sum\":{},\"max_latency\":{},\"interval_width\":{},\"intervals\":",
            self.reads,
            self.writes,
            self.row_hits,
            self.row_misses,
            self.latency_sum,
            self.max_latency,
            self.interval_width
        ));
        u64_array_into(out, self.intervals.iter().copied());
        out.push('}');
    }

    /// Parses the object form written by [`DramStats::to_json_into`].
    pub fn from_value(v: &Value, what: &str) -> Result<Self, String> {
        Ok(Self {
            reads: field_u64(v, "reads", what)?,
            writes: field_u64(v, "writes", what)?,
            row_hits: field_u64(v, "row_hits", what)?,
            row_misses: field_u64(v, "row_misses", what)?,
            latency_sum: field_u64(v, "latency_sum", what)?,
            max_latency: field_u64(v, "max_latency", what)?,
            interval_width: field_u64(v, "interval_width", what)?,
            intervals: u64_array(field(v, "intervals", what)?, &format!("{what}.intervals"))?,
        })
    }
}

impl TileHeatmap {
    /// Writes the heatmap as an array of per-tile 4-arrays
    /// `[dram_accesses,instructions,fragments,warps]`.
    pub fn to_json_into(&self, out: &mut String) {
        out.push('[');
        for (i, t) in self.tiles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            u64_array_into(out, [t.dram_accesses, t.instructions, t.fragments, t.warps].into_iter());
        }
        out.push(']');
    }

    /// Parses the array form written by [`TileHeatmap::to_json_into`].
    pub fn from_value(v: &Value, what: &str) -> Result<Self, String> {
        let arr = v.as_array().ok_or_else(|| format!("{what}: expected an array"))?;
        let mut tiles = Vec::with_capacity(arr.len());
        for (i, t) in arr.iter().enumerate() {
            let a = u64_array(t, &format!("{what}[{i}]"))?;
            if a.len() != 4 {
                return Err(format!("{what}[{i}]: expected 4 tile tallies, got {}", a.len()));
            }
            tiles.push(TileTally {
                dram_accesses: a[0],
                instructions: a[1],
                fragments: a[2],
                warps: a[3],
            });
        }
        Ok(Self { tiles })
    }
}

impl FrameStats {
    /// Writes this frame's full measurement set as a JSON object.
    pub fn to_json_into(&self, out: &mut String) {
        out.push_str(&format!("{{\"frame\":{},", self.frame.0));
        out.push_str(&format!(
            "\"geometry_cycles\":{},\"raster_cycles\":{},",
            self.geometry_cycles, self.raster_cycles
        ));
        for (key, cache) in [
            ("vertex_cache", &self.vertex_cache),
            ("tile_cache", &self.tile_cache),
            ("texture_cache", &self.texture_cache),
            ("l2_cache", &self.l2_cache),
        ] {
            out.push_str(&format!("\"{key}\":"));
            cache.to_json_into(out);
            out.push(',');
        }
        out.push_str("\"dram\":");
        self.dram.to_json_into(out);
        out.push_str(",\"heatmap\":");
        self.heatmap.to_json_into(out);
        out.push_str(&format!(
            ",\"vertices\":{},\"primitives\":{},\"fragments\":{},\"warps\":{},\
             \"instructions\":{},\"texture_requests\":{},\"texture_latency_sum\":{},\
             \"texture_fill_lines\":{},\"texture_unique_lines\":{},\"micro_events\":{}}}",
            self.vertices,
            self.primitives,
            self.fragments,
            self.warps,
            self.instructions,
            self.texture_requests,
            self.texture_latency_sum,
            self.texture_fill_lines,
            self.texture_unique_lines,
            self.micro_events
        ));
    }

    /// Parses the object form written by [`FrameStats::to_json_into`].
    pub fn from_value(v: &Value, what: &str) -> Result<Self, String> {
        let frame = field_u64(v, "frame", what)?;
        let frame = u32::try_from(frame).map_err(|_| format!("{what}.frame: out of range"))?;
        Ok(Self {
            frame: FrameId(frame),
            geometry_cycles: field_u64(v, "geometry_cycles", what)?,
            raster_cycles: field_u64(v, "raster_cycles", what)?,
            vertex_cache: CacheStats::from_value(
                field(v, "vertex_cache", what)?,
                &format!("{what}.vertex_cache"),
            )?,
            tile_cache: CacheStats::from_value(
                field(v, "tile_cache", what)?,
                &format!("{what}.tile_cache"),
            )?,
            texture_cache: CacheStats::from_value(
                field(v, "texture_cache", what)?,
                &format!("{what}.texture_cache"),
            )?,
            l2_cache: CacheStats::from_value(field(v, "l2_cache", what)?, &format!("{what}.l2_cache"))?,
            dram: DramStats::from_value(field(v, "dram", what)?, &format!("{what}.dram"))?,
            heatmap: TileHeatmap::from_value(field(v, "heatmap", what)?, &format!("{what}.heatmap"))?,
            vertices: field_u64(v, "vertices", what)?,
            primitives: field_u64(v, "primitives", what)?,
            fragments: field_u64(v, "fragments", what)?,
            warps: field_u64(v, "warps", what)?,
            instructions: field_u64(v, "instructions", what)?,
            texture_requests: field_u64(v, "texture_requests", what)?,
            texture_latency_sum: field_u64(v, "texture_latency_sum", what)?,
            texture_fill_lines: field_u64(v, "texture_fill_lines", what)?,
            texture_unique_lines: field_u64(v, "texture_unique_lines", what)?,
            micro_events: field_u64(v, "micro_events", what)?,
        })
    }
}

impl SequenceStats {
    /// Serialises the whole sequence as `{"frames":[...]}`. All fields are
    /// unsigned integers, so [`SequenceStats::from_json`] reproduces a value that
    /// compares equal bit-for-bit — the property campaign resume rests on.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.frames.len() * 512);
        out.push_str("{\"frames\":[");
        for (i, f) in self.frames.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            f.to_json_into(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Parses a document written by [`SequenceStats::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        Self::from_value(&json::parse(text)?, "stats")
    }

    /// Parses an already-parsed [`Value`] (used when the stats object is embedded
    /// in a larger document, e.g. a checkpoint record).
    pub fn from_value(v: &Value, what: &str) -> Result<Self, String> {
        let frames = field(v, "frames", what)?
            .as_array()
            .ok_or_else(|| format!("{what}.frames: expected an array"))?;
        let frames = frames
            .iter()
            .enumerate()
            .map(|(i, f)| FrameStats::from_value(f, &format!("{what}.frames[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { frames })
    }
}

// ---------------------------------------------------------------------------
// Exact binary round-trip (binary campaign checkpoints, `libra-ckpt-bin-v1`).
//
// Every field is an unsigned integer, encoded little-endian via `binio`, so
// the binary form round-trips bit-exactly and is byte-identical across hosts.
// The layout mirrors the JSON field order; there is no per-struct framing —
// the enclosing sidecar (checkpoint record frame) provides length and version.
// ---------------------------------------------------------------------------

impl CacheStats {
    /// Appends the 4 counters as little-endian `u64`s.
    pub fn to_binary_into(&self, w: &mut ByteWriter) {
        w.u64(self.accesses);
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.evictions);
    }

    /// Reads the form written by [`CacheStats::to_binary_into`].
    pub fn from_reader(r: &mut ByteReader<'_>, what: &str) -> Result<Self, String> {
        Ok(Self {
            accesses: r.u64(&format!("{what}.accesses"))?,
            hits: r.u64(&format!("{what}.hits"))?,
            misses: r.u64(&format!("{what}.misses"))?,
            evictions: r.u64(&format!("{what}.evictions"))?,
        })
    }
}

impl DramStats {
    /// Appends these counters (interval histogram included), little-endian.
    pub fn to_binary_into(&self, w: &mut ByteWriter) {
        w.u64(self.reads);
        w.u64(self.writes);
        w.u64(self.row_hits);
        w.u64(self.row_misses);
        w.u64(self.latency_sum);
        w.u64(self.max_latency);
        w.u64(self.interval_width);
        w.u64_slice(&self.intervals);
    }

    /// Reads the form written by [`DramStats::to_binary_into`].
    pub fn from_reader(r: &mut ByteReader<'_>, what: &str) -> Result<Self, String> {
        Ok(Self {
            reads: r.u64(&format!("{what}.reads"))?,
            writes: r.u64(&format!("{what}.writes"))?,
            row_hits: r.u64(&format!("{what}.row_hits"))?,
            row_misses: r.u64(&format!("{what}.row_misses"))?,
            latency_sum: r.u64(&format!("{what}.latency_sum"))?,
            max_latency: r.u64(&format!("{what}.max_latency"))?,
            interval_width: r.u64(&format!("{what}.interval_width"))?,
            intervals: r.u64_vec(&format!("{what}.intervals"))?,
        })
    }
}

impl TileHeatmap {
    /// Appends the heatmap as `u32` tile count + 4 `u64` tallies per tile.
    pub fn to_binary_into(&self, w: &mut ByteWriter) {
        assert!(self.tiles.len() <= u32::MAX as usize, "heatmap too large");
        w.u32(self.tiles.len() as u32);
        for t in &self.tiles {
            w.u64(t.dram_accesses);
            w.u64(t.instructions);
            w.u64(t.fragments);
            w.u64(t.warps);
        }
    }

    /// Reads the form written by [`TileHeatmap::to_binary_into`].
    pub fn from_reader(r: &mut ByteReader<'_>, what: &str) -> Result<Self, String> {
        let n = r.u32(&format!("{what}.len"))? as usize;
        // Guard against a corrupt count before allocating (4 u64s per tile).
        if r.remaining() < n.saturating_mul(32) {
            return Err(format!(
                "truncated: {what} claims {n} tiles but only {} bytes remain",
                r.remaining()
            ));
        }
        let mut tiles = Vec::with_capacity(n);
        for i in 0..n {
            let what = format!("{what}[{i}]");
            tiles.push(TileTally {
                dram_accesses: r.u64(&what)?,
                instructions: r.u64(&what)?,
                fragments: r.u64(&what)?,
                warps: r.u64(&what)?,
            });
        }
        Ok(Self { tiles })
    }
}

impl FrameStats {
    /// Appends this frame's full measurement set, little-endian.
    pub fn to_binary_into(&self, w: &mut ByteWriter) {
        w.u32(self.frame.0);
        w.u64(self.geometry_cycles);
        w.u64(self.raster_cycles);
        self.vertex_cache.to_binary_into(w);
        self.tile_cache.to_binary_into(w);
        self.texture_cache.to_binary_into(w);
        self.l2_cache.to_binary_into(w);
        self.dram.to_binary_into(w);
        self.heatmap.to_binary_into(w);
        w.u64(self.vertices);
        w.u64(self.primitives);
        w.u64(self.fragments);
        w.u64(self.warps);
        w.u64(self.instructions);
        w.u64(self.texture_requests);
        w.u64(self.texture_latency_sum);
        w.u64(self.texture_fill_lines);
        w.u64(self.texture_unique_lines);
        w.u64(self.micro_events);
    }

    /// Reads the form written by [`FrameStats::to_binary_into`].
    pub fn from_reader(r: &mut ByteReader<'_>, what: &str) -> Result<Self, String> {
        Ok(Self {
            frame: FrameId(r.u32(&format!("{what}.frame"))?),
            geometry_cycles: r.u64(&format!("{what}.geometry_cycles"))?,
            raster_cycles: r.u64(&format!("{what}.raster_cycles"))?,
            vertex_cache: CacheStats::from_reader(r, &format!("{what}.vertex_cache"))?,
            tile_cache: CacheStats::from_reader(r, &format!("{what}.tile_cache"))?,
            texture_cache: CacheStats::from_reader(r, &format!("{what}.texture_cache"))?,
            l2_cache: CacheStats::from_reader(r, &format!("{what}.l2_cache"))?,
            dram: DramStats::from_reader(r, &format!("{what}.dram"))?,
            heatmap: TileHeatmap::from_reader(r, &format!("{what}.heatmap"))?,
            vertices: r.u64(&format!("{what}.vertices"))?,
            primitives: r.u64(&format!("{what}.primitives"))?,
            fragments: r.u64(&format!("{what}.fragments"))?,
            warps: r.u64(&format!("{what}.warps"))?,
            instructions: r.u64(&format!("{what}.instructions"))?,
            texture_requests: r.u64(&format!("{what}.texture_requests"))?,
            texture_latency_sum: r.u64(&format!("{what}.texture_latency_sum"))?,
            texture_fill_lines: r.u64(&format!("{what}.texture_fill_lines"))?,
            texture_unique_lines: r.u64(&format!("{what}.texture_unique_lines"))?,
            micro_events: r.u64(&format!("{what}.micro_events"))?,
        })
    }
}

impl SequenceStats {
    /// Appends the whole sequence as `u32` frame count + frames. The round trip
    /// through [`SequenceStats::from_reader`] is bit-exact, and the bytes are
    /// identical on every host (everything is little-endian integers) — the
    /// property binary checkpoint resume rests on.
    pub fn to_binary_into(&self, w: &mut ByteWriter) {
        assert!(self.frames.len() <= u32::MAX as usize, "sequence too long");
        w.u32(self.frames.len() as u32);
        for f in &self.frames {
            f.to_binary_into(w);
        }
    }

    /// Reads the form written by [`SequenceStats::to_binary_into`].
    pub fn from_reader(r: &mut ByteReader<'_>, what: &str) -> Result<Self, String> {
        let n = r.u32(&format!("{what}.len"))? as usize;
        // A frame encodes to well over 64 bytes; a cheap lower bound guards the
        // allocation against a corrupt count.
        if r.remaining() < n.saturating_mul(64) {
            return Err(format!(
                "truncated: {what} claims {n} frames but only {} bytes remain",
                r.remaining()
            ));
        }
        let mut frames = Vec::with_capacity(n);
        for i in 0..n {
            frames.push(FrameStats::from_reader(r, &format!("{what}.frames[{i}]"))?);
        }
        Ok(Self { frames })
    }
}

/// Fraction of execution time attributable to memory, measured the way the paper does
/// for Fig 6a: run with a realistic memory system and again with an ideal (always-hit)
/// one; the difference is memory time.
pub fn memory_time_fraction(real_cycles: Cycle, ideal_cycles: Cycle) -> f64 {
    if real_cycles == 0 {
        return 0.0;
    }
    let real = real_cycles as f64;
    let ideal = ideal_cycles.min(real_cycles) as f64;
    (real - ideal) / real
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_hit_ratio() {
        let s = CacheStats { accesses: 10, hits: 7, misses: 3, evictions: 0 };
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_ratio(), 1.0);
    }

    #[test]
    fn cache_stats_merge_adds() {
        let mut a = CacheStats { accesses: 1, hits: 1, misses: 0, evictions: 0 };
        a.merge(&CacheStats { accesses: 3, hits: 1, misses: 2, evictions: 1 });
        assert_eq!(a, CacheStats { accesses: 4, hits: 2, misses: 2, evictions: 1 });
    }

    #[test]
    fn dram_interval_histogram() {
        let mut d = DramStats::new(100);
        d.record_interval(5);
        d.record_interval(99);
        d.record_interval(100);
        d.record_interval(350);
        assert_eq!(d.intervals, vec![2, 1, 0, 1]);
        assert_eq!(d.peak_interval(), 2);
    }

    #[test]
    fn interval_cv_zero_for_uniform_and_positive_for_bursty() {
        let mut smooth = DramStats::new(10);
        smooth.intervals = vec![5, 5, 5, 5];
        assert!(smooth.interval_cv() < 1e-12);
        let mut bursty = DramStats::new(10);
        bursty.intervals = vec![0, 20, 0, 0];
        assert!(bursty.interval_cv() > 1.0);
    }

    #[test]
    fn dram_merge_adds_histograms() {
        let mut a = DramStats::new(10);
        a.intervals = vec![1, 2];
        a.reads = 3;
        let mut b = DramStats::new(10);
        b.intervals = vec![4, 5, 6];
        b.writes = 2;
        b.max_latency = 77;
        a.merge(&b);
        assert_eq!(a.intervals, vec![5, 7, 6]);
        assert_eq!(a.total_accesses(), 5);
        assert_eq!(a.max_latency, 77);
    }

    #[test]
    fn dram_merge_into_default_adopts_width() {
        let mut agg = DramStats::default();
        let mut d = DramStats::new(5000);
        d.record_interval(4999);
        d.record_interval(5001);
        agg.merge(&d);
        assert_eq!(agg.interval_width, 5000);
        assert_eq!(agg.intervals, vec![1, 1]);
        // A second merge at the adopted width keeps adding bucket-wise.
        agg.merge(&d);
        assert_eq!(agg.intervals, vec![2, 2]);
    }

    #[test]
    fn dram_merge_rebuckets_commensurable_widths() {
        // Finer into coarser: width 1000 samples fold into width 5000 buckets.
        let mut coarse = DramStats::new(5000);
        coarse.record_interval(0);
        let mut fine = DramStats::new(1000);
        fine.record_interval(500); // fine bucket 0 -> coarse bucket 0
        fine.record_interval(6100); // fine bucket 6 -> coarse bucket 1
        coarse.merge(&fine);
        assert_eq!(coarse.interval_width, 5000);
        assert_eq!(coarse.intervals, vec![2, 1]);
        // Coarser into finer: the accumulator coarsens itself to the wider width.
        let mut acc = DramStats::new(1000);
        acc.record_interval(500);
        acc.record_interval(6100);
        let mut wide = DramStats::new(5000);
        wide.record_interval(0);
        acc.merge(&wide);
        assert_eq!(acc.interval_width, 5000);
        assert_eq!(acc.intervals, vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "incommensurable interval widths")]
    fn dram_merge_rejects_incommensurable_widths() {
        let mut a = DramStats::new(3000);
        a.record_interval(0);
        let mut b = DramStats::new(2000);
        b.record_interval(0);
        a.merge(&b);
    }

    #[test]
    fn publish_fills_registry() {
        let mut f = FrameStats {
            geometry_cycles: 100,
            raster_cycles: 900,
            ..FrameStats::default()
        };
        f.l2_cache = CacheStats { accesses: 10, hits: 6, misses: 4, evictions: 0 };
        f.dram = DramStats::new(5000);
        f.dram.reads = 12;
        let mut reg = MetricsRegistry::new();
        f.publish(&mut reg, &[("frame", "0")]);
        assert_eq!(
            reg.counter_value("cache_hits", &[("frame", "0"), ("cache", "l2")]),
            Some(6)
        );
        assert_eq!(reg.counter_value("dram_reads", &[("frame", "0")]), Some(12));
        assert_eq!(reg.counter_value("raster_cycles", &[("frame", "0")]), Some(900));
    }

    #[test]
    fn sequence_hierarchy_hit_ratios() {
        let f = FrameStats {
            l2_cache: CacheStats { accesses: 8, hits: 2, misses: 6, evictions: 0 },
            tile_cache: CacheStats { accesses: 4, hits: 3, misses: 1, evictions: 0 },
            ..FrameStats::default()
        };
        let s = SequenceStats { frames: vec![f] };
        assert!((s.l2_hit_ratio() - 0.25).abs() < 1e-12);
        assert!((s.tile_hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn heatmap_coherence_cdf_identical_frames() {
        let mut h = TileHeatmap::new(4);
        for (i, t) in h.tiles.iter_mut().enumerate() {
            t.dram_accesses = (i as u64 + 1) * 10;
        }
        let cdf = h.coherence_cdf(&h.clone(), &[0.0, 0.2]);
        assert_eq!(cdf, vec![1.0, 1.0]);
    }

    #[test]
    fn heatmap_coherence_cdf_disjoint_frames() {
        let mut a = TileHeatmap::new(2);
        a.tiles[0].dram_accesses = 100;
        let mut b = TileHeatmap::new(2);
        b.tiles[1].dram_accesses = 100;
        // Tile 0: 100 vs 0 -> diff 1.0; tile 1: 0 vs 100 -> diff 1.0.
        let cdf = a.coherence_cdf(&b, &[0.5, 1.0]);
        assert_eq!(cdf, vec![0.0, 1.0]);
    }

    #[test]
    fn frame_stats_derived_metrics() {
        let f = FrameStats {
            geometry_cycles: 120,
            raster_cycles: 880,
            texture_requests: 4,
            texture_latency_sum: 40,
            texture_fill_lines: 30,
            texture_unique_lines: 10,
            ..FrameStats::default()
        };
        assert_eq!(f.total_cycles(), 1000);
        assert!((f.raster_fraction() - 0.88).abs() < 1e-12);
        assert!((f.avg_texture_latency() - 10.0).abs() < 1e-12);
        assert!((f.texture_replication() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sequence_speedup() {
        let slow = SequenceStats {
            frames: vec![FrameStats { raster_cycles: 200, ..FrameStats::default() }],
        };
        let fast = SequenceStats {
            frames: vec![FrameStats { raster_cycles: 100, ..FrameStats::default() }],
        };
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sequence_stats_json_round_trip_is_exact() {
        let mut heatmap = TileHeatmap::new(3);
        heatmap.tiles[1] =
            TileTally { dram_accesses: 11, instructions: 22, fragments: 33, warps: 44 };
        let mut dram = DramStats::new(5000);
        dram.reads = 123;
        dram.writes = 45;
        dram.row_hits = 100;
        dram.row_misses = 68;
        dram.latency_sum = 987_654;
        dram.max_latency = 321;
        dram.record_interval(4_999);
        dram.record_interval(12_000);
        let frame = FrameStats {
            frame: FrameId(7),
            geometry_cycles: 1_000,
            raster_cycles: 9_000,
            vertex_cache: CacheStats { accesses: 1, hits: 2, misses: 3, evictions: 4 },
            tile_cache: CacheStats { accesses: 5, hits: 6, misses: 7, evictions: 8 },
            texture_cache: CacheStats { accesses: 9, hits: 10, misses: 11, evictions: 12 },
            l2_cache: CacheStats { accesses: 13, hits: 14, misses: 15, evictions: 16 },
            dram,
            heatmap,
            vertices: 17,
            primitives: 18,
            fragments: 19,
            warps: 20,
            instructions: 21,
            texture_requests: 22,
            texture_latency_sum: 23,
            texture_fill_lines: 24,
            texture_unique_lines: 25,
            micro_events: 26,
        };
        let seq = SequenceStats { frames: vec![frame.clone(), FrameStats::default(), frame] };
        let round = SequenceStats::from_json(&seq.to_json()).expect("round trip");
        assert_eq!(round, seq, "JSON round trip must be bit-exact");
        // And the document itself is well-formed for the in-repo parser.
        assert!(json::parse(&seq.to_json()).is_ok());
    }

    #[test]
    fn sequence_stats_binary_round_trip_is_bit_exact() {
        let mut heatmap = TileHeatmap::new(2);
        heatmap.tiles[0] =
            TileTally { dram_accesses: 1, instructions: 2, fragments: 3, warps: 4 };
        let mut dram = DramStats::new(5000);
        dram.reads = 9;
        dram.record_interval(4_999);
        dram.record_interval(12_000);
        let frame = FrameStats {
            frame: FrameId(3),
            geometry_cycles: 10,
            raster_cycles: 90,
            l2_cache: CacheStats { accesses: 13, hits: 14, misses: 15, evictions: 16 },
            dram,
            heatmap,
            micro_events: 77,
            ..FrameStats::default()
        };
        let seq = SequenceStats { frames: vec![frame, FrameStats::default()] };
        let mut w = ByteWriter::new();
        seq.to_binary_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let round = SequenceStats::from_reader(&mut r, "stats").expect("round trip");
        assert_eq!(round, seq, "binary round trip must be bit-exact");
        assert!(r.is_empty(), "decoder must consume exactly the encoded bytes");
        // Truncation degrades into a located error, never a panic.
        let err = SequenceStats::from_reader(
            &mut ByteReader::new(&bytes[..bytes.len() - 1]),
            "stats",
        )
        .unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn sequence_stats_from_json_names_the_broken_field() {
        let err = SequenceStats::from_json("{\"frames\":[{\"frame\":0}]}").unwrap_err();
        assert!(err.contains("frames[0]"), "error should locate the frame: {err}");
        assert!(err.contains("missing field"), "error should name the problem: {err}");
        let err = SequenceStats::from_json("{}").unwrap_err();
        assert!(err.contains("frames"), "error should name the field: {err}");
        let err = SequenceStats::from_json("[1,2]").unwrap_err();
        assert!(err.contains("frames"), "non-object documents are rejected: {err}");
    }

    #[test]
    fn memory_fraction_clamps() {
        assert_eq!(memory_time_fraction(0, 0), 0.0);
        assert!((memory_time_fraction(100, 60) - 0.4).abs() < 1e-12);
        // Ideal can't be slower than real; clamp to 0.
        assert_eq!(memory_time_fraction(100, 150), 0.0);
    }
}
