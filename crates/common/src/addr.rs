//! Simulated physical address map.
//!
//! The four sources of DRAM traffic in a TBR GPU (§III-B of the paper) each get their
//! own region of a flat 64-bit simulated physical address space:
//!
//! | Region | Contents | Producer/consumer |
//! |---|---|---|
//! | `VERTEX_BASE` | vertex attribute arrays | Vertex Fetcher (geometry pipeline) |
//! | `PARAM_BASE` | Parameter Buffer (per-tile primitive lists) | Polygon List Builder writes, Tile Fetcher reads |
//! | `TEXTURE_BASE` | texture images (Morton-blocked, mip-mapped) | fragment shaders |
//! | `FRAMEBUFFER_BASE` | final frame colours | Colour-Buffer flush |
//!
//! Addresses only need to be *distinct and spatially meaningful* (for cache indexing
//! and DRAM row locality); no data is stored behind them.

use crate::config::ScreenConfig;
use crate::ids::{DrawCallId, TileId};

/// Base of the vertex-data region.
pub const VERTEX_BASE: u64 = 0x1000_0000;
/// Base of the Parameter Buffer region.
pub const PARAM_BASE: u64 = 0x2000_0000;
/// Base of the texture region.
pub const TEXTURE_BASE: u64 = 0x4000_0000;
/// Base of the Frame Buffer region.
pub const FRAMEBUFFER_BASE: u64 = 0x8000_0000;

/// Bytes of attribute data per vertex (position + UV + normal, packed).
pub const VERTEX_STRIDE: u64 = 32;
/// Bytes per Parameter Buffer primitive entry (three screen vertices + state).
pub const PARAM_ENTRY_BYTES: u64 = 48;
/// Bytes reserved in the Parameter Buffer per tile list.
pub const PARAM_TILE_STRIDE: u64 = 1 << 16;
/// Bytes per pixel in the framebuffer (RGBA8).
pub const FRAMEBUFFER_BYTES_PER_PIXEL: u64 = 4;
/// Bytes reserved per draw call in the vertex region.
pub const VERTEX_DRAW_STRIDE: u64 = 1 << 22;

// Compile-time guarantee that the regions cannot overlap under generous bounds
// (64 draw calls, 4096 tiles).
const _: () = assert!(VERTEX_BASE + 64 * VERTEX_DRAW_STRIDE <= PARAM_BASE);
const _: () = assert!(PARAM_BASE + 4096 * PARAM_TILE_STRIDE <= TEXTURE_BASE);
const _: () = assert!(TEXTURE_BASE < FRAMEBUFFER_BASE);

/// What a memory access is for. Determines which L1 it goes through and how the
/// statistics attribute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Vertex attribute read (geometry pipeline, through the vertex cache).
    VertexRead,
    /// Parameter Buffer read (Tile Fetcher, through the tile cache).
    ParamRead,
    /// Parameter Buffer write (Polygon List Builder, through L2).
    ParamWrite,
    /// Texture read (fragment shader, through a per-core texture cache).
    TextureRead,
    /// Frame Buffer write (colour-buffer flush; bypasses L2, straight to DRAM).
    FramebufferWrite,
}

impl AccessKind {
    /// Whether this access writes memory.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::ParamWrite | AccessKind::FramebufferWrite)
    }
}

/// Address of vertex `index` of draw call `draw`.
#[inline]
pub fn vertex_addr(draw: DrawCallId, index: u32) -> u64 {
    VERTEX_BASE + draw.0 as u64 * VERTEX_DRAW_STRIDE + index as u64 * VERTEX_STRIDE
}

/// Base address of the Parameter Buffer list of `tile`.
#[inline]
pub fn param_tile_base(tile: TileId) -> u64 {
    PARAM_BASE + tile.0 as u64 * PARAM_TILE_STRIDE
}

/// Address of the `n`-th primitive entry in `tile`'s Parameter Buffer list.
///
/// Lists longer than the per-tile stride wrap within the tile's region (a real
/// implementation chains overflow blocks; wrapping preserves the traffic volume and
/// locality characteristics).
#[inline]
pub fn param_entry_addr(tile: TileId, n: u64) -> u64 {
    param_tile_base(tile) + (n * PARAM_ENTRY_BYTES) % PARAM_TILE_STRIDE
}

/// Framebuffer address of pixel `(x, y)` (row-major RGBA8).
#[inline]
pub fn framebuffer_addr(screen: &ScreenConfig, x: u32, y: u32) -> u64 {
    FRAMEBUFFER_BASE + (y as u64 * screen.width as u64 + x as u64) * FRAMEBUFFER_BYTES_PER_PIXEL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_addrs_are_stride_spaced() {
        let d = DrawCallId(2);
        assert_eq!(vertex_addr(d, 1) - vertex_addr(d, 0), VERTEX_STRIDE);
        assert_ne!(vertex_addr(DrawCallId(0), 0), vertex_addr(DrawCallId(1), 0));
    }

    #[test]
    fn param_entries_stay_within_tile_region() {
        let t = TileId(7);
        for n in 0..10_000 {
            let a = param_entry_addr(t, n);
            assert!(a >= param_tile_base(t));
            assert!(a < param_tile_base(t) + PARAM_TILE_STRIDE);
        }
    }

    #[test]
    fn framebuffer_is_row_major() {
        let s = ScreenConfig::tiny();
        let a = framebuffer_addr(&s, 0, 0);
        let b = framebuffer_addr(&s, 1, 0);
        let c = framebuffer_addr(&s, 0, 1);
        assert_eq!(b - a, FRAMEBUFFER_BYTES_PER_PIXEL);
        assert_eq!(c - a, s.width as u64 * FRAMEBUFFER_BYTES_PER_PIXEL);
    }

    #[test]
    fn access_kind_write_flags() {
        assert!(AccessKind::ParamWrite.is_write());
        assert!(AccessKind::FramebufferWrite.is_write());
        assert!(!AccessKind::VertexRead.is_write());
        assert!(!AccessKind::ParamRead.is_write());
        assert!(!AccessKind::TextureRead.is_write());
    }
}
