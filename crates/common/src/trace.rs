//! Cycle-level event tracer: span + instant events in **simulated** cycles, emitted
//! as Chrome trace-event JSON loadable in Perfetto / `chrome://tracing`.
//!
//! The simulator is a deterministic integer machine, so every trace is bit-identical
//! across runs, host machines and `--threads N` settings: timestamps are simulated
//! cycles, never wall-clock. One cycle is encoded as one microsecond of trace time
//! (the Chrome format's native unit), so "1 ms" in Perfetto reads as 1 000 cycles.
//!
//! # Zero overhead when disabled
//!
//! Collection is gated by a thread-local flag checked by [`is_enabled`]; every
//! recording function returns immediately (a single thread-local load + branch)
//! unless [`start`] installed a collector on the current thread. Instrumentation
//! sites that need to format names are expected to guard with `if
//! trace::is_enabled()` so no allocation happens on the disabled path. Tracing is
//! observation only — it never feeds back into simulated timing, so enabling it
//! cannot change any statistic (the golden snapshots pin this).
//!
//! # Track model
//!
//! Events land on typed [`Track`]s — the Perfetto rows. All tracks of one
//! simulation share pid 0; a merged campaign trace
//! ([`Trace::chrome_json_multi`]) gives each job its own pid so Perfetto shows one
//! process group per simulation point.
//!
//! ```
//! use tbr_common::trace::{self, Track};
//!
//! trace::start();
//! assert!(trace::is_enabled());
//! trace::span(Track::Phases, "geometry", 0, 1_000);
//! trace::instant(Track::Scheduler, "plan", 0);
//! let t = trace::finish().expect("collector was installed");
//! assert_eq!(t.events.len(), 2);
//! assert!(t.chrome_json().contains("\"traceEvents\""));
//! assert!(!trace::is_enabled());
//! ```

use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;

use crate::Cycle;

/// A named timeline row in the trace (one Perfetto "thread").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// Frame-level phase spans (geometry / raster) and their sub-phases.
    Phases,
    /// Scheduler decisions, LIBRA feedback/resize events and tile steals.
    Scheduler,
    /// Front-end (fetch → rasterise → Early-Z) occupancy of one Raster Unit.
    RuFrontEnd(u8),
    /// Fragment-stage occupancy of one Raster Unit.
    RuFragment(u8),
    /// Colour-buffer flush issue of one Raster Unit (double-buffered, so it
    /// overlaps the next tile's fragment stage and needs its own row).
    RuFlush(u8),
    /// Busy interval of one DRAM bank (Fig 7's per-bank view).
    DramBank {
        /// Memory channel the bank belongs to.
        channel: u8,
        /// Bank index within the channel.
        bank: u8,
    },
    /// Data-bus occupancy of one DRAM channel (the bandwidth ceiling).
    DramBus(u8),
    /// Host wall-clock lane of the parallel event core's coordinator thread.
    /// Timestamps are **host microseconds** from [`crate::hostprof`], not
    /// simulated cycles — the tid range keeps the rows grouped at the bottom.
    HostCoordinator,
    /// Host wall-clock lane of parallel worker `w` (host microseconds).
    HostWorker(u8),
}

impl Track {
    /// Stable Perfetto thread id of this track (also its sort order).
    pub fn tid(self) -> u64 {
        match self {
            Track::Phases => 1,
            Track::Scheduler => 2,
            Track::RuFrontEnd(i) => 16 + 4 * i as u64,
            Track::RuFragment(i) => 17 + 4 * i as u64,
            Track::RuFlush(i) => 18 + 4 * i as u64,
            Track::DramBus(c) => 512 + c as u64,
            Track::DramBank { channel, bank } => 1024 + 64 * channel as u64 + bank as u64,
            Track::HostCoordinator => 8192,
            Track::HostWorker(w) => 8193 + w as u64,
        }
    }

    /// Human-readable row label shown by Perfetto.
    pub fn label(self) -> String {
        match self {
            Track::Phases => "phases".into(),
            Track::Scheduler => "scheduler".into(),
            Track::RuFrontEnd(i) => format!("RU{i} front-end"),
            Track::RuFragment(i) => format!("RU{i} fragment"),
            Track::RuFlush(i) => format!("RU{i} flush"),
            Track::DramBus(c) => format!("DRAM ch{c} bus"),
            Track::DramBank { channel, bank } => format!("DRAM ch{channel} bank{bank}"),
            Track::HostCoordinator => "host coordinator".into(),
            Track::HostWorker(w) => format!("host worker {w}"),
        }
    }
}

/// Whether an event is a duration span or a point-in-time marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span (`ph: "X"`) with the given duration in cycles.
    Span {
        /// Span length in cycles.
        dur: Cycle,
    },
    /// An instant event (`ph: "i"`).
    Instant,
}

/// One recorded event, already shifted into the global (sequence-wide) timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Timeline row.
    pub track: Track,
    /// Event name (the slice label in Perfetto).
    pub name: String,
    /// Span or instant.
    pub kind: EventKind,
    /// Start cycle on the global timeline.
    pub ts: Cycle,
    /// Extra key/value payload (the Perfetto `args` pane).
    pub args: Vec<(&'static str, String)>,
}

/// A finished recording: every event of one simulation, in emission order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events in emission (causal) order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events on a given track.
    pub fn on_track(&self, track: Track) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.track == track)
    }

    /// Serialises this trace as a single-process Chrome trace-event JSON document.
    pub fn chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        write_process(&mut out, &mut first, 0, "LIBRA GPU", &self.events);
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Serialises several traces (e.g. one per campaign job) into one document,
    /// each under its own pid/process group labelled with its job name.
    pub fn chrome_json_multi(jobs: &[(String, Trace)]) -> String {
        let events: usize = jobs.iter().map(|(_, t)| t.events.len()).sum();
        let mut out = String::with_capacity(64 + events * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (pid, (label, trace)) in jobs.iter().enumerate() {
            write_process(&mut out, &mut first, pid as u64, label, &trace.events);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

fn comma(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// Appends JSON-escaped `s` (without surrounding quotes).
fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn write_process(out: &mut String, first: &mut bool, pid: u64, name: &str, events: &[TraceEvent]) {
    comma(out, first);
    out.push_str(&format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\""
    ));
    push_escaped(out, name);
    out.push_str("\"}}");

    // One thread_name metadata record per distinct track, in tid order.
    let tracks: BTreeSet<Track> = events.iter().map(|e| e.track).collect();
    for t in tracks {
        comma(out, first);
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"",
            t.tid()
        ));
        push_escaped(out, &t.label());
        out.push_str("\"}}");
    }

    for e in events {
        comma(out, first);
        let (ph, tail) = match e.kind {
            EventKind::Span { dur } => ("X", format!(",\"dur\":{dur}")),
            EventKind::Instant => ("i", ",\"s\":\"t\"".to_string()),
        };
        out.push_str(&format!(
            "{{\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{},\"ts\":{}{tail},\"name\":\"",
            e.track.tid(),
            e.ts
        ));
        push_escaped(out, &e.name);
        out.push('"');
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                push_escaped(out, k);
                out.push_str("\":\"");
                push_escaped(out, v);
                out.push('"');
            }
            out.push('}');
        }
        out.push('}');
    }
}

#[derive(Debug, Default)]
struct Collector {
    events: Vec<TraceEvent>,
    base: Cycle,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Installs a fresh collector on the current thread; subsequent recording calls on
/// this thread accumulate events until [`finish`].
pub fn start() {
    COLLECTOR.with(|c| *c.borrow_mut() = Some(Collector::default()));
    ENABLED.with(|e| e.set(true));
}

/// Whether a collector is installed on the current thread. Instrumentation sites
/// guard event construction with this so the disabled path costs one branch.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Uninstalls the collector and returns the recorded trace (`None` if [`start`]
/// was never called on this thread).
pub fn finish() -> Option<Trace> {
    ENABLED.with(|e| e.set(false));
    COLLECTOR.with(|c| c.borrow_mut().take()).map(|c| Trace { events: c.events })
}

/// Sets the offset added to every subsequently recorded timestamp. The simulator
/// restarts local time at 0 every phase of every frame; the frame loop advances
/// this base so a whole sequence lands on one continuous timeline.
pub fn set_time_base(base: Cycle) {
    if !is_enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.base = base;
        }
    });
}

/// The current time base (0 when disabled).
pub fn time_base() -> Cycle {
    if !is_enabled() {
        return 0;
    }
    COLLECTOR.with(|c| c.borrow().as_ref().map_or(0, |col| col.base))
}

fn record(track: Track, name: String, kind: EventKind, ts: Cycle, args: Vec<(&'static str, String)>) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            let ts = col.base + ts;
            col.events.push(TraceEvent { track, name, kind, ts, args });
        }
    });
}

/// Records a complete span `[start, end]` in phase-local cycles. No-op when
/// tracing is disabled. `end < start` is clamped to a zero-length span.
pub fn span(track: Track, name: impl Into<String>, start: Cycle, end: Cycle) {
    span_args(track, name, start, end, Vec::new());
}

/// [`span`] with an args payload (shown in Perfetto's detail pane).
pub fn span_args(
    track: Track,
    name: impl Into<String>,
    start: Cycle,
    end: Cycle,
    args: Vec<(&'static str, String)>,
) {
    if !is_enabled() {
        return;
    }
    let dur = end.saturating_sub(start);
    record(track, name.into(), EventKind::Span { dur }, start, args);
}

/// Records an instant event at `at` (phase-local cycles). No-op when disabled.
pub fn instant(track: Track, name: impl Into<String>, at: Cycle) {
    instant_args(track, name, at, Vec::new());
}

/// [`instant`] with an args payload.
pub fn instant_args(
    track: Track,
    name: impl Into<String>,
    at: Cycle,
    args: Vec<(&'static str, String)>,
) {
    if !is_enabled() {
        return;
    }
    record(track, name.into(), EventKind::Instant, at, args);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_no_op() {
        assert!(!is_enabled());
        span(Track::Phases, "ignored", 0, 10);
        instant(Track::Scheduler, "ignored", 5);
        assert!(finish().is_none());
    }

    #[test]
    fn start_record_finish_round_trip() {
        start();
        span_args(Track::RuFrontEnd(0), "tile 3", 10, 40, vec![("fragments", "12".into())]);
        instant(Track::Scheduler, "steal", 25);
        let t = finish().expect("collector installed");
        assert!(!is_enabled());
        assert_eq!(t.len(), 2);
        assert_eq!(t.events[0].kind, EventKind::Span { dur: 30 });
        assert_eq!(t.events[0].ts, 10);
        assert_eq!(t.events[1].kind, EventKind::Instant);
    }

    #[test]
    fn time_base_shifts_events_onto_the_global_timeline() {
        start();
        span(Track::Phases, "geometry", 0, 100);
        set_time_base(1_000);
        assert_eq!(time_base(), 1_000);
        span(Track::Phases, "raster", 0, 100);
        let t = finish().unwrap();
        assert_eq!(t.events[0].ts, 0);
        assert_eq!(t.events[1].ts, 1_000);
    }

    #[test]
    fn inverted_span_clamps_to_zero_length() {
        start();
        span(Track::Phases, "odd", 50, 10);
        let t = finish().unwrap();
        assert_eq!(t.events[0].kind, EventKind::Span { dur: 0 });
    }

    #[test]
    fn chrome_json_has_metadata_and_events() {
        start();
        span(Track::DramBank { channel: 0, bank: 3 }, "rd miss", 0, 100);
        let t = finish().unwrap();
        let j = t.chrome_json();
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("process_name"));
        assert!(j.contains("DRAM ch0 bank3"));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"dur\":100"));
    }

    #[test]
    fn multi_trace_assigns_one_pid_per_job() {
        start();
        instant(Track::Scheduler, "a", 0);
        let a = finish().unwrap();
        start();
        instant(Track::Scheduler, "b", 0);
        let b = finish().unwrap();
        let j = Trace::chrome_json_multi(&[("job a".into(), a), ("job b".into(), b)]);
        assert!(j.contains("\"pid\":0"));
        assert!(j.contains("\"pid\":1"));
        assert!(j.contains("job a") && j.contains("job b"));
    }

    #[test]
    fn names_are_json_escaped() {
        start();
        instant(Track::Scheduler, "quote \" backslash \\", 0);
        let j = finish().unwrap().chrome_json();
        assert!(j.contains("quote \\\" backslash \\\\"));
    }

    #[test]
    fn track_tids_are_unique_for_distinct_tracks() {
        let tracks = [
            Track::Phases,
            Track::Scheduler,
            Track::RuFrontEnd(0),
            Track::RuFragment(0),
            Track::RuFlush(0),
            Track::RuFrontEnd(1),
            Track::DramBus(0),
            Track::DramBus(1),
            Track::DramBank { channel: 0, bank: 0 },
            Track::DramBank { channel: 1, bank: 7 },
            Track::HostCoordinator,
            Track::HostWorker(0),
            Track::HostWorker(3),
        ];
        let tids: std::collections::HashSet<u64> = tracks.iter().map(|t| t.tid()).collect();
        assert_eq!(tids.len(), tracks.len());
    }
}
