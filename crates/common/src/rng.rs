//! Vendored deterministic PRNG: SplitMix64-seeded xoshiro256++.
//!
//! The workspace builds hermetically offline, so instead of pulling `rand` from
//! crates.io we carry the two tiny, well-studied generators the `rand` ecosystem
//! itself builds on:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. Equidistributed, passes
//!   BigCrush, and — crucially — turns *any* 64-bit seed (including 0 and other
//!   low-entropy values) into a well-mixed state. Used here only to expand seeds.
//! * [`Xoshiro256pp`] — Blackman & Vigna's xoshiro256++ 1.0, the general-purpose
//!   generator recommended by its authors. 256-bit state, period 2^256 − 1.
//!
//! Both algorithms are public domain (CC0) reference constructions; the
//! implementations below are written from the published recurrences.
//!
//! Everything downstream (scene synthesis, property-test case generation, campaign
//! job seeding) derives from these, so a `(seed, call sequence)` pair fully
//! determines every "random" choice in the repository — the bedrock of the
//! bit-identical parallel-campaign guarantee (see `DESIGN.md`).

/// SplitMix64: a fixed-increment counter passed through a 64-bit finalising mixer.
///
/// ```
/// use tbr_common::rng::SplitMix64;
/// let mut sm = SplitMix64::new(0);
/// let a = sm.next_u64();
/// assert_ne!(a, sm.next_u64(), "stream must advance");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a raw 64-bit seed (any value is fine).
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One-shot SplitMix64 mix of a single value — the stateless form used to derive
/// independent sub-seeds (per-frame streams, per-campaign-job seeds) from a parent
/// seed without correlating the resulting streams.
pub fn splitmix64_mix(seed: u64) -> u64 {
    SplitMix64::new(seed).next_u64()
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019).
///
/// Seeded through SplitMix64 as the authors prescribe, so even adjacent or
/// zero-entropy `u64` seeds yield decorrelated streams.
///
/// ```
/// use tbr_common::rng::Xoshiro256pp;
/// let mut a = Xoshiro256pp::seed_from_u64(42);
/// let mut b = Xoshiro256pp::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the 256-bit state by running SplitMix64 four times, per the reference
    /// implementation's guidance. The all-zero state (the one invalid state) cannot
    /// be produced this way.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Next 64-bit output (the `++` scrambler: `rotl(s0 + s3, 23) + s0`).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of the 64-bit draw — the better-mixed bits).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u32` in `[0, n)` via the multiply-shift range reduction
    /// (Lemire's unbiased-enough fast path; the modulo bias over a 32-bit draw is
    /// below 2^-32 · n, invisible at simulator scales). `n = 0` returns 0.
    pub fn gen_u32(&mut self, n: u32) -> u32 {
        if n == 0 {
            return 0;
        }
        ((self.next_u32() as u64 * n as u64) >> 32) as u32
    }

    /// Uniform `f32` in `[0, 1)` from the top 24 bits of a 64-bit draw.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`. Degenerate ranges (`hi <= lo`) return `lo`.
    pub fn gen_f32(&mut self, lo: f32, hi: f32) -> f32 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform `f32` in the closed interval `[lo, hi]`.
    ///
    /// The half-open sampler already makes `hi` unreachable only by one part in
    /// 2^24; the closed form simply widens the scale by one ULP-step of the 24-bit
    /// lattice so both endpoints are attainable, matching `rand`'s
    /// `gen_range(lo..=hi)` contract closely enough for scene synthesis.
    pub fn gen_f32_inclusive(&mut self, lo: f32, hi: f32) -> f32 {
        if hi <= lo {
            return lo;
        }
        let t = (self.next_u64() >> 40) as f32 * (1.0 / ((1u32 << 24) - 1) as f32);
        (lo + (hi - lo) * t).min(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_zero_seed_is_well_mixed() {
        // Known first outputs of SplitMix64(0), from the public-domain reference C
        // implementation (Vigna, prng.di.unimi.it).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn xoshiro_streams_are_deterministic_and_distinct() {
        let mut a = Xoshiro256pp::seed_from_u64(7);
        let mut b = Xoshiro256pp::seed_from_u64(7);
        let mut c = Xoshiro256pp::seed_from_u64(8);
        let av: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv, "adjacent seeds must decorrelate through SplitMix64");
    }

    #[test]
    fn gen_u32_stays_in_range_and_covers() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_u32(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws must cover [0,7)");
        assert_eq!(rng.gen_u32(0), 0);
        assert_eq!(rng.gen_u32(1), 0);
    }

    #[test]
    fn gen_f32_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_f32(-2.5, 4.0);
            assert!((-2.5..4.0).contains(&v));
            let w = rng.gen_f32_inclusive(0.0, 1.0);
            assert!((0.0..=1.0).contains(&w));
        }
        // Degenerate ranges collapse to lo instead of panicking (rand panics here;
        // scene synthesis wants the permissive behaviour for zero-jitter profiles).
        assert_eq!(rng.gen_f32(5.0, 5.0), 5.0);
        assert_eq!(rng.gen_f32_inclusive(5.0, 4.0), 5.0);
    }

    #[test]
    fn f32_distribution_is_roughly_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(2024);
        let mut buckets = [0u32; 10];
        const N: u32 = 10_000;
        for _ in 0..N {
            let v = rng.next_f32();
            buckets[(v * 10.0) as usize % 10] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (N / 10).abs_diff(b) < N / 20,
                "bucket {i} has {b} of {N} draws — not uniform"
            );
        }
    }

    #[test]
    fn splitmix_mix_derives_decorrelated_subseeds() {
        // Consecutive job indices must yield thoroughly different sub-seeds.
        let a = splitmix64_mix(100);
        let b = splitmix64_mix(101);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 12, "avalanche too weak: {:#x} vs {:#x}", a, b);
    }
}
