//! Morton (Z-order) codec and tile-grid traversals.
//!
//! The paper's baseline GPU fetches tiles in Morton order because it is more
//! cache-friendly than scanline order (§II-B). LIBRA also traverses the tiles *inside*
//! a supertile in Z-order (§III-D). This module provides the bit-interleaving codec and
//! traversal generators for arbitrary (non-square, non-power-of-two) tile grids.

use crate::ids::TileCoord;

/// Interleaves the low 32 bits of `v` with zeros ("part 1 by 1").
#[inline]
fn part1by1(v: u32) -> u64 {
    let mut x = v as u64;
    x &= 0x0000_0000_ffff_ffff;
    x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Compacts every other bit of `v` ("compact 1 by 1") — inverse of [`part1by1`].
#[inline]
fn compact1by1(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
    x = (x | (x >> 16)) & 0x0000_0000_ffff_ffff;
    x as u32
}

/// Encodes an `(x, y)` coordinate into its Morton code (bits of `x` in even
/// positions, bits of `y` in odd positions).
///
/// ```
/// use tbr_common::morton::morton_encode;
/// assert_eq!(morton_encode(0, 0), 0);
/// assert_eq!(morton_encode(1, 0), 1);
/// assert_eq!(morton_encode(0, 1), 2);
/// assert_eq!(morton_encode(1, 1), 3);
/// ```
#[inline]
pub fn morton_encode(x: u32, y: u32) -> u64 {
    part1by1(x) | (part1by1(y) << 1)
}

/// Decodes a Morton code back to `(x, y)`. Inverse of [`morton_encode`].
#[inline]
pub fn morton_decode(code: u64) -> (u32, u32) {
    (compact1by1(code), compact1by1(code >> 1))
}

/// Produces the coordinates of a `tiles_x` × `tiles_y` grid in Z-order.
///
/// For non-power-of-two grids (e.g. the 30 × 17 grid of the quarter-FHD screen) this
/// enumerates all coordinates and sorts them by Morton code, which yields the order a
/// hardware Z-traversal restricted to the screen rectangle would visit.
pub fn zorder_traversal(tiles_x: u32, tiles_y: u32) -> Vec<TileCoord> {
    let mut coords: Vec<TileCoord> = (0..tiles_y)
        .flat_map(|y| (0..tiles_x).map(move |x| TileCoord::new(x, y)))
        .collect();
    coords.sort_by_key(|c| morton_encode(c.x, c.y));
    coords
}

/// Produces the coordinates of a grid in scanline (row-major) order, the other common
/// traversal mentioned in §II-B.
pub fn scanline_traversal(tiles_x: u32, tiles_y: u32) -> Vec<TileCoord> {
    (0..tiles_y)
        .flat_map(|y| (0..tiles_x).map(move |x| TileCoord::new(x, y)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn encode_decode_roundtrip_small() {
        for x in 0..64u32 {
            for y in 0..64u32 {
                assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip_large_values() {
        for &(x, y) in &[(u32::MAX, 0), (0, u32::MAX), (u32::MAX, u32::MAX), (12345, 67890)] {
            assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
        }
    }

    #[test]
    fn morton_is_monotone_in_quadrants() {
        // All codes in the lower-left 2x2 quadrant precede the upper-right 2x2 one.
        let ll_max = [(0, 0), (1, 0), (0, 1), (1, 1)]
            .iter()
            .map(|&(x, y)| morton_encode(x, y))
            .max()
            .unwrap();
        let ur_min = [(2, 2), (3, 2), (2, 3), (3, 3)]
            .iter()
            .map(|&(x, y)| morton_encode(x, y))
            .min()
            .unwrap();
        assert!(ll_max < ur_min);
    }

    #[test]
    fn zorder_traversal_covers_grid_exactly_once() {
        let order = zorder_traversal(30, 17);
        assert_eq!(order.len(), 510);
        let unique: HashSet<_> = order.iter().copied().collect();
        assert_eq!(unique.len(), 510);
        for c in &order {
            assert!(c.x < 30 && c.y < 17);
        }
    }

    #[test]
    fn zorder_traversal_on_4x4_matches_classic_z_pattern() {
        let order = zorder_traversal(4, 4);
        let expect = [
            (0, 0),
            (1, 0),
            (0, 1),
            (1, 1),
            (2, 0),
            (3, 0),
            (2, 1),
            (3, 1),
            (0, 2),
            (1, 2),
            (0, 3),
            (1, 3),
            (2, 2),
            (3, 2),
            (2, 3),
            (3, 3),
        ];
        let got: Vec<(u32, u32)> = order.iter().map(|c| (c.x, c.y)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn scanline_traversal_is_row_major() {
        let order = scanline_traversal(3, 2);
        let got: Vec<(u32, u32)> = order.iter().map(|c| (c.x, c.y)).collect();
        assert_eq!(got, [(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn zorder_improves_locality_over_scanline_on_wide_grids() {
        // Average Chebyshev distance between consecutive tiles should not be worse in
        // Z-order than scanline for a wide grid (the cache-friendliness argument of
        // §II-B, measured geometrically).
        let z = zorder_traversal(32, 4);
        let s = scanline_traversal(32, 4);
        let avg = |v: &[TileCoord]| -> f64 {
            v.windows(2).map(|w| w[0].chebyshev_distance(w[1]) as f64).sum::<f64>()
                / (v.len() - 1) as f64
        };
        // Scanline pays a full-width jump at every row end; Z-order never jumps more
        // than a quadrant.
        assert!(avg(&z) <= avg(&s) + 1.0);
    }
}
