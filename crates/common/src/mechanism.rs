//! The mechanism axis: which optional rendering mechanisms are layered on top
//! of the scheduler for a run.
//!
//! The workspace started as a reproduction of one mechanism (LIBRA's
//! bandwidth/locality-aware scheduling, which lives on the `--scheduler` axis).
//! [`MechanismSpec`] adds a second, orthogonal axis hosting the rest of the
//! research line:
//!
//! * **Rendering Elimination** (`re`, arXiv 1807.09449): per-tile input
//!   signatures hashed over the binned primitive stream; tiles whose signature
//!   matches the previous frame are discarded before rasterisation.
//! * **WaSP** (`wasp`, arXiv 2404.06156): warp scheduling for prefetching — a
//!   leading "spearhead" warp group warms the texture caches, and the
//!   remaining warps are issued in criticality order.
//!
//! Mechanisms compose with each other (`re+wasp`) and with every scheduler.
//! The default — no mechanism — is the historical LIBRA-only behaviour, and
//! everything downstream (campaign fingerprints, checkpoint schemas, the wire
//! protocol) treats the default as *absent* so that pre-mechanism payloads
//! keep validating. See `docs/MECHANISMS.md` for the mechanism-to-paper map.

use std::fmt;

/// Which optional mechanisms are enabled for a run, orthogonal to the
/// scheduler choice. The default (`MechanismSpec::default()`) enables nothing
/// and reproduces the historical LIBRA-only pipeline bit for bit.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct MechanismSpec {
    /// Rendering Elimination: discard tiles whose per-tile input signature
    /// matches the previous frame before raster/shade/flush.
    pub re: bool,
    /// WaSP: spearhead + criticality-aware warp ordering at the raster
    /// front-end, driven by the texture-L1 miss statistics.
    pub wasp: bool,
    /// RE oracle differential mode: compute signatures and count would-be
    /// discards, but render every tile anyway and compare the full hashed
    /// input stream so hash collisions surface as `re_false_negatives`.
    /// Implies `re`.
    pub re_oracle: bool,
}

impl MechanismSpec {
    /// No mechanism: the historical scheduler-only pipeline.
    pub const NONE: MechanismSpec = MechanismSpec {
        re: false,
        wasp: false,
        re_oracle: false,
    };

    /// True when no mechanism is enabled — the configuration that must stay
    /// byte-compatible with pre-mechanism fingerprints and wire payloads.
    pub fn is_default(&self) -> bool {
        *self == Self::NONE
    }

    /// Parses a mechanism spec from its CLI/wire spelling: `none`, `re`,
    /// `wasp`, `re-oracle`, or `+`-joined combinations (`re+wasp`,
    /// `re-oracle+wasp`). Order-insensitive; duplicates are errors.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut spec = Self::NONE;
        if s.trim() == "none" || s.trim().is_empty() {
            return Ok(spec);
        }
        for part in s.split('+') {
            match part.trim() {
                "re" if !spec.re => spec.re = true,
                "wasp" if !spec.wasp => spec.wasp = true,
                "re-oracle" if !spec.re => {
                    spec.re = true;
                    spec.re_oracle = true;
                }
                other => {
                    return Err(format!(
                        "unknown or repeated mechanism {other:?} in {s:?} \
                         (expected none, re, wasp, re-oracle, or `+` combinations)"
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// The canonical spelling, the inverse of [`MechanismSpec::parse`]:
    /// `none`, `re`, `re-oracle`, `wasp`, `re+wasp`, `re-oracle+wasp`.
    pub fn name(&self) -> String {
        let mut parts = Vec::new();
        if self.re_oracle {
            parts.push("re-oracle");
        } else if self.re {
            parts.push("re");
        }
        if self.wasp {
            parts.push("wasp");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

impl fmt::Debug for MechanismSpec {
    // The Debug form feeds the campaign fingerprint; keep it the canonical
    // name so equivalent specs can never fingerprint differently.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl fmt::Display for MechanismSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_canonical_name() {
        for name in ["none", "re", "wasp", "re-oracle", "re+wasp", "re-oracle+wasp"] {
            let spec = MechanismSpec::parse(name).unwrap();
            assert_eq!(spec.name(), name, "canonical spelling must round-trip");
            assert_eq!(MechanismSpec::parse(&spec.name()).unwrap(), spec);
        }
    }

    #[test]
    fn parse_is_order_insensitive_and_rejects_junk() {
        assert_eq!(
            MechanismSpec::parse("wasp+re").unwrap(),
            MechanismSpec::parse("re+wasp").unwrap()
        );
        assert!(MechanismSpec::parse("turbo").is_err());
        assert!(MechanismSpec::parse("re+re").is_err());
        assert!(MechanismSpec::parse("re+re-oracle").is_err());
    }

    #[test]
    fn default_is_none_and_oracle_implies_re() {
        assert!(MechanismSpec::default().is_default());
        assert_eq!(MechanismSpec::default().name(), "none");
        let oracle = MechanismSpec::parse("re-oracle").unwrap();
        assert!(oracle.re && oracle.re_oracle);
    }
}
