//! # tbr-energy — event-based GPU + DRAM energy model
//!
//! Substitutes the McPAT + DRAMsim3 energy estimation of the paper's toolchain (see
//! `DESIGN.md` §1) with a first-order event-count model: every architectural event
//! (warp instruction, cache access, DRAM access, DRAM row activation) carries a fixed
//! dynamic energy, and the whole GPU burns static (leakage) power every cycle. This
//! captures the two effects the paper's energy result rests on:
//!
//! * LIBRA barely changes the *number* of events (Fig 14: DRAM accesses ≈ constant),
//!   so dynamic energy is nearly unchanged;
//! * LIBRA finishes frames *faster* (Fig 11), so leakage — a large fraction of a
//!   mobile GPU's budget at 22 nm — drops proportionally, which is where most of the
//!   9.2 % total saving comes from (plus lower DRAM-queue occupancy).
//!
//! ```
//! use tbr_common::stats::FrameStats;
//! use tbr_energy::EnergyModel;
//!
//! let model = EnergyModel::default();
//! let frame = FrameStats { raster_cycles: 1_000_000, ..FrameStats::default() };
//! let e = model.frame_energy(&frame);
//! assert!(e.static_nj > 0.0 && e.total() > 0.0);
//! ```

#![warn(missing_docs)]

use tbr_common::stats::{FrameStats, SequenceStats};

/// Per-event energies (nanojoules) and leakage power, tuned to plausible 22 nm
/// mobile-GPU magnitudes (Table I's tech node).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per SIMD warp instruction (32 lanes), nJ.
    pub warp_instruction_nj: f64,
    /// Energy per L1 access (texture/tile/vertex caches), nJ.
    pub l1_access_nj: f64,
    /// Energy per shared-L2 access, nJ.
    pub l2_access_nj: f64,
    /// Energy per 64 B DRAM data transfer, nJ.
    pub dram_access_nj: f64,
    /// Energy per DRAM row activation (precharge + activate), nJ.
    pub dram_activate_nj: f64,
    /// Energy per shaded fragment in the fixed-function path (raster, Early-Z,
    /// blend, on-chip buffers), nJ.
    pub fragment_fixed_nj: f64,
    /// Whole-GPU leakage energy per core cycle, nJ (≈ 0.45 W at 800 MHz).
    pub static_nj_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            warp_instruction_nj: 0.12,
            l1_access_nj: 0.015,
            l2_access_nj: 0.06,
            dram_access_nj: 5.0,
            dram_activate_nj: 2.0,
            fragment_fixed_nj: 0.01,
            static_nj_per_cycle: 0.55,
        }
    }
}

/// A frame's (or sequence's) energy, split by component.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Shader-core dynamic energy, nJ.
    pub core_nj: f64,
    /// Cache (L1 + L2) dynamic energy, nJ.
    pub cache_nj: f64,
    /// DRAM dynamic energy (transfers + activations), nJ.
    pub dram_nj: f64,
    /// Fixed-function (raster/Z/blend) dynamic energy, nJ.
    pub fixed_nj: f64,
    /// Leakage energy, nJ.
    pub static_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nJ.
    pub fn total(&self) -> f64 {
        self.core_nj + self.cache_nj + self.dram_nj + self.fixed_nj + self.static_nj
    }

    /// Accumulates another breakdown.
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.core_nj += other.core_nj;
        self.cache_nj += other.cache_nj;
        self.dram_nj += other.dram_nj;
        self.fixed_nj += other.fixed_nj;
        self.static_nj += other.static_nj;
    }
}

impl EnergyModel {
    /// Energy of one rendered frame.
    pub fn frame_energy(&self, f: &FrameStats) -> EnergyBreakdown {
        let l1_accesses = f.texture_cache.accesses + f.tile_cache.accesses + f.vertex_cache.accesses;
        EnergyBreakdown {
            core_nj: f.instructions as f64 * self.warp_instruction_nj,
            cache_nj: l1_accesses as f64 * self.l1_access_nj
                + f.l2_cache.accesses as f64 * self.l2_access_nj,
            dram_nj: f.dram.total_accesses() as f64 * self.dram_access_nj
                + f.dram.row_misses as f64 * self.dram_activate_nj,
            fixed_nj: f.fragments as f64 * self.fragment_fixed_nj,
            static_nj: f.total_cycles() as f64 * self.static_nj_per_cycle,
        }
    }

    /// Energy of a whole sequence.
    pub fn sequence_energy(&self, s: &SequenceStats) -> EnergyBreakdown {
        let mut total = EnergyBreakdown::default();
        for f in &s.frames {
            total.add(&self.frame_energy(f));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbr_common::stats::{CacheStats, DramStats};

    fn frame() -> FrameStats {
        FrameStats {
            geometry_cycles: 100_000,
            raster_cycles: 900_000,
            instructions: 1_000_000,
            fragments: 400_000,
            texture_cache: CacheStats { accesses: 500_000, hits: 450_000, misses: 50_000, evictions: 0 },
            l2_cache: CacheStats { accesses: 60_000, hits: 40_000, misses: 20_000, evictions: 0 },
            dram: DramStats { reads: 18_000, writes: 4_000, row_misses: 6_000, ..DramStats::new(5000) },
            ..FrameStats::default()
        }
    }

    #[test]
    fn components_are_positive_and_sum() {
        let m = EnergyModel::default();
        let e = m.frame_energy(&frame());
        assert!(e.core_nj > 0.0 && e.cache_nj > 0.0 && e.dram_nj > 0.0 && e.static_nj > 0.0);
        let sum = e.core_nj + e.cache_nj + e.dram_nj + e.fixed_nj + e.static_nj;
        assert!((e.total() - sum).abs() < 1e-9);
    }

    #[test]
    fn static_energy_scales_with_cycles() {
        let m = EnergyModel::default();
        let mut fast = frame();
        fast.raster_cycles = 450_000;
        let slow_e = m.frame_energy(&frame());
        let fast_e = m.frame_energy(&fast);
        assert!(fast_e.static_nj < slow_e.static_nj);
        assert_eq!(fast_e.core_nj, slow_e.core_nj, "dynamic unchanged");
        assert!(fast_e.total() < slow_e.total(), "faster frame saves energy");
    }

    #[test]
    fn static_fraction_is_substantial_for_mobile() {
        // The 9.2% total saving at 20.9% speedup implies leakage is a sizeable share.
        let m = EnergyModel::default();
        let e = m.frame_energy(&frame());
        let frac = e.static_nj / e.total();
        assert!((0.2..0.8).contains(&frac), "static fraction {frac}");
    }

    #[test]
    fn sequence_energy_adds_frames() {
        let m = EnergyModel::default();
        let s = SequenceStats { frames: vec![frame(), frame()] };
        let e1 = m.frame_energy(&frame());
        let e2 = m.sequence_energy(&s);
        assert!((e2.total() - 2.0 * e1.total()).abs() < 1e-6);
    }
}
