//! Versioned, append-only campaign checkpoints (crash salvage + resume).
//!
//! A multi-hour sweep that dies at job 31/32 should lose one job, not all of
//! them. The campaign driver therefore appends one record to a checkpoint file
//! as each job completes; `libra-sim campaign --resume <ckpt>` reloads the file,
//! skips every job with a recorded success, re-runs failures, and produces
//! results **bit-identical** to an uninterrupted run (job seeds are
//! position-derived, and [`SequenceStats`] round-trips through JSON exactly —
//! every field is an unsigned integer).
//!
//! # File format (`libra-campaign-ckpt-v1`)
//!
//! Line-oriented JSON (one complete document per line), written with the
//! in-repo writer and validated on load by [`tbr_common::json`]:
//!
//! ```text
//! {"schema":"libra-campaign-ckpt-v1","seed":"0x0","jobs":32,"fingerprint":"0x9a…"}
//! {"job":0,"outcome":"done","abbrev":"AAt","scheduler":"libra","effective_seed":"0x11…","stats":{…}}
//! {"job":3,"outcome":"failed","abbrev":"CCS","scheduler":"libra","attempts":2,"panic_msg":"…"}
//! {"job":5,"outcome":"timeout","abbrev":"GrT","scheduler":"libra","attempts":1,"budget_cycles":1000,"spent_cycles":52341}
//! ```
//!
//! * The **header** names the schema, the campaign seed, the job count and a
//!   fingerprint of the full job list (configs, schedulers, workloads, frame
//!   counts). Resuming against a campaign with a different fingerprint is
//!   rejected — a checkpoint is only meaningful for the exact sweep that wrote
//!   it.
//! * **Records** carry the job's campaign-order index, so record order is
//!   irrelevant on load (parallel workers append in completion order). For the
//!   same job, later records supersede earlier ones: a resumed run that turns a
//!   `failed` record into a `done` one simply appends.
//! * 64-bit seeds and fingerprints are hex **strings** (JSON numbers are `f64`
//!   and would corrupt values above 2⁵³); all counters are plain integers far
//!   below that bound, checked on load by [`json::Value::as_u64`].
//!
//! # Atomic-append protocol
//!
//! Each record is serialised to one `\n`-terminated line and handed to the OS
//! in a **single `write_all` on an append-mode handle**, then flushed. Workers
//! serialise through a mutex, so lines never interleave; a crash between jobs
//! loses nothing, and a crash cannot land between two half-written records.
//! [`Checkpoint::load`] treats a file whose last byte is not `\n` as truncated
//! mid-append and rejects it with instructions rather than guessing.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::sync::Mutex;

use tbr_common::json::{self, Value};
use tbr_common::stats::SequenceStats;

use crate::campaign::CampaignResult;

/// Schema identifier written to (and required of) every checkpoint header.
pub const SCHEMA: &str = "libra-campaign-ckpt-v1";

/// The identity block on a checkpoint's first line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Campaign seed of the run that wrote the file.
    pub seed: u64,
    /// Number of jobs in the campaign.
    pub jobs: usize,
    /// Fingerprint of the full job list (see `Campaign::fingerprint`).
    pub fingerprint: u64,
}

/// Outcome payload of one checkpoint record, mirroring [`CampaignResult`] minus
/// the `&'static str` names (which are re-bound from the campaign on adoption).
#[derive(Debug, Clone, PartialEq)]
pub enum RecordOutcome {
    /// The job completed; carries its effective seed and full statistics.
    Done {
        /// The perturbed workload seed the job ran with.
        effective_seed: u64,
        /// Full per-frame statistics (exact JSON round-trip).
        stats: SequenceStats,
    },
    /// The job panicked on every attempt.
    Failed {
        /// Attempts made (1 + retries).
        attempts: u32,
        /// Panic payload of the last attempt.
        panic_msg: String,
    },
    /// The job exceeded its watchdog cycle budget on every attempt.
    TimedOut {
        /// Attempts made (1 + retries).
        attempts: u32,
        /// The budget in effect, in simulated cycles.
        budget_cycles: u64,
        /// Simulated cycles accumulated when the watchdog fired.
        spent_cycles: u64,
    },
}

/// One parsed checkpoint record (not yet validated against a campaign).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Campaign-order index of the job.
    pub job: usize,
    /// Workload abbreviation recorded at write time (cross-checked on adoption).
    pub abbrev: String,
    /// Scheduler name recorded at write time (cross-checked on adoption).
    pub scheduler: String,
    /// What happened to the job.
    pub outcome: RecordOutcome,
}

/// A fully parsed checkpoint file: header plus records in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The identity line.
    pub header: CheckpointHeader,
    /// Records in file order (later records for a job supersede earlier ones).
    pub records: Vec<Record>,
}

fn hex(v: u64) -> String {
    format!("{v:#x}")
}

fn field<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("{what}: missing field `{key}`"))
}

fn field_str<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a str, String> {
    field(v, key, what)?.as_str().ok_or_else(|| format!("{what}.{key}: expected a string"))
}

fn field_u64(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    field(v, key, what)?
        .as_u64()
        .ok_or_else(|| format!("{what}.{key}: expected an exact integer"))
}

/// Parses a `"0x…"` hex string back to the exact `u64` it encodes.
fn field_hex(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    let s = field_str(v, key, what)?;
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("{what}.{key}: expected a 0x-prefixed hex string, got `{s}`"))?;
    u64::from_str_radix(digits, 16).map_err(|_| format!("{what}.{key}: invalid hex value `{s}`"))
}

impl CheckpointHeader {
    fn to_json(self) -> String {
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"seed\":\"{}\",\"jobs\":{},\"fingerprint\":\"{}\"}}",
            hex(self.seed),
            self.jobs,
            hex(self.fingerprint)
        )
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let schema = field_str(v, "schema", "header")?;
        if schema != SCHEMA {
            return Err(format!("header: schema `{schema}` is not `{SCHEMA}`"));
        }
        Ok(Self {
            seed: field_hex(v, "seed", "header")?,
            jobs: field_u64(v, "jobs", "header")? as usize,
            fingerprint: field_hex(v, "fingerprint", "header")?,
        })
    }
}

/// Serialises one completed job as a single-line JSON record.
pub fn record_json(r: &CampaignResult) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(&format!("{{\"job\":{},\"outcome\":\"", r.job()));
    match r {
        CampaignResult::Done(s) => {
            out.push_str("done\"");
            push_names(&mut out, r);
            out.push_str(&format!(",\"effective_seed\":\"{}\",\"stats\":", hex(s.effective_seed)));
            out.push_str(&s.stats.to_json());
        }
        CampaignResult::Failed { attempts, panic_msg, .. } => {
            out.push_str("failed\"");
            push_names(&mut out, r);
            out.push_str(&format!(",\"attempts\":{attempts},\"panic_msg\":\""));
            json::escape_into(&mut out, panic_msg);
            out.push('"');
        }
        CampaignResult::TimedOut { attempts, budget_cycles, spent_cycles, .. } => {
            out.push_str("timeout\"");
            push_names(&mut out, r);
            out.push_str(&format!(
                ",\"attempts\":{attempts},\"budget_cycles\":{budget_cycles},\
                 \"spent_cycles\":{spent_cycles}"
            ));
        }
    }
    out.push('}');
    out
}

fn push_names(out: &mut String, r: &CampaignResult) {
    out.push_str(",\"abbrev\":\"");
    json::escape_into(out, r.abbrev());
    out.push_str("\",\"scheduler\":\"");
    json::escape_into(out, r.scheduler());
    out.push('"');
}

fn parse_record(v: &Value, what: &str) -> Result<Record, String> {
    let job = field_u64(v, "job", what)? as usize;
    let abbrev = field_str(v, "abbrev", what)?.to_string();
    let scheduler = field_str(v, "scheduler", what)?.to_string();
    let outcome = match field_str(v, "outcome", what)? {
        "done" => RecordOutcome::Done {
            effective_seed: field_hex(v, "effective_seed", what)?,
            stats: SequenceStats::from_value(field(v, "stats", what)?, &format!("{what}.stats"))?,
        },
        "failed" => RecordOutcome::Failed {
            attempts: field_u64(v, "attempts", what)? as u32,
            panic_msg: field_str(v, "panic_msg", what)?.to_string(),
        },
        "timeout" => RecordOutcome::TimedOut {
            attempts: field_u64(v, "attempts", what)? as u32,
            budget_cycles: field_u64(v, "budget_cycles", what)?,
            spent_cycles: field_u64(v, "spent_cycles", what)?,
        },
        other => return Err(format!("{what}: unknown outcome `{other}`")),
    };
    Ok(Record { job, abbrev, scheduler, outcome })
}

impl Checkpoint {
    /// Loads and validates a checkpoint file.
    ///
    /// Rejects, with an error naming the line and problem: unreadable files,
    /// empty files, files not ending in a newline (truncated mid-append),
    /// malformed JSON, wrong schema, and records missing required fields.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading checkpoint {path}: {e}"))?;
        if text.is_empty() {
            return Err(format!("checkpoint {path} is empty (no header line)"));
        }
        if !text.ends_with('\n') {
            return Err(format!(
                "checkpoint {path} is truncated: the last line is incomplete (crash while \
                 appending?) — delete the file to start over, or restore a complete copy"
            ));
        }
        let mut lines = text.lines().enumerate();
        let (_, header_line) = lines.next().expect("non-empty text has a first line");
        let header = json::parse(header_line)
            .map_err(|e| format!("checkpoint {path} line 1: {e}"))
            .and_then(|v| CheckpointHeader::from_value(&v))
            .map_err(|e| format!("checkpoint {path} line 1: {e}"))?;
        let mut records = Vec::new();
        for (i, line) in lines {
            let lineno = i + 1;
            if line.trim().is_empty() {
                return Err(format!("checkpoint {path} line {lineno}: blank line"));
            }
            let v = json::parse(line).map_err(|e| format!("checkpoint {path} line {lineno}: {e}"))?;
            let rec = parse_record(&v, &format!("record at line {lineno}"))
                .map_err(|e| format!("checkpoint {path}: {e}"))?;
            if rec.job >= header.jobs {
                return Err(format!(
                    "checkpoint {path} line {lineno}: job index {} out of range (campaign has {} jobs)",
                    rec.job, header.jobs
                ));
            }
            records.push(rec);
        }
        Ok(Self { header, records })
    }
}

/// Append-mode writer shared by campaign workers (line appends are serialised
/// through an internal mutex; each line is one `write_all` + flush).
#[derive(Debug)]
pub struct CheckpointWriter {
    file: Mutex<File>,
    path: String,
}

impl CheckpointWriter {
    /// Creates (truncating) a fresh checkpoint at `path` and writes the header.
    pub fn create(path: &str, header: CheckpointHeader) -> Result<Self, String> {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            }
        }
        let mut file =
            File::create(path).map_err(|e| format!("creating checkpoint {path}: {e}"))?;
        let mut line = header.to_json();
        line.push('\n');
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("writing checkpoint header to {path}: {e}"))?;
        Ok(Self { file: Mutex::new(file), path: path.to_string() })
    }

    /// Reopens an existing (already validated) checkpoint for appending — the
    /// resume path keeps extending the same file.
    pub fn append_to(path: &str) -> Result<Self, String> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("opening checkpoint {path} for append: {e}"))?;
        Ok(Self { file: Mutex::new(file), path: path.to_string() })
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Appends one job record atomically (single write of a full line).
    pub fn append(&self, r: &CampaignResult) -> Result<(), String> {
        let mut line = record_json(r);
        line.push('\n');
        let mut file = self.file.lock().unwrap();
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("appending to checkpoint {}: {e}", self.path))
    }
}
