//! Versioned, append-only campaign checkpoints (crash salvage + resume).
//!
//! A multi-hour sweep that dies at job 31/32 should lose one job, not all of
//! them. The campaign driver therefore appends one record to a checkpoint file
//! as each job completes; `libra-sim campaign --resume <ckpt>` reloads the file,
//! skips every job with a recorded success, re-runs failures, and produces
//! results **bit-identical** to an uninterrupted run (job seeds are
//! position-derived, and [`SequenceStats`] round-trips through both encodings
//! exactly — every field is an unsigned integer).
//!
//! Two on-disk encodings carry the same logical content and are loaded through
//! the same [`Checkpoint::load`] (auto-detected by the leading bytes):
//!
//! # Binary format (`libra-ckpt-bin-v1`, the default)
//!
//! Endian-pinned ([`tbr_common::binio`]: everything little-endian, so the
//! bytes are host-independent) and length-prefixed:
//!
//! ```text
//! header: magic "LIBRACKB" (8) · version u32 · seed u64 · jobs u64 · fingerprint u64
//! record: payload_len u32 · payload
//! payload: job u32 · abbrev str16 · scheduler str16 · outcome u8
//!          outcome 0 (done):    effective_seed u64 · stats (SequenceStats binary)
//!          outcome 1 (failed):  attempts u32 · panic_msg str32
//!          outcome 2 (timeout): attempts u32 · budget_cycles u64 · spent_cycles u64
//! ```
//!
//! The `payload_len` frame makes a crash mid-append detectable: a trailing
//! partial frame is rejected as truncated, exactly like a JSON file whose last
//! line lacks its newline. A wrong magic, an unsupported version, an unknown
//! outcome tag, or leftover bytes inside a frame are all structured load
//! errors, never panics.
//!
//! # JSON format (`libra-campaign-ckpt-v1`, `--ckpt-format json`)
//!
//! Line-oriented JSON (one complete document per line), written with the
//! in-repo writer and validated on load by [`tbr_common::json`]:
//!
//! ```text
//! {"schema":"libra-campaign-ckpt-v1","seed":"0x0","jobs":32,"fingerprint":"0x9a…"}
//! {"job":0,"outcome":"done","abbrev":"AAt","scheduler":"libra","effective_seed":"0x11…","stats":{…}}
//! {"job":3,"outcome":"failed","abbrev":"CCS","scheduler":"libra","attempts":2,"panic_msg":"…"}
//! {"job":5,"outcome":"timeout","abbrev":"GrT","scheduler":"libra","attempts":1,"budget_cycles":1000,"spent_cycles":52341}
//! ```
//!
//! * The **header** names the schema, the campaign seed, the job count and a
//!   fingerprint of the full job list (configs, schedulers, workloads, frame
//!   counts). Resuming against a campaign with a different fingerprint is
//!   rejected — a checkpoint is only meaningful for the exact sweep that wrote
//!   it. The binary header carries the identical identity block.
//! * **Records** carry the job's campaign-order index, so record order is
//!   irrelevant on load (parallel workers append in completion order). For the
//!   same job, later records supersede earlier ones: a resumed run that turns a
//!   `failed` record into a `done` one simply appends.
//! * 64-bit seeds and fingerprints are hex **strings** in JSON (JSON numbers
//!   are `f64` and would corrupt values above 2⁵³) and plain `u64`s in binary;
//!   all counters are plain integers far below that bound.
//!
//! # Atomic-append protocol
//!
//! Each record is serialised to one unit — a `\n`-terminated line (JSON) or a
//! length-prefixed frame (binary) — and handed to the OS in a **single
//! `write_all` on an append-mode handle**, then flushed. Workers serialise
//! through a mutex, so records never interleave; a crash between jobs loses
//! nothing, and a crash cannot land between two half-written records.
//! [`Checkpoint::load`] treats a trailing incomplete record as truncated
//! mid-append and rejects it with instructions rather than guessing.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::sync::Mutex;

use tbr_common::binio::{ByteReader, ByteWriter};
use tbr_common::json::{self, Value};
use tbr_common::stats::SequenceStats;

use crate::campaign::CampaignResult;

/// Schema identifier written to (and required of) every JSON checkpoint header.
pub const SCHEMA: &str = "libra-campaign-ckpt-v1";

/// Magic bytes opening a binary checkpoint (`libra-ckpt-bin-v1`). Never a
/// valid JSON first byte, so [`Checkpoint::load`] auto-detects the encoding.
pub const BIN_MAGIC: &[u8; 8] = b"LIBRACKB";

/// Version number following [`BIN_MAGIC`]; unknown versions are rejected.
pub const BIN_VERSION: u32 = 1;

/// On-disk encoding of a checkpoint sidecar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointFormat {
    /// `libra-ckpt-bin-v1`: endian-pinned length-prefixed frames (default).
    #[default]
    Binary,
    /// `libra-campaign-ckpt-v1`: line-oriented JSON (human-readable opt-out).
    Json,
}

/// The identity block on a checkpoint's first line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Campaign seed of the run that wrote the file.
    pub seed: u64,
    /// Number of jobs in the campaign.
    pub jobs: usize,
    /// Fingerprint of the full job list (see `Campaign::fingerprint`).
    pub fingerprint: u64,
}

/// Outcome payload of one checkpoint record, mirroring [`CampaignResult`] minus
/// the `&'static str` names (which are re-bound from the campaign on adoption).
#[derive(Debug, Clone, PartialEq)]
pub enum RecordOutcome {
    /// The job completed; carries its effective seed and full statistics.
    Done {
        /// The perturbed workload seed the job ran with.
        effective_seed: u64,
        /// Full per-frame statistics (exact JSON round-trip).
        stats: SequenceStats,
    },
    /// The job panicked on every attempt.
    Failed {
        /// Attempts made (1 + retries).
        attempts: u32,
        /// Panic payload of the last attempt.
        panic_msg: String,
    },
    /// The job exceeded its watchdog cycle budget on every attempt.
    TimedOut {
        /// Attempts made (1 + retries).
        attempts: u32,
        /// The budget in effect, in simulated cycles.
        budget_cycles: u64,
        /// Simulated cycles accumulated when the watchdog fired.
        spent_cycles: u64,
    },
}

/// One parsed checkpoint record (not yet validated against a campaign).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Campaign-order index of the job.
    pub job: usize,
    /// Workload abbreviation recorded at write time (cross-checked on adoption).
    pub abbrev: String,
    /// Scheduler name recorded at write time (cross-checked on adoption).
    pub scheduler: String,
    /// What happened to the job.
    pub outcome: RecordOutcome,
}

/// A fully parsed checkpoint file: header plus records in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The identity line.
    pub header: CheckpointHeader,
    /// Records in file order (later records for a job supersede earlier ones).
    pub records: Vec<Record>,
    /// The encoding the file was written in (resume appends in the same one).
    pub format: CheckpointFormat,
}

fn hex(v: u64) -> String {
    format!("{v:#x}")
}

fn field<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("{what}: missing field `{key}`"))
}

fn field_str<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a str, String> {
    field(v, key, what)?.as_str().ok_or_else(|| format!("{what}.{key}: expected a string"))
}

fn field_u64(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    field(v, key, what)?
        .as_u64()
        .ok_or_else(|| format!("{what}.{key}: expected an exact integer"))
}

/// Parses a `"0x…"` hex string back to the exact `u64` it encodes.
fn field_hex(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    let s = field_str(v, key, what)?;
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("{what}.{key}: expected a 0x-prefixed hex string, got `{s}`"))?;
    u64::from_str_radix(digits, 16).map_err(|_| format!("{what}.{key}: invalid hex value `{s}`"))
}

impl CheckpointHeader {
    fn to_json(self) -> String {
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"seed\":\"{}\",\"jobs\":{},\"fingerprint\":\"{}\"}}",
            hex(self.seed),
            self.jobs,
            hex(self.fingerprint)
        )
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let schema = field_str(v, "schema", "header")?;
        if schema != SCHEMA {
            return Err(format!("header: schema `{schema}` is not `{SCHEMA}`"));
        }
        Ok(Self {
            seed: field_hex(v, "seed", "header")?,
            jobs: field_u64(v, "jobs", "header")? as usize,
            fingerprint: field_hex(v, "fingerprint", "header")?,
        })
    }

    fn to_binary(self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(BIN_MAGIC);
        w.u32(BIN_VERSION);
        w.u64(self.seed);
        w.u64(self.jobs as u64);
        w.u64(self.fingerprint);
        w.into_bytes()
    }

    /// Reads the identity block of a binary checkpoint (magic already checked).
    fn from_reader(r: &mut ByteReader<'_>) -> Result<Self, String> {
        let version = r.u32("header.version")?;
        if version != BIN_VERSION {
            return Err(format!(
                "binary checkpoint version {version} is not the supported {BIN_VERSION}"
            ));
        }
        Ok(Self {
            seed: r.u64("header.seed")?,
            jobs: r.u64("header.jobs")? as usize,
            fingerprint: r.u64("header.fingerprint")?,
        })
    }
}

impl Record {
    /// Captures a [`CampaignResult`] as a serialisable record (the inverse of
    /// [`Campaign::adopt_record`](crate::campaign::Campaign::adopt_record),
    /// which re-binds the `&'static str` names from the campaign).
    pub fn from_result(r: &CampaignResult) -> Self {
        let outcome = match r {
            CampaignResult::Done(s) => RecordOutcome::Done {
                effective_seed: s.effective_seed,
                stats: s.stats.clone(),
            },
            CampaignResult::Failed { attempts, panic_msg, .. } => RecordOutcome::Failed {
                attempts: *attempts,
                panic_msg: panic_msg.clone(),
            },
            CampaignResult::TimedOut { attempts, budget_cycles, spent_cycles, .. } => {
                RecordOutcome::TimedOut {
                    attempts: *attempts,
                    budget_cycles: *budget_cycles,
                    spent_cycles: *spent_cycles,
                }
            }
        };
        Self {
            job: r.job(),
            abbrev: r.abbrev().to_string(),
            scheduler: r.scheduler().to_string(),
            outcome,
        }
    }

    /// The single-line JSON object of this record — the checkpoint's record
    /// encoding, also embedded verbatim in `libra-wire-v1` `result` frames.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!("{{\"job\":{},\"outcome\":\"", self.job));
        match &self.outcome {
            RecordOutcome::Done { effective_seed, stats } => {
                out.push_str("done\"");
                self.push_names(&mut out);
                out.push_str(&format!(",\"effective_seed\":\"{}\",\"stats\":", hex(*effective_seed)));
                out.push_str(&stats.to_json());
            }
            RecordOutcome::Failed { attempts, panic_msg } => {
                out.push_str("failed\"");
                self.push_names(&mut out);
                out.push_str(&format!(",\"attempts\":{attempts},\"panic_msg\":\""));
                json::escape_into(&mut out, panic_msg);
                out.push('"');
            }
            RecordOutcome::TimedOut { attempts, budget_cycles, spent_cycles } => {
                out.push_str("timeout\"");
                self.push_names(&mut out);
                out.push_str(&format!(
                    ",\"attempts\":{attempts},\"budget_cycles\":{budget_cycles},\
                     \"spent_cycles\":{spent_cycles}"
                ));
            }
        }
        out.push('}');
        out
    }

    fn push_names(&self, out: &mut String) {
        out.push_str(",\"abbrev\":\"");
        json::escape_into(out, &self.abbrev);
        out.push_str("\",\"scheduler\":\"");
        json::escape_into(out, &self.scheduler);
        out.push('"');
    }

    /// Parses a record object (the inverse of [`Record::to_json`]); `what`
    /// names the location for error messages.
    pub fn from_value(v: &Value, what: &str) -> Result<Self, String> {
        parse_record(v, what)
    }
}

/// Serialises one completed job as a single-line JSON record.
pub fn record_json(r: &CampaignResult) -> String {
    Record::from_result(r).to_json()
}

/// Serialises one completed job as a length-prefixed binary frame (the whole
/// frame — length included — is handed to one `write_all`).
pub fn record_frame(r: &CampaignResult) -> Vec<u8> {
    let mut p = ByteWriter::new();
    p.u32(r.job() as u32);
    p.str16(r.abbrev());
    p.str16(r.scheduler());
    match r {
        CampaignResult::Done(s) => {
            p.u8(0);
            p.u64(s.effective_seed);
            s.stats.to_binary_into(&mut p);
        }
        CampaignResult::Failed { attempts, panic_msg, .. } => {
            p.u8(1);
            p.u32(*attempts);
            p.str32(panic_msg);
        }
        CampaignResult::TimedOut { attempts, budget_cycles, spent_cycles, .. } => {
            p.u8(2);
            p.u32(*attempts);
            p.u64(*budget_cycles);
            p.u64(*spent_cycles);
        }
    }
    let payload = p.into_bytes();
    let mut w = ByteWriter::new();
    w.u32(payload.len() as u32);
    w.bytes(&payload);
    w.into_bytes()
}

/// Decodes one binary record payload (frame length already stripped). The
/// payload must be consumed exactly — trailing bytes mean a corrupt frame.
fn parse_record_binary(payload: &[u8], what: &str) -> Result<Record, String> {
    let mut r = ByteReader::new(payload);
    let job = r.u32(&format!("{what}.job"))? as usize;
    let abbrev = r.str16(&format!("{what}.abbrev"))?;
    let scheduler = r.str16(&format!("{what}.scheduler"))?;
    let outcome = match r.u8(&format!("{what}.outcome"))? {
        0 => RecordOutcome::Done {
            effective_seed: r.u64(&format!("{what}.effective_seed"))?,
            stats: SequenceStats::from_reader(&mut r, &format!("{what}.stats"))?,
        },
        1 => RecordOutcome::Failed {
            attempts: r.u32(&format!("{what}.attempts"))?,
            panic_msg: r.str32(&format!("{what}.panic_msg"))?,
        },
        2 => RecordOutcome::TimedOut {
            attempts: r.u32(&format!("{what}.attempts"))?,
            budget_cycles: r.u64(&format!("{what}.budget_cycles"))?,
            spent_cycles: r.u64(&format!("{what}.spent_cycles"))?,
        },
        other => return Err(format!("{what}: unknown outcome tag {other}")),
    };
    if !r.is_empty() {
        return Err(format!("{what}: {} unexpected trailing byte(s) in frame", r.remaining()));
    }
    Ok(Record { job, abbrev, scheduler, outcome })
}

fn parse_record(v: &Value, what: &str) -> Result<Record, String> {
    let job = field_u64(v, "job", what)? as usize;
    let abbrev = field_str(v, "abbrev", what)?.to_string();
    let scheduler = field_str(v, "scheduler", what)?.to_string();
    let outcome = match field_str(v, "outcome", what)? {
        "done" => RecordOutcome::Done {
            effective_seed: field_hex(v, "effective_seed", what)?,
            stats: SequenceStats::from_value(field(v, "stats", what)?, &format!("{what}.stats"))?,
        },
        "failed" => RecordOutcome::Failed {
            attempts: field_u64(v, "attempts", what)? as u32,
            panic_msg: field_str(v, "panic_msg", what)?.to_string(),
        },
        "timeout" => RecordOutcome::TimedOut {
            attempts: field_u64(v, "attempts", what)? as u32,
            budget_cycles: field_u64(v, "budget_cycles", what)?,
            spent_cycles: field_u64(v, "spent_cycles", what)?,
        },
        other => return Err(format!("{what}: unknown outcome `{other}`")),
    };
    Ok(Record { job, abbrev, scheduler, outcome })
}

impl Checkpoint {
    /// Loads and validates a checkpoint file, auto-detecting the encoding by
    /// its leading bytes ([`BIN_MAGIC`] → binary, anything else → JSON lines).
    ///
    /// Rejects, with an error naming the location and problem: unreadable
    /// files, empty files, truncated trailing records (crash mid-append),
    /// malformed JSON or binary frames, wrong schema/magic/version, and
    /// records missing required fields.
    pub fn load(path: &str) -> Result<Self, String> {
        let bytes =
            std::fs::read(path).map_err(|e| format!("reading checkpoint {path}: {e}"))?;
        if bytes.starts_with(BIN_MAGIC) {
            return Self::load_binary(&bytes, path);
        }
        let text = String::from_utf8(bytes)
            .map_err(|_| format!("checkpoint {path}: neither binary (no magic) nor UTF-8 JSON"))?;
        if text.is_empty() {
            return Err(format!("checkpoint {path} is empty (no header line)"));
        }
        if !text.ends_with('\n') {
            return Err(format!(
                "checkpoint {path} is truncated: the last line is incomplete (crash while \
                 appending?) — delete the file to start over, or restore a complete copy"
            ));
        }
        let mut lines = text.lines().enumerate();
        let (_, header_line) = lines.next().expect("non-empty text has a first line");
        let header = json::parse(header_line)
            .map_err(|e| format!("checkpoint {path} line 1: {e}"))
            .and_then(|v| CheckpointHeader::from_value(&v))
            .map_err(|e| format!("checkpoint {path} line 1: {e}"))?;
        let mut records = Vec::new();
        for (i, line) in lines {
            let lineno = i + 1;
            if line.trim().is_empty() {
                return Err(format!("checkpoint {path} line {lineno}: blank line"));
            }
            let v = json::parse(line).map_err(|e| format!("checkpoint {path} line {lineno}: {e}"))?;
            let rec = parse_record(&v, &format!("record at line {lineno}"))
                .map_err(|e| format!("checkpoint {path}: {e}"))?;
            if rec.job >= header.jobs {
                return Err(format!(
                    "checkpoint {path} line {lineno}: job index {} out of range (campaign has {} jobs)",
                    rec.job, header.jobs
                ));
            }
            records.push(rec);
        }
        Ok(Self { header, records, format: CheckpointFormat::Json })
    }

    /// Parses the binary (`libra-ckpt-bin-v1`) encoding.
    fn load_binary(bytes: &[u8], path: &str) -> Result<Self, String> {
        let mut r = ByteReader::new(&bytes[BIN_MAGIC.len()..]);
        let header = CheckpointHeader::from_reader(&mut r)
            .map_err(|e| format!("checkpoint {path}: {e}"))?;
        let mut records = Vec::new();
        while !r.is_empty() {
            let at = BIN_MAGIC.len() + r.position();
            let frame_err = |e: String| {
                format!(
                    "checkpoint {path}: record frame at offset {at}: {e} (crash while \
                     appending?) — delete the file to start over, or restore a complete copy"
                )
            };
            let len = r.u32("frame length").map_err(frame_err)? as usize;
            let payload = r.bytes(len, "frame payload").map_err(frame_err)?;
            let rec = parse_record_binary(payload, &format!("record at offset {at}"))
                .map_err(|e| format!("checkpoint {path}: {e}"))?;
            if rec.job >= header.jobs {
                return Err(format!(
                    "checkpoint {path}: record at offset {at}: job index {} out of range \
                     (campaign has {} jobs)",
                    rec.job, header.jobs
                ));
            }
            records.push(rec);
        }
        Ok(Self { header, records, format: CheckpointFormat::Binary })
    }
}

/// Append-mode writer shared by campaign workers (record appends are
/// serialised through an internal mutex; each record is one `write_all` +
/// flush in the writer's [`CheckpointFormat`]).
#[derive(Debug)]
pub struct CheckpointWriter {
    file: Mutex<File>,
    path: String,
    format: CheckpointFormat,
}

impl CheckpointWriter {
    /// Creates (truncating) a fresh checkpoint at `path` and writes the header
    /// in the requested encoding.
    pub fn create(
        path: &str,
        header: CheckpointHeader,
        format: CheckpointFormat,
    ) -> Result<Self, String> {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            }
        }
        let mut file =
            File::create(path).map_err(|e| format!("creating checkpoint {path}: {e}"))?;
        let head = match format {
            CheckpointFormat::Binary => header.to_binary(),
            CheckpointFormat::Json => {
                let mut line = header.to_json();
                line.push('\n');
                line.into_bytes()
            }
        };
        file.write_all(&head)
            .and_then(|()| file.flush())
            .map_err(|e| format!("writing checkpoint header to {path}: {e}"))?;
        Ok(Self { file: Mutex::new(file), path: path.to_string(), format })
    }

    /// Reopens an existing (already validated) checkpoint for appending — the
    /// resume path keeps extending the same file, in whichever encoding the
    /// file already uses (sniffed from its magic bytes).
    pub fn append_to(path: &str) -> Result<Self, String> {
        let format = {
            let mut head = [0u8; 8];
            let mut f = File::open(path)
                .map_err(|e| format!("opening checkpoint {path} for append: {e}"))?;
            match std::io::Read::read_exact(&mut f, &mut head) {
                Ok(()) if &head == BIN_MAGIC => CheckpointFormat::Binary,
                _ => CheckpointFormat::Json,
            }
        };
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("opening checkpoint {path} for append: {e}"))?;
        Ok(Self { file: Mutex::new(file), path: path.to_string(), format })
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The encoding this writer appends in.
    pub fn format(&self) -> CheckpointFormat {
        self.format
    }

    /// Appends one job record atomically (single write of a full line/frame).
    pub fn append(&self, r: &CampaignResult) -> Result<(), String> {
        let bytes = match self.format {
            CheckpointFormat::Binary => record_frame(r),
            CheckpointFormat::Json => {
                let mut line = record_json(r);
                line.push('\n');
                line.into_bytes()
            }
        };
        let mut file = self.file.lock().unwrap();
        file.write_all(&bytes)
            .and_then(|()| file.flush())
            .map_err(|e| format!("appending to checkpoint {}: {e}", self.path))
    }
}
